"""S-7.2.1 — direct communication between data-parallel programs (the
proposed extension).

Claims reproduced: routing stage-to-stage data through the task-parallel
caller "creates a bottleneck for problems in which there is a significant
amount of data to be exchanged"; direct channels remove it.  Measured both
as wall-clock and as PCN-level server-request counts (zero for the channel
route).
"""

from __future__ import annotations

import time

from benchmarks.conftest import report
from repro.calls import Index, Reduce
from repro.core.channels import Channel
from repro.core.runtime import IntegratedRuntime
from repro.pcn.composition import par
from repro.spmd import collectives

ITEMS = 8
CHUNK = 4096


def _expected_total(group_width: int) -> float:
    per_copy = CHUNK // group_width
    return float(
        sum(per_copy * (k + idx) for idx in range(group_width)
            for k in range(ITEMS))
    )


class TestS721Channels:
    def test_tp_route_vs_channel_route(self, benchmark):
        rt = IntegratedRuntime(8)
        ga, gb = rt.split_processors(2)
        a = rt.array("double", (CHUNK,), ga, ["block"])
        b = rt.array("double", (CHUNK,), gb, ["block"])

        def produce(ctx, step, sec):
            sec.interior()[:] = float(step) + ctx.index

        def consume(ctx, sec, out):
            out[0] = collectives.allreduce(
                ctx.comm, float(sec.interior().sum()), op="sum"
            )

        def tp_route():
            total = 0.0
            for step in range(ITEMS):
                rt.call(ga, produce, [step, a])
                b.from_numpy(a.to_numpy())  # the TP-level hop
                result = rt.call(gb, consume, [b, Reduce("double", 1, "max")])
                total += result.reductions[0]
            return total

        ch = Channel(rt.machine, ga, gb)

        def producer(ctx, index, sec):
            end = ch.end_a(ctx)
            for step in range(ITEMS):
                sec.interior()[:] = float(step) + index
                end.send(sec.interior().copy(), tag=step)

        def consumer(ctx, index, out):
            end = ch.end_b(ctx)
            total = 0.0
            for step in range(ITEMS):
                total += float(end.recv(tag=step).sum())
            out[0] = collectives.allreduce(ctx.comm, total, op="sum")

        def channel_route():
            results = par(
                lambda: rt.call(ga, producer, [Index(), a]),
                lambda: rt.call(
                    gb, consumer, [Index(), Reduce("double", 1, "max")]
                ),
            )
            return results[1].reductions[0]

        t0 = time.perf_counter()
        total_tp = tp_route()
        tp_time = time.perf_counter() - t0

        total_ch = benchmark.pedantic(channel_route, rounds=3, iterations=1)
        t0 = time.perf_counter()
        channel_route()
        ch_time = time.perf_counter() - t0

        expected = _expected_total(4)
        assert total_tp == total_ch == expected

        # PCN-level request counts: the channel route makes no
        # section-transfer server requests at all.
        counts = rt.array_manager.request_counts
        before = counts.get("read_section_local", 0)
        channel_route()
        assert counts.get("read_section_local", 0) == before

        report(
            "S-7.2.1 TP-level route vs direct channel "
            f"({ITEMS} items x {CHUNK} doubles)",
            [
                ("route", "seconds", "checksum"),
                ("through task-parallel level", f"{tp_time:.4f}",
                 f"{total_tp:.0f}"),
                ("direct DP<->DP channel", f"{ch_time:.4f}",
                 f"{total_ch:.0f}"),
            ],
        )
        # the extension must win when real data volume flows
        assert ch_time < tp_time
        a.free()
        b.free()

    def test_bottleneck_grows_with_volume(self, benchmark):
        """The TP route's disadvantage widens as the exchanged volume
        grows (it serialises every byte through one thread of control)."""
        rt = IntegratedRuntime(8)
        ga, gb = rt.split_processors(2)
        rows = [("chunk doubles", "TP seconds", "channel seconds")]
        ratios = {}
        repeats = 8
        for chunk in (1024, 262144):
            a = rt.array("double", (chunk,), ga, ["block"])
            b = rt.array("double", (chunk,), gb, ["block"])

            def fill(ctx, sec):
                sec.interior()[:] = 1.0

            def tp_route():
                for _ in range(repeats):
                    rt.call(ga, fill, [a])
                    b.from_numpy(a.to_numpy())

            ch = Channel(rt.machine, ga, gb)

            def producer(ctx, index, sec):
                end = ch.end_a(ctx)
                for _ in range(repeats):
                    end.send(sec.interior().copy())

            def consumer(ctx, index):
                end = ch.end_b(ctx)
                for _ in range(repeats):
                    end.recv()

            def channel_route():
                par(
                    lambda: rt.call(ga, producer, [Index(), a]),
                    lambda: rt.call(gb, consumer, [Index()]),
                )

            def best_of(fn, trials=3):
                best = float("inf")
                for _ in range(trials):
                    t0 = time.perf_counter()
                    fn()
                    best = min(best, time.perf_counter() - t0)
                return best

            tp_route()  # warm-up
            channel_route()
            tp = best_of(tp_route)
            chs = best_of(channel_route)
            ratios[chunk] = tp / chs
            rows.append((chunk, f"{tp:.4f}", f"{chs:.4f}"))
            a.free()
            b.free()
        report("S-7.2.1 bottleneck vs data volume", rows)
        benchmark.pedantic(lambda: None, rounds=1)
        # At 2 MiB per hop the TP route serialises every byte through one
        # thread of control; the channel route must win.
        assert ratios[262144] > 1.0
