"""S-3.4.1 — message conflicts and the typed/selective-receive fix.

Claims reproduced: with untyped receives (the original Cosmic Environment
primitives), cross-layer interception occurs whenever the two layers'
messages interleave; with typed selective receives, interception never
occurs, at a modest scan cost in the mailbox.
"""

from __future__ import annotations

from benchmarks.conftest import report
from repro.vp.machine import Machine
from repro.vp.message import MessageType


class TestS341Messages:
    def test_interception_rate_untyped_vs_typed(self, benchmark):
        """Interleave PCN and DP traffic; count how often each receive
        discipline hands the PCN layer a DP message."""
        trials = 200

        def run_discipline(typed: bool) -> int:
            machine = Machine(2)
            interceptions = 0
            for i in range(trials):
                # DP message arrives first half the time.
                if i % 2 == 0:
                    machine.send(0, 1, "dp", mtype=MessageType.DATA_PARALLEL)
                    machine.send(0, 1, "pcn", mtype=MessageType.PCN)
                else:
                    machine.send(0, 1, "pcn", mtype=MessageType.PCN)
                    machine.send(0, 1, "dp", mtype=MessageType.DATA_PARALLEL)
                box = machine.processor(1).mailbox
                if typed:
                    got = box.recv(mtype=MessageType.PCN)
                else:
                    got = box.recv_untyped()
                interceptions += got.payload != "pcn"
                box.drain()
            return interceptions

        untyped = run_discipline(typed=False)
        typed = run_discipline(typed=True)
        report(
            "S-3.4.1 cross-layer interceptions over 200 interleaved rounds",
            [
                ("receive discipline", "interceptions"),
                ("untyped (pre-fix)", untyped),
                ("typed + selective (the fix)", typed),
            ],
        )
        assert untyped == trials // 2  # every DP-first round intercepts
        assert typed == 0

        machine = Machine(2)

        def typed_roundtrip():
            machine.send(0, 1, "x", mtype=MessageType.PCN, tag="t")
            return machine.processor(1).mailbox.recv(
                mtype=MessageType.PCN, tag="t"
            )

        benchmark(typed_roundtrip)

    def test_selective_scan_cost_under_backlog(self, benchmark):
        """Selective receive scans past non-matching traffic; cost grows
        with backlog depth but stays microsecond-scale."""
        import time

        rows = [("backlog depth", "microseconds per selective recv")]
        for backlog in (0, 32, 256):
            machine = Machine(2)
            box = machine.processor(1).mailbox
            for i in range(backlog):
                machine.send(
                    0, 1, i, mtype=MessageType.DATA_PARALLEL, tag=("noise", i)
                )
            iterations = 200
            t0 = time.perf_counter()
            for i in range(iterations):
                machine.send(0, 1, "hit", mtype=MessageType.PCN, tag="want")
                box.recv(mtype=MessageType.PCN, tag="want")
            per_call = (time.perf_counter() - t0) / iterations * 1e6
            rows.append((backlog, f"{per_call:.1f}"))
        report("S-3.4.1 selective-receive scan cost", rows)

        machine = Machine(2)
        box = machine.processor(1).mailbox

        def roundtrip():
            machine.send(0, 1, "hit", mtype=MessageType.PCN, tag="want")
            return box.recv(mtype=MessageType.PCN, tag="want")

        benchmark(roundtrip)
