"""S-2.3.1b — the aeroelasticity simulation (the thesis' second coupled
example: multidisciplinary design and optimization).

Claims reproduced: the two interdependent discipline solves (aerodynamic +
structural), run concurrently on disjoint groups with TP-level coupling,
converge to a fixed point satisfying both disciplines, identically to
sequential stepping.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import report
from repro.apps.aeroelastic import AeroelasticSimulation
from repro.core.runtime import IntegratedRuntime


class TestS231bAeroelastic:
    def test_fixed_point_convergence(self, benchmark):
        rt = IntegratedRuntime(8)
        sim = AeroelasticSimulation(rt, span_points=16)
        result = benchmark.pedantic(
            lambda: sim.run(max_iterations=40, tolerance=1e-8),
            rounds=2,
            iterations=1,
        )
        rows = [("iteration", "coupling change")]
        for k, change in enumerate(result.coupling_history[:10]):
            rows.append((k, f"{change:.3e}"))
        report("S-2.3.1b aeroelastic fixed-point convergence", rows)
        assert result.converged
        # the fixed point satisfies the structural system
        assert np.allclose(
            sim.stiffness.to_numpy() @ sim.deflection.to_numpy(),
            sim.load.to_numpy(),
            atol=1e-6,
        )
        sim.free()

    def test_concurrent_equals_sequential(self, benchmark):
        def both():
            rt_a = IntegratedRuntime(8)
            sim_a = AeroelasticSimulation(rt_a, span_points=16, seed=2)
            run_a = sim_a.run(max_iterations=8, tolerance=0.0)
            sim_a.free()
            rt_b = IntegratedRuntime(8)
            sim_b = AeroelasticSimulation(rt_b, span_points=16, seed=2)
            run_b = sim_b.run_reference(max_iterations=8, tolerance=0.0)
            sim_b.free()
            return run_a, run_b

        run_a, run_b = benchmark.pedantic(both, rounds=1, iterations=1)
        assert np.array_equal(run_a.pressures, run_b.pressures)
        assert np.array_equal(run_a.deflections, run_b.deflections)
