"""FIG-3.10/§F — the generated wrapper and combine programs.

Claims reproduced: the wrapper adds bounded overhead per parameter kind
(find_local per Local parameter, a buffer per Reduce parameter, a pairwise
fold per copy for status/reductions), and the generated combine merges
exactly like §F's examples.
"""

from __future__ import annotations

import time

from benchmarks.conftest import report
from repro.calls import Index, Local, Reduce, StatusVar
from repro.calls.combine import make_combine_program


class TestFigF10Wrapper:
    def test_overhead_by_parameter_mix(self, benchmark, rt8):
        group = rt8.all_processors()
        arr1 = rt8.array("double", (16,), group, ["block"])
        arr2 = rt8.array("double", (16,), group, ["block"])

        def nop(ctx, *args):
            for arg in args:
                if hasattr(arg, "set"):
                    arg.set(0)

        mixes = {
            "no parameters": [],
            "constants only": [1, 2.5, "s"],
            "index": [Index()],
            "one local": [Local(arr1.array_id)],
            "two locals": [Local(arr1.array_id), Local(arr2.array_id)],
            "status": [StatusVar()],
            "status + 2 reduce": [
                StatusVar(),
                Reduce("double", 4, "sum"),
                Reduce("double", 4, "max"),
            ],
        }
        rows = [("parameter mix", "microseconds per call")]
        timings = {}
        for label, params in mixes.items():
            iterations = 15
            t0 = time.perf_counter()
            for _ in range(iterations):
                rt8.call(group, nop, params)
            timings[label] = (time.perf_counter() - t0) / iterations * 1e6
            rows.append((label, f"{timings[label]:.0f}"))
        report("FIG-3.10 wrapper overhead by parameter mix", rows)
        # Locals add find_local requests; they must cost no less than the
        # bare call (sanity, direction only — noise dominates absolutes).
        assert timings["one local"] > 0 and timings["no parameters"] > 0
        benchmark(
            lambda: rt8.call(group, nop, [Local(arr1.array_id)])
        )
        arr1.free()
        arr2.free()

    def test_wrapper_call_benchmark(self, benchmark, rt8):
        group = rt8.all_processors()
        arr = rt8.array("double", (16,), group, ["block"])

        def body(ctx, index, sec, status, red):
            sec.interior()[:] = index
            status.set(0)
            red[0] = float(index)

        benchmark(
            lambda: rt8.call(
                group,
                body,
                [Index(), Local(arr.array_id), StatusVar(),
                 Reduce("double", 1, "sum")],
            )
        )
        arr.free()

    def test_combine_fold_rate(self, benchmark):
        """The §F.6 pairwise merge at full speed."""
        combine = make_combine_program("max", ["sum", "min"])
        tuples = [(i % 3, float(i), float(-i)) for i in range(64)]

        def fold_all():
            acc = tuples[0]
            for t in tuples[1:]:
                acc = combine(acc, t)
            return acc

        acc = benchmark(fold_all)
        assert acc[0] == 2
        assert acc[1] == sum(float(i) for i in range(64))
        assert acc[2] == -63.0
