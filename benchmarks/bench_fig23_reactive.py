"""FIG-2.3 — the reactor discrete-event simulation (§2.3.3, Fig 2.3).

Claims reproduced: an irregular event graph whose nodes run data-parallel
component models preserves per-tick causality (pump -> valve -> reactor ->
driver), terminates data-dependently, and cools monotonically.
"""

from __future__ import annotations

from benchmarks.conftest import report
from repro.apps.reactor import ReactorSimulation
from repro.core.runtime import IntegratedRuntime


class TestFig23Reactive:
    def test_event_cascade_benchmark(self, benchmark):
        rt = IntegratedRuntime(8)
        sims = []

        def run_cascade():
            sim = ReactorSimulation(rt)
            trace = sim.run(max_ticks=6)
            sims.append(sim)
            return trace

        trace = benchmark.pedantic(run_cascade, rounds=3, iterations=1)
        for sim in sims:
            sim.free()
        benchmark.extra_info["events"] = trace.result.events_handled
        benchmark.extra_info["events_per_second"] = (
            trace.result.events_handled / trace.result.wall_time
        )

        rows = [("tick", "flow", "core temperature")]
        for k, (flow, temp) in enumerate(
            zip(trace.flows, trace.temperatures)
        ):
            rows.append((k, f"{flow:.2f}", f"{temp:.2f}"))
        report("FIG-2.3 reactor cooling trace", rows)

        # shape assertions
        assert all(
            a > b for a, b in zip(trace.temperatures, trace.temperatures[1:])
        ), "cooling must be monotone"
        counts = trace.result.per_node_counts
        assert counts["pump"] == counts["valve"] == counts["reactor"]
        assert counts["driver"] == 2 * counts["pump"]

    def test_data_dependent_termination(self, benchmark):
        """The cascade length depends on the physics, not on a fixed
        horizon: a colder threshold runs longer."""
        rt = IntegratedRuntime(8)

        def ticks_for(threshold):
            sim = ReactorSimulation(rt, safe_temperature=threshold)
            trace = sim.run(max_ticks=30)
            sim.free()
            return trace.demands

        hot = ticks_for(600.0)
        cold = benchmark.pedantic(
            lambda: ticks_for(300.0), rounds=1, iterations=1
        )
        report(
            "FIG-2.3 data-dependent cascade length",
            [("safe threshold", "ticks"), (600.0, hot), (300.0, cold)],
        )
        assert cold > hot
