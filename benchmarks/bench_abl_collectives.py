"""ABL-2 — ablation: collective-communication algorithms (§1.2.5).

The thesis discusses synchronisation styles (tight, loose with a master,
loose SPMD) without quantifying them.  This ablation compares the
master-style "linear" collectives against the SPMD-style "tree"
collectives: message counts (deterministic) and wall-clock latency.
"""

from __future__ import annotations

import math
import time

from benchmarks.conftest import report
from repro.pcn.composition import par
from repro.spmd import collectives
from repro.spmd.comm import GroupComm
from repro.vp.machine import Machine


def run_collective(n, body):
    machine = Machine(n)
    comms = [GroupComm(machine, list(range(n)), r, "abl") for r in range(n)]
    machine.reset_traffic()
    t0 = time.perf_counter()
    par(*[lambda c=c: body(c) for c in comms])
    elapsed = time.perf_counter() - t0
    return machine.traffic_snapshot()["messages"], elapsed


class TestAbl2Collectives:
    def test_message_counts_by_algorithm(self, benchmark):
        rows = [("operation", "P", "linear msgs", "tree msgs")]
        checks = []
        for p in (4, 8, 16):
            for name, op in (
                ("barrier", lambda c, a: collectives.barrier(c, algorithm=a)),
                (
                    "bcast",
                    lambda c, a: collectives.bcast(
                        c, 1 if c.rank == 0 else None, algorithm=a
                    ),
                ),
                (
                    "allreduce",
                    lambda c, a: collectives.allreduce(
                        c, c.rank, op="sum", algorithm=a
                    ),
                ),
            ):
                linear, _ = run_collective(p, lambda c: op(c, "linear"))
                tree, _ = run_collective(p, lambda c: op(c, "tree"))
                rows.append((name, p, linear, tree))
                checks.append((name, p, linear, tree))
        report("ABL-2 collective message counts", rows)
        benchmark.pedantic(
            lambda: run_collective(
                8, lambda c: collectives.allreduce(c, c.rank, op="sum")
            ),
            rounds=3,
            iterations=1,
        )

        for name, p, linear, tree in checks:
            if name == "barrier":
                assert linear == 2 * (p - 1)
                assert tree == p * math.ceil(math.log2(p))
            if name == "bcast":
                assert linear == p - 1
                assert tree == p - 1  # binomial moves the same count...
            if name == "allreduce":
                assert linear == 2 * (p - 1)
                assert tree == 2 * (p - 1)

    def test_latency_depth_linear_vs_tree(self, benchmark):
        """...but the tree's O(log P) critical path beats the master's
        O(P) chain once per-message latency matters.  We inject latency by
        sleeping 1ms per hop inside a wrapped send."""
        p = 8
        hop_delay = 0.002

        def delayed_bcast(algorithm):
            machine = Machine(p)
            comms = [
                GroupComm(machine, list(range(p)), r, "lat") for r in range(p)
            ]
            originals = [c.send for c in comms]

            def make_delayed(orig):
                def send(dest, payload, tag=None):
                    time.sleep(hop_delay)
                    orig(dest, payload, tag=tag)

                return send

            for c, orig in zip(comms, originals):
                c.send = make_delayed(orig)  # type: ignore[method-assign]
            t0 = time.perf_counter()
            par(
                *[
                    lambda c=c: collectives.bcast(
                        c, "x" if c.rank == 0 else None, algorithm=algorithm
                    )
                    for c in comms
                ]
            )
            return time.perf_counter() - t0

        linear = delayed_bcast("linear")
        tree = benchmark.pedantic(
            lambda: delayed_bcast("tree"), rounds=3, iterations=1
        )
        report(
            "ABL-2 bcast latency with 2ms hops (P=8)",
            [
                ("algorithm", "seconds", "critical path"),
                ("linear (master)", f"{linear:.3f}", "O(P) sends from root"),
                ("tree (binomial)", f"{tree:.3f}", "O(log P) rounds"),
            ],
        )
        # The root's serial send loop costs (P-1) hops; the tree ~log2(P).
        assert tree < linear
