"""FIG-3.2/3.3 — control and data flow in a distributed call.

Claims reproduced: (1) the caller suspends for the call's duration and
resumes only after every copy terminates; (2) per-call overhead grows
mildly with group size (one process per processor plus the status fold);
(3) each copy receives exactly its own local section.
"""

from __future__ import annotations

import threading
import time

from benchmarks.conftest import report
from repro.calls import Index


class TestFig32ControlFlow:
    def test_null_call_overhead_by_group_size(self, benchmark, rt8):
        """The cost of the call machinery itself (empty program body)."""

        def null_program(ctx):
            pass

        rows = [("group size", "microseconds per call")]
        for size in (1, 2, 4, 8):
            group = rt8.processors(0, size)
            start = time.perf_counter()
            iterations = 20
            for _ in range(iterations):
                rt8.call(group, null_program, [])
            elapsed = (time.perf_counter() - start) / iterations
            rows.append((size, f"{elapsed * 1e6:.0f}"))
        report("FIG-3.2 null distributed-call overhead", rows)

        group = rt8.all_processors()
        benchmark(lambda: rt8.call(group, null_program, []))

    def test_caller_suspension_exactness(self, benchmark, rt8):
        """Fig 3.2: 'caller TPA suspends execution while the copies of DPA
        execute.  When all copies terminate, control returns to TPA.'"""
        release = threading.Event()
        copy_done = []

        def slow_copy(ctx, index):
            if index == 0:
                release.wait(timeout=10)
            copy_done.append(index)

        def run_call():
            release.clear()
            copy_done.clear()
            timer = threading.Timer(0.05, release.set)
            timer.start()
            t0 = time.perf_counter()
            rt8.call(rt8.processors(0, 4), slow_copy, [Index()])
            elapsed = time.perf_counter() - t0
            timer.cancel()
            return elapsed

        elapsed = benchmark.pedantic(run_call, rounds=3, iterations=1)
        # The call cannot return before the slow copy's 50ms release.
        assert elapsed >= 0.05
        assert sorted(copy_done) == [0, 1, 2, 3]

    def test_data_flow_each_copy_its_own_section(self, benchmark, rt8):
        """Fig 3.3: DPA(DataA.local(j)) on processor P(j)."""
        group = rt8.all_processors()
        arr = rt8.array("double", (16,), group, ["block"])

        def stamp(ctx, index, sec):
            sec.interior()[:] = float(index)

        benchmark(lambda: rt8.call(group, stamp, [Index(), arr]))
        data = arr.to_numpy()
        rows = [("copy", "elements")]
        for j in range(8):
            segment = data[2 * j : 2 * j + 2]
            rows.append((j, list(segment)))
            assert list(segment) == [float(j)] * 2
        report("FIG-3.3 per-copy local sections", rows)
        arr.free()
