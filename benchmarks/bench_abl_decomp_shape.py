"""ABL-1 — ablation: decomposition shape vs halo traffic (§3.2.1.2,
Fig 3.6).

The thesis exposes grid-shape control (block/block(N)/"*") but does not
quantify it; this ablation does.  Claim: for a 5-point stencil, the halo
traffic of a decomposition is its total internal perimeter — square-ish
grids minimise it for square arrays, and 1-D strip decompositions pay
proportionally more as P grows.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import report
from repro.calls import Local, Reduce
from repro.core.runtime import IntegratedRuntime
from repro.spmd.stencil import halo_traffic_for, heat_steps

N = 64


def measure(rt, grid):
    procs = rt.all_processors()
    arr = rt.array(
        "double", (N, N), procs,
        [("block", grid[0]), ("block", grid[1])], borders=[1, 1, 1, 1],
    )
    arr.from_numpy(np.random.default_rng(0).uniform(0, 1, (N, N)))
    result = rt.call(
        procs, halo_traffic_for,
        [grid[0], grid[1], Local(arr.array_id), Reduce("double", 1, "max")],
    )
    nbytes = result.reductions[0]

    rt.machine.reset_traffic()
    rt.call(procs, heat_steps, [grid[0], grid[1], 4, Local(arr.array_id)])
    measured = rt.machine.traffic_snapshot()

    # Messages attributable to one sweep: the 1-step/5-step marginal
    # cancels the per-call scaffolding (spawn, collect, allreduce).
    def msgs(steps):
        rt.machine.reset_traffic()
        rt.call(
            procs, heat_steps, [grid[0], grid[1], steps, Local(arr.array_id)]
        )
        return rt.machine.traffic_snapshot()["messages"]

    per_sweep = (msgs(5) - msgs(1)) / 4.0
    arr.free()
    return nbytes, measured, per_sweep


class TestAbl1DecompositionShape:
    def test_halo_bytes_by_grid_shape(self, benchmark):
        rt = IntegratedRuntime(16)
        rows = [("grid", "halo bytes/step (model)",
                 "measured bytes (4 steps)", "msgs/sweep")]
        results = {}
        msgs_per_sweep = {}
        for grid in ((4, 4), (16, 1), (1, 16), (8, 2)):
            model_bytes, measured, per_sweep = measure(rt, grid)
            results[grid] = (model_bytes, measured["bytes"])
            msgs_per_sweep[grid] = per_sweep
            rows.append(
                (grid, int(model_bytes), measured["bytes"], per_sweep)
            )
        report("ABL-1 halo traffic by decomposition shape (64x64, P=16)", rows)

        # shape claims:
        # (1) the square grid strictly beats both strip grids;
        assert results[(4, 4)][0] < results[(16, 1)][0]
        assert results[(4, 4)][0] < results[(1, 16)][0]
        # (2) the two strip orientations cost the same on a square array;
        assert results[(16, 1)][0] == results[(1, 16)][0]
        # (3) the 8x2 grid sits between square and strip;
        assert results[(4, 4)][0] < results[(8, 2)][0] < results[(16, 1)][0]
        # (4) the analytic model tracks the measured traffic ordering.
        ordered_model = sorted(results, key=lambda g: results[g][0])
        ordered_measured = sorted(results, key=lambda g: results[g][1])
        assert ordered_model == ordered_measured
        # (5) message count is the *complementary* trade-off: one fused
        # strip per internal directed edge per sweep, so the strip grid
        # sends the fewest (largest) messages and the square grid the
        # most (smallest) — bytes and message count pull opposite ways.
        assert msgs_per_sweep[(16, 1)] < msgs_per_sweep[(8, 2)]
        assert msgs_per_sweep[(8, 2)] < msgs_per_sweep[(4, 4)]
        benchmark.extra_info.update(
            msgs_per_sweep={str(g): m for g, m in msgs_per_sweep.items()}
        )

        rt8 = IntegratedRuntime(16)
        procs = rt8.all_processors()
        arr = rt8.array(
            "double", (N, N), procs, [("block", 4), ("block", 4)],
            borders=[1, 1, 1, 1],
        )
        benchmark(
            lambda: rt8.call(
                procs, heat_steps, [4, 4, 1, Local(arr.array_id)]
            )
        )
        arr.free()

    def test_model_formula(self, benchmark):
        """The analytic perimeter model: internal edges x strip length x 2
        directions x 8 bytes."""

        def internal_halo_bytes(n, gr, gc):
            rows, cols = n // gr, n // gc
            horizontal_cuts = (gr - 1) * gc * cols  # cells per cut row
            vertical_cuts = (gc - 1) * gr * rows
            return (horizontal_cuts + vertical_cuts) * 2 * 8

        rt = IntegratedRuntime(16)
        for grid in ((4, 4), (16, 1), (8, 2)):
            model, _, _ = measure(rt, grid)
            assert model == internal_halo_bytes(N, *grid)
        benchmark(lambda: internal_halo_bytes(N, 4, 4))
