"""FIG-2.2 — the Fourier-transform pipeline (§2.3.2, Fig 2.2).

Claim reproduced: a 3-stage pipeline overlaps its stages once filled, so
steady-state throughput is paced by the slowest stage rather than by the
sum of the stages, and the speedup over unpipelined execution approaches
the number of (balanced) stages as the stream lengthens.
"""

from __future__ import annotations

import time

import pytest

from benchmarks.conftest import report
from repro.core.pipeline import Pipeline, Stage


def make_stages(n_stages: int = 3, dt: float = 0.008) -> list:
    def work(item):
        time.sleep(dt)  # a GIL-releasing, fixed-cost stage body
        return item

    return [Stage(f"stage{i}", work) for i in range(n_stages)]


class TestFig22Pipeline:
    def test_speedup_series_vs_stream_length(self, benchmark):
        """Speedup grows with stream length toward #stages (pipeline fill
        amortised)."""
        rows = [("items", "steady-state speedup", "overlap seconds")]
        speedups = {}
        for items in (1, 3, 6, 12, 24):
            result = Pipeline(make_stages()).run(range(items))
            speedups[items] = result.steady_state_speedup()
            rows.append(
                (items, f"{speedups[items]:.2f}",
                 f"{result.overlap_intervals():.3f}")
            )
        report("FIG-2.2 pipeline speedup vs stream length", rows)
        # shape: single item => no overlap benefit; long stream => toward
        # the 3x stage count.  The median-based estimator is robust to
        # single-interval scheduling spikes.
        assert speedups[1] == pytest.approx(1.0, abs=0.35)
        assert speedups[24] > 2.0
        assert speedups[24] > speedups[1]

        def run_pipeline():
            return Pipeline(make_stages()).run(range(12))

        result = benchmark(run_pipeline)
        benchmark.extra_info["simulated_speedup"] = result.simulated_speedup()

    def test_pipelined_beats_sequential_wall_clock(self, benchmark):
        """With GIL-releasing stage bodies, the concurrent pipeline also
        wins on measured wall-clock."""
        stages = make_stages()
        items = range(12)
        concurrent = benchmark.pedantic(
            lambda: Pipeline(stages).run(items), rounds=3, iterations=1
        )
        sequential = Pipeline(stages).run_sequential(items)
        report(
            "FIG-2.2 wall-clock",
            [
                ("mode", "seconds"),
                ("pipelined", f"{concurrent.wall_time:.3f}"),
                ("sequential", f"{sequential.wall_time:.3f}"),
            ],
        )
        assert concurrent.wall_time < sequential.wall_time

    def test_bottleneck_paces_steady_state(self, benchmark):
        """An unbalanced pipeline runs at the slow stage's rate: the
        paper's 'each stage processes one set of data at a time'."""

        def fast(item):
            time.sleep(0.001)
            return item

        def slow(item):
            time.sleep(0.006)
            return item

        stages = [Stage("pre", fast), Stage("slow", slow), Stage("post", fast)]

        def run():
            return Pipeline(stages).run(range(10))

        result = benchmark.pedantic(run, rounds=3, iterations=1)
        # With median service times, the bottleneck stage's per-item cost
        # paces the whole pipeline: its share of the ideal makespan must
        # dominate the fast stages' combined share.
        medians = {
            r.name: sorted(r.service_times())[len(r.service_times()) // 2]
            for r in result.records
        }
        assert medians["slow"] > medians["pre"] + medians["post"]
        assert result.steady_state_speedup() < 2.0  # unbalanced: < #stages
