"""FIG-2.4 — animation-frame generation (§2.3.4, Fig 2.4).

Claim reproduced: independent data-parallel frame generations scale with
the number of concurrent groups.  Frame rendering is NumPy-heavy (releases
the GIL), so wall-clock improves with more groups; the jobs-per-group
distribution shows the farm spreading work.
"""

from __future__ import annotations

from benchmarks.conftest import report
from repro.apps import animation
from repro.core.runtime import IntegratedRuntime


FRAMES = 8
SHAPE = (48, 48)
ITER = 60


class TestFig24Farm:
    def test_scaling_with_groups(self, benchmark):
        rt = IntegratedRuntime(8)
        times = {}
        rows = [("groups", "wall seconds", "jobs per group")]
        for groups in (1, 2, 4):
            result = animation.render_animation(
                rt, frames=FRAMES, groups=groups, shape=SHAPE, max_iter=ITER
            )
            times[groups] = result.farm_result.wall_time
            rows.append(
                (groups, f"{times[groups]:.3f}",
                 result.farm_result.jobs_per_group)
            )
        report("FIG-2.4 frame-farm scaling", rows)
        # shape: more groups should not be slower (and usually faster);
        # allow generous noise since frames are small.
        assert times[4] < times[1] * 1.2

        result = benchmark.pedantic(
            lambda: animation.render_animation(
                rt, frames=FRAMES, groups=4, shape=SHAPE, max_iter=ITER
            ),
            rounds=3,
            iterations=1,
        )
        benchmark.extra_info["frames_per_second"] = (
            FRAMES / result.farm_result.wall_time
        )

    def test_outputs_independent_of_group_count(self, benchmark):
        """Inherent parallelism: the rendered frames are identical no
        matter how the farm schedules them."""
        import numpy as np

        rt = IntegratedRuntime(8)

        def render(groups):
            return animation.render_animation(
                rt, frames=4, groups=groups, shape=(16, 16), max_iter=20
            ).frames

        one = render(1)
        four = benchmark.pedantic(lambda: render(4), rounds=1)
        for a, b in zip(one, four):
            assert np.array_equal(a, b)
