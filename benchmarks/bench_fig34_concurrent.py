"""FIG-3.4 — concurrent distributed calls on disjoint processor groups.

Claims reproduced: two concurrent calls on disjoint groups (1) do not
interfere (each group's collectives see only its own copies), (2) complete
in roughly the time of one call when their bodies release the GIL, and
(3) exchange data only through the task-parallel level.
"""

from __future__ import annotations

import time

from benchmarks.conftest import report
from repro.calls import Reduce
from repro.pcn.composition import par
from repro.spmd import collectives
from repro.status import Status


def sleeping_reducer(ctx, out):
    time.sleep(0.01)  # a GIL-releasing model step
    out[0] = collectives.allreduce(ctx.comm, 1.0, op="sum")


class TestFig34Concurrent:
    def test_concurrent_vs_sequential_calls(self, benchmark, rt8):
        ga, gb = rt8.split_processors(2)

        def concurrent():
            return par(
                lambda: rt8.call(
                    ga, sleeping_reducer, [Reduce("double", 1, "max")]
                ),
                lambda: rt8.call(
                    gb, sleeping_reducer, [Reduce("double", 1, "max")]
                ),
            )

        def sequential():
            return [
                rt8.call(ga, sleeping_reducer, [Reduce("double", 1, "max")]),
                rt8.call(gb, sleeping_reducer, [Reduce("double", 1, "max")]),
            ]

        t0 = time.perf_counter()
        seq_results = sequential()
        seq_time = time.perf_counter() - t0

        conc_results = benchmark.pedantic(concurrent, rounds=5, iterations=1)
        t0 = time.perf_counter()
        concurrent()
        conc_time = time.perf_counter() - t0

        report(
            "FIG-3.4 concurrent vs sequential distributed calls",
            [
                ("mode", "seconds"),
                ("sequential", f"{seq_time:.4f}"),
                ("concurrent", f"{conc_time:.4f}"),
            ],
        )
        # No interference: each call sees only its own 4 copies.
        for result in (*conc_results, *seq_results):
            assert result.status is Status.OK
            assert result.reductions[0] == 4.0
        # Overlap: the concurrent pair is faster than back-to-back calls.
        assert conc_time < seq_time

    def test_group_traffic_isolation(self, benchmark, rt8):
        """Message counters prove the two calls' traffic is disjoint: each
        call's collectives move the same number of messages whether or not
        the other call runs."""
        ga, gb = rt8.split_processors(2)

        def one_call(group):
            return rt8.call(
                group, sleeping_reducer, [Reduce("double", 1, "max")]
            )

        rt8.machine.reset_traffic()
        one_call(ga)
        alone = rt8.machine.traffic_snapshot()["messages"]

        rt8.machine.reset_traffic()
        benchmark.pedantic(
            lambda: par(lambda: one_call(ga), lambda: one_call(gb)),
            rounds=1,
        )
        together = rt8.machine.traffic_snapshot()["messages"]
        report(
            "FIG-3.4 message counts",
            [
                ("scenario", "messages"),
                ("one call alone", alone),
                ("two concurrent calls", together),
            ],
        )
        assert together == 2 * alone
