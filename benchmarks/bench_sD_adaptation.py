"""S-D — the Appendix D case study: adapting an existing data-parallel
library.

Claims reproduced: the unadapted (Cosmic-Environment-style) library works
only on its home nodes and intercepts foreign traffic; handing the *same
unmodified routines* the adapted environment makes them relocatable and
conflict-free — the thesis' "reuse with at most minor modifications"
claim, with the adaptation overhead quantified.
"""

from __future__ import annotations

import time

import numpy as np

from benchmarks.conftest import report
from repro.calls import Index, Reduce
from repro.core.runtime import IntegratedRuntime
from repro.pcn.composition import par
from repro.spmd.legacy import (
    AdaptedEnvironment,
    CosmicEnvironment,
    legacy_inner_product,
)
from repro.status import Status
from repro.vp.machine import Machine


class TestSDAdaptation:
    def test_relocatability_matrix(self, benchmark):
        """legacy vs adapted, home group vs displaced group."""
        rng = np.random.default_rng(0)
        x = rng.standard_normal(8)
        y = rng.standard_normal(8)
        expected = float(x @ y)

        def run_legacy(first_node):
            machine = Machine(8)
            envs = [
                CosmicEnvironment(machine, n, recv_timeout=0.3)
                for n in range(first_node, first_node + 4)
            ]

            def body(env):
                rank = env.my_node - first_node
                lo = rank * 2
                try:
                    return legacy_inner_product(
                        env, 4, x[lo : lo + 2], y[lo : lo + 2]
                    )
                except TimeoutError:
                    return None

            return par(*[lambda e=e: body(e) for e in envs])

        def run_adapted(first_node):
            rt = IntegratedRuntime(8)
            group = rt.processors(first_node, 4)

            def program(ctx, index, out):
                env = AdaptedEnvironment(ctx)
                lo = index * 2
                out[0] = legacy_inner_product(
                    env, 4, x[lo : lo + 2], y[lo : lo + 2]
                )

            result = rt.call(
                group, program, [Index(), Reduce("double", 1, "max")]
            )
            return result

        legacy_home = run_legacy(0)
        legacy_displaced = run_legacy(4)
        adapted_home = run_adapted(0)
        adapted_displaced = benchmark.pedantic(
            lambda: run_adapted(4), rounds=2, iterations=1
        )

        rows = [
            ("library", "nodes 0-3", "nodes 4-7"),
            (
                "legacy (CE-style)",
                "ok" if all(
                    r == round(expected, 6) or (r is not None and abs(
                        r - expected
                    ) < 1e-9)
                    for r in legacy_home
                ) else "WRONG",
                "deadlock" if all(r is None for r in legacy_displaced)
                else "WRONG",
            ),
            (
                "adapted (§D)",
                "ok" if adapted_home.status is Status.OK else "WRONG",
                "ok" if adapted_displaced.status is Status.OK else "WRONG",
            ),
        ]
        report("S-D library adaptation: relocatability", rows)

        assert all(abs(r - expected) < 1e-9 for r in legacy_home)
        assert all(r is None for r in legacy_displaced)  # the defect
        assert adapted_home.reductions[0] == adapted_displaced.reductions[0]
        assert abs(adapted_home.reductions[0] - expected) < 1e-9

    def test_adaptation_overhead(self, benchmark):
        """The typed/selective path costs little over the untyped one."""
        rng = np.random.default_rng(1)
        x = rng.standard_normal(32)
        y = rng.standard_normal(32)

        machine = Machine(4)
        legacy_envs = [CosmicEnvironment(machine, n) for n in range(4)]

        def legacy_round():
            return par(
                *[
                    (lambda e=e: legacy_inner_product(
                        e, 4,
                        x[e.my_node * 8 : e.my_node * 8 + 8],
                        y[e.my_node * 8 : e.my_node * 8 + 8],
                    ))
                    for e in legacy_envs
                ]
            )

        rt = IntegratedRuntime(4)

        def adapted_round():
            def program(ctx, index, out):
                env = AdaptedEnvironment(ctx)
                out[0] = legacy_inner_product(
                    env, 4, x[index * 8 : index * 8 + 8],
                    y[index * 8 : index * 8 + 8],
                )

            return rt.call(
                rt.all_processors(), program,
                [Index(), Reduce("double", 1, "max")],
            )

        iterations = 10
        t0 = time.perf_counter()
        for _ in range(iterations):
            legacy_round()
        legacy_time = (time.perf_counter() - t0) / iterations
        t0 = time.perf_counter()
        for _ in range(iterations):
            adapted_round()
        adapted_time = (time.perf_counter() - t0) / iterations
        report(
            "S-D adaptation overhead (inner product, P=4)",
            [
                ("path", "ms per call"),
                ("legacy untyped", f"{legacy_time * 1e3:.2f}"),
                ("adapted typed (incl. call machinery)",
                 f"{adapted_time * 1e3:.2f}"),
            ],
        )
        benchmark.pedantic(adapted_round, rounds=5, iterations=1)
        assert abs(adapted_round().reductions[0] - float(x @ y)) < 1e-9
