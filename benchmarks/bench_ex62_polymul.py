"""EX-6.2 — polynomial multiplication using a pipeline and FFT (§6.2,
Fig 6.1).

Claims reproduced: every product matches numpy convolution; the 3-stage
pipeline (with phase 1's two inverse FFTs themselves concurrent on two
groups) overlaps stages, beating the unpipelined formulation on simulated
makespan.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import report
from repro.apps import polymul
from repro.core.runtime import IntegratedRuntime


class TestEx62Polymul:
    def test_pipeline_stream_benchmark(self, benchmark):
        rt = IntegratedRuntime(8)
        multiplier = polymul.PolynomialMultiplier(rt, n=32)
        pairs = polymul.random_pairs(32, 6, seed=11)

        result = benchmark.pedantic(
            lambda: multiplier.multiply_stream(pairs), rounds=3, iterations=1
        )
        for out, pair in zip(result.outputs, pairs):
            assert np.allclose(
                out, polymul.polymul_reference(*pair), atol=1e-9
            )
        benchmark.extra_info["simulated_speedup"] = result.simulated_speedup()

        sequential = multiplier.multiply_stream_sequential(pairs)
        report(
            "EX-6.2 pipelined vs sequential polynomial multiplication",
            [
                ("mode", "wall s", "sim. makespan s", "overlap s"),
                (
                    "pipelined",
                    f"{result.wall_time:.3f}",
                    f"{result.simulated_pipelined_makespan():.3f}",
                    f"{result.overlap_intervals():.3f}",
                ),
                (
                    "sequential",
                    f"{sequential.wall_time:.3f}",
                    f"{sequential.simulated_sequential_makespan():.3f}",
                    f"{sequential.overlap_intervals():.3f}",
                ),
            ],
        )
        # shape: the pipeline overlaps; the unpipelined run never does.
        assert result.overlap_intervals() > 0.0
        assert sequential.overlap_intervals() == 0.0
        # Project the speedup from the *sequential* run's median service
        # times (unperturbed by concurrent GIL contention, robust to
        # single-interval spikes): pipelining those stages must win.
        assert sequential.steady_state_speedup() > 1.2
        multiplier.free()

    def test_problem_size_scaling(self, benchmark):
        rt = IntegratedRuntime(8)
        rows = [("degree n", "seconds per product")]
        import time

        for n in (16, 64, 256):
            multiplier = polymul.PolynomialMultiplier(rt, n=n)
            pair = polymul.random_pairs(n, 1, seed=n)[0]
            t0 = time.perf_counter()
            out = multiplier.multiply_one(*pair)
            elapsed = time.perf_counter() - t0
            rows.append((n, f"{elapsed:.4f}"))
            assert np.allclose(
                out, polymul.polymul_reference(*pair), atol=1e-8
            )
            multiplier.free()
        report("EX-6.2 product cost vs polynomial degree", rows)

        multiplier = polymul.PolynomialMultiplier(rt, n=64)
        pair = polymul.random_pairs(64, 1, seed=0)[0]
        benchmark(lambda: multiplier.multiply_one(*pair))
        multiplier.free()
