"""EX-6.1 — the inner-product example (§6.1).

Claims reproduced: the distributed call computes exactly the closed-form
inner product for any machine size, returning it through a reduction
variable; cost scales with vector length and call overhead dominates at
small sizes (the expected shape for a fine-grained distributed call).
"""

from __future__ import annotations

import time

import numpy as np

from benchmarks.conftest import report
from repro.apps import innerproduct
from repro.core.runtime import IntegratedRuntime


class TestEx61InnerProduct:
    def test_correct_across_machine_sizes(self, benchmark):
        rows = [("processors", "local m", "result", "expected")]
        for nodes in (1, 2, 4, 8):
            rt = IntegratedRuntime(nodes)
            local_m = 4
            result = innerproduct.run(rt, local_m=local_m)
            expected = innerproduct.expected_inner_product(nodes * local_m)
            rows.append((nodes, local_m, f"{result:.0f}", f"{expected:.0f}"))
            assert result == expected
        report("EX-6.1 inner product across machine sizes", rows)

        rt = IntegratedRuntime(8)
        benchmark(lambda: innerproduct.run(rt, local_m=4))

    def test_scaling_with_vector_length(self, benchmark):
        rt = IntegratedRuntime(8)
        rows = [("vector length", "seconds", "vs numpy")]
        for local_m in (64, 1024, 16384):
            m = 8 * local_m
            t0 = time.perf_counter()
            result = innerproduct.run(rt, local_m=local_m)
            elapsed = time.perf_counter() - t0
            v = np.arange(m, dtype=float) + 1.0
            t0 = time.perf_counter()
            direct = float(v @ v)
            numpy_time = time.perf_counter() - t0
            rows.append(
                (m, f"{elapsed:.4f}", f"{elapsed / max(numpy_time, 1e-9):.0f}x")
            )
            assert result == direct
        report("EX-6.1 inner-product scaling", rows)
        benchmark.pedantic(
            lambda: innerproduct.run(rt, local_m=1024), rounds=3, iterations=1
        )
