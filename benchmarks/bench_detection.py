"""Failure-detection latency and false-positive behavior
(docs/fault_model.md §9).

Claims reproduced:

* detection latency is governed by the heartbeat interval: a silent VP
  is declared dead within ``dead_after * interval`` plus one evaluation
  round of slack, so halving the interval halves the time a partition
  goes unnoticed (and doubles the background heartbeat traffic — the
  classic failure-detector trade-off);
* lossy evidence does not harden false verdicts: delay injection aimed
  at ``kind="heartbeat"`` traffic produces transient suspicion (flaps)
  at worst, never a dead verdict, as long as delays stay inside the
  dead window.
"""

from __future__ import annotations

import time

from benchmarks.conftest import report
from repro.faults import FaultPlan, FaultyTransport, PartitionCut, PartitionPlan
from repro.health import FailureDetector, HealthState
from repro.vp.machine import Machine

SUSPECT_AFTER = 2.0
DEAD_AFTER = 6.0


def _wait_until(predicate, timeout=30.0, interval=0.002):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


def _detect_once(interval: float) -> float:
    """Seconds from cutting VP 3 off to the detector's dead verdict."""
    machine = Machine(4)
    plan = PartitionPlan([PartitionCut("iso", (3,), (0, 1, 2))])
    plan.heal("iso")
    with FaultyTransport(machine, FaultPlan(seed=0), partitions=plan):
        detector = FailureDetector(
            machine,
            interval=interval,
            suspect_after=SUSPECT_AFTER,
            dead_after=DEAD_AFTER,
        ).install()
        try:
            assert _wait_until(
                lambda: detector.snapshot()["heartbeats_received"] > 8
            )
            plan.cut("iso")
            cut_at = time.monotonic()
            assert _wait_until(
                lambda: detector.state_of(3) is HealthState.DEAD
            )
            return time.monotonic() - cut_at
        finally:
            detector.close()


class TestDetectionLatency:
    def test_latency_tracks_heartbeat_interval(self, benchmark):
        intervals = (0.01, 0.02, 0.04)
        latencies = {i: _detect_once(i) for i in intervals}

        # The timed entry for bench_compare: one full detect cycle at
        # the middle interval.
        benchmark.pedantic(
            _detect_once, args=(0.02,), rounds=3, iterations=1
        )
        benchmark.extra_info["latencies_seconds"] = {
            str(i): round(lat, 4) for i, lat in latencies.items()
        }

        rows = [("interval s", "dead window s", "latency s", "rounds over")]
        for i in intervals:
            window = DEAD_AFTER * i
            rows.append(
                (
                    f"{i:.3f}",
                    f"{window:.3f}",
                    f"{latencies[i]:.3f}",
                    f"{(latencies[i] - window) / i:+.1f}",
                )
            )
        report("Detection latency vs heartbeat interval", rows)

        for i in intervals:
            window = DEAD_AFTER * i
            # Silence must actually accrue: the verdict can land at most
            # one pre-cut heartbeat early ...
            assert latencies[i] > window - 2 * i, (
                f"interval {i}: dead verdict after {latencies[i]:.3f}s, "
                f"impossibly early for a {window:.3f}s window"
            )
            # ... and scheduling slack on a loaded box stays bounded.
            assert latencies[i] < window + max(0.6, 20 * i), (
                f"interval {i}: dead verdict took {latencies[i]:.3f}s "
                f"against a {window:.3f}s window"
            )
        # The governing claim: a coarser interval detects more slowly.
        assert latencies[0.04] > latencies[0.01]


class TestFalsePositiveRate:
    def test_delay_injection_never_hardens_to_dead(self):
        """Heartbeat delays inside the dead window cause flaps at worst.

        The suspect window (2 intervals) is deliberately tight enough
        that injected delays *can* trip it — the claim under test is
        that suspicion stays reversible, not that it never fires.
        """
        interval = 0.02
        observation = 80 * interval
        rows = [("delay prob", "suspects", "flaps", "dead", "fp rate/s")]
        suspects_by_prob = {}
        for prob in (0.0, 0.3, 0.6):
            machine = Machine(4)
            plan = FaultPlan(
                seed=11,
                delay=prob,
                delay_seconds=3 * interval,
                kinds=("heartbeat",),
            )
            with FaultyTransport(machine, plan):
                detector = FailureDetector(
                    machine,
                    interval=interval,
                    suspect_after=SUSPECT_AFTER,
                    dead_after=DEAD_AFTER,
                ).install()
                try:
                    time.sleep(observation)
                    events = detector.events()
                finally:
                    detector.close()
            suspects = sum(
                1 for e in events if e.transition == "suspect"
            )
            flaps = sum(1 for e in events if e.transition == "alive")
            dead = sum(1 for e in events if e.transition == "dead")
            suspects_by_prob[prob] = suspects
            rows.append(
                (
                    f"{prob:.1f}",
                    suspects,
                    flaps,
                    dead,
                    f"{suspects / observation:.2f}",
                )
            )
            # Never a false dead verdict: every delayed heartbeat lands
            # well inside the dead window, so suspicion must always
            # flap back instead of hardening.
            assert dead == 0, (
                f"delay={prob}: {dead} false dead verdicts"
            )
            # Every suspicion flapped back, modulo at most one
            # still-in-flight suspect per VP when observation ended.
            assert suspects - flaps <= 4
        report(
            "False positives under heartbeat delay "
            f"({observation:.1f}s observation, 4 VPs)",
            rows,
        )
        # A fault-free fabric produces no suspicion at all.
        assert suspects_by_prob[0.0] == 0
