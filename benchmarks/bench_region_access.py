"""Region-granular vs per-element distributed-array access.

Claim quantified: a region read/write ships **one message per owning
processor**, while the per-element path through the array manager ships
one message per remotely-owned element — so region access wins by a
factor that grows linearly with elements-per-processor.  The exact routed
message counters (``traffic_snapshot()``, GIL-independent) are the
measurement; wall-clock is reported alongside.
"""

from __future__ import annotations

import time

import numpy as np

from benchmarks.conftest import report
from repro.perf import coalescing_disabled

N = 64  # elements; 8 per processor on rt8


def _messages_for(machine, body):
    machine.reset_traffic()
    body()
    return machine.traffic_snapshot()["messages"]


class TestRegionAccess:
    def test_region_vs_element_message_counts(self, benchmark, rt8):
        arr = rt8.array("double", (N,), distrib=[("block", 8)])
        arr.from_numpy(np.arange(float(N)))
        machine = rt8.machine
        owners = 8

        element_msgs = _messages_for(
            machine, lambda: [arr[i] for i in range(N)]
        )
        region_msgs = _messages_for(
            machine, lambda: arr.read_region([(0, N)])
        )
        # Pin the write-behind coalescer off: this experiment measures the
        # thesis' per-element baseline (bench_coalescing measures the
        # batched path).
        with coalescing_disabled(machine):
            write_element_msgs = _messages_for(
                machine,
                lambda: [arr.__setitem__(i, 1.0) for i in range(N)],
            )
        write_region_msgs = _messages_for(
            machine,
            lambda: arr.write_region([(0, N)], np.ones(N)),
        )

        report(
            f"region vs element access ({N} doubles on 8 processors)",
            [
                ("path", "messages"),
                ("read per element", element_msgs),
                ("read region", region_msgs),
                ("write per element", write_element_msgs),
                ("write region", write_region_msgs),
            ],
        )
        benchmark.extra_info.update(
            element_messages=element_msgs,
            region_messages=region_msgs,
        )

        # The acceptance criterion: at most one message per owner, and the
        # per-element path pays per remotely-owned element.
        assert region_msgs <= owners
        assert write_region_msgs <= owners
        assert element_msgs >= N - N // owners
        assert write_element_msgs >= N - N // owners
        assert region_msgs < element_msgs
        assert write_region_msgs < write_element_msgs

        benchmark(lambda: arr.read_region([(0, N)]))
        arr.free()

    def test_region_wall_clock_beats_element_loop(self, benchmark, rt8):
        arr = rt8.array("double", (N,), distrib=[("block", 8)])
        arr.from_numpy(np.arange(float(N)))

        t0 = time.perf_counter()
        elementwise = np.array([arr[i] for i in range(N)])
        element_seconds = time.perf_counter() - t0

        t0 = time.perf_counter()
        regionwise = arr.read_region([(0, N)])
        region_seconds = time.perf_counter() - t0

        assert np.array_equal(elementwise, regionwise)
        report(
            f"region vs element wall-clock ({N} doubles)",
            [
                ("path", "seconds"),
                ("per-element loop", f"{element_seconds:.4f}"),
                ("one region read", f"{region_seconds:.4f}"),
            ],
        )
        assert region_seconds < element_seconds

        benchmark(lambda: arr.read_region([(N // 4, 3 * N // 4)]))
        arr.free()
