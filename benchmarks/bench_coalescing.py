"""Write-behind coalescing: batched vs per-element write traffic.

Claim quantified (docs/performance.md): a 64-element write loop through
the write-behind coalescer ships **one fused message per dirty section**
instead of one per remotely-owned element — at least a 3x reduction in
routed messages and a 2x improvement in median wall-clock on rt8 — and
under replication each batch flush produces **one** fused replica update
per backup rather than one per element.  Message counts come from the
exact routed counters (GIL-independent); wall-clock is reported from
explicit ``perf_counter`` rounds.
"""

from __future__ import annotations

import statistics
import time

import numpy as np

from benchmarks.conftest import report
from repro.arrays import am_user
from repro.arrays.durability import REPLICA_UPDATE_KIND
from repro.core.darray import DistributedArray
from repro.perf import ARRAY_BATCH_KIND, coalescing_disabled, get_perf_layer
from repro.vp.fabric import TrafficMeter

N = 64  # elements; 8 per processor on rt8
OWNERS = 8


def _write_loop(arr, value=1.0):
    for i in range(N):
        arr[i] = value


def _flushed_write_loop(machine, arr, value=1.0):
    _write_loop(arr, value)
    am_user.flush_writes(machine)


def _messages_for(machine, body):
    machine.reset_traffic()
    body()
    return machine.traffic_snapshot()["messages"]


def _paired_medians(slow_body, fast_body, rounds=20):
    """Median seconds of each body plus the median per-round ratio.

    The bodies run back-to-back within every round, so machine-load drift
    hits both paths equally and the per-round ratio stays meaningful.
    """
    slow_body(), fast_body()  # warm-up: exclude first-touch allocation
    slow, fast, ratios = [], [], []
    for _ in range(rounds):
        t0 = time.perf_counter()
        slow_body()
        s = time.perf_counter() - t0
        t0 = time.perf_counter()
        fast_body()
        f = time.perf_counter() - t0
        slow.append(s)
        fast.append(f)
        ratios.append(s / f)
    return (
        statistics.median(slow),
        statistics.median(fast),
        statistics.median(ratios),
    )


class TestCoalescing:
    def test_message_reduction(self, benchmark, rt8):
        arr = rt8.array("double", (N,), distrib=[("block", OWNERS)])
        machine = rt8.machine

        with coalescing_disabled(machine):
            element_msgs = _messages_for(
                machine, lambda: _write_loop(arr)
            )
        coalesced_msgs = _messages_for(
            machine, lambda: _flushed_write_loop(machine, arr)
        )
        region_msgs = _messages_for(
            machine, lambda: arr.write_region([(0, N)], np.ones(N))
        )

        report(
            f"write paths ({N} doubles on {OWNERS} processors)",
            [
                ("path", "messages"),
                ("per-element (coalescing off)", element_msgs),
                ("coalesced element loop", coalesced_msgs),
                ("one region write", region_msgs),
            ],
        )
        benchmark.extra_info.update(
            element_messages=element_msgs,
            coalesced_messages=coalesced_msgs,
            region_messages=region_msgs,
            reduction_factor=round(element_msgs / coalesced_msgs, 2),
        )

        # Acceptance: >= 3x fewer messages; one batch per remotely-owned
        # dirty section; region write remains the floor.
        assert element_msgs >= N - N // OWNERS
        assert coalesced_msgs == OWNERS - 1
        assert element_msgs >= 3 * coalesced_msgs
        assert region_msgs <= coalesced_msgs
        assert arr.to_numpy().tolist() == [1.0] * N

        benchmark(lambda: _flushed_write_loop(machine, arr))
        arr.free()

    def test_wall_clock_improvement(self, benchmark, rt8):
        arr = rt8.array("double", (N,), distrib=[("block", OWNERS)])
        machine = rt8.machine

        def element_loop():
            with coalescing_disabled(machine):
                _write_loop(arr)

        element_seconds, coalesced_seconds, speedup = _paired_medians(
            element_loop, lambda: _flushed_write_loop(machine, arr)
        )
        report(
            f"write-loop wall-clock ({N} doubles, median of 20 rounds)",
            [
                ("path", "seconds"),
                ("per-element (coalescing off)", f"{element_seconds:.5f}"),
                ("coalesced element loop", f"{coalesced_seconds:.5f}"),
                ("speedup", f"{speedup:.1f}x"),
            ],
        )
        benchmark.extra_info.update(
            element_median_seconds=element_seconds,
            coalesced_median_seconds=coalesced_seconds,
            speedup=round(speedup, 2),
        )
        # Acceptance: median latency at least halved (paired per-round
        # ratio, immune to load drift between the two measurements).
        assert speedup >= 2.0

        benchmark(lambda: _flushed_write_loop(machine, arr))
        arr.free()

    def test_replicated_flush_fuses_replica_updates(self, benchmark, rt8):
        machine = rt8.machine
        arr = DistributedArray.create(
            machine, "double", (N,),
            list(range(OWNERS)), [("block", OWNERS)], replication=1,
        )
        meter = TrafficMeter()
        machine.transport_stack.push(meter)
        try:
            _flushed_write_loop(machine, arr)
            counts = meter.snapshot()["by_kind"]
            batch_msgs = counts.get(ARRAY_BATCH_KIND, (0, 0))[0]
            replica_msgs = counts.get(REPLICA_UPDATE_KIND, (0, 0))[0]
        finally:
            machine.transport_stack.remove(meter)

        report(
            f"replicated (k=1) coalesced write loop ({N} doubles)",
            [
                ("kind", "messages"),
                ("array_batch", batch_msgs),
                ("replica_update", replica_msgs),
            ],
        )
        benchmark.extra_info.update(
            batch_messages=batch_msgs,
            replica_messages=replica_msgs,
        )
        # One fused replica update per section flush (k=1 backup each),
        # never one per element; the local section's batch applies inline
        # so batch messages stay one per *remote* section.
        assert replica_msgs == OWNERS
        assert batch_msgs == OWNERS - 1

        flushes_before = get_perf_layer(machine).coalescer.flushes
        benchmark(lambda: _flushed_write_loop(machine, arr))
        assert get_perf_layer(machine).coalescer.flushes > flushes_before
        arr.free()
