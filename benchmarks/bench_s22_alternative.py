"""S-2.2 — the alternative integration model: task-parallel subprograms
called over a distributed data structure.

Claims reproduced: calling a TP program on a distributed array runs one
concurrent instance per element (instances can rendezvous), each instance
may itself consist of multiple processes, and the call keeps the
sequential-call equivalence (result independent of scheduling).
"""

from __future__ import annotations

import threading

import numpy as np

from benchmarks.conftest import report
from repro.core.alternative import call_task_parallel_on
from repro.core.runtime import IntegratedRuntime
from repro.pcn.composition import par


class TestS22Alternative:
    def test_per_element_concurrency(self, benchmark):
        rt = IntegratedRuntime(4)
        arr = rt.array("double", (8,), distrib=["block"])

        # All 8 instances rendezvous: only possible if truly concurrent.
        barrier = threading.Barrier(8, timeout=10)

        def program(idx, value):
            barrier.wait()
            return float(idx[0] ** 2)

        count = call_task_parallel_on(arr, program)
        assert count == 8
        assert list(arr.to_numpy()) == [float(i * i) for i in range(8)]

        def plain_map():
            barrier.reset()
            return call_task_parallel_on(arr, program)

        benchmark.pedantic(plain_map, rounds=3, iterations=1)
        arr.free()

    def test_instances_with_inner_processes(self, benchmark):
        """Each TP instance spawns its own parallel composition (§2.2:
        'each copy of the task-parallel program can consist of multiple
        processes')."""
        rt = IntegratedRuntime(4)
        arr = rt.array("double", (8,), distrib=["block"])

        def program(idx, value):
            parts = par(lambda: idx[0], lambda: 2 * idx[0], lambda: 1)
            return float(sum(parts))

        benchmark.pedantic(
            lambda: call_task_parallel_on(arr, program), rounds=3,
            iterations=1,
        )
        assert list(arr.to_numpy()) == [3.0 * i + 1 for i in range(8)]
        arr.free()

    def test_scope_granularity_costs(self, benchmark):
        """Element scope spawns one process per element; section scope one
        per processor — the batching trade-off, quantified."""
        import time

        rt = IntegratedRuntime(4)
        rows = [("scope", "instances", "seconds (n=64)")]
        arr = rt.array("double", (64,), distrib=["block"])

        t0 = time.perf_counter()
        n_elem = call_task_parallel_on(arr, lambda i, v: v + 1)
        elem_time = time.perf_counter() - t0
        rows.append(("element", n_elem, f"{elem_time:.4f}"))

        t0 = time.perf_counter()
        n_sect = call_task_parallel_on(
            arr, lambda s, data: data + 1, scope="section"
        )
        sect_time = time.perf_counter() - t0
        rows.append(("section", n_sect, f"{sect_time:.4f}"))
        report("S-2.2 per-element vs per-section instances", rows)

        assert n_elem == 64 and n_sect == 4
        assert np.all(arr.to_numpy() == 2.0)
        benchmark.pedantic(
            lambda: call_task_parallel_on(
                arr, lambda s, d: d, scope="section"
            ),
            rounds=3,
            iterations=1,
        )
        arr.free()
