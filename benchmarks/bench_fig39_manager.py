"""FIG-3.9 — runtime support for distributed arrays (the array manager).

Claims reproduced: every element operation is a server request routed
through the local array-manager process to the owner (two requests per
remote element access), which is why the model passes *local sections* to
data-parallel programs rather than going through the manager per element.
The benchmark quantifies that gap: per-element global access vs bulk
section access vs in-call direct section access.
"""

from __future__ import annotations

import time

import numpy as np

from benchmarks.conftest import report


N = 32


class TestFig39Manager:
    def test_request_counters_per_element_op(self, benchmark, rt8):
        arr = rt8.array("double", (N,), distrib=[("block", 8)])
        counts = rt8.array_manager.request_counts
        before = (
            counts.get("read_element", 0),
            counts.get("read_element_local", 0),
        )
        arr[5]
        after = (
            counts.get("read_element", 0),
            counts.get("read_element_local", 0),
        )
        # one global request + one owner-local request per element read
        assert after[0] - before[0] == 1
        assert after[1] - before[1] == 1
        benchmark(lambda: arr[5])
        arr.free()

    def test_element_vs_bulk_vs_incall(self, benchmark, rt8):
        arr = rt8.array("double", (N, N), distrib=(("block", 4), ("block", 2)))
        arr.from_numpy(np.ones((N, N)))

        # (a) per-element global reads through the manager
        t0 = time.perf_counter()
        total_elementwise = sum(
            arr[i, j] for i in range(N) for j in range(N)
        )
        elementwise = time.perf_counter() - t0

        # (b) bulk section gather, then local sum
        t0 = time.perf_counter()
        total_bulk = float(arr.to_numpy().sum())
        bulk = time.perf_counter() - t0

        # (c) direct local-section access inside a distributed call — the
        # paper's intended data path (find_local + raw storage).
        from repro.spmd import collectives

        def summer(ctx, sec, out):
            out[0] = collectives.allreduce(
                ctx.comm, float(sec.interior().sum()), op="sum"
            )

        from repro.calls import Reduce

        t0 = time.perf_counter()
        result = rt8.call(
            rt8.all_processors(), summer, [arr, Reduce("double", 1, "max")]
        )
        incall = time.perf_counter() - t0

        assert total_elementwise == total_bulk == result.reductions[0] == N * N
        report(
            "FIG-3.9 element vs bulk vs in-call access (32x32 sum)",
            [
                ("path", "seconds"),
                ("per-element via manager", f"{elementwise:.4f}"),
                ("bulk section transfer", f"{bulk:.4f}"),
                ("local sections in distributed call", f"{incall:.4f}"),
            ],
        )
        # the paper's rationale: per-element global access is the slowest
        # path by a wide margin.
        assert elementwise > bulk
        assert elementwise > incall

        benchmark(lambda: arr[7, 7])
        arr.free()

    def test_write_throughput(self, benchmark, rt8):
        arr = rt8.array("double", (N,), distrib=[("block", 8)])
        state = {"i": 0}

        def write_next():
            state["i"] = (state["i"] + 1) % N
            arr[state["i"]] = 1.0

        benchmark(write_next)
        arr.free()
