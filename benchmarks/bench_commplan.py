"""Communication planning: fused deep-halo exchange vs per-sweep strips.

Claim quantified (docs/performance.md, "Communication planning"): on a
2x2 ``(block, block)`` grid the planned stencil path — one fused
``halo_bulk`` message per neighbour per exchange *phase*, with depth-4
borders amortising one phase over four sweeps — ships **at least 3x
fewer messages per sweep** than the unplanned per-sweep exchange, and
cuts the fig37-style bordered sweep's median wall-clock by **at least
1.3x**.  The climate interface exchange rides the same fusion: one
targeted region write per owning processor instead of one message per
interface element.

Message counts come from the exact routed counters (GIL-independent);
wall-clock from explicit ``perf_counter`` rounds, planned and unplanned
interleaved so load drift cancels.
"""

from __future__ import annotations

import statistics
import time
from contextlib import contextmanager

import numpy as np

from benchmarks.conftest import report
from repro.calls.params import Local
from repro.perf import coalescing_disabled, get_perf_layer
from repro.spmd.stencil import heat_steps

N = 16            # global grid: N x N doubles
GRID = (2, 2)     # the fig37 decomposition under test
DEPTH = 4         # planned border depth: one exchange per 4 sweeps
SWEEPS = 12       # per timed call: 3 planned phases


@contextmanager
def planning_disabled(machine):
    registry = get_perf_layer(machine).plans
    registry.enabled = False
    try:
        yield
    finally:
        registry.enabled = True


def make_field(rt, borders):
    procs = rt.processors(0, GRID[0] * GRID[1])
    arr = rt.array(
        "double", (N, N), processors=procs,
        distrib=[("block", GRID[0]), ("block", GRID[1])],
        borders=[borders] * 4,
    )
    rng = np.random.default_rng(37)
    arr.from_numpy(rng.uniform(0, 100, (N, N)))
    return arr, list(procs)


def sweep_call(rt, arr, procs, sweeps):
    result = rt.call(
        procs, heat_steps, [GRID[0], GRID[1], sweeps, Local(arr.array_id)]
    )
    assert result.status.name == "OK"


def messages_for(machine, body):
    machine.reset_traffic()
    body()
    return machine.traffic_snapshot()["messages"]


def marginal_messages_per_sweep(rt, arr, procs, planned):
    """Messages attributable to one extra sweep: the count difference
    between a 1-sweep and a (1+8)-sweep call over 8, which cancels the
    per-call scaffolding (spawn/collect/allreduce) both paths share."""
    machine = rt.machine

    def run(sweeps):
        if planned:
            return messages_for(
                machine, lambda: sweep_call(rt, arr, procs, sweeps)
            )
        with planning_disabled(machine):
            return messages_for(
                machine, lambda: sweep_call(rt, arr, procs, sweeps)
            )

    run(1)  # warm the plan cache / code paths
    short = run(1)
    long = run(1 + 8)
    return (long - short) / 8.0


class TestCommPlanBench:
    def test_message_fusion_per_sweep(self, benchmark, rt8):
        planned_arr, procs = make_field(rt8, borders=DEPTH)
        unplanned_arr, _ = make_field(rt8, borders=1)

        planned_rate = marginal_messages_per_sweep(
            rt8, planned_arr, procs, planned=True
        )
        unplanned_rate = marginal_messages_per_sweep(
            rt8, unplanned_arr, procs, planned=False
        )

        report(
            f"halo messages per sweep ({N}x{N} on {GRID[0]}x{GRID[1]})",
            [
                ("path", "msgs/sweep"),
                (f"planned (depth-{DEPTH} borders)", planned_rate),
                ("unplanned (per-sweep strips)", unplanned_rate),
            ],
        )
        benchmark.extra_info.update(
            planned_messages_per_sweep=planned_rate,
            unplanned_messages_per_sweep=unplanned_rate,
            fusion_factor=round(unplanned_rate / planned_rate, 2),
        )

        # Acceptance: >= 3x fewer messages per sweep.  With depth-4
        # borders one 8-strip phase covers 4 sweeps (2 msgs/sweep) vs 8
        # point-to-point strips every sweep unplanned.
        assert unplanned_rate >= 3 * planned_rate

        benchmark(lambda: sweep_call(rt8, planned_arr, procs, SWEEPS))
        planned_arr.free()
        unplanned_arr.free()

    def test_sweep_latency(self, benchmark, rt8):
        planned_arr, procs = make_field(rt8, borders=DEPTH)
        unplanned_arr, _ = make_field(rt8, borders=1)
        machine = rt8.machine

        def planned_body():
            sweep_call(rt8, planned_arr, procs, SWEEPS)

        def unplanned_body():
            with planning_disabled(machine):
                sweep_call(rt8, unplanned_arr, procs, SWEEPS)

        planned_body(), unplanned_body()  # warm-up
        planned_t, unplanned_t, ratios = [], [], []
        for _ in range(15):
            t0 = time.perf_counter()
            unplanned_body()
            u = time.perf_counter() - t0
            t0 = time.perf_counter()
            planned_body()
            p = time.perf_counter() - t0
            unplanned_t.append(u)
            planned_t.append(p)
            ratios.append(u / p)
        p_med = statistics.median(planned_t)
        u_med = statistics.median(unplanned_t)
        speedup = statistics.median(ratios)

        report(
            f"{SWEEPS}-sweep call wall-clock (median of 15 rounds)",
            [
                ("path", "seconds"),
                (f"planned (depth-{DEPTH})", f"{p_med:.5f}"),
                ("unplanned", f"{u_med:.5f}"),
                ("median speedup", f"{speedup:.2f}x"),
            ],
        )
        benchmark.extra_info.update(
            planned_median_seconds=p_med,
            unplanned_median_seconds=u_med,
            median_speedup=round(speedup, 2),
        )

        # Acceptance: the planned critical path (fewer messages, interior
        # compute overlapped with in-flight strips, one exchange per 4
        # sweeps) is at least 1.3x faster at the median.
        assert speedup >= 1.3

        benchmark(planned_body)
        planned_arr.free()
        unplanned_arr.free()

    def test_climate_interface_exchange_messages(self, benchmark, rt8):
        """The TP-level interface exchange: targeted per-owner region
        writes vs a per-element write loop for the same cells."""
        from repro.apps.climate import ClimateSimulation, _exchange_interface

        sim = ClimateSimulation(rt8, shape=(8, N))
        machine = rt8.machine
        width = N

        exchange_msgs = messages_for(
            machine,
            lambda: _exchange_interface(
                rt8, sim.ocean, sim.atmosphere, sim.coupling
            ),
        )

        last_row = sim.atmosphere.array.dims[0] - 1

        def element_writes():
            with coalescing_disabled(machine):
                for c in range(width):
                    sim.ocean.array[0, c] = 1.0
                    sim.atmosphere.array[last_row, c] = 1.0

        element_msgs = messages_for(machine, element_writes)

        report(
            f"climate interface exchange ({width}-wide interface)",
            [
                ("path", "messages"),
                ("fused exchange (reads + targeted writes)", exchange_msgs),
                ("per-element writes (writes alone)", element_msgs),
            ],
        )
        benchmark.extra_info.update(
            exchange_messages=exchange_msgs,
            element_write_messages=element_msgs,
        )

        # The whole exchange — two row reads *and* two fused writes —
        # costs at least 3x fewer messages than element writes alone.
        assert element_msgs >= 3 * exchange_msgs

        benchmark(
            lambda: _exchange_interface(
                rt8, sim.ocean, sim.atmosphere, sim.coupling
            )
        )
        sim.free()
