"""FIG-3.5-3.8 — partitioning, decomposing, and distributing arrays
(§3.2.1.1-§3.2.1.4).

Claims reproduced: the decomposition specifications produce exactly the
grids and local-section sizes of the thesis' worked examples (Fig 3.6),
the index maps are bijective, and row- vs column-major grid indexing
changes element placement exactly as Fig 3.8 shows.  The benchmarked
quantity is the global->local index translation rate — the hot path of
every element operation.
"""

from __future__ import annotations

import itertools

from benchmarks.conftest import report
from repro.arrays.decomposition import compute_grid, local_dims_for
from repro.arrays.layout import ArrayLayout


class TestFig36WorkedExamples:
    def test_decomposition_table(self, benchmark):
        """Regenerate the Fig 3.6 table for a 400x200 array on 16
        processors."""
        cases = [
            (("block", "block"), (4, 4), (100, 50)),
            ((("block", 2), ("block", 8)), (2, 8), (200, 25)),
            (("block", "*"), (16, 1), (25, 200)),
        ]
        rows = [("decomposition", "grid", "local sections")]
        for spec, expect_grid, expect_local in cases:
            grid = compute_grid((400, 200), 16, spec)
            local = local_dims_for((400, 200), grid)
            rows.append((spec, grid, local))
            assert grid == expect_grid
            assert local == expect_local
        report("FIG-3.6 decompositions of a 400x200 array on 16 procs", rows)
        benchmark(lambda: compute_grid((400, 200), 16, ("block", "block")))


class TestFig35IndexTranslation:
    def test_translation_rate(self, benchmark):
        """The Fig 3.5 mapping at full speed: global -> (section, local)
        -> storage offset for every element of an 8x8 array."""
        layout = ArrayLayout((8, 8), (4, 2), (0,) * 4, "row", "row")

        def translate_all():
            total = 0
            for idx in itertools.product(range(8), range(8)):
                section, local = layout.locate(idx)
                total += layout.storage_offset(local) + section
            return total

        total = benchmark(translate_all)
        assert total > 0

    def test_bijectivity_full_sweep(self, benchmark):
        layout = ArrayLayout((16, 16), (4, 4), (1, 1, 1, 1), "row", "row")

        def sweep():
            seen = set()
            for idx in itertools.product(range(16), range(16)):
                seen.add(layout.locate(idx))
            return seen

        seen = benchmark(sweep)
        assert len(seen) == 256

    def test_fig38_placement_difference(self, benchmark):
        """Row- vs column-major grid indexing sends the same element to
        different processors (Fig 3.8)."""
        procs = (0, 2, 4, 6)
        rows = [("indexing", "element (0,2) lands on processor")]
        landed = {}
        for indexing in ("row", "column"):
            layout = ArrayLayout((4, 4), (2, 2), (0,) * 4, indexing, indexing)
            section = layout.section_index(layout.owner_coords((0, 2)))
            landed[indexing] = procs[section]
            rows.append((indexing, procs[section]))
        report("FIG-3.8 row- vs column-major placement", rows)
        assert landed == {"row": 2, "column": 4}
        layout = ArrayLayout((4, 4), (2, 2), (0,) * 4, "row", "row")
        benchmark(lambda: layout.locate((3, 3)))
