"""Fault-injection overhead and retry convergence (docs/fault_model.md).

Claims reproduced:

* an installed :class:`FaultyTransport` with a no-fault plan adds only
  constant per-message bookkeeping (ordinal counters + one seeded RNG
  construction) to ``Machine.route`` — the fault subsystem is pay-as-you-go
  enough to leave installed in tests;
* a supervised idempotent distributed call converges to ``Status.OK``
  under seeded message drop, with attempt counts that are a deterministic
  function of the plan seed (the §4.1.2 Status protocol plus re-execution
  recovers what the transport loses).
"""

from __future__ import annotations

import time

from benchmarks.conftest import report
from repro.arrays import am_util
from repro.calls import Index, Reduce
from repro.faults import FaultPlan, FaultyTransport, RetryPolicy, supervised_call
from repro.status import Status
from repro.vp.machine import Machine
from repro.vp.message import MessageType


def _per_message_cost(machine: Machine, messages: int = 2000) -> float:
    """Microseconds per routed+received message on channel 0 -> 1."""
    box = machine.processor(1).mailbox
    t0 = time.perf_counter()
    for i in range(messages):
        machine.send(0, 1, i, mtype=MessageType.DATA_PARALLEL, tag="bench")
        box.recv(mtype=MessageType.DATA_PARALLEL, tag="bench")
    return (time.perf_counter() - t0) / messages * 1e6


def ring_sum(ctx, index, out):
    right = (ctx.index + 1) % ctx.num_procs
    left = (ctx.index - 1) % ctx.num_procs
    total = float(ctx.index)
    value = float(ctx.index)
    for _ in range(ctx.num_procs - 1):
        ctx.comm.send(right, value, tag="ring")
        value = ctx.comm.recv(source_rank=left, tag="ring")
        total += value
    out[0] = total


class TestFaultOverhead:
    def test_noop_transport_overhead(self, benchmark):
        """Per-message cost with the fault layer absent vs installed with a
        plan that never fires."""
        bare = Machine(2)
        bare_cost = _per_message_cost(bare)

        injected = Machine(2)
        transport = FaultyTransport(injected, FaultPlan(seed=0))
        transport.install()
        injected_cost = _per_message_cost(injected)

        factor = injected_cost / bare_cost
        report(
            "Fault-transport overhead, 2000-message 0->1 round trips",
            [
                ("configuration", "us/message"),
                ("bare Machine.route", f"{bare_cost:.1f}"),
                ("FaultyTransport, no-fault plan", f"{injected_cost:.1f}"),
                ("overhead factor", f"{factor:.2f}x"),
            ],
        )
        # Constant bookkeeping only: every message was delivered, none
        # perturbed, and the slowdown stays within an order of magnitude.
        assert transport.stats.routed == 2000
        assert transport.stats.delivered == 2000
        assert transport.stats.dropped == 0
        assert factor < 25.0

        def injected_roundtrip():
            injected.send(
                0, 1, "x", mtype=MessageType.DATA_PARALLEL, tag="bench"
            )
            return injected.processor(1).mailbox.recv(
                mtype=MessageType.DATA_PARALLEL, tag="bench"
            )

        benchmark(injected_roundtrip)

    def test_retry_convergence_under_drop(self, benchmark):
        """Supervised ring-reduction under increasing seeded drop rates:
        the call keeps returning OK; only the attempt count grows."""
        procs = am_util.node_array(0, 1, 4)
        policy = RetryPolicy(max_attempts=6, base_delay=0.001, seed=42)
        rows = [("drop rate", "attempts", "messages dropped", "status")]

        def converge(drop: float):
            machine = Machine(4, default_recv_timeout=0.4)
            am_util.load_all(machine)
            plan = FaultPlan(
                seed=15, drop=drop, mtypes=(MessageType.DATA_PARALLEL,)
            )
            with FaultyTransport(machine, plan) as ft:
                result = supervised_call(
                    machine,
                    procs,
                    ring_sum,
                    [Index(), Reduce("double", 1, "max")],
                    policy,
                    timeout=5.0,
                )
            return result, ft.stats.dropped

        outcomes = []
        for drop in (0.0, 0.05, 0.10):
            result, dropped = converge(drop)
            outcomes.append((drop, result, dropped))
            rows.append(
                (
                    f"{drop:.0%}",
                    len(result.attempts),
                    dropped,
                    result.status.name,
                )
            )
        report("Retry convergence under seeded DP message drop", rows)

        for drop, result, dropped in outcomes:
            assert result.status is Status.OK
            assert result.reductions[0] == 6.0
        clean = outcomes[0]
        assert len(clean[1].attempts) == 1 and clean[2] == 0

        benchmark.pedantic(
            lambda: converge(0.10), rounds=3, warmup_rounds=0
        )
