"""S-2.3.2 — the signal-processing workloads motivating the pipelined
problem class (convolution, correlation, filtering).

Claims reproduced: the same iterated-Fourier-transform pipeline serves all
three §2.3.2 operations, every output matches an independent serial
reference, and the pipeline overlaps across a stream of data sets.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import report
from repro.apps.signalproc import SpectralProcessor
from repro.core.runtime import IntegratedRuntime
from repro.spmd.signal import (
    circular_convolve_reference,
    lowpass_reference,
)


class TestS232Signal:
    def test_all_three_operations_correct(self, benchmark):
        rt = IntegratedRuntime(8)
        n = 32
        rng = np.random.default_rng(5)
        x = rng.uniform(-1, 1, n)
        y = rng.uniform(-1, 1, n)
        rows = [("operation", "max error vs reference")]

        conv = SpectralProcessor(rt, n, kind="convolve")
        err_conv = float(
            np.max(np.abs(
                conv.process_one(x, y) - circular_convolve_reference(x, y)
            ))
        )
        conv.free()
        rows.append(("convolve", f"{err_conv:.2e}"))

        corr = SpectralProcessor(rt, n, kind="correlate")
        shifted = np.roll(x, 7)
        lags = corr.process_one(x, shifted)
        corr.free()
        rows.append(("correlate (shift found)", int(np.argmax(lags))))

        lp = SpectralProcessor(rt, n, kind="lowpass", cutoff=0.25)
        err_lp = float(
            np.max(np.abs(lp.process_one(x) - lowpass_reference(x, 0.25)))
        )
        rows.append(("lowpass", f"{err_lp:.2e}"))
        report("S-2.3.2 signal operations vs serial references", rows)

        assert err_conv < 1e-9
        assert int(np.argmax(lags)) == 7
        assert err_lp < 1e-9

        result = benchmark.pedantic(
            lambda: lp.process_one(x), rounds=3, iterations=1
        )
        assert result.shape == (n,)
        lp.free()

    def test_streamed_filtering_overlaps(self, benchmark):
        rt = IntegratedRuntime(8)
        n = 32
        rng = np.random.default_rng(6)
        signals = [rng.uniform(-1, 1, n) for _ in range(6)]
        lp = SpectralProcessor(rt, n, kind="lowpass", cutoff=0.5)
        result = benchmark.pedantic(
            lambda: lp.process_stream(signals), rounds=2, iterations=1
        )
        for out, x in zip(result.outputs, signals):
            assert np.allclose(out, lowpass_reference(x, 0.5), atol=1e-9)
        assert result.overlap_intervals() > 0.0
        lp.free()
