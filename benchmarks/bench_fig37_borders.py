"""FIG-3.7 — local-section borders and verify_array (§3.2.1.3, §4.2.7).

Claims reproduced: (1) matching borders verify for free (no reallocation);
(2) changing borders is "an expensive operation" — reallocate-and-copy of
every local section, with cost scaling with the array size; (3) interior
data survives the migration bit-exactly.
"""

from __future__ import annotations

import time

import numpy as np

from benchmarks.conftest import report
from repro.core.runtime import IntegratedRuntime


def make_array(rt, n):
    arr = rt.array(
        "double", (n, n), distrib=(("block", 4), ("block", 2)),
        borders=[1, 1, 1, 1],
    )
    arr.from_numpy(np.arange(n * n, dtype=float).reshape(n, n))
    return arr


class TestFig37Borders:
    def test_matching_verify_is_cheap(self, benchmark, rt8):
        arr = make_array(rt8, 32)
        copies_before = rt8.array_manager.request_counts.get("copy_local", 0)
        benchmark(lambda: arr.verify_borders([1, 1, 1, 1]))
        assert rt8.array_manager.request_counts.get("copy_local", 0) == (
            copies_before
        )
        arr.free()

    def test_mismatch_verify_reallocates_and_scales(self, benchmark):
        rt = IntegratedRuntime(8)
        rows = [("array", "seconds per border migration")]
        times = {}
        for n in (64, 512, 2048):
            arr = make_array(rt, n)
            borders = ([1, 1, 1, 1], [2, 2, 2, 2])
            start = time.perf_counter()
            flips = 4
            for k in range(flips):
                arr.verify_borders(borders[(k + 1) % 2])
            times[n] = (time.perf_counter() - start) / flips
            rows.append((f"{n}x{n}", f"{times[n]:.5f}"))
            arr.free()
        report("FIG-3.7 border-migration cost vs array size", rows)
        # cost grows with the data volume once the copies dominate the
        # fixed per-request overhead (2048^2 doubles = 32 MiB to move)
        assert times[2048] > times[64]

        arr = make_array(rt, 64)
        state = {"k": 0}

        def flip():
            state["k"] += 1
            arr.verify_borders([1, 1, 1, 1] if state["k"] % 2 else [2, 2, 2, 2])

        benchmark(flip)
        arr.free()

    def test_border_depth_buys_fewer_messages_per_sweep(self, benchmark, rt8):
        """Deep borders are the §3.2.1.3 buffer space the planned stencil
        path amortises: one fused exchange phase per ``depth`` sweeps.
        Reports messages-per-sweep alongside per-sweep latency for each
        border depth (``verify_borders`` migrates the same array between
        depths)."""
        import statistics
        import time as _time

        from repro.calls import Local
        from repro.spmd.stencil import heat_steps

        arr = make_array(rt8, 32)
        procs = list(arr.processors)
        machine = rt8.machine
        rows = [("border depth", "msgs/sweep", "seconds/sweep")]
        stats = {}
        for depth in (1, 2, 4):
            arr.verify_borders([depth] * 4)

            def msgs(sweeps):
                machine.reset_traffic()
                rt8.call(
                    procs, heat_steps, [4, 2, sweeps, Local(arr.array_id)]
                )
                return machine.traffic_snapshot()["messages"]

            msgs(1)  # warm the plan cache for this depth
            per_sweep = (msgs(1 + 8) - msgs(1)) / 8.0
            laps = []
            for _ in range(5):
                t0 = _time.perf_counter()
                rt8.call(procs, heat_steps, [4, 2, 8, Local(arr.array_id)])
                laps.append((_time.perf_counter() - t0) / 8)
            latency = statistics.median(laps)
            stats[depth] = (per_sweep, latency)
            rows.append((depth, per_sweep, f"{latency:.5f}"))
        report("FIG-3.7 borders as exchange buffers (32x32 on 4x2)", rows)
        benchmark.extra_info.update(
            msgs_per_sweep={str(d): s[0] for d, s in stats.items()},
            seconds_per_sweep={str(d): s[1] for d, s in stats.items()},
        )
        # One phase per `depth` sweeps: messages/sweep shrink as borders
        # deepen, by the full factor between depth 1 and depth 4.
        assert stats[2][0] < stats[1][0]
        assert stats[4][0] <= stats[1][0] / 3
        benchmark(
            lambda: rt8.call(
                procs, heat_steps, [4, 2, 8, Local(arr.array_id)]
            )
        )
        arr.free()

    def test_interior_survives_migrations(self, benchmark, rt8):
        arr = make_array(rt8, 16)
        original = arr.to_numpy()

        def migrate_roundtrip():
            arr.verify_borders([3, 3, 2, 2])
            arr.verify_borders([1, 1, 1, 1])
            return arr.to_numpy()

        final = benchmark.pedantic(migrate_roundtrip, rounds=3, iterations=1)
        assert np.array_equal(final, original)
        arr.free()
