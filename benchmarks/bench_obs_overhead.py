"""OBS-1 — observation-off overhead of the telemetry layer.

The acceptance bar for the observability subsystem: with no observer
installed, every instrumentation site must collapse to a single attribute
probe (``machine._observer`` is None -> shared no-op span handle).  This
benchmark measures the FIG-3.9 manager path — the hottest instrumented
path, an element read crossing ``am:read_element`` + ``am:read_element_local``
spans plus mailbox hooks — in three configurations:

* ``off``       — instrumented code, observer not installed (the default
  every other benchmark and test runs under);
* ``on``        — full observation (spans + metrics + message events);
* ``probe``     — the bare no-op probe in isolation, to bound the per-site
  cost directly.

The shape assertion: the measured per-site no-op cost times the number of
probes on the element-read path must stay under 5% of the off-path
per-operation time.  (Comparing against pre-instrumentation code at
runtime is impossible — the probe-cost bound is the honest equivalent.)
"""

from __future__ import annotations

import time

from benchmarks.conftest import report
from repro.obs.spans import span as obs_span

N = 32

# Span probes crossed by one arr[i] element read with observation off:
# two wrapped handlers (am:read_element, am:read_element_local), counted
# double to also cover the mailbox deliver/recv hook checks on the two
# server-request hops — each of those is a bare attribute test, several
# times cheaper than the full no-op span probe measured below.
_PROBES_PER_ELEMENT_READ = 4


class TestObsOverhead:
    def test_off_path_overhead_under_5_percent(self, rt8):
        arr = rt8.array("double", (N,), distrib=[("block", 8)])
        machine = rt8.machine
        assert machine.observer is None

        reads = 300
        t0 = time.perf_counter()
        for _ in range(reads):
            arr[5]
        per_read_off = (time.perf_counter() - t0) / reads

        # Bare probe cost: what each instrumentation site pays when off.
        probes = 100_000
        t0 = time.perf_counter()
        for _ in range(probes):
            with obs_span(machine, "noop"):
                pass
        per_probe = (time.perf_counter() - t0) / probes

        overhead_fraction = (
            _PROBES_PER_ELEMENT_READ * per_probe / per_read_off
        )

        # And the on-path ratio, for the record (not asserted: full
        # recording is allowed to cost what it costs).
        observer = machine.observe()
        t0 = time.perf_counter()
        for _ in range(reads):
            arr[5]
        per_read_on = (time.perf_counter() - t0) / reads
        observer.close()

        report(
            "OBS-1 observation overhead on the FIG-3.9 element-read path",
            [
                ("configuration", "per-op seconds"),
                ("observation off", f"{per_read_off:.6f}"),
                ("observation on", f"{per_read_on:.6f}"),
                ("no-op probe (per site)", f"{per_probe * 1e9:.0f} ns"),
                ("off-path overhead bound", f"{overhead_fraction:.3%}"),
            ],
        )
        assert overhead_fraction < 0.05, (
            f"observation-off probes cost {overhead_fraction:.1%} of an "
            f"element read (bar: 5%)"
        )
        arr.free()

    def test_element_read_off(self, benchmark, rt8):
        """The fig39 manager-path timing with observation off (baseline)."""
        arr = rt8.array("double", (N,), distrib=[("block", 8)])
        assert rt8.machine.observer is None
        benchmark(lambda: arr[5])
        arr.free()

    def test_element_read_on(self, benchmark, rt8):
        """The same path under full observation, for the on/off ratio."""
        arr = rt8.array("double", (N,), distrib=[("block", 8)])
        with rt8.observe():
            benchmark(lambda: arr[5])
        arr.free()

    def test_noop_span_probe(self, benchmark, rt8):
        """Cost of one instrumentation-site probe with observation off."""
        machine = rt8.machine
        assert machine.observer is None

        def probe():
            with obs_span(machine, "noop"):
                pass

        benchmark(probe)
