"""Shared infrastructure for the benchmark harness.

Each ``bench_*.py`` file regenerates one experiment from DESIGN.md's
per-experiment index (a figure or worked example of the thesis).  Every
benchmark

* measures wall-clock with pytest-benchmark,
* records the *shape* metrics (who wins, by what factor, where the
  crossover falls) in ``benchmark.extra_info`` and via :func:`report`,
  and
* asserts the qualitative claim, so a shape regression fails the run.

Wall-clock numbers are GIL-attenuated (see DESIGN.md "Fidelity notes");
the deterministic message/byte counters are not.
"""

from __future__ import annotations

import sys

import pytest

from repro.core.runtime import IntegratedRuntime


@pytest.fixture(scope="module")
def rt8() -> IntegratedRuntime:
    return IntegratedRuntime(8)


@pytest.fixture(scope="module")
def rt16() -> IntegratedRuntime:
    return IntegratedRuntime(16)


def report(title: str, rows: list) -> None:
    """Print one experiment's reproduced series as an aligned table."""
    out = [f"\n=== {title} ==="]
    if rows:
        widths = [
            max(len(str(row[i])) for row in rows) for i in range(len(rows[0]))
        ]
        for row in rows:
            out.append(
                "  " + "  ".join(str(v).ljust(w) for v, w in zip(row, widths))
            )
    print("\n".join(out), file=sys.stderr, flush=True)
