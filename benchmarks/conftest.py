"""Shared infrastructure for the benchmark harness.

Each ``bench_*.py`` file regenerates one experiment from DESIGN.md's
per-experiment index (a figure or worked example of the thesis).  Every
benchmark

* measures wall-clock with pytest-benchmark,
* records the *shape* metrics (who wins, by what factor, where the
  crossover falls) in ``benchmark.extra_info`` and via :func:`report`,
  and
* asserts the qualitative claim, so a shape regression fails the run.

Wall-clock numbers are GIL-attenuated (see DESIGN.md "Fidelity notes");
the deterministic message/byte counters are not.
"""

from __future__ import annotations

import json
import statistics
import sys
from pathlib import Path

import pytest

from repro.core.runtime import IntegratedRuntime

# Machine-readable results: every benchmark session merges its timings
# into this file (repo root), keyed by test id — CI uploads it as an
# artifact and bench_obs_overhead reads the baseline from it.
RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_results.json"


@pytest.fixture(scope="module")
def rt8() -> IntegratedRuntime:
    return IntegratedRuntime(8)


@pytest.fixture(scope="module")
def rt16() -> IntegratedRuntime:
    return IntegratedRuntime(16)


def pytest_sessionfinish(session: pytest.Session, exitstatus: int) -> None:
    """Merge this session's pytest-benchmark timings into BENCH_results.json.

    Runs after every benchmark session (no-op under --benchmark-disable,
    when the session records nothing).  Existing entries for other
    benchmarks are preserved, so partial runs accumulate into one file.
    """
    bench_session = getattr(session.config, "_benchmarksession", None)
    if bench_session is None or not bench_session.benchmarks:
        return
    try:
        existing = json.loads(RESULTS_PATH.read_text())
    except (OSError, ValueError):
        existing = {}
    results = existing.get("benchmarks", {})
    for bench in bench_session.benchmarks:
        stats = getattr(bench, "stats", None)
        if stats is None:
            continue
        data = list(getattr(stats, "data", []) or [])
        if not data:
            continue
        results[bench.fullname] = {
            "name": bench.name,
            "group": bench.group,
            "median_seconds": statistics.median(data),
            "min_seconds": min(data),
            "rounds": len(data),
            "iterations": getattr(bench.stats, "iterations", 1),
            "extra_info": dict(bench.extra_info),
        }
    RESULTS_PATH.write_text(
        json.dumps({"benchmarks": results}, indent=2, sort_keys=True,
                   default=repr)
        + "\n"
    )


def report(title: str, rows: list) -> None:
    """Print one experiment's reproduced series as an aligned table."""
    out = [f"\n=== {title} ==="]
    if rows:
        widths = [
            max(len(str(row[i])) for row in rows) for i in range(len(rows[0]))
        ]
        for row in rows:
            out.append(
                "  " + "  ".join(str(v).ljust(w) for v, w in zip(row, widths))
            )
    print("\n".join(out), file=sys.stderr, flush=True)
