"""Planned migration vs kill-and-recover: moving a hot section.

Claim quantified (docs/elasticity.md): relocating a section that has
accumulated writes since its last checkpoint by **planned migration**
(one live yield → adopt under the mover's epoch protocol) costs a small
constant message budget and carries the write delta with it; moving the
same section by **killing its owner and letting recovery rebuild it**
regresses an unreplicated-but-checkpointed section to the checkpoint,
so the workload must replay the lost delta — at least 2x the messages
and wall time at 16 delta rows, growing linearly with the delta.

A second scenario seeds a :class:`~repro.faults.plan.KillSpec` that
kills the migration's *destination* mid-move (the adopt delivery is the
corpse's last act): the transactional mover must roll the attempt back
and a retry onto a different spare must land the move with the delta
intact.  ``REPRO_FUZZ_SEED_BASE`` shifts the seed so CI's fault-matrix
shards explore different kill schedules.
"""

from __future__ import annotations

import os
import statistics
import time

import numpy as np

from benchmarks.conftest import report
from repro.arrays import am_user, am_util
from repro.core.darray import DistributedArray
from repro.faults import FaultPlan, FaultyTransport, KillSpec, install_recovery
from repro.status import Status
from repro.vp.machine import Machine

N = 32           # array edge; 16x16 sections on the 2x2 grid
DELTA_ROWS = 16  # committed rows since the checkpoint (the "hot" delta)
DISTRIB_2X2 = (("block", 2), ("block", 2))
SEED_BASE = int(os.environ.get("REPRO_FUZZ_SEED_BASE", "0"))


def _setup():
    machine = Machine(6, default_recv_timeout=10)
    am_util.load_all(machine)
    install_recovery(machine)
    arr = DistributedArray.create(
        machine, "double", (N, N), [0, 1, 2, 3], DISTRIB_2X2, replication=0
    )
    arr.from_numpy(np.zeros((N, N)))
    arr.checkpoint()
    return machine, arr


def _write_delta(machine, arr):
    """Commit DELTA_ROWS row-writes into section 2 (rows 16.., cols 0..16)."""
    for i in range(DELTA_ROWS):
        row = np.full((1, N // 2), float(i + 1))
        status = am_user.write_region(
            machine, arr.array_id, [(16 + i, 17 + i), (0, N // 2)], row
        )
        assert status is Status.OK


def _expected():
    out = np.zeros((N, N))
    for i in range(DELTA_ROWS):
        out[16 + i, 0 : N // 2] = float(i + 1)
    return out


def _migrate_round():
    """Planned move of the hot section; returns (wall, messages)."""
    machine, arr = _setup()
    _write_delta(machine, arr)
    machine.reset_traffic()
    t0 = time.perf_counter()
    moved = arr.migrate({2: 4})
    wall = time.perf_counter() - t0
    assert moved == [2]
    assert np.array_equal(arr.to_numpy(), _expected())
    return wall, machine.traffic_snapshot()["messages"]


def _kill_and_recover_round():
    """Kill the owner, recover from checkpoint, replay the lost delta."""
    machine, arr = _setup()
    _write_delta(machine, arr)
    machine.reset_traffic()
    t0 = time.perf_counter()
    machine.fail(2)
    _write_delta(machine, arr)  # the checkpoint is stale: replay
    wall = time.perf_counter() - t0
    assert np.array_equal(arr.to_numpy(), _expected())
    return wall, machine.traffic_snapshot()["messages"]


class TestMigrationVsRecovery:
    def test_hot_section_move_beats_kill_and_recover(self, benchmark):
        _migrate_round(), _kill_and_recover_round()  # warm-up
        rounds = 10
        mig_wall, rec_wall, ratios = [], [], []
        mig_msgs = rec_msgs = 0
        for _ in range(rounds):
            mw, mm = _migrate_round()
            rw, rm = _kill_and_recover_round()
            mig_wall.append(mw)
            rec_wall.append(rw)
            ratios.append(rw / mw)
            mig_msgs, rec_msgs = mm, rm

        mig_median = statistics.median(mig_wall)
        rec_median = statistics.median(rec_wall)
        speedup = statistics.median(ratios)
        report(
            f"moving a hot section ({DELTA_ROWS} delta rows, median of "
            f"{rounds} rounds)",
            [
                ("path", "messages", "seconds"),
                ("planned migration", mig_msgs, f"{mig_median:.5f}"),
                ("kill + recover + replay", rec_msgs, f"{rec_median:.5f}"),
                ("advantage", f"{rec_msgs / mig_msgs:.1f}x", f"{speedup:.1f}x"),
            ],
        )
        benchmark.extra_info.update(
            migrate_messages=mig_msgs,
            recover_messages=rec_msgs,
            migrate_median_seconds=mig_median,
            recover_median_seconds=rec_median,
            speedup=round(speedup, 2),
        )
        # Acceptance: the planned move wins on both axes — the message
        # counts are exact (the replay is pure waste), the wall-clock
        # gate uses the paired per-round ratio (immune to load drift).
        assert rec_msgs >= 2 * mig_msgs
        assert speedup >= 1.5

        def roundtrip():
            machine, arr = benchmark._migration_rt
            arr.migrate({2: 4})
            arr.migrate({2: 2})

        benchmark._migration_rt = _setup()
        benchmark(roundtrip)

    def test_mid_migration_kill_rolls_back_then_retry_lands(self, benchmark):
        """Seeded kill of the migration destination mid-move: the
        transactional mover rolls back, the delta survives, and a retry
        onto another spare commits."""
        machine, arr = _setup()
        _write_delta(machine, arr)

        # VP 4's first delivery inside the fault window is the adopt.
        plan = FaultPlan(
            seed=SEED_BASE + 17, kills=(KillSpec(4, after=1, on="recv"),)
        )
        with FaultyTransport(machine, plan) as ft:
            _moved, status = am_user.migrate_sections(
                machine, arr.array_id, {2: 4}
            )
        assert ft.stats.killed == [4]
        assert status is Status.ERROR
        assert np.array_equal(arr.to_numpy(), _expected())  # rolled back

        moved = arr.migrate({2: 5})  # retry onto the surviving spare
        assert moved == [2]
        assert np.array_equal(arr.to_numpy(), _expected())
        report(
            "mid-migration kill (seeded)",
            [
                ("event", "outcome"),
                ("kill destination on adopt", "rolled back, delta intact"),
                ("retry onto spare 5", "committed"),
            ],
        )
        benchmark.extra_info.update(killed=ft.stats.killed, retried_to=5)
        benchmark(lambda: np.array_equal(arr.to_numpy(), _expected()))
