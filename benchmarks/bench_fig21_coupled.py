"""FIG-2.1 — the coupled climate simulation (§2.3.1, Fig 2.1).

Claims reproduced: (1) the two data-parallel components stepped
concurrently produce results identical to sequential stepping (the
distributed call is semantically a sequential call), (2) the interface
coupling converges, and (3) the TP-level exchange cost is a measurable
fraction of each step — the §7.2.1 bottleneck motivation.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import report
from repro.apps.climate import ClimateSimulation
from repro.core.runtime import IntegratedRuntime


class TestFig21Coupled:
    def test_coupled_step_benchmark(self, benchmark, rt8):
        sim = ClimateSimulation(rt8, shape=(8, 16))

        def one_step():
            return sim.run(1)

        run = benchmark(one_step)
        assert run.coupled_result.steps == 1
        benchmark.extra_info["exchange_fraction"] = (
            run.coupled_result.exchange_fraction()
        )
        sim.free()

    def test_convergence_series(self, benchmark):
        rt = IntegratedRuntime(8)
        sim = ClimateSimulation(
            rt, shape=(8, 16), ocean_temp=10.0, atmos_temp=-10.0
        )
        gaps = []
        rows = [("step", "interface gap")]
        for k in range(8):
            run = sim.run(1)
            gaps.append(run.interface_gap())
            rows.append((k, f"{gaps[-1]:.3f}"))
        report("FIG-2.1 interface-gap convergence", rows)
        sim.free()
        assert gaps[-1] < gaps[0] / 3  # the coupling closes the gap
        assert all(b <= a + 1e-9 for a, b in zip(gaps, gaps[1:]))
        benchmark.pedantic(lambda: None, rounds=1)  # series-only experiment

    def test_concurrent_equals_sequential(self, benchmark):
        """The headline semantic claim, run as the benchmarked body."""

        def both():
            rt_a = IntegratedRuntime(8)
            sim_a = ClimateSimulation(rt_a, shape=(8, 16))
            run_a = sim_a.run(4)
            sim_a.free()
            rt_b = IntegratedRuntime(8)
            sim_b = ClimateSimulation(rt_b, shape=(8, 16))
            run_b = sim_b.run_reference(4)
            sim_b.free()
            return run_a, run_b

        run_a, run_b = benchmark.pedantic(both, rounds=2, iterations=1)
        assert np.array_equal(run_a.ocean, run_b.ocean)
        assert np.array_equal(run_a.atmosphere, run_b.atmosphere)
        report(
            "FIG-2.1 concurrent vs sequential",
            [
                ("mode", "ocean checksum", "atmos checksum"),
                ("concurrent", f"{run_a.ocean.sum():.6f}",
                 f"{run_a.atmosphere.sum():.6f}"),
                ("sequential", f"{run_b.ocean.sum():.6f}",
                 f"{run_b.atmosphere.sum():.6f}"),
            ],
        )
