"""Write-path cost of section replication (docs/fault_model.md §6).

Claims reproduced:

* a ``replication=k`` array ships exactly ``k`` extra ``replica_update``
  messages per section write — overhead is proportional to the chain
  length, not to array size bookkeeping;
* the wall-clock write-path overhead of ``replication=1`` over
  ``replication=0`` stays a small constant factor (the mirror apply is
  one lock + one ndarray assignment, no serialisation).
"""

from __future__ import annotations

import time

import numpy as np

from benchmarks.conftest import report
from repro.arrays import am_user, am_util
from repro.arrays.durability import REPLICA_UPDATE_KIND
from repro.status import Status
from repro.vp.fabric import TrafficMeter
from repro.vp.machine import Machine

DIMS = (16, 16)
DISTRIB = (("block", 2), ("block", 2))
ROWS_PER_PASS = DIMS[0]
PASSES = 4


def _write_pass(machine: Machine, array_id) -> None:
    for row in range(ROWS_PER_PASS):
        data = np.full((1, DIMS[1]), float(row))
        status = am_user.write_region(
            machine, array_id, [(row, row + 1), (0, DIMS[1])], data
        )
        assert status is Status.OK


def _measure(replication: int) -> tuple[float, int]:
    """(seconds per full-array write pass, replica messages per pass)."""
    machine = Machine(6, default_recv_timeout=30)
    am_util.load_all(machine)
    array_id, status = am_user.create_array(
        machine, "double", DIMS, [0, 1, 2, 3], DISTRIB,
        replication=replication,
    )
    assert status is Status.OK
    meter = TrafficMeter()
    machine.transport_stack.push(meter)
    _write_pass(machine, array_id)  # warm caches outside the timed window
    before = meter.snapshot()["by_kind"].get(REPLICA_UPDATE_KIND, (0, 0))[0]
    t0 = time.perf_counter()
    for _ in range(PASSES):
        _write_pass(machine, array_id)
    elapsed = (time.perf_counter() - t0) / PASSES
    after = meter.snapshot()["by_kind"].get(REPLICA_UPDATE_KIND, (0, 0))[0]
    machine.transport_stack.remove(meter)
    return elapsed, (after - before) // PASSES


class TestReplicationOverhead:
    def test_write_path_overhead_ratio(self, benchmark):
        """Seconds/pass and replica traffic for replication 0, 1, 2."""
        results = {k: _measure(k) for k in (0, 1, 2)}
        benchmark(_measure, 1)

        base, _ = results[0]
        rows = [("replication", "sec/pass", "replica msgs/pass", "ratio")]
        for k, (elapsed, msgs) in results.items():
            rows.append(
                (k, f"{elapsed * 1e3:.2f}ms", msgs, f"{elapsed / base:.2f}x")
            )
        report("Replicated write-path overhead (16x16, 2x2 grid)", rows)
        benchmark.extra_info["overhead_ratio_r1"] = results[1][0] / base
        benchmark.extra_info["overhead_ratio_r2"] = results[2][0] / base

        # Message counts are deterministic: each row write touches two
        # sections, and each section write ships k replica updates.
        assert results[0][1] == 0
        assert results[1][1] == 2 * ROWS_PER_PASS * 1
        assert results[2][1] == 2 * ROWS_PER_PASS * 2
        # Wall clock: replication must not blow the write path up by an
        # order of magnitude (GIL-attenuated; shape, not absolute, claim).
        assert results[2][0] / base < 10.0
