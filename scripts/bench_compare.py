#!/usr/bin/env python
"""Diff a fresh benchmark run against the committed BENCH_results.json.

Usage::

    PYTHONPATH=src:. python scripts/bench_compare.py [bench files...]
        [--threshold 0.25] [--rounds-env ...]

The committed ``BENCH_results.json`` medians are snapshotted in memory
*before* the run (the benchmark session's ``pytest_sessionfinish`` hook
rewrites the file in place), the selected benchmarks are executed, and
every benchmark present in **both** runs is compared.  A median that
regressed by more than ``--threshold`` (default 25%) fails the script
with exit status 1; new benchmarks (no baseline entry) are reported but
never fail.

Wall-clock medians are hardware-relative — the committed baseline and
the fresh run must come from comparable machines (CI compares against
the baseline committed from CI runs).
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULTS_PATH = REPO_ROOT / "BENCH_results.json"

DEFAULT_BENCHMARKS = [
    "benchmarks/bench_coalescing.py",
    "benchmarks/bench_commplan.py",
    "benchmarks/bench_detection.py",
    "benchmarks/bench_migration.py",
    "benchmarks/bench_region_access.py",
]


def load_medians(path: Path) -> dict[str, float]:
    try:
        payload = json.loads(path.read_text())
    except (OSError, ValueError):
        return {}
    return {
        fullname: entry["median_seconds"]
        for fullname, entry in payload.get("benchmarks", {}).items()
        if isinstance(entry.get("median_seconds"), (int, float))
    }


def run_benchmarks(bench_files: list[str]) -> int:
    cmd = [sys.executable, "-m", "pytest", "-q", *bench_files]
    print(f"$ {' '.join(cmd)}", flush=True)
    return subprocess.call(cmd, cwd=REPO_ROOT)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "benchmarks", nargs="*", default=None,
        help="benchmark files to run (default: the perf-smoke subset)",
    )
    parser.add_argument(
        "--threshold", type=float, default=0.25,
        help="allowed fractional median regression (default 0.25 = 25%%)",
    )
    args = parser.parse_args(argv)
    bench_files = args.benchmarks or DEFAULT_BENCHMARKS

    baseline = load_medians(RESULTS_PATH)
    if not baseline:
        print(f"no committed baseline in {RESULTS_PATH}; "
              "this run will only establish one")

    status = run_benchmarks(bench_files)
    if status != 0:
        print(f"benchmark run failed (exit {status})")
        return status

    fresh = load_medians(RESULTS_PATH)
    run_names = {Path(b).name for b in bench_files}
    regressions = []
    rows = []
    for fullname in sorted(fresh):
        # Entries from benchmark files not in this run are carried over
        # verbatim by the session hook — nothing fresh to compare there.
        if Path(fullname.split("::", 1)[0]).name not in run_names:
            continue
        new = fresh[fullname]
        old = baseline.get(fullname)
        if old is None:
            rows.append((fullname, "-", f"{new:.6f}", "new"))
            continue
        delta = (new - old) / old if old else 0.0
        verdict = "REGRESSED" if delta > args.threshold else "ok"
        rows.append(
            (fullname, f"{old:.6f}", f"{new:.6f}", f"{delta:+.1%} {verdict}")
        )
        if delta > args.threshold:
            regressions.append((fullname, old, new, delta))

    widths = [max(len(str(r[i])) for r in rows) for i in range(4)] if rows else []
    print(f"\n=== benchmark comparison (threshold {args.threshold:.0%}) ===")
    for row in rows:
        print("  " + "  ".join(str(v).ljust(w) for v, w in zip(row, widths)))

    if regressions:
        print(f"\n{len(regressions)} median(s) regressed more than "
              f"{args.threshold:.0%}:")
        for fullname, old, new, delta in regressions:
            print(f"  {fullname}: {old:.6f}s -> {new:.6f}s ({delta:+.1%})")
        return 1
    print("\nno regressions beyond threshold")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
