#!/usr/bin/env python
"""Quickstart: the thesis' §6.1 inner-product example.

Creates two distributed vectors, makes one distributed call to a
data-parallel program that initialises them (element i gets i+1) and
computes their inner product, and prints the result — the complete
task-parallel/data-parallel round trip in ~30 lines.

Run:  python examples/quickstart.py [num_processors]

Set ``REPRO_OBSERVE=1`` to run under the observability layer and print a
span profile; ``REPRO_TRACE_OUT=<path>`` additionally writes a
Chrome/Perfetto trace-event file of the run (see docs/observability.md).
"""

import os
import sys

import numpy as np

from repro import IntegratedRuntime
from repro.calls import Reduce
from repro.spmd import collectives
from repro.spmd.linalg import interior


def inner_product_program(ctx, m_local, v1, v2, ipr):
    """The data-parallel program: one copy per processor, each seeing its
    own local section of the two distributed vectors."""
    a, b = interior(v1), interior(v2)
    base = ctx.index * m_local
    a[:] = np.arange(base, base + m_local, dtype=float) + 1.0  # V[i] = i+1
    b[:] = a
    partial = float(a @ b)
    ipr[0] = collectives.allreduce(ctx.comm, partial, op="sum")


def main() -> None:
    nodes = int(sys.argv[1]) if len(sys.argv) > 1 else 8
    local_m = 4
    m = nodes * local_m

    print(f"starting test on {nodes} virtual processors")
    rt = IntegratedRuntime(nodes)
    observer = rt.observe() if os.environ.get("REPRO_OBSERVE") else None
    procs = rt.all_processors()

    # Create two distributed vectors (block decomposition).
    v1 = rt.array("double", (m,), procs, ["block"])
    v2 = rt.array("double", (m,), procs, ["block"])

    # One distributed call: runs once per processor, caller suspends until
    # every copy terminates, reduction variable carries the result back.
    result = rt.call(
        procs,
        inner_product_program,
        [local_m, v1, v2, Reduce("double", 1, "max")],
    )

    expected = m * (m + 1) * (2 * m + 1) // 6  # sum of (i+1)^2
    print(f"inner product: {result.reductions[0]:g}")
    print(f"expected:      {expected:g}")
    assert result.reductions[0] == expected

    # The task-parallel level can also touch single elements globally...
    print(f"V1[5] = {v1[5]:g} (should be 6)")

    # ...or fetch a whole region with one message per owning processor.
    head = v1.read_region([(0, 2 * local_m)])  # spans two processors
    print(f"V1[0:{2 * local_m}] = {head} (region read, 2 messages)")
    assert np.array_equal(head, np.arange(2 * local_m, dtype=float) + 1.0)

    v1.free()
    v2.free()

    if observer is not None:
        print("span profile (slowest phases first):")
        for name, count, total in observer.span_summary()[:8]:
            print(f"    {name:28s} {count:6d} calls  {total:8.4f}s")
        trace_out = os.environ.get("REPRO_TRACE_OUT")
        if trace_out:
            observer.export_chrome_trace(trace_out)
            print(f"chrome trace written to {trace_out}")
        observer.close()
    print("ending test")


if __name__ == "__main__":
    main()
