#!/usr/bin/env python
"""The §2.3.3 / Fig 2.3 reactor discrete-event simulation.

Pump, valve, and reactor components form an asynchronous event graph; the
computationally heavy component models run as distributed calls (the pump
solves a linear system by distributed Jacobi iteration; the reactor
relaxes a 2-D temperature field with a bordered stencil).  The event
cascade is data-dependent: demand rises while the core is hot, and the
simulation quiesces once the core temperature falls below the safe
threshold.

Run:  python examples/reactor_simulation.py [max_ticks]
"""

import sys

from repro import IntegratedRuntime
from repro.apps.reactor import ReactorSimulation


def main() -> None:
    max_ticks = int(sys.argv[1]) if len(sys.argv) > 1 else 15
    rt = IntegratedRuntime(8)

    print("reactor discrete-event simulation (Fig 2.3)")
    print("  components: driver -> pump -> valve -> reactor -> driver\n")

    sim = ReactorSimulation(
        rt,
        field_shape=(8, 8),
        initial_temperature=900.0,
        safe_temperature=400.0,
    )
    trace = sim.run(max_ticks=max_ticks)

    print("  tick   coolant flow   core temperature")
    for k, (flow, temp) in enumerate(zip(trace.flows, trace.temperatures)):
        print(f"  {k:4d}   {flow:12.2f}   {temp:16.2f}")

    print(f"\n  events handled: {trace.result.events_handled} "
          f"{trace.result.per_node_counts}")
    if trace.cooled_down(400.0):
        print(f"  core reached safe temperature after {trace.demands} ticks")
    else:
        print(f"  tick cap ({max_ticks}) reached before safe temperature")
    sim.free()


if __name__ == "__main__":
    main()
