#!/usr/bin/env python
"""The §2.3.4 / Fig 2.4 example: inherently parallel animation-frame
generation.

Frames of a Julia-set parameter sweep are generated independently, each by
a data-parallel render on one of several disjoint processor groups (a task
farm).  The script renders a short animation and prints per-frame ASCII
thumbnails plus the farm's load distribution.

Run:  python examples/animation_frames.py [frames] [groups]
"""

import sys

from repro import IntegratedRuntime
from repro.apps import animation

SHADES = " .:-=+*#%@"


def thumbnail(frame, width=32) -> list:
    """Downsample a frame to an ASCII art strip."""
    h, w = frame.shape
    step_r = max(1, h // 8)
    step_c = max(1, w // width)
    rows = []
    for r in range(0, h, step_r):
        row = "".join(
            SHADES[min(int(frame[r, c] * (len(SHADES) - 1)), len(SHADES) - 1)]
            for c in range(0, w, step_c)
        )
        rows.append(row)
    return rows


def main() -> None:
    frames = int(sys.argv[1]) if len(sys.argv) > 1 else 6
    groups = int(sys.argv[2]) if len(sys.argv) > 2 else 4
    rt = IntegratedRuntime(8)

    print(f"rendering {frames} frames over {groups} disjoint groups "
          f"(Fig 2.4)\n")
    result = animation.render_animation(
        rt, frames=frames, groups=groups, shape=(32, 64), max_iter=60
    )

    for k, frame in enumerate(result.frames):
        c = animation.julia_parameter(k, frames)
        print(f"frame {k}: c = {c.real:.4f}{c.imag:+.4f}i  "
              f"checksum = {frame.sum():.2f}")
        for row in thumbnail(frame):
            print("   " + row)
        print()

    print(f"jobs per group: {result.farm_result.jobs_per_group}  "
          f"(imbalance {result.farm_result.load_imbalance():.2f})")
    print(f"wall time: {result.farm_result.wall_time:.3f}s")


if __name__ == "__main__":
    main()
