#!/usr/bin/env python
"""Multidisciplinary design and optimization (§2.3.1).

The full MDO stack: an outer task-parallel design loop chooses the angle
of attack to hit a target lift; every objective evaluation is a complete
coupled aeroelastic solve (aerodynamic and structural data-parallel
programs running concurrently on disjoint processor groups, exchanging
boundary data through the task-parallel level).

Run:  python examples/wing_design.py [target_lift]
"""

import sys

from repro import IntegratedRuntime
from repro.apps.aeroelastic import (
    AeroelasticSimulation,
    design_for_lift,
    total_lift,
)


def main() -> None:
    target = float(sys.argv[1]) if len(sys.argv) > 1 else 12.0
    rt = IntegratedRuntime(8)

    print("wing design by coupled aeroelastic analysis (§2.3.1 MDO)\n")
    print("  probing the design space:")
    for alpha in (0.0, 0.5, 1.0):
        sim = AeroelasticSimulation(rt, alpha=alpha)
        run = sim.run(max_iterations=40)
        print(f"    alpha = {alpha:4.2f}  ->  lift = {total_lift(sim):8.3f}"
              f"  (coupled in {run.iterations} iterations)")
        sim.free()

    print(f"\n  optimizing for target lift {target} ...")
    result = design_for_lift(rt, target_lift=target, tolerance=1e-4)
    print(f"  alpha*      = {result.alpha:.6f}")
    print(f"  lift(alpha*) = {result.lift:.4f} (target {target})")
    print(f"  evaluations  = {result.evaluations} full coupled solves")
    print(f"  converged    = {result.converged}")
    assert result.converged


if __name__ == "__main__":
    main()
