#!/usr/bin/env python
"""The §7.2.1 extension: direct communication between data-parallel
programs.

Two data-parallel programs run concurrently on disjoint processor groups.
In the base model every datum exchanged between them must transit the
task-parallel caller (Fig 3.4); with the extension, the caller creates a
Channel and passes it to both calls, and copy r of the producer streams
data directly to copy r of the consumer.

The script runs the same producer/consumer workload both ways and reports
the task-parallel-level traffic each route generates — the bottleneck the
extension removes.

Run:  python examples/direct_channels.py [items] [chunk]
"""

import sys
import time


from repro import IntegratedRuntime
from repro.calls import Index, Reduce
from repro.core.channels import Channel
from repro.pcn import par
from repro.status import Status


def main() -> None:
    items = int(sys.argv[1]) if len(sys.argv) > 1 else 16
    chunk = int(sys.argv[2]) if len(sys.argv) > 2 else 1024
    rt = IntegratedRuntime(8)
    ga, gb = rt.split_processors(2)
    per_copy = chunk // len(ga)

    # ---- route 1: through the task-parallel level (the base model) ------
    a = rt.array("double", (chunk,), ga, ["block"])
    b = rt.array("double", (chunk,), gb, ["block"])

    def produce_into(ctx, step, sec):
        sec.interior()[:] = float(step) + ctx.index

    def consume_sum(ctx, sec, out):
        from repro.spmd import collectives

        out[0] = collectives.allreduce(
            ctx.comm, float(sec.interior().sum()), op="sum"
        )

    t0 = time.perf_counter()
    total_tp = 0.0
    for step in range(items):
        rt.call(ga, produce_into, [step, a])
        b.from_numpy(a.to_numpy())  # TP-level transfer between the arrays
        result = rt.call(gb, consume_sum, [b, Reduce("double", 1, "max")])
        total_tp += result.reductions[0]
    tp_time = time.perf_counter() - t0

    # ---- route 2: a direct DP<->DP channel (the extension) --------------
    ch = Channel(rt.machine, ga, gb)

    def producer(ctx, index, sec):
        end = ch.end_a(ctx)
        data = sec.interior()
        for step in range(items):
            data[:] = float(step) + index
            end.send(data.copy(), tag=step)

    def consumer(ctx, index, out):
        from repro.spmd import collectives

        end = ch.end_b(ctx)
        total = 0.0
        for step in range(items):
            total += float(end.recv(tag=step).sum())
        out[0] = collectives.allreduce(ctx.comm, total, op="sum")

    t0 = time.perf_counter()
    results = par(
        lambda: rt.call(ga, producer, [Index(), a]),
        lambda: rt.call(
            gb, consumer, [Index(), Reduce("double", 1, "max")]
        ),
    )
    ch_time = time.perf_counter() - t0
    assert results[1].status is Status.OK
    total_ch = results[1].reductions[0]

    print("direct DP<->DP channels (§7.2.1 extension)")
    print(f"  items = {items}, chunk = {chunk} doubles\n")
    print(f"  through task-parallel level: {tp_time:.3f}s   "
          f"checksum {total_tp:.0f}")
    print(f"  through direct channel:      {ch_time:.3f}s   "
          f"checksum {total_ch:.0f}")
    assert total_tp == total_ch, "the two routes must move identical data"
    print(f"\n  channel route is {tp_time / ch_time:.1f}x faster here — the "
          "TP level was the bottleneck")
    a.free()
    b.free()


if __name__ == "__main__":
    main()
