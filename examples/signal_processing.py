#!/usr/bin/env python
"""The §2.3.2 signal-processing workloads on the FFT pipeline.

"Examples of such computations include signal-processing operations like
convolution, correlation, and filtering" — this script runs all three over
the same four-group pipeline as the §6.2 polynomial multiplier:

* convolve a noisy pulse with a smoothing kernel,
* locate a known pattern in a shifted signal by cross-correlation,
* clean a two-tone signal with an ideal low-pass filter.

Run:  python examples/signal_processing.py [n]
"""

import sys

import numpy as np

from repro import IntegratedRuntime
from repro.apps.signalproc import SpectralProcessor


def sparkline(x, width=48) -> str:
    blocks = " ▁▂▃▄▅▆▇█"
    step = max(1, len(x) // width)
    sampled = x[::step]
    lo, hi = float(sampled.min()), float(sampled.max())
    span = (hi - lo) or 1.0
    return "".join(
        blocks[int((v - lo) / span * (len(blocks) - 1))] for v in sampled
    )


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 64
    rt = IntegratedRuntime(8)
    rng = np.random.default_rng(7)

    # --- convolution: smooth a noisy pulse -------------------------------
    pulse = np.zeros(n)
    pulse[n // 4 : n // 4 + 6] = 1.0
    noisy = pulse + 0.2 * rng.standard_normal(n)
    kernel = np.zeros(n)
    kernel[:5] = 1.0 / 5.0  # moving average
    conv = SpectralProcessor(rt, n, kind="convolve")
    smoothed = conv.process_one(noisy, kernel)
    conv.free()
    print("convolution (moving-average smoothing):")
    print(f"  noisy    {sparkline(noisy)}")
    print(f"  smoothed {sparkline(smoothed)}\n")

    # --- correlation: find a known shift ---------------------------------
    pattern = rng.uniform(-1, 1, n)
    true_shift = 11
    received = np.roll(pattern, true_shift) + 0.05 * rng.standard_normal(n)
    corr = SpectralProcessor(rt, n, kind="correlate")
    lags = corr.process_one(pattern, received)
    corr.free()
    detected = int(np.argmax(lags))
    print("correlation (shift detection):")
    print(f"  true shift = {true_shift}, detected = {detected}")
    assert detected == true_shift
    print(f"  lag response {sparkline(lags)}\n")

    # --- filtering: strip a high-frequency tone ---------------------------
    t = np.arange(n)
    low_tone = np.sin(2 * np.pi * 2 * t / n)
    high_tone = 0.8 * np.sin(2 * np.pi * (n // 3) * t / n)
    lp = SpectralProcessor(rt, n, kind="lowpass", cutoff=0.2)
    cleaned = lp.process_one(low_tone + high_tone)
    lp.free()
    residual = float(np.max(np.abs(cleaned - low_tone)))
    print("filtering (ideal low-pass, cutoff 0.2):")
    print(f"  input   {sparkline(low_tone + high_tone)}")
    print(f"  output  {sparkline(cleaned)}")
    print(f"  max deviation from the clean low tone: {residual:.2e}")
    assert residual < 1e-9


if __name__ == "__main__":
    main()
