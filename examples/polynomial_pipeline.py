#!/usr/bin/env python
"""The thesis' §6.2 example: polynomial multiplication using a pipeline
and FFT (Fig 6.1).

A stream of polynomial pairs flows through three concurrently-executing
stages, each built from distributed calls on its own processor group:

  phase 1   two inverse FFTs (groups 1a and 1b, concurrently) evaluate
            the zero-padded inputs at the 2n-th roots of unity;
  combine   elementwise complex multiplication (group C);
  phase 2   a forward FFT (group 2) interpolates the product coefficients.

The script verifies every product against numpy convolution and reports
the pipeline-overlap statistics that reproduce the Fig 2.2 claim.

Run:  python examples/polynomial_pipeline.py [n] [num_pairs]
"""

import sys

import numpy as np

from repro import IntegratedRuntime
from repro.apps import polymul


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 32
    num_pairs = int(sys.argv[2]) if len(sys.argv) > 2 else 8

    rt = IntegratedRuntime(8)  # four groups of two processors
    print(f"multiplying {num_pairs} pairs of degree-{n - 1} polynomials")
    multiplier = polymul.PolynomialMultiplier(rt, n=n)

    pairs = polymul.random_pairs(n, num_pairs, seed=42)
    result = multiplier.multiply_stream(pairs)

    errors = 0
    for k, (output, pair) in enumerate(zip(result.outputs, pairs)):
        reference = polymul.polymul_reference(*pair)
        ok = np.allclose(output, reference, atol=1e-9)
        errors += not ok
        print(f"  pair {k}: max|err| = {np.max(np.abs(output - reference)):.2e}"
              f" {'ok' if ok else 'WRONG'}")
    assert errors == 0, f"{errors} products disagree with numpy"

    print("\npipeline statistics (Fig 2.2):")
    print(f"  wall time (concurrent run):     {result.wall_time:.3f}s")
    for name, busy in result.stage_busy_times().items():
        print(f"  stage busy  {name:24s} {busy:.3f}s")
    print(f"  time with >=2 stages busy:      {result.overlap_intervals():.3f}s")
    print(f"  simulated sequential makespan:  "
          f"{result.simulated_sequential_makespan():.3f}s")
    print(f"  simulated pipelined makespan:   "
          f"{result.simulated_pipelined_makespan():.3f}s")
    print(f"  simulated speedup:              {result.simulated_speedup():.2f}x")

    sequential = multiplier.multiply_stream_sequential(pairs)
    print(f"  measured sequential wall time:  {sequential.wall_time:.3f}s")
    multiplier.free()


if __name__ == "__main__":
    main()
