#!/usr/bin/env python
"""The §2.2 alternative integration model: task-parallel programs as
subprograms in a data-parallel computation.

"Calling a task-parallel program on a distributed data structure is
equivalent to calling it concurrently once for each element ... and each
copy of the task-parallel program can consist of multiple processes."

The demonstration: an adaptive-quadrature field.  Each element of a
distributed array holds an interval endpoint; a task-parallel program —
which recursively *spawns processes* to subdivide hard subintervals —
integrates f over [x, x+h] and writes the result back.  The per-element
recursion depth is data-dependent (deeper where f oscillates), which is
exactly the irregularity task parallelism exists for (§1.1.4).

Run:  python examples/alternative_model.py [elements]
"""

import math
import sys

from repro import IntegratedRuntime
from repro.core.alternative import call_task_parallel_on
from repro.pcn import par


def f(x: float) -> float:
    """Oscillates faster near the origin — uneven work across elements."""
    return math.sin(1.0 / (0.1 + x)) if x >= 0 else 0.0


def adaptive(a: float, b: float, fa: float, fb: float, depth: int) -> float:
    """Adaptive trapezoid: recursively subdivide, spawning the two halves
    as concurrent processes (a multi-process TP subprogram, §2.2)."""
    mid = 0.5 * (a + b)
    fm = f(mid)
    coarse = 0.5 * (b - a) * (fa + fb)
    fine = 0.25 * (b - a) * (fa + fm) + 0.25 * (b - a) * (fm + fb)
    if depth >= 12 or abs(fine - coarse) < 1e-9:
        return fine
    left, right = par(
        lambda: adaptive(a, mid, fa, fm, depth + 1),
        lambda: adaptive(mid, b, fm, fb, depth + 1),
    )
    return left + right


def main() -> None:
    elements = int(sys.argv[1]) if len(sys.argv) > 1 else 16
    rt = IntegratedRuntime(4)
    h = 2.0 / elements

    field = rt.array("double", (elements,), distrib=[("block", 4)])

    def per_element(idx, _value):
        x = idx[0] * h
        return adaptive(x, x + h, f(x), f(x + h), 0)

    print(
        f"integrating f over {elements} subintervals, one concurrent "
        "task-parallel instance per element (§2.2)..."
    )
    instances = call_task_parallel_on(field, per_element)
    segments = field.to_numpy()
    total = float(segments.sum())

    # serial reference by fine fixed-step trapezoid
    steps = 200_000
    dx = 2.0 / steps
    reference = sum(
        0.5 * dx * (f(i * dx) + f((i + 1) * dx)) for i in range(steps)
    )
    print(f"  instances run:        {instances}")
    print(f"  integral (adaptive):  {total:.8f}")
    print(f"  integral (reference): {reference:.8f}")
    print(f"  difference:           {abs(total - reference):.2e}")
    assert abs(total - reference) < 1e-4
    field.free()


if __name__ == "__main__":
    main()
