#!/usr/bin/env python
"""The §2.3.1 / Fig 2.1 coupled climate simulation.

An ocean domain and an atmosphere domain — each a bordered distributed
array relaxed by a data-parallel stencil program on its own processor
group — exchange interface temperatures through the task-parallel top
level every step.  The script shows the interface gap closing and checks
that the concurrent execution is bit-identical to stepping the components
sequentially (distributed call ≡ sequential call).

Run:  python examples/climate_coupled.py [steps]
"""

import sys

import numpy as np

from repro import IntegratedRuntime
from repro.apps.climate import ClimateSimulation


def main() -> None:
    steps = int(sys.argv[1]) if len(sys.argv) > 1 else 10
    rt = IntegratedRuntime(8)

    print("coupled ocean/atmosphere simulation (Fig 2.1)")
    print("  ocean starts at +10, atmosphere at -10; interface gap = 20\n")

    sim = ClimateSimulation(
        rt, shape=(8, 16), ocean_temp=10.0, atmos_temp=-10.0, coupling=0.5
    )
    for k in range(steps):
        run = sim.run(1)
        print(f"  step {k:2d}: interface gap = {run.interface_gap():7.3f}  "
              f"ocean mean = {run.ocean.mean():7.3f}  "
              f"atmos mean = {run.atmosphere.mean():7.3f}")
    final_concurrent = run
    sim.free()

    # Equivalence check: sequential stepping gives identical fields.
    rt2 = IntegratedRuntime(8)
    reference = ClimateSimulation(
        rt2, shape=(8, 16), ocean_temp=10.0, atmos_temp=-10.0, coupling=0.5
    )
    ref_run = reference.run_reference(steps)
    reference.free()

    identical = np.array_equal(
        final_concurrent.ocean, ref_run.ocean
    ) and np.array_equal(final_concurrent.atmosphere, ref_run.atmosphere)
    print(f"\nconcurrent == sequential execution: {identical}")
    assert identical


if __name__ == "__main__":
    main()
