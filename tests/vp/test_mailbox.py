"""Mailboxes: selective typed receive (§3.4.1)."""

from __future__ import annotations

import threading

import pytest

from repro.vp.mailbox import Mailbox
from repro.vp.message import Message, MessageType


def msg(source=0, dest=1, payload="p", mtype=MessageType.PCN, tag=None, group=None):
    return Message(
        source=source, dest=dest, payload=payload, mtype=mtype, tag=tag,
        group=group,
    )


class TestSelectiveReceive:
    def test_fifo_within_matching_messages(self):
        box = Mailbox(0)
        box.deliver(msg(payload="first"))
        box.deliver(msg(payload="second"))
        assert box.recv().payload == "first"
        assert box.recv().payload == "second"

    def test_filter_by_type(self):
        """The §3.4.1 requirement: a receive for PCN-typed messages must
        not take a data-parallel message, whatever the arrival order."""
        box = Mailbox(0)
        box.deliver(msg(mtype=MessageType.DATA_PARALLEL, payload="dp"))
        box.deliver(msg(mtype=MessageType.PCN, payload="pcn"))
        assert box.recv(mtype=MessageType.PCN).payload == "pcn"
        assert box.recv(mtype=MessageType.DATA_PARALLEL).payload == "dp"

    def test_filter_by_tag(self):
        box = Mailbox(0)
        box.deliver(msg(tag="b", payload=2))
        box.deliver(msg(tag="a", payload=1))
        assert box.recv(tag="a").payload == 1
        assert box.recv(tag="b").payload == 2

    def test_filter_by_source(self):
        box = Mailbox(0)
        box.deliver(msg(source=5, payload="five"))
        box.deliver(msg(source=3, payload="three"))
        assert box.recv(source=3).payload == "three"

    def test_filter_by_group(self):
        """Concurrent distributed calls: group ids keep their traffic
        apart even on a shared processor."""
        box = Mailbox(0)
        box.deliver(msg(group="callA", payload="a"))
        box.deliver(msg(group="callB", payload="b"))
        assert box.recv(group="callB").payload == "b"
        assert box.recv(group="callA").payload == "a"

    def test_match_any_tag(self):
        box = Mailbox(0)
        box.deliver(msg(tag=("x", 1), payload=9))
        assert box.recv(match_any_tag=True).payload == 9

    def test_mtype_none_matches_any_type(self):
        box = Mailbox(0)
        box.deliver(msg(mtype=MessageType.DATA_PARALLEL))
        assert box.recv(mtype=None, match_any_group=True).payload == "p"

    def test_recv_blocks_until_match_arrives(self):
        box = Mailbox(0)
        got = []

        def receiver():
            got.append(box.recv(tag="wanted", timeout=5).payload)

        t = threading.Thread(target=receiver)
        t.start()
        box.deliver(msg(tag="unwanted", payload="no"))
        box.deliver(msg(tag="wanted", payload="yes"))
        t.join(timeout=5)
        assert got == ["yes"]
        assert box.pending() == 1  # the unwanted message stays buffered

    def test_recv_timeout(self):
        box = Mailbox(0)
        with pytest.raises(TimeoutError):
            box.recv(timeout=0.05)

    def test_timeout_message_names_filter(self):
        box = Mailbox(7)
        with pytest.raises(TimeoutError, match="processor 7"):
            box.recv(tag="t", timeout=0.01)


class TestUntypedReceive:
    def test_untyped_takes_oldest_regardless(self):
        """The pre-fix Cosmic Environment behaviour: the receive takes
        whatever arrived first — the interception hazard of §3.4.1."""
        box = Mailbox(0)
        box.deliver(msg(mtype=MessageType.DATA_PARALLEL, payload="dp-first"))
        box.deliver(msg(mtype=MessageType.PCN, payload="pcn-second"))
        assert box.recv_untyped().payload == "dp-first"

    def test_untyped_timeout(self):
        with pytest.raises(TimeoutError):
            Mailbox(0).recv_untyped(timeout=0.05)


class TestAccounting:
    def test_counters(self):
        box = Mailbox(0)
        box.deliver(msg(payload=b"12345678"))
        box.recv()
        assert box.received_count == 1
        assert box.received_bytes == 8

    def test_drain(self):
        box = Mailbox(0)
        box.deliver(msg())
        box.deliver(msg())
        assert len(box.drain()) == 2
        assert box.pending() == 0
