"""The fabric envelope: trace ids and hop counts stamped by Machine.route
and propagated through spawns and server-request hops."""

from __future__ import annotations

import pytest

from repro.pcn.defvar import DefVar
from repro.vp import fabric
from repro.vp.fabric import TraceInterceptor
from repro.vp.machine import Machine


class TestExecutionContext:
    def test_top_level_thread_has_no_context(self):
        assert fabric.current_processor() is None
        trace, hop = fabric.current_trace()
        assert trace is None
        assert hop == 0

    def test_context_scopes_and_restores(self):
        with fabric.execution_context(processor=3, trace_id="t-x", hop=2):
            assert fabric.current_processor() == 3
            assert fabric.current_trace() == ("t-x", 2)
            with fabric.execution_context(trace_id="t-y"):
                # Unset fields inherit from the enclosing scope.
                assert fabric.current_processor() == 3
                assert fabric.current_trace() == ("t-y", 2)
            assert fabric.current_trace() == ("t-x", 2)
        assert fabric.current_processor() is None

    def test_spawned_process_runs_under_its_processor(self):
        m = Machine(2)
        seen = DefVar("seen")
        m.processor(1).spawn(lambda: seen.define(fabric.current_processor()))
        assert seen.read(timeout=5.0) == 1

    def test_spawn_inherits_trace(self):
        m = Machine(2)
        seen = DefVar("seen")
        with fabric.execution_context(trace_id="t-parent", hop=4):
            m.processor(0).spawn(lambda: seen.define(fabric.current_trace()))
        assert seen.read(timeout=5.0) == ("t-parent", 4)

    def test_trace_ids_are_unique(self):
        assert fabric.new_trace_id() != fabric.new_trace_id()


class TestEnvelopeStamping:
    def test_route_stamps_fresh_trace_on_unscoped_send(self):
        m = Machine(2)
        tracer = TraceInterceptor(m).install()
        m.send(0, 1, "a", tag="t")
        m.send(0, 1, "b", tag="t")
        spans = tracer.spans()
        assert all(s["trace"] is not None for s in spans)
        assert spans[0]["trace"] != spans[1]["trace"]  # unrelated sends

    def test_route_preserves_ambient_trace(self):
        m = Machine(2)
        tracer = TraceInterceptor(m).install()
        with fabric.execution_context(trace_id="t-op", hop=7):
            m.send(0, 1, "a", tag="t")
        (span,) = tracer.spans()
        assert span["trace"] == "t-op"
        assert span["hop"] == 7
        assert span["kind"] == "user"

    def test_received_message_carries_envelope(self):
        m = Machine(2)
        with fabric.execution_context(trace_id="t-env"):
            m.send(0, 1, "payload", tag="t")
        msg = m.processor(1).mailbox.recv(tag="t", timeout=2.0)
        assert msg.trace_id == "t-env"
        assert msg.hop == 0


class TestServerHops:
    def test_cross_processor_request_is_one_traced_message(self):
        m = Machine(3)
        hits = []
        m.server.load({"mark": lambda node, st: (hits.append(node.number),
                                                 st.define("ok"))})
        tracer = TraceInterceptor(m).install()
        st = DefVar("st")
        m.server.request("mark", st, processor=2, source=0)
        assert st.read(timeout=5.0) == "ok"
        assert hits == [2]
        (span,) = tracer.spans()
        assert span["kind"] == "server_request"
        assert span["source"] == 0
        assert span["dest"] == 2

    def test_nested_requests_share_trace_and_count_hops(self):
        m = Machine(3)

        def relay(node, depth, done):
            if depth == 0:
                done.define(node.number)
                return
            m.server.request(
                "relay", depth - 1, done, processor=node.number + 1
            )

        m.server.load({"relay": relay})
        tracer = TraceInterceptor(m).install()
        done = DefVar("done")
        # Runs locally on node 0 (no origin), then hops 0->1->2.
        m.server.request("relay", 2, done, processor=0)
        assert done.read(timeout=5.0) == 2
        spans = tracer.spans()
        assert len(spans) == 2
        assert spans[0]["trace"] == spans[1]["trace"]
        assert [s["hop"] for s in spans] == [0, 1]
        assert [(s["source"], s["dest"]) for s in spans] == [(0, 1), (1, 2)]

    def test_same_node_request_costs_no_message(self):
        m = Machine(2)
        m.server.load({"noop": lambda node, st: st.define("ok")})
        m.reset_traffic()
        st = DefVar("st")
        m.server.request("noop", st, processor=1, source=1)
        assert st.read(timeout=5.0) == "ok"
        assert m.traffic_snapshot()["messages"] == 0

    def test_request_error_propagates_across_hop(self):
        m = Machine(2)

        def boom(node):
            raise RuntimeError("handler exploded")

        m.server.load({"boom": boom})
        with pytest.raises(RuntimeError, match="handler exploded"):
            m.server.request("boom", processor=1, source=0)

    def test_async_cross_request_returns_process(self):
        m = Machine(2)
        done = DefVar("done")
        m.server.load({"slow": lambda node, out: out.define(node.number)})
        proc = m.server.request(
            "slow", done, processor=1, source=0, synchronous=False
        )
        proc.join(timeout=5.0)
        assert done.read(timeout=5.0) == 1


class TestContextEdgeCases:
    def test_nested_context_restores_after_exception(self):
        """An exception unwinding nested scopes restores each level."""
        with fabric.execution_context(processor=1, trace_id="t-outer", hop=1):
            with pytest.raises(RuntimeError):
                with fabric.execution_context(trace_id="t-inner", hop=9):
                    assert fabric.current_trace() == ("t-inner", 9)
                    raise RuntimeError("unwind")
            assert fabric.current_trace() == ("t-outer", 1)
            assert fabric.current_processor() == 1
        assert fabric.current_trace() == (None, 0)
        assert fabric.current_processor() is None

    def test_snapshot_context_captures_all_fields(self):
        with fabric.execution_context(
            processor=2, trace_id="t-snap", hop=3, span_id="s-9"
        ):
            assert fabric.snapshot_context() == (2, "t-snap", 3, "s-9")
        assert fabric.snapshot_context() == (None, None, 0, None)

    def test_snapshot_context_propagates_through_do_all(self):
        """Every do_all copy inherits the caller's trace and span via the
        context snapshot taken at spawn time."""
        from repro.calls.do_all import do_all

        m = Machine(3)
        seen = {}

        def copy(index, parms, status):
            seen[index] = (fabric.current_trace()[0], fabric.current_span_id())
            status.define(index)

        with fabric.execution_context(trace_id="t-call", span_id="s-call"):
            do_all(m, [0, 1, 2], copy, None, lambda a, b: a + b, timeout=5.0)
        assert set(seen) == {0, 1, 2}
        assert all(trace == "t-call" for trace, _ in seen.values())
        assert all(span == "s-call" for _, span in seen.values())

    def test_forward_from_after_interceptor_removed(self):
        """An interceptor holding a message on a timer may be uninstalled
        before re-injection; forward_from must still deliver (directly to
        final delivery), not drop or loop."""
        m = Machine(2)
        held = []

        def holder(message, forward):
            held.append(message)  # hold, do not forward yet

        meter = fabric.TrafficMeter(m).install()
        m.transport_stack.push(holder)  # holder above meter
        m.send(0, 1, "deferred", tag="t")
        assert held and meter.snapshot()["messages"] == 0
        m.transport_stack.remove(holder)
        m.transport_stack.forward_from(holder, held[0])
        msg = m.processor(1).mailbox.recv(tag="t", timeout=2.0)
        assert msg.payload == "deferred"
        # Removed interceptor bypasses the remaining stack entirely.
        assert meter.snapshot()["messages"] == 0
        meter.uninstall()

    def test_forward_from_uses_layers_below_when_installed(self):
        m = Machine(2)
        held = []

        def holder(message, forward):
            held.append(message)

        meter = fabric.TrafficMeter()
        m.transport_stack.push(meter)  # bottom
        m.transport_stack.push(holder)  # top
        m.send(0, 1, "deferred", tag="t")
        m.transport_stack.forward_from(holder, held[0])
        assert m.processor(1).mailbox.recv(tag="t", timeout=2.0).payload == "deferred"
        # Still installed: re-injection crosses the meter beneath it.
        assert meter.snapshot()["messages"] == 1
        m.transport_stack.remove(holder)
        m.transport_stack.remove(meter)


class TestEnvelopeRegressions:
    def test_traces_never_contains_none(self):
        """Regression: every routed message gets a trace id — ambient or
        freshly stamped by Machine.route — so traces() has no None entry."""
        m = Machine(3)
        tracer = TraceInterceptor(m).install()
        m.send(0, 1, "bare", tag="t")  # unscoped: route must stamp
        with fabric.execution_context(trace_id="t-amb"):
            m.send(1, 2, "scoped", tag="t")
        st = DefVar("st")
        m.server.load({"noop": lambda node, out: out.define("ok")})
        m.server.request("noop", st, processor=2, source=0)
        assert st.read(timeout=5.0) == "ok"
        assert None not in tracer.traces()
        assert all(s["trace"] is not None for s in tracer.spans())

    def test_route_stamps_ambient_span_id(self):
        """Messages routed inside an observability span carry its span id,
        stitching message traces onto the causal span tree."""
        m = Machine(2)
        tracer = TraceInterceptor(m).install()
        with m.observe() as observer:
            with observer.span("op") as handle:
                m.send(0, 1, "x", tag="t")
        (span,) = tracer.spans()
        assert span["span"] == handle.span_id


class TestDistributedCallTrace:
    def test_one_call_one_trace(self):
        """Every message of one distributed call shares its trace id."""
        from repro.arrays import am_util
        from repro.calls import Index, Reduce, distributed_call
        from repro.spmd import collectives

        m = Machine(4)
        am_util.load_all(m)
        procs = am_util.node_array(0, 1, 4)
        tracer = TraceInterceptor(m).install()

        def program(ctx, index, out):
            out[0] = collectives.allreduce(ctx.comm, float(index), op="sum")

        result = distributed_call(
            m, procs, program, [Index(), Reduce("double", 1, "sum")]
        )
        assert result.reductions[0] == 4 * 6.0  # folded sum of allreduce
        dp_spans = [s for s in tracer.spans() if s["group"] is not None]
        assert dp_spans, "the collective must have produced group traffic"
        traces = {s["trace"] for s in dp_spans}
        assert len(traces) == 1
        assert next(iter(traces)).startswith("dcall")
