"""Typed messages (§3.4.1)."""

from __future__ import annotations

import numpy as np

from repro.vp.message import Message, MessageType


def make(payload="x", **kw):
    defaults = dict(source=0, dest=1, payload=payload)
    defaults.update(kw)
    return Message(**defaults)


class TestMatching:
    def test_type_mismatch(self):
        m = make(mtype=MessageType.PCN)
        assert not m.matches(MessageType.DATA_PARALLEL)
        assert m.matches(MessageType.PCN)

    def test_none_type_matches_any(self):
        assert make(mtype=MessageType.DATA_PARALLEL).matches(None)

    def test_tag_must_match_exactly(self):
        m = make(tag=("coll", "bcast", 3))
        assert m.matches(MessageType.PCN, tag=("coll", "bcast", 3))
        assert not m.matches(MessageType.PCN, tag=("coll", "bcast", 4))

    def test_match_any_tag(self):
        assert make(tag="anything").matches(MessageType.PCN, match_any_tag=True)

    def test_source_filter(self):
        m = make(source=7)
        assert m.matches(MessageType.PCN, source=7)
        assert not m.matches(MessageType.PCN, source=2)
        assert m.matches(MessageType.PCN, source=None)

    def test_group_must_match(self):
        m = make(group=("dcall", 9))
        assert m.matches(MessageType.PCN, group=("dcall", 9))
        assert not m.matches(MessageType.PCN, group=("dcall", 8))
        assert not m.matches(MessageType.PCN)  # default group None
        assert m.matches(MessageType.PCN, match_any_group=True)


class TestSizeAccounting:
    def test_numpy_payload(self):
        assert make(np.zeros(10)).nbytes() == 80

    def test_bytes_payload(self):
        assert make(b"abcd").nbytes() == 4

    def test_list_payload(self):
        assert make([1, 2, 3]).nbytes() == 24

    def test_scalar_payload(self):
        assert make(1.5).nbytes() == 8


def test_sequence_numbers_increase():
    a, b = make(), make()
    assert b.seq > a.seq
