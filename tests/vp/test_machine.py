"""The simulated multicomputer: processors, routing, placement."""

from __future__ import annotations

import threading

import pytest

from repro.vp.machine import Machine


class TestTopology:
    def test_num_nodes(self):
        assert Machine(6).num_nodes == 6

    def test_zero_nodes_rejected(self):
        with pytest.raises(ValueError):
            Machine(0)

    def test_processor_lookup(self):
        m = Machine(4)
        assert m.processor(2).number == 2

    def test_processor_out_of_range(self):
        m = Machine(4)
        with pytest.raises(ValueError):
            m.processor(4)

    def test_processors_listing(self):
        m = Machine(3)
        assert [p.number for p in m.processors()] == [0, 1, 2]


class TestRouting:
    def test_send_delivers_to_dest_mailbox(self):
        m = Machine(4)
        m.send(source=0, dest=3, payload="hello", tag="t")
        got = m.processor(3).mailbox.recv(tag="t")
        assert got.payload == "hello"
        assert got.source == 0

    def test_self_send(self):
        m = Machine(2)
        m.send(source=1, dest=1, payload="me")
        assert m.processor(1).mailbox.recv().payload == "me"

    def test_send_to_invalid_dest(self):
        m = Machine(2)
        with pytest.raises(ValueError):
            m.send(source=0, dest=9, payload=None)

    def test_traffic_accounting(self):
        m = Machine(2)
        m.reset_traffic()
        m.send(source=0, dest=1, payload=b"x" * 100)
        m.send(source=1, dest=0, payload=b"y" * 50)
        snap = m.traffic_snapshot()
        assert snap["messages"] == 2
        assert snap["bytes"] == 150

    def test_reset_traffic_clears_node_counters(self):
        m = Machine(2)
        m.send(source=0, dest=1, payload="x")
        m.processor(1).mailbox.recv()
        m.reset_traffic()
        assert m.traffic_snapshot() == {"messages": 0, "bytes": 0}
        assert m.processor(0).sent_count == 0
        assert m.processor(1).mailbox.received_count == 0


class TestAddressSpaces:
    def test_heaps_are_distinct(self):
        """Each virtual processor has a distinct address space."""
        m = Machine(3)
        m.processor(0).store("key", "zero")
        m.processor(1).store("key", "one")
        assert m.processor(0).load("key") == "zero"
        assert m.processor(1).load("key") == "one"
        assert not m.processor(2).has("key")

    def test_heap_delete(self):
        m = Machine(1)
        node = m.processor(0)
        node.store("k", 1)
        node.delete("k")
        assert not node.has("k")
        assert node.load_default("k", "fallback") == "fallback"


class TestPlacement:
    def test_run_on_executes_on_processor(self):
        m = Machine(4)
        result = m.run_on(2, lambda: threading.current_thread().name)
        assert "vp2" in result

    def test_spawn_tracks_live_processes(self):
        m = Machine(1)
        node = m.processor(0)
        ev = threading.Event()
        node.spawn(ev.wait)
        assert node.live_process_count() >= 1
        ev.set()

    def test_processes_on_same_node_share_its_heap(self):
        m = Machine(2)
        node = m.processor(1)
        node.run(lambda: node.store("written-by", "process"))
        assert node.load("written-by") == "process"
