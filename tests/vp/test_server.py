"""The PCN server mechanism (§5.1.1)."""

from __future__ import annotations

import threading

import pytest

from repro.pcn.defvar import DefVar
from repro.vp.machine import Machine
from repro.vp.server import ServerRequestError


class TestCapabilities:
    def test_unknown_request_type_raises(self):
        m = Machine(2)
        with pytest.raises(ServerRequestError):
            m.server.request("no_such_capability")

    def test_load_adds_capabilities(self):
        m = Machine(2)
        log = []
        m.server.load({"ping": lambda node: log.append(node.number)})
        assert m.server.provides("ping")
        m.server.request("ping")
        assert log == [0]

    def test_later_load_overrides(self):
        m = Machine(1)
        m.server.load({"cap": lambda node: "v1"})
        results = []
        m.server.load({"cap": lambda node: results.append("v2")})
        m.server.request("cap")
        assert results == ["v2"]


class TestRouting:
    def test_processor_annotation_routes_request(self):
        """The @Processor_number annotation executes the request on the
        named node (§5.1.1)."""
        m = Machine(4)
        seen = []
        m.server.load({"where": lambda node: seen.append(node.number)})
        m.server.request("where", processor=3)
        m.server.request("where", processor=1)
        assert seen == [3, 1]

    def test_bidirectional_communication_via_defvar(self):
        """A request parameter that is an undefined definitional variable
        is defined by the server program — the §5.1.1 Status pattern."""
        m = Machine(2)

        def handler(node, out_var):
            out_var.define(f"answered-on-{node.number}")

        m.server.load({"ask": handler})
        out = DefVar("answer")
        m.server.request("ask", out, processor=1)
        assert out.read() == "answered-on-1"

    def test_asynchronous_request_completes_immediately(self):
        """Raw server-request semantics: the statement completes at once;
        the caller synchronises on a variable the handler defines
        (§5.1.2's motivation for the library procedures)."""
        m = Machine(1)
        gate = threading.Event()
        done = DefVar("done")

        def handler(node, done_var):
            gate.wait(timeout=5)
            done_var.define(True)

        m.server.load({"slow": handler})
        m.server.request("slow", done, synchronous=False)
        assert not done.data()  # returned before the handler finished
        gate.set()
        assert done.read() is True

    def test_synchronous_request_waits(self):
        m = Machine(1)
        log = []

        def handler(node):
            log.append("ran")

        m.server.load({"now": handler})
        m.server.request("now", synchronous=True)
        assert log == ["ran"]
