"""Property-based tests for the mailbox's selective-receive semantics."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.vp.mailbox import Mailbox
from repro.vp.message import Message, MessageType


def deliver_all(box, descriptors):
    for i, (mtype, tag) in enumerate(descriptors):
        box.deliver(
            Message(
                source=0, dest=1, payload=i, mtype=mtype, tag=tag
            )
        )


message_descriptor = st.tuples(
    st.sampled_from([MessageType.PCN, MessageType.DATA_PARALLEL]),
    st.sampled_from(["a", "b", None]),
)


@settings(max_examples=100, deadline=None)
@given(st.lists(message_descriptor, max_size=20))
def test_property_selective_receive_is_per_filter_fifo(descriptors):
    """For any delivery order, draining one (type, tag) filter yields that
    filter's messages in arrival order, untouched by other traffic."""
    box = Mailbox(owner=1)
    deliver_all(box, descriptors)
    for want_type in (MessageType.PCN, MessageType.DATA_PARALLEL):
        for want_tag in ("a", "b", None):
            expected = [
                i
                for i, (mtype, tag) in enumerate(descriptors)
                if mtype is want_type and tag == want_tag
            ]
            got = []
            for _ in expected:
                got.append(
                    box.recv(mtype=want_type, tag=want_tag, timeout=0.5)
                    .payload
                )
            assert got == expected
    assert box.pending() == 0


@settings(max_examples=100, deadline=None)
@given(st.lists(message_descriptor, min_size=1, max_size=20))
def test_property_untyped_receive_is_global_fifo(descriptors):
    """The untyped (pre-fix) receive drains strictly in arrival order."""
    box = Mailbox(owner=1)
    deliver_all(box, descriptors)
    got = [box.recv_untyped(timeout=0.5).payload for _ in descriptors]
    assert got == list(range(len(descriptors)))


@settings(max_examples=50, deadline=None)
@given(
    st.lists(message_descriptor, max_size=12),
    st.integers(0, 11),
)
def test_property_non_matching_messages_preserved(descriptors, take):
    """Receiving on one filter never consumes or reorders the rest."""
    box = Mailbox(owner=1)
    deliver_all(box, descriptors)
    pcn_a = [
        i
        for i, (mtype, tag) in enumerate(descriptors)
        if mtype is MessageType.PCN and tag == "a"
    ]
    for _ in range(min(take, len(pcn_a))):
        box.recv(mtype=MessageType.PCN, tag="a", timeout=0.5)
    leftover = [m.payload for m in box.drain()]
    taken = pcn_a[: min(take, len(pcn_a))]
    assert leftover == [i for i in range(len(descriptors)) if i not in taken]
