"""The section-placement engine: plans, the mover, and elastic membership.

Planned migration and failure recovery share exactly one code path that
moves a section (``SectionMover.execute_locked``); these tests exercise
the plan builders, the transactional move (commit, stale-plan refusal,
rollback on mid-plan failure), the migration barrier's interplay with
the perf layer (coalesced writes flushed, cached sections invalidated),
runtime membership growth, and the metrics-driven :class:`Rebalancer`.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.arrays import am_user, am_util
from repro.arrays.manager import get_array_manager
from repro.arrays.placement import (
    MigrationError,
    PlacementPlan,
    SectionMove,
)
from repro.arrays.rebalance import Rebalancer
from repro.core.darray import DistributedArray
from repro.faults import install_recovery
from repro.perf import get_perf_layer
from repro.status import Status
from repro.vp.machine import Machine

DISTRIB_2X2 = (("block", 2), ("block", 2))


@pytest.fixture
def machine():
    m = Machine(6, default_recv_timeout=10)
    am_util.load_all(m)
    return m


def make_array(machine, replication=0, procs=(0, 1, 2, 3)):
    return DistributedArray.create(
        machine, "double", (8, 8), list(procs), DISTRIB_2X2,
        replication=replication,
    )


def durability(machine, arr):
    return get_array_manager(machine).durability_state(arr.array_id)


# -- plan builders ------------------------------------------------------------


class TestPlanBuilders:
    def test_for_failure_moves_every_section_of_the_dead(self, machine):
        arr = make_array(machine, replication=1)
        state = durability(machine, arr)
        plan = PlacementPlan.for_failure(state, dead=2, spare=4)
        assert plan.reason == "recovery"
        assert plan.base_processors == (0, 1, 2, 3)
        assert plan.new_processors == (0, 1, 4, 3)
        assert plan.moves == (SectionMove(2, 2, 4),)
        assert plan.new_replica_map is not None

    def test_from_assignments_skips_satisfied_assignments(self, machine):
        arr = make_array(machine)
        state = durability(machine, arr)
        # Every section already on its requested owner: nothing to do.
        assert PlacementPlan.from_assignments(state, {0: 0, 3: 3}) is None

    def test_from_assignments_rejects_unknown_section(self, machine):
        arr = make_array(machine)
        state = durability(machine, arr)
        with pytest.raises(MigrationError, match="no section 9"):
            PlacementPlan.from_assignments(state, {9: 4})

    def test_from_assignments_rejects_occupied_destination(self, machine):
        arr = make_array(machine)
        state = durability(machine, arr)
        with pytest.raises(MigrationError, match="already holds a section"):
            PlacementPlan.from_assignments(state, {0: 1})

    def test_from_assignments_rejects_duplicate_destination(self, machine):
        arr = make_array(machine)
        state = durability(machine, arr)
        with pytest.raises(MigrationError, match="two sections"):
            PlacementPlan.from_assignments(state, {0: 4, 1: 4})

    def test_rebalance_is_none_when_already_placed(self, machine):
        arr = make_array(machine)
        state = durability(machine, arr)
        assert PlacementPlan.rebalance(state, machine) is None

    def test_rebalance_repairs_dead_owner(self, machine):
        arr = make_array(machine, replication=1)
        state = durability(machine, arr)
        machine.fail(1)
        plan = PlacementPlan.rebalance(state, machine)
        assert plan.moves == (SectionMove(1, 1, 4),)
        assert plan.new_processors == (0, 4, 2, 3)

    def test_rebalance_respects_explicit_targets(self, machine):
        arr = make_array(machine)
        state = durability(machine, arr)
        # Owner 3 is outside the target set: its section must move to a
        # spare target (4 or 5).
        plan = PlacementPlan.rebalance(state, machine, targets=[0, 1, 2, 4, 5])
        assert [m.section for m in plan.moves] == [3]
        assert plan.moves[0].dest in (4, 5)

    def test_rebalance_raises_when_no_spare(self):
        m = Machine(4, default_recv_timeout=10)
        am_util.load_all(m)
        arr = make_array(m, replication=1)
        state = durability(m, arr)
        m.fail(2)
        with pytest.raises(MigrationError, match="no spare processor"):
            PlacementPlan.rebalance(state, m)


# -- planned migration end to end ---------------------------------------------


class TestPlannedMigration:
    def test_migrate_preserves_contents_and_rewrites_membership(self, machine):
        arr = make_array(machine, replication=1)
        ref = np.arange(64, dtype=float).reshape(8, 8)
        arr.from_numpy(ref)

        moved = arr.migrate({2: 4})

        assert moved == [2]
        assert arr.processors == (0, 1, 4, 3)
        state = durability(machine, arr)
        assert state.processors == (0, 1, 4, 3)
        assert state.sections_migrated == 1
        assert state.sections_rebuilt == 0
        assert state.epoch == 1
        assert np.array_equal(arr.to_numpy(), ref)
        assert (
            am_user.verify_array(machine, arr.array_id, 2, [0, 0, 0, 0], "row")
            is Status.OK
        )

    def test_old_owner_no_longer_holds_a_section(self, machine):
        arr = make_array(machine)
        arr.from_numpy(np.ones((8, 8)))
        arr.migrate({2: 4})
        _section, status = am_user.find_local(machine, arr.array_id, 2)
        assert status is Status.NOT_FOUND

    def test_survivors_route_through_new_membership(self, machine):
        arr = make_array(machine)
        arr.from_numpy(np.full((8, 8), 3.0))
        arr.migrate({3: 5})
        value, status = am_user.read_element(
            machine, arr.array_id, (7, 7), processor=1
        )
        assert status is Status.OK and value == 3.0

    def test_migrated_array_still_recovers_from_failure(self, machine):
        install_recovery(machine)
        arr = make_array(machine, replication=1)
        ref = np.arange(64, dtype=float).reshape(8, 8)
        arr.from_numpy(ref)
        arr.migrate({0: 4})
        machine.fail(4)  # kill the adopted owner: replicas must cover it
        state = durability(machine, arr)
        assert 4 not in state.processors
        assert state.sections_rebuilt == 1
        assert np.array_equal(arr.to_numpy(), ref)

    def test_writes_after_migration_land_on_new_owner(self, machine):
        arr = make_array(machine)
        arr.from_numpy(np.zeros((8, 8)))
        arr.migrate({1: 4})
        arr[0, 7] = 9.0  # section 1's corner
        block_origin, block = arr.local_block(4)
        assert block_origin == (0, 4)
        assert block[0, 3] == 9.0

    def test_migration_is_an_error_for_unknown_array(self, machine):
        from repro.arrays.record import ArrayID

        get_array_manager(machine)
        bogus = ArrayID(creating_processor=0, serial=999)
        _moved, status = am_user.migrate_sections(machine, bogus, {0: 4})
        assert status is Status.NOT_FOUND

    def test_invalid_assignment_is_invalid_not_crash(self, machine):
        arr = make_array(machine)
        _moved, status = am_user.migrate_sections(
            machine, arr.array_id, {0: 1}
        )
        assert status is Status.INVALID


# -- transactional failure handling -------------------------------------------


class TestMoveTransactionality:
    def test_stale_plan_is_refused(self, machine):
        arr = make_array(machine)
        arr.from_numpy(np.ones((8, 8)))
        state = durability(machine, arr)
        stale = PlacementPlan.from_assignments(state, {2: 4})
        arr.migrate({2: 5})  # membership moves on before the plan runs
        _moved, status = am_user.migrate_sections(
            machine, arr.array_id, stale
        )
        assert status is Status.ERROR
        log = get_array_manager(machine).migrations[-1]
        assert "stale plan" in log["error"]
        # The refused plan changed nothing.
        assert durability(machine, arr).processors == (0, 1, 5, 3)
        assert np.array_equal(arr.to_numpy(), np.ones((8, 8)))

    def test_dead_destination_rolls_back_and_preserves_contents(
        self, machine
    ):
        arr = make_array(machine, replication=1)
        ref = np.arange(64, dtype=float).reshape(8, 8)
        arr.from_numpy(ref)
        machine.fail(4)  # the destination is already a corpse

        _moved, status = am_user.migrate_sections(
            machine, arr.array_id, {2: 4}
        )

        assert status is Status.ERROR
        state = durability(machine, arr)
        # Rollback restored the yielded section onto its original owner
        # under a fresh epoch (stragglers from the abandoned attempt are
        # refused by the epoch guard).
        assert state.processors == (0, 1, 2, 3)
        assert state.epoch >= 2
        assert state.sections_migrated == 0
        assert np.array_equal(arr.to_numpy(), ref)
        mover = get_array_manager(machine).mover
        assert mover.aborts == 1

    def test_rolled_back_array_accepts_further_writes(self, machine):
        arr = make_array(machine, replication=1)
        arr.from_numpy(np.zeros((8, 8)))
        machine.fail(5)
        _moved, status = am_user.migrate_sections(
            machine, arr.array_id, {1: 5}
        )
        assert status is Status.ERROR
        arr.from_numpy(np.full((8, 8), 2.0))
        assert np.array_equal(arr.to_numpy(), np.full((8, 8), 2.0))
        assert (
            am_user.verify_array(machine, arr.array_id, 2, [0, 0, 0, 0], "row")
            is Status.OK
        )


# -- the migration barrier and the perf layer ---------------------------------


class TestPerfInterplay:
    def test_pending_coalesced_writes_flush_before_the_move(self, machine):
        arr = make_array(machine)
        arr.from_numpy(np.zeros((8, 8)))
        perf = get_perf_layer(machine)
        arr[7, 7] = 5.0  # rides the write-behind buffer toward owner 3
        assert perf.coalescer.pending_ops(arr.array_id) == 1

        arr.migrate({3: 4})

        # The barrier drained the queue; the write landed on the *old*
        # owner before the section left it, and travelled with it.
        assert perf.coalescer.pending_ops(arr.array_id) == 0
        assert arr[7, 7] == 5.0

    def test_epoch_bump_invalidates_cached_sections(self, machine):
        am_user.set_read_cache(machine, True)
        arr = make_array(machine)
        arr.from_numpy(np.arange(64, dtype=float).reshape(8, 8))
        assert arr[7, 7] == 63.0  # miss: populate the cache
        machine.reset_traffic()
        assert arr[7, 6] == 62.0  # hit: no messages
        assert machine.traffic_snapshot()["messages"] == 0

        arr.migrate({3: 4})

        # The cached copy is stamped with the old epoch: the next read
        # must refetch from the new owner, not serve the stale entry.
        machine.reset_traffic()
        assert arr[7, 7] == 63.0
        assert machine.traffic_snapshot()["messages"] > 0


# -- diagnostics --------------------------------------------------------------


class TestPlacementDiagnostics:
    def test_placement_map_updates_after_migration(self, machine):
        arr = make_array(machine, replication=1)
        arr.from_numpy(np.ones((8, 8)))
        before = durability(machine, arr).diagnostics()["placement"]
        assert before[2]["owner"] == 2

        arr.migrate({2: 4})

        after = durability(machine, arr).diagnostics()["placement"]
        assert after[2]["owner"] == 4
        assert 4 not in after[2]["backups"]
        assert all(
            isinstance(entry["backups"], list) for entry in after.values()
        )

    def test_placement_map_updates_after_recovery(self, machine):
        install_recovery(machine)
        arr = make_array(machine, replication=1)
        arr.from_numpy(np.ones((8, 8)))
        machine.fail(1)
        placement = durability(machine, arr).diagnostics()["placement"]
        assert placement[1]["owner"] == 4
        assert 1 not in {entry["owner"] for entry in placement.values()}

    def test_machine_diagnostics_expose_placement(self, machine):
        arr = make_array(machine, replication=1)
        arr.migrate({0: 5})
        arrays = machine.diagnostics()["arrays"]
        entry = arrays[str(arr.array_id.as_tuple())]
        assert entry["placement"][0]["owner"] == 5
        assert entry["sections_migrated"] == 1

    def test_migration_log_records_moves(self, machine):
        arr = make_array(machine)
        arr.migrate({1: 4})
        log = get_array_manager(machine).migrations[-1]
        assert log["ok"]
        assert log["moves"] == [(1, 1, 4)]
        assert log["epoch"] == 1


# -- runtime membership -------------------------------------------------------


class TestAddProcessor:
    def test_add_processor_grows_the_machine(self, machine):
        assert machine.num_nodes == 6
        number = machine.add_processor()
        assert number == 6
        assert machine.num_nodes == 7
        assert not machine.is_failed(6)
        assert machine.diagnostics()["added_processors"] == [6]

    def test_migrate_onto_added_processor(self, machine):
        arr = make_array(machine, replication=1)
        ref = np.arange(64, dtype=float).reshape(8, 8)
        arr.from_numpy(ref)
        new = machine.add_processor()
        moved = arr.migrate({0: new})
        assert moved == [0]
        assert arr.processors[0] == new
        assert np.array_equal(arr.to_numpy(), ref)

    def test_added_processor_serves_requests(self, machine):
        arr = make_array(machine)
        arr.from_numpy(np.full((8, 8), 7.0))
        new = machine.add_processor()
        arr.migrate({2: new})
        value, status = am_user.read_element(
            machine, arr.array_id, (4, 0), processor=new
        )
        assert status is Status.OK and value == 7.0


# -- the metrics-driven rebalancer --------------------------------------------


class TestRebalancer:
    def test_loads_empty_without_observer(self, machine):
        assert Rebalancer(machine).loads() == {}

    def test_invalid_ratio_rejected(self, machine):
        with pytest.raises(ValueError, match="imbalance_ratio"):
            Rebalancer(machine, imbalance_ratio=0.5)

    def test_loads_fold_depth_and_wait(self, machine):
        observer = machine.observe()
        try:
            observer.metrics.gauge("repro_mailbox_depth", vp=1).set(10)
            observer.metrics.histogram(
                "repro_mailbox_recv_wait_seconds", vp=2
            ).observe(4.0)
            loads = Rebalancer(machine, wait_weight=1.0).loads()
        finally:
            observer.close()
        assert loads[1] == 10.0
        assert loads[2] == -4.0  # idle wait discounts the score
        assert loads[0] == 0.0  # untouched VPs still get a score

    def test_propose_repairs_dead_owner_unconditionally(self, machine):
        # No recovery installed: the dead owner stays in the membership
        # until the rebalancer repairs it.
        arr = make_array(machine, replication=1)
        ref = np.arange(64, dtype=float).reshape(8, 8)
        arr.from_numpy(ref)
        machine.fail(2)

        rebalancer = Rebalancer(machine)
        plans = rebalancer.propose()
        assert len(plans) == 1
        assert [m.section for m in plans[0].moves] == [2]

        applied = rebalancer.step()
        assert applied[0]["ok"] and applied[0]["moved"] == [2]
        state = durability(machine, arr)
        assert 2 not in state.processors
        assert np.array_equal(arr.to_numpy(), ref)
        assert rebalancer.history == applied

    def test_propose_spreads_hottest_owner_to_coldest_spare(self, machine):
        arr = make_array(machine, replication=1)
        arr.from_numpy(np.ones((8, 8)))
        observer = machine.observe()
        try:
            observer.metrics.gauge("repro_mailbox_depth", vp=1).set(50)
            rebalancer = Rebalancer(machine, min_load=1.0)
            plans = rebalancer.propose()
            assert len(plans) == 1
            move = plans[0].moves[0]
            assert move.section == 1 and move.source == 1
            assert move.dest in (4, 5)

            applied = rebalancer.step()
        finally:
            observer.close()
        assert applied and applied[0]["ok"]
        assert 1 not in durability(machine, arr).processors
        assert np.array_equal(arr.to_numpy(), np.ones((8, 8)))

    def test_balanced_machine_proposes_nothing(self, machine):
        make_array(machine, replication=1)
        observer = machine.observe()
        try:
            assert Rebalancer(machine).propose() == []
        finally:
            observer.close()

    def test_migration_counter_advances(self, machine):
        observer = machine.observe()
        try:
            arr = make_array(machine)
            arr.migrate({0: 4})
            counters = [
                inst
                for inst in observer.metrics.instruments()
                if inst.name == "repro_sections_migrated_total"
            ]
        finally:
            observer.close()
        assert counters and counters[0].value == 1
