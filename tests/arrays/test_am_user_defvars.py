"""PCN-style dataflow use of the am_user library procedures.

The paper's procedures return results through definitional out-parameters,
which callers use for synchronisation (§4.1.2: "The Status parameter is a
definitional variable that becomes defined only after the operation has
been completed, so callers can use it for synchronization purposes").
These tests drive the library through explicitly supplied DefVars, the way
a PCN program would.
"""

from __future__ import annotations

import pytest

from repro.arrays import am_user, am_util
from repro.pcn.composition import choice, default, need, par
from repro.pcn.defvar import DefVar
from repro.pcn.process import spawn
from repro.status import Status
from repro.vp.machine import Machine


@pytest.fixture
def m4():
    machine = Machine(4)
    am_util.load_all(machine)
    return machine


def procs(machine):
    return am_util.node_array(0, 1, machine.num_nodes)


class TestOutParameterStyle:
    def test_create_array_defines_supplied_vars(self, m4):
        array_id = DefVar("A1")
        status = DefVar("Stat1")
        am_user.create_array(
            m4, "double", (8,), procs(m4), ["block"],
            array_id_out=array_id, status_out=status,
        )
        assert status.read() is Status.OK.value or Status(status.read()) is Status.OK
        assert array_id.read() is not None

    def test_sequential_composition_via_status_vars(self, m4):
        """The §4.1.3 example block: create then free, each step's
        completion visible through its Status variable."""
        a1, stat1, stat2 = DefVar("A1"), DefVar("Stat1"), DefVar("Stat2")
        am_user.create_array(
            m4, "double", (8,), procs(m4), ["block"],
            array_id_out=a1, status_out=stat1,
        )
        am_user.free_array(m4, a1.read(), status_out=stat2)
        assert Status(stat1.read()) is Status.OK
        assert Status(stat2.read()) is Status.OK

    def test_consumer_suspends_on_element_var(self, m4):
        """A PCN process reading an element out-variable suspends until
        the read completes — dataflow synchronisation through the library."""
        aid, _ = am_user.create_array(m4, "double", (8,), procs(m4), ["block"])
        am_user.write_element(m4, aid, (3,), 1.25)
        element = DefVar("Element")
        got = []

        consumer = spawn(lambda: got.append(element.read()))
        am_user.read_element(m4, aid, (3,), element_out=element)
        consumer.join(timeout=5)
        assert got == [1.25]

    def test_choice_on_status(self, m4):
        """Guard a choice composition with a library Status variable."""
        status = DefVar("Status")
        aid, _ = am_user.create_array(m4, "double", (8,), procs(m4), ["block"])
        am_user.write_element(m4, aid, (0,), 1.0, status_out=status)
        outcome = choice(
            (lambda: need(status) == int(Status.OK), lambda: "wrote"),
            (default, lambda: "failed"),
        )
        assert outcome == "wrote"

    def test_parallel_composition_of_library_calls(self, m4):
        """Two array creations composed in parallel; both Status variables
        defined, both arrays usable."""
        ids = [DefVar("A"), DefVar("B")]
        stats = [DefVar("SA"), DefVar("SB")]

        par(
            lambda: am_user.create_array(
                m4, "double", (8,), procs(m4), ["block"],
                array_id_out=ids[0], status_out=stats[0],
            ),
            lambda: am_user.create_array(
                m4, "int", (4,), procs(m4), ["block"],
                array_id_out=ids[1], status_out=stats[1],
            ),
        )
        assert all(Status(s.read()) is Status.OK for s in stats)
        assert ids[0].read() != ids[1].read()
