"""Border specifications, including foreign_borders (§4.2.1, §5.1.7)."""

from __future__ import annotations

import pytest

from repro.arrays.borders import (
    BorderSpecError,
    borders_for_program,
    make_border_provider,
    resolve_borders,
)


class TestPlainSpecs:
    def test_none_means_no_borders(self):
        assert resolve_borders(None, 2) == (0, 0, 0, 0)

    def test_empty_sequence_means_no_borders(self):
        assert resolve_borders([], 3) == (0,) * 6

    def test_explicit_list(self):
        """The §4.2.1 example: [2, 2, 1, 1] = two rows above/below, one
        column either side."""
        assert resolve_borders([2, 2, 1, 1], 2) == (2, 2, 1, 1)

    def test_wrong_length_rejected(self):
        with pytest.raises(BorderSpecError, match="2\\*rank"):
            resolve_borders([1, 1], 2)

    def test_negative_rejected(self):
        with pytest.raises(BorderSpecError):
            resolve_borders([1, -1], 1)

    def test_non_sequence_rejected(self):
        with pytest.raises(BorderSpecError):
            resolve_borders(3.14, 1)


class TestForeignBorders:
    def test_program_with_border_query_attribute(self):
        """The §5.1.7 protocol: the called program supplies borders per
        parameter number at array-creation time."""

        def fake_dp_program(ctx, *args):
            pass

        fake_dp_program.border_query = make_border_provider(
            {1: (2, 2), 2: (1, 1)}
        )
        spec = borders_for_program(fake_dp_program, 1)
        assert spec == ("foreign_borders", fake_dp_program, 1)
        assert resolve_borders(spec, 1) == (2, 2)
        assert resolve_borders(("foreign_borders", fake_dp_program, 2), 1) == (1, 1)

    def test_plain_callable_as_program(self):
        spec = ("foreign_borders", lambda parm, rank: (parm,) * (2 * rank), 3)
        assert resolve_borders(spec, 2) == (3, 3, 3, 3)

    def test_default_for_unknown_parameter(self):
        provider = make_border_provider({1: (5, 5)}, default=(0, 0))
        assert provider(9, 1) == (0, 0)

    def test_zero_default_without_explicit_default(self):
        provider = make_border_provider({})
        assert provider(1, 2) == (0, 0, 0, 0)

    def test_wrong_arity_tuple_rejected(self):
        with pytest.raises(BorderSpecError):
            resolve_borders(("foreign_borders", lambda p, r: (0, 0)), 1)

    def test_program_returning_wrong_length_rejected(self):
        spec = ("foreign_borders", lambda parm, rank: (1, 1, 1), 0)
        with pytest.raises(BorderSpecError):
            resolve_borders(spec, 2)

    def test_uncallable_program_rejected(self):
        with pytest.raises(BorderSpecError):
            resolve_borders(("foreign_borders", object(), 1), 1)


class TestInternalBordersForm:
    def test_borders_tuple_calls_provider(self):
        """The ("borders", Module, Program, Parm_num) internal form the
        transformation rewrites foreign_borders into (§5.1.7)."""
        calls = []

        def provider(parm_num, n_borders):
            calls.append((parm_num, n_borders))
            return (4,) * n_borders

        assert resolve_borders(("borders", provider, 7), 2) == (4, 4, 4, 4)
        assert calls == [(7, 4)]

    def test_unknown_tag_rejected(self):
        with pytest.raises(BorderSpecError, match="unknown"):
            resolve_borders(("mystery", None, 0), 1)
