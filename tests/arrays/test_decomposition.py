"""Block decomposition and processor grids (§3.2.1.1-§3.2.1.2)."""

from __future__ import annotations

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.arrays.decomposition import (
    BLOCK,
    STAR,
    Block,
    DecompositionError,
    balanced_grid,
    compute_grid,
    local_dims_for,
    normalize_distrib,
)


class TestNormalize:
    def test_block_string(self):
        assert normalize_distrib("block") == BLOCK

    def test_star_string(self):
        assert normalize_distrib("*") == STAR

    def test_paper_tuple_syntax(self):
        assert normalize_distrib(("block", 4)) == Block(4)

    def test_block_object_passthrough(self):
        assert normalize_distrib(Block(2)) == Block(2)

    def test_bad_spec_rejected(self):
        with pytest.raises(DecompositionError):
            normalize_distrib("cyclic")

    def test_bad_tuple_rejected(self):
        with pytest.raises(DecompositionError):
            normalize_distrib(("block", "x"))

    def test_nonpositive_block_rejected(self):
        with pytest.raises(DecompositionError):
            Block(0)


class TestPaperWorkedExamples:
    """The exact examples worked in §3.2.1.2 and Fig 3.6."""

    def test_default_square_grid_16_procs(self):
        # "a 2-dimensional array is by default distributed among 16
        # processors using a 4 by 4 processor grid"
        assert compute_grid((400, 200), 16, ("block", "block")) == (4, 4)

    def test_3d_with_one_specified_dim(self):
        # "a 3-dimensional array ... among 32 processors with the second
        # dimension ... specified as 2 ... has dimensions 4 by 2 by 4"
        grid = compute_grid((64, 64, 64), 32, ("block", ("block", 2), "block"))
        assert grid == (4, 2, 4)

    def test_fig36_block_block(self):
        grid = compute_grid((400, 200), 16, ("block", "block"))
        assert local_dims_for((400, 200), grid) == (100, 50)

    def test_fig36_block2_block8(self):
        grid = compute_grid((400, 200), 16, (("block", 2), ("block", 8)))
        assert grid == (2, 8)
        assert local_dims_for((400, 200), grid) == (200, 25)

    def test_fig36_equivalent_partial_specs(self):
        # "block(2), block is equivalent, as is block, block(8)"
        a = compute_grid((400, 200), 16, (("block", 2), "block"))
        b = compute_grid((400, 200), 16, ("block", ("block", 8)))
        assert a == b == (2, 8)

    def test_fig36_block_star(self):
        # "block, * implies a 16-by-1 processor grid ... decomposition by
        # row only"
        grid = compute_grid((400, 200), 16, ("block", "*"))
        assert grid == (16, 1)
        assert local_dims_for((400, 200), grid) == (25, 200)

    def test_fig35_example(self):
        # Fig 3.5: 16x16 over 8 processors as a 4x2 grid, 2x4... the text
        # partitions into eight 2x4-element... wait: "eight 2 by 4 local
        # sections ... conceptually arranged as a 4 by 2 array" — sections
        # are 4x8?  The figure uses a 4x2 grid of 4x8 sections for 16x16.
        # (the worked element (2,5) -> processor (1,1), local (0,1) pins
        # the figure's array at 8x8: eight 2-by-4 sections on a 4-by-2
        # processor grid).
        grid = compute_grid((8, 8), 8, (("block", 4), ("block", 2)))
        assert grid == (4, 2)
        assert local_dims_for((8, 8), grid) == (2, 4)

    def test_grid_example_2by4_ok_3by3_not(self):
        # §3.2.1.1: "a 2 by 4 process grid would be acceptable, but a
        # 3 by 3 process grid would not" for 8 processors.
        assert compute_grid((16, 16), 8, (("block", 2), ("block", 4))) == (2, 4)
        with pytest.raises(DecompositionError):
            compute_grid((18, 18), 8, (("block", 3), ("block", 3)))


class TestValidation:
    def test_rank_mismatch(self):
        with pytest.raises(DecompositionError):
            compute_grid((8, 8), 4, ("block",))

    def test_grid_must_divide_dims(self):
        with pytest.raises(DecompositionError, match="does not divide"):
            compute_grid((10,), 4, ("block",))

    def test_specified_product_must_divide_p(self):
        with pytest.raises(DecompositionError):
            compute_grid((8, 8), 8, (("block", 3), "block"))

    def test_fully_specified_must_equal_p(self):
        with pytest.raises(DecompositionError):
            compute_grid((8, 8), 8, (("block", 2), ("block", 2)))

    def test_no_integer_root(self):
        with pytest.raises(DecompositionError, match="no exact integer"):
            compute_grid((8, 8), 8, ("block", "block"))

    def test_nonpositive_dim(self):
        with pytest.raises(DecompositionError):
            compute_grid((0, 8), 4, ("block", "block"))

    def test_zero_processors(self):
        with pytest.raises(DecompositionError):
            compute_grid((8,), 0, ("block",))

    def test_all_star_one_processor(self):
        assert compute_grid((8, 8), 1, ("*", "*")) == (1, 1)

    def test_star_means_no_decomposition(self):
        grid = compute_grid((6, 8), 4, ("*", ("block", 4)))
        assert grid == (1, 4)


grid_cases = st.integers(1, 4).flatmap(
    lambda rank: st.tuples(
        st.lists(
            st.integers(1, 4).map(lambda k: 2**k), min_size=rank, max_size=rank
        ),
        st.lists(st.integers(0, 2), min_size=rank, max_size=rank),
    )
)


@settings(max_examples=100, deadline=None)
@given(grid_cases)
def test_property_grid_product_equals_p_and_divides(case):
    """Any grid computed uses exactly P cells and divides every dim."""
    grid_exps, _ = case
    # build dims that each grid dim divides: dims = grid * multiplier
    dims = tuple(g * 3 for g in grid_exps)
    specs = tuple(("block", g) for g in grid_exps)
    p = 1
    for g in grid_exps:
        p *= g
    grid = compute_grid(dims, p, specs)
    assert grid == tuple(grid_exps)
    prod = 1
    for g in grid:
        prod *= g
    assert prod == p
    for d, g in zip(dims, grid):
        assert d % g == 0


@settings(max_examples=100, deadline=None)
@given(
    st.lists(st.sampled_from([2, 4, 8, 16, 32, 64]), min_size=1, max_size=3),
    st.sampled_from([1, 2, 4, 8]),
)
def test_property_balanced_grid_valid(dims, p):
    """The pythonic fallback always yields a legal grid when dims are
    powers of two and P is a power of two <= min(dims product)."""
    total = 1
    for d in dims:
        total *= d
    assume(p <= total)
    grid = balanced_grid(dims, p)
    prod = 1
    for d, g in zip(dims, grid):
        assert d % g == 0
        prod *= g
    assert prod == p
