"""Index arithmetic: global <-> (section, local) <-> storage (§3.2.1)."""

from __future__ import annotations

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arrays.layout import (
    COLUMN_MAJOR,
    ROW_MAJOR,
    ArrayLayout,
    flatten_index,
    normalize_indexing,
    unflatten_index,
)


class TestIndexingNames:
    def test_aliases(self):
        assert normalize_indexing("C") == ROW_MAJOR
        assert normalize_indexing("row") == ROW_MAJOR
        assert normalize_indexing("Fortran") == COLUMN_MAJOR
        assert normalize_indexing("column") == COLUMN_MAJOR

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            normalize_indexing("diagonal")


class TestFlatten:
    def test_row_major_2d(self):
        assert flatten_index((1, 2), (3, 4), ROW_MAJOR) == 6

    def test_column_major_2d(self):
        assert flatten_index((1, 2), (3, 4), COLUMN_MAJOR) == 7

    def test_rank_mismatch(self):
        with pytest.raises(ValueError):
            flatten_index((1,), (3, 4), ROW_MAJOR)

    def test_roundtrip_exhaustive_small(self):
        dims = (2, 3, 4)
        for order in (ROW_MAJOR, COLUMN_MAJOR):
            for idx in itertools.product(*[range(d) for d in dims]):
                flat = flatten_index(idx, dims, order)
                assert unflatten_index(flat, dims, order) == idx


def paper_layout(**overrides):
    """The Fig 3.5 configuration: 8x8 array, 4x2 grid, row-major."""
    spec = dict(
        dims=(8, 8),
        grid=(4, 2),
        borders=(0, 0, 0, 0),
        indexing=ROW_MAJOR,
        grid_indexing=ROW_MAJOR,
    )
    spec.update(overrides)
    return ArrayLayout(**spec)


class TestPaperWorkedIndices:
    def test_fig35_blacked_element(self):
        """§3.2.1.1: global (2,5) -> local (0,1) on processor (1,1);
        with row-major ordering that is element 1 of the section on
        processor 3."""
        layout = paper_layout()
        assert layout.owner_coords((2, 5)) == (1, 1)
        assert layout.local_indices((2, 5)) == (0, 1)
        section, local = layout.locate((2, 5))
        assert section == 3
        assert layout.storage_offset(local) == 1

    def test_fig38_row_vs_column_major_placement(self):
        """Fig 3.8: a 4x4 array X over 4 processors (0,2,4,6): X(0,1) goes
        to the second grid cell under row-major but the third under
        column-major."""
        row = ArrayLayout((4, 4), (2, 2), (0,) * 4, ROW_MAJOR, ROW_MAJOR)
        col = ArrayLayout((4, 4), (2, 2), (0,) * 4, COLUMN_MAJOR, COLUMN_MAJOR)
        # processors array is (0, 2, 4, 6); X(0,1)'s grid cell is (0,1).
        procs = (0, 2, 4, 6)
        assert procs[row.section_index(row.owner_coords((0, 2)))] == 2
        assert procs[col.section_index(col.owner_coords((0, 2)))] == 4

    def test_local_dims(self):
        assert paper_layout().local_dims == (2, 4)

    def test_local_dims_plus_with_borders(self):
        """§3.2.1.3 / Fig 3.7: a 4x2 section with borders (2,2,1,1) has
        bordered shape (8, 4)."""
        layout = ArrayLayout(
            (16, 4), (4, 2), (2, 2, 1, 1), ROW_MAJOR, ROW_MAJOR
        )
        assert layout.local_dims == (4, 2)
        assert layout.local_dims_plus == (8, 4)

    def test_storage_offset_respects_borders(self):
        layout = ArrayLayout((4, 4), (1, 1), (1, 1, 1, 1), ROW_MAJOR, ROW_MAJOR)
        # interior (0,0) sits at bordered (1,1) of a 6x6 buffer -> 7.
        assert layout.storage_offset((0, 0)) == 7


class TestValidation:
    def test_bad_grid_rank(self):
        with pytest.raises(ValueError):
            ArrayLayout((8,), (2, 2), (0, 0), ROW_MAJOR, ROW_MAJOR)

    def test_bad_border_count(self):
        with pytest.raises(ValueError):
            ArrayLayout((8,), (2,), (0,), ROW_MAJOR, ROW_MAJOR)

    def test_indivisible_grid(self):
        with pytest.raises(ValueError):
            ArrayLayout((9,), (2,), (0, 0), ROW_MAJOR, ROW_MAJOR)

    def test_out_of_range_index(self):
        with pytest.raises(IndexError):
            paper_layout().locate((8, 0))

    def test_negative_index(self):
        with pytest.raises(IndexError):
            paper_layout().locate((-1, 0))

    def test_wrong_rank_index(self):
        with pytest.raises(ValueError):
            paper_layout().locate((1,))


@st.composite
def layout_strategy(draw):
    rank = draw(st.integers(1, 3))
    grid = tuple(draw(st.sampled_from([1, 2, 4])) for _ in range(rank))
    mult = tuple(draw(st.integers(1, 3)) for _ in range(rank))
    dims = tuple(g * m for g, m in zip(grid, mult))
    borders = tuple(
        draw(st.integers(0, 2)) for _ in range(2 * rank)
    )
    indexing = draw(st.sampled_from([ROW_MAJOR, COLUMN_MAJOR]))
    return ArrayLayout(dims, grid, borders, indexing, indexing)


@settings(max_examples=100, deadline=None)
@given(layout_strategy())
def test_property_locate_is_bijective(layout):
    """Every global index maps to exactly one (section, local) pair and
    back — the §3.2.1.1 'conversely' clause."""
    seen = set()
    for idx in itertools.product(*[range(d) for d in layout.dims]):
        section, local = layout.locate(idx)
        assert 0 <= section < layout.num_sections
        key = (section, local)
        assert key not in seen
        seen.add(key)
        assert layout.global_indices(section, local) == idx
    assert len(seen) == layout.global_size


@settings(max_examples=100, deadline=None)
@given(layout_strategy())
def test_property_storage_offsets_distinct_within_section(layout):
    """Within one section, distinct interior elements occupy distinct
    storage offsets, all inside the bordered buffer."""
    offsets = set()
    size_plus = layout.local_size_plus()
    for local in itertools.product(*[range(d) for d in layout.local_dims]):
        offset = layout.storage_offset(local)
        assert 0 <= offset < size_plus
        offsets.add(offset)
    assert len(offsets) == layout.local_size()


@settings(max_examples=50, deadline=None)
@given(layout_strategy())
def test_property_replace_borders_preserves_partition(layout):
    new = layout.replace_borders((1,) * (2 * layout.rank))
    assert new.dims == layout.dims
    assert new.grid == layout.grid
    assert new.local_dims == layout.local_dims
    assert all(b == 1 for b in new.borders)
