"""Utility library procedures (§C)."""

from __future__ import annotations

import io

import numpy as np
import pytest

from repro.arrays import am_util
from repro.pcn.defvar import DefVar
from repro.pcn.process import spawn
from repro.vp.machine import Machine


class TestArrayBuilders:
    def test_tuple_to_int_array(self):
        out = am_util.tuple_to_int_array((3, 1, 4))
        assert out.dtype == np.int64
        assert list(out) == [3, 1, 4]

    def test_node_array_pattern(self):
        """§C.2: [first, first+stride, first+2*stride, ...]."""
        assert list(am_util.node_array(4, 2, 3)) == [4, 6, 8]

    def test_node_array_count_zero(self):
        assert list(am_util.node_array(0, 1, 0)) == []

    def test_node_array_negative_count(self):
        with pytest.raises(ValueError):
            am_util.node_array(0, 1, -1)

    def test_processors_of(self):
        m = Machine(5)
        assert list(am_util.processors_of(m)) == [0, 1, 2, 3, 4]


class TestLoadAll:
    def test_load_am_defines_done(self):
        m = Machine(2)
        done = DefVar("Done")
        out = am_util.load_all(m, "am", done)
        assert out is done
        assert done.data()
        assert m.server.provides("create_array")

    def test_unknown_module_rejected(self):
        with pytest.raises(ValueError):
            am_util.load_all(Machine(1), "mystery")


class TestAtomicPrint:
    def test_single_line_with_values(self):
        buf = io.StringIO()
        am_util.atomic_print("The value of X is ", 1, ".", file=buf)
        assert buf.getvalue() == "The value of X is 1.\n"

    def test_waits_for_defvars(self):
        """§C.4: the line prints only after all referenced definition
        variables become defined."""
        buf = io.StringIO()
        x = DefVar("X")
        proc = spawn(am_util.atomic_print, "X=", x, file=buf)
        assert buf.getvalue() == ""
        x.define(9)
        proc.join(timeout=5)
        assert buf.getvalue() == "X=9\n"

    def test_concurrent_prints_do_not_interleave(self):
        buf = io.StringIO()
        procs = [
            spawn(am_util.atomic_print, f"line-{i}-", "a" * 50, file=buf)
            for i in range(8)
        ]
        for p in procs:
            p.join(timeout=5)
        lines = buf.getvalue().splitlines()
        assert len(lines) == 8
        for line in lines:
            assert line.endswith("a" * 50)


class TestCombiners:
    def test_max(self):
        assert am_util.max_combine(3, 5) == 5

    def test_max_arrays(self):
        out = am_util.max_combine(np.array([1, 9]), np.array([5, 2]))
        assert list(out) == [5, 9]

    def test_min(self):
        assert am_util.min_combine(3, 5) == 3

    def test_sum(self):
        assert am_util.sum_combine(2, 3) == 5
