"""Durable-array unit tests: replica maps, replicated writes, epochs,
checkpoint/restore, and durability diagnostics."""

import numpy as np
import pytest

from repro.arrays import am_user, am_util
from repro.arrays.durability import (
    REPLICA_UPDATE_KIND,
    ArraySnapshot,
    ReplicaMap,
    ReplicaUpdate,
    replica_store_for,
)
from repro.arrays.layout import ArrayLayout
from repro.arrays.manager import get_array_manager
from repro.arrays.record import ArrayID
from repro.core.darray import DistributedArray
from repro.status import Status
from repro.vp.fabric import TrafficMeter
from repro.vp.machine import Machine

DISTRIB_2X2 = (("block", 2), ("block", 2))


@pytest.fixture
def machine():
    m = Machine(6, default_recv_timeout=10)
    am_util.load_all(m)
    return m


def make_array(machine, replication, dims=(8, 8), procs=(0, 1, 2, 3)):
    return DistributedArray.create(
        machine, "double", dims, list(procs), DISTRIB_2X2,
        replication=replication,
    )


# -- ReplicaMap ---------------------------------------------------------------


def layout_2x2():
    return ArrayLayout(
        dims=(8, 8), grid=(2, 2), borders=(0, 0, 0, 0),
        indexing="row", grid_indexing="row",
    )


def test_replica_chains_ring_placement():
    chains = layout_2x2().replica_chains((10, 11, 12, 13), 2)
    assert chains == [(11, 12), (12, 13), (13, 10), (10, 11)]


def test_replica_chains_never_include_owner():
    procs = (0, 1, 2, 3)
    for k in range(4):
        for s, chain in enumerate(layout_2x2().replica_chains(procs, k)):
            assert len(chain) == k
            assert procs[s] not in chain


def test_replica_chains_rejects_bad_replication():
    with pytest.raises(ValueError):
        layout_2x2().replica_chains((0, 1, 2, 3), 4)
    with pytest.raises(ValueError):
        layout_2x2().replica_chains((0, 1, 2, 3), -1)


def test_replica_map_is_deterministic():
    lay = layout_2x2()
    a = ReplicaMap.assign(lay, (0, 1, 2, 3), 1)
    b = ReplicaMap.assign(lay, (0, 1, 2, 3), 1)
    assert a == b
    assert a.backups_for(3) == (0,)
    assert a.hosts() == {0, 1, 2, 3}


def test_create_array_rejects_excess_replication(machine):
    _, status = am_user.create_array(
        machine, "double", (8, 8), [0, 1, 2, 3], DISTRIB_2X2, replication=4
    )
    assert status is Status.INVALID


# -- replicated writes --------------------------------------------------------


def test_writes_mirror_to_backups(machine):
    arr = make_array(machine, replication=1)
    ref = np.arange(64, dtype=float).reshape(8, 8)
    arr.from_numpy(ref)
    state = get_array_manager(machine).durability_state(arr.array_id)
    for section in range(4):
        for backup in state.replica_map.backups_for(section):
            entry = replica_store_for(
                machine.processor(backup)
            ).fetch(arr.array_id, section)
            assert entry is not None
            _epoch, mirror = entry
            origin, primary = arr.local_block(state.processors[section])
            assert np.array_equal(mirror, primary)


def test_element_write_mirrors(machine):
    arr = make_array(machine, replication=2)
    arr[5, 6] = 42.0
    # The read is a flush point for the write-behind coalescer: it forces
    # the queued write (and its fused replica update) out to the mirrors.
    assert arr[5, 6] == 42.0
    state = get_array_manager(machine).durability_state(arr.array_id)
    section, local = arr.layout.locate((5, 6))
    for backup in state.replica_map.backups_for(section):
        _epoch, mirror = replica_store_for(
            machine.processor(backup)
        ).fetch(arr.array_id, section)
        assert mirror[local] == 42.0


def test_replica_updates_visible_to_traffic_meter(machine):
    meter = TrafficMeter()
    machine.transport_stack.push(meter)
    try:
        arr = make_array(machine, replication=1)
        arr.from_numpy(np.ones((8, 8)))
        counts = meter.snapshot()["by_kind"]
        # One whole-array region write = 4 section writes x 1 backup each.
        assert counts.get(REPLICA_UPDATE_KIND, (0, 0))[0] >= 4
    finally:
        machine.transport_stack.remove(meter)


def test_unreplicated_writes_ship_no_replica_messages(machine):
    meter = TrafficMeter()
    machine.transport_stack.push(meter)
    try:
        arr = make_array(machine, replication=0)
        arr.from_numpy(np.ones((8, 8)))
        assert REPLICA_UPDATE_KIND not in meter.snapshot()["by_kind"]
    finally:
        machine.transport_stack.remove(meter)


def test_stale_replica_update_rejected(machine):
    arr = make_array(machine, replication=1)
    arr.from_numpy(np.zeros((8, 8)))
    state = get_array_manager(machine).durability_state(arr.array_id)
    backup = state.replica_map.backups_for(0)[0]
    store = replica_store_for(machine.processor(backup))
    current_epoch, _ = store.fetch(arr.array_id, 0)
    stale = ReplicaUpdate(
        array_id=arr.array_id, section=0, epoch=current_epoch - 1,
        op="section", shape=arr.layout.local_dims, type_name="double",
        data=np.full(arr.layout.local_dims, 99.0),
    )
    assert not store.apply(stale)
    _epoch, mirror = store.fetch(arr.array_id, 0)
    assert not np.any(mirror == 99.0)


# -- checkpoint / restore -----------------------------------------------------


def test_checkpoint_restore_round_trip(machine):
    arr = make_array(machine, replication=0)
    ref = np.arange(64, dtype=float).reshape(8, 8)
    arr.from_numpy(ref)
    snapshot = arr.checkpoint()
    assert isinstance(snapshot, ArraySnapshot)
    assert np.array_equal(snapshot.assemble(), ref)
    arr.from_numpy(np.zeros((8, 8)))
    arr.restore(snapshot)
    assert np.array_equal(arr.to_numpy(), ref)


def test_checkpoint_and_restore_advance_the_epoch(machine):
    arr = make_array(machine, replication=1)
    state = get_array_manager(machine).durability_state(arr.array_id)
    assert state.epoch == 0
    snap1 = arr.checkpoint()
    assert snap1.epoch == 1 and state.epoch == 1
    snap2 = arr.checkpoint()
    assert snap2.epoch == 2 and state.epoch == 2
    arr.restore(snap1)
    assert state.epoch == 3  # restore always moves forward, never back
    assert state.last_checkpoint_epoch == 2


def test_restore_rejects_foreign_snapshot(machine):
    arr = make_array(machine, replication=0)
    other = make_array(machine, replication=0)
    snapshot = other.checkpoint()
    status = am_user.restore_array(machine, arr.array_id, snapshot)
    assert status is Status.INVALID


def test_checkpoint_unknown_array(machine):
    snapshot, status = am_user.checkpoint_array(machine, ArrayID(0, 999))
    assert snapshot is None
    assert status is Status.NOT_FOUND


def test_checkpoint_reseeds_nothing_but_restore_reseeds_mirrors(machine):
    arr = make_array(machine, replication=1)
    ref = np.arange(64, dtype=float).reshape(8, 8)
    arr.from_numpy(ref)
    snapshot = arr.checkpoint()
    arr.from_numpy(ref * 2)
    arr.restore(snapshot)
    state = get_array_manager(machine).durability_state(arr.array_id)
    for section in range(4):
        backup = state.replica_map.backups_for(section)[0]
        epoch, mirror = replica_store_for(
            machine.processor(backup)
        ).fetch(arr.array_id, section)
        origin, primary = arr.local_block(state.processors[section])
        assert np.array_equal(mirror, primary)
        assert epoch == state.epoch


# -- diagnostics --------------------------------------------------------------


def test_diagnostics_reports_durability_state(machine):
    arr = make_array(machine, replication=1)
    arr.checkpoint()
    diag = machine.diagnostics()["arrays"][str(arr.array_id.as_tuple())]
    assert diag["replication"] == 1
    assert diag["epoch"] == 1
    assert diag["last_checkpoint_epoch"] == 1
    assert diag["sections_rebuilt"] == 0
    assert diag["stale_replica_updates_rejected"] == 0


def test_free_array_drops_durability_state(machine):
    arr = make_array(machine, replication=1)
    key = str(arr.array_id.as_tuple())
    assert key in machine.diagnostics()["arrays"]
    arr.free()
    assert key not in machine.diagnostics()["arrays"]


def test_find_info_exposes_replication_and_epoch(machine):
    arr = make_array(machine, replication=1)
    value, status = am_user.find_info(machine, arr.array_id, "replication")
    assert status is Status.OK and value == 1
    arr.checkpoint()
    value, status = am_user.find_info(
        machine, arr.array_id, "epoch", processor=1
    )
    assert status is Status.OK and value == 1
