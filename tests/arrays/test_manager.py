"""The array manager (§3.2.2.2, §5.1) through the am_user library layer
(§4.2)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.arrays import am_user, am_util
from repro.arrays.local_section import TRACKER
from repro.arrays.manager import get_array_manager, install_array_manager
from repro.arrays.record import ArrayID
from repro.status import Status
from repro.vp.machine import Machine


@pytest.fixture
def m16():
    machine = Machine(16)
    am_util.load_all(machine)
    return machine


def all_procs(machine):
    return am_util.node_array(0, 1, machine.num_nodes)


class TestCreate:
    def test_create_returns_unique_ids(self, m16):
        procs = all_procs(m16)
        a, st_a = am_user.create_array(m16, "double", (16,), procs, ["block"])
        b, st_b = am_user.create_array(m16, "double", (16,), procs, ["block"])
        assert st_a is Status.OK and st_b is Status.OK
        assert a != b
        assert isinstance(a, ArrayID)

    def test_array_id_carries_creating_processor(self, m16):
        procs = all_procs(m16)
        aid, _ = am_user.create_array(
            m16, "double", (16,), procs, ["block"], processor=5
        )
        assert aid.creating_processor == 5

    def test_create_on_processor_outside_distribution(self, m16):
        """§3.2.1.5: array creation can be performed on any processor,
        including one that holds no local section."""
        procs = am_util.node_array(1, 1, 4)  # processors 1..4
        aid, st = am_user.create_array(
            m16, "double", (8,), procs, ["block"], processor=0
        )
        assert st is Status.OK
        # Global operations work from the creating processor...
        st = am_user.write_element(m16, aid, (3,), 1.0, processor=0)
        assert st is Status.OK
        # ...but find_local there fails: no section on processor 0.
        _sec, st = am_user.find_local(m16, aid, processor=0)
        assert st is Status.NOT_FOUND

    def test_bad_type_invalid(self, m16):
        _aid, st = am_user.create_array(
            m16, "float128", (8,), all_procs(m16), ["block"] * 1
        )
        assert st is Status.INVALID

    def test_bad_grid_invalid(self, m16):
        _aid, st = am_user.create_array(
            m16, "double", (10,), all_procs(m16), ["block"]
        )  # 16 does not divide 10
        assert st is Status.INVALID

    def test_duplicate_processors_invalid(self, m16):
        _aid, st = am_user.create_array(
            m16, "double", (8,), [0, 0, 1, 2], ["block"]
        )
        assert st is Status.INVALID

    def test_out_of_range_processor_invalid(self, m16):
        _aid, st = am_user.create_array(
            m16, "double", (8,), [0, 1, 2, 99], ["block"]
        )
        assert st is Status.INVALID

    def test_bad_indexing_type_invalid(self, m16):
        _aid, st = am_user.create_array(
            m16, "double", (8,), all_procs(m16)[:4], ["block"],
            indexing_type="diagonal",
        )
        assert st is Status.INVALID

    def test_int_array(self, m16):
        procs = all_procs(m16)[:4]
        aid, st = am_user.create_array(m16, "int", (8,), procs, ["block"])
        assert st is Status.OK
        am_user.write_element(m16, aid, (0,), 7)
        value, _ = am_user.read_element(m16, aid, (0,))
        assert value == 7 and isinstance(value, int)


class TestElementAccess:
    def test_write_then_read(self, m16):
        procs = all_procs(m16)
        aid, _ = am_user.create_array(
            m16, "double", (16, 16), procs, ["block", "block"]
        )
        st = am_user.write_element(m16, aid, (3, 7), 2.5)
        assert st is Status.OK
        value, st = am_user.read_element(m16, aid, (3, 7))
        assert (value, st) == (2.5, Status.OK)

    def test_read_same_from_any_processor(self, m16):
        """§3.2.1.5: 'a request to read the first element of a distributed
        array returns the same value no matter where it is executed'."""
        procs = all_procs(m16)
        aid, _ = am_user.create_array(m16, "double", (16,), procs, ["block"])
        am_user.write_element(m16, aid, (0,), 42.0)
        values = {
            am_user.read_element(m16, aid, (0,), processor=p)[0]
            for p in range(16)
        }
        assert values == {42.0}

    def test_out_of_range_index_invalid(self, m16):
        aid, _ = am_user.create_array(
            m16, "double", (16,), all_procs(m16), ["block"]
        )
        _v, st = am_user.read_element(m16, aid, (16,))
        assert st is Status.INVALID
        st = am_user.write_element(m16, aid, (-1,), 0.0)
        assert st is Status.INVALID

    def test_wrong_rank_invalid(self, m16):
        aid, _ = am_user.create_array(
            m16, "double", (16,), all_procs(m16), ["block"]
        )
        _v, st = am_user.read_element(m16, aid, (0, 0))
        assert st is Status.INVALID

    def test_non_numeric_write_invalid(self, m16):
        aid, _ = am_user.create_array(
            m16, "double", (16,), all_procs(m16), ["block"]
        )
        st = am_user.write_element(m16, aid, (0,), "not a number")
        assert st is Status.INVALID

    def test_elements_land_in_correct_sections(self, m16):
        """Cross-check the manager against the layout arithmetic: write
        each element its own value, check each owner's section."""
        procs = all_procs(m16)[:4]
        aid, _ = am_user.create_array(m16, "double", (8,), procs, ["block"])
        for i in range(8):
            am_user.write_element(m16, aid, (i,), float(i))
        for rank, proc in enumerate(procs):
            section, st = am_user.find_local(m16, aid, processor=int(proc))
            assert st is Status.OK
            assert list(section.interior()) == [rank * 2.0, rank * 2.0 + 1]


class TestUnknownArray:
    def test_read_unknown_not_found(self, m16):
        _v, st = am_user.read_element(m16, ArrayID(0, 999), (0,))
        assert st is Status.NOT_FOUND

    def test_free_unknown_not_found(self, m16):
        assert am_user.free_array(m16, ArrayID(0, 999)) is Status.NOT_FOUND

    def test_garbage_id_not_found(self, m16):
        _v, st = am_user.read_element(m16, "not-an-id", (0,))
        assert st is Status.NOT_FOUND


class TestFree:
    def test_free_invalidates_everywhere(self, m16):
        procs = all_procs(m16)
        aid, _ = am_user.create_array(m16, "double", (16,), procs, ["block"])
        assert am_user.free_array(m16, aid) is Status.OK
        for p in (0, 3, 15):
            _v, st = am_user.read_element(m16, aid, (0,), processor=p)
            assert st is Status.NOT_FOUND

    def test_double_free_not_found(self, m16):
        aid, _ = am_user.create_array(
            m16, "double", (16,), all_procs(m16), ["block"]
        )
        am_user.free_array(m16, aid)
        assert am_user.free_array(m16, aid) is Status.NOT_FOUND

    def test_free_releases_storage(self, m16):
        live_before = TRACKER.live
        aid, _ = am_user.create_array(
            m16, "double", (16,), all_procs(m16), ["block"]
        )
        assert TRACKER.live == live_before + 16
        am_user.free_array(m16, aid)
        assert TRACKER.live == live_before


class TestFindInfo:
    @pytest.fixture
    def arr(self, m16):
        procs = all_procs(m16)
        aid, st = am_user.create_array(
            m16, "double", (400, 200), procs,
            (("block", 2), ("block", 8)), border_info=[1, 1, 2, 2],
        )
        assert st is Status.OK
        return aid

    def test_type(self, m16, arr):
        assert am_user.find_info(m16, arr, "type") == ("double", Status.OK)

    def test_dimensions(self, m16, arr):
        assert am_user.find_info(m16, arr, "dimensions")[0] == [400, 200]

    def test_processors(self, m16, arr):
        assert am_user.find_info(m16, arr, "processors")[0] == list(range(16))

    def test_grid_dimensions(self, m16, arr):
        assert am_user.find_info(m16, arr, "grid_dimensions")[0] == [2, 8]

    def test_local_dimensions(self, m16, arr):
        assert am_user.find_info(m16, arr, "local_dimensions")[0] == [200, 25]

    def test_borders(self, m16, arr):
        assert am_user.find_info(m16, arr, "borders")[0] == [1, 1, 2, 2]

    def test_local_dimensions_plus(self, m16, arr):
        assert am_user.find_info(m16, arr, "local_dimensions_plus")[0] == [202, 29]

    def test_indexing_types(self, m16, arr):
        assert am_user.find_info(m16, arr, "indexing_type")[0] == "row"
        assert am_user.find_info(m16, arr, "grid_indexing_type")[0] == "row"

    def test_unknown_selector_invalid(self, m16, arr):
        _out, st = am_user.find_info(m16, arr, "colour")
        assert st is Status.INVALID

    def test_info_identical_on_all_processors(self, m16, arr):
        results = {
            tuple(am_user.find_info(m16, arr, "grid_dimensions", processor=p)[0])
            for p in range(16)
        }
        assert results == {(2, 8)}


class TestVerifyArray:
    """The §4.2.7 examples, transcribed."""

    @pytest.fixture
    def pgms(self):
        def pgmA(ctx, *args):
            pass

        pgmA.border_query = lambda parm, rank: (2,) * (2 * rank)

        def pgmB(ctx, *args):
            pass

        pgmB.border_query = lambda parm, rank: (1,) * (2 * rank)
        return pgmA, pgmB

    def make(self, m16):
        procs = all_procs(m16)
        aid, st = am_user.create_array(
            m16, "double", (16, 16), procs, ("block", "block"),
            border_info=[2, 2, 2, 2], indexing_type="row",
        )
        assert st is Status.OK
        return aid

    def test_matching_borders_ok_no_copy(self, m16, pgms):
        pgmA, _ = pgms
        aid = self.make(m16)
        manager = get_array_manager(m16)
        copies_before = manager.request_counts.get("copy_local", 0)
        st = am_user.verify_array(
            m16, aid, 2, ("foreign_borders", pgmA, 1), "row"
        )
        assert st is Status.OK
        assert manager.request_counts.get("copy_local", 0) == copies_before

    def test_mismatched_borders_reallocates_and_preserves_data(self, m16, pgms):
        _, pgmB = pgms
        aid = self.make(m16)
        am_user.write_element(m16, aid, (5, 5), 3.25)
        st = am_user.verify_array(
            m16, aid, 2, ("foreign_borders", pgmB, 1), "row"
        )
        assert st is Status.OK
        assert am_user.find_info(m16, aid, "borders")[0] == [1, 1, 1, 1]
        # "unchanged interior (non-border) data"
        assert am_user.read_element(m16, aid, (5, 5))[0] == 3.25

    def test_indexing_mismatch_invalid(self, m16, pgms):
        pgmA, _ = pgms
        aid = self.make(m16)
        st = am_user.verify_array(
            m16, aid, 2, ("foreign_borders", pgmA, 1), "column"
        )
        assert st is Status.INVALID

    def test_rank_mismatch_invalid(self, m16):
        aid = self.make(m16)
        st = am_user.verify_array(m16, aid, 3, [1, 1, 1, 1, 1, 1], "row")
        assert st is Status.INVALID

    def test_unknown_array_not_found(self, m16):
        st = am_user.verify_array(m16, ArrayID(0, 999), 2, [], "row")
        assert st is Status.NOT_FOUND

    def test_explicit_border_list_also_works(self, m16):
        aid = self.make(m16)
        st = am_user.verify_array(m16, aid, 2, [0, 0, 0, 0], "row")
        assert st is Status.OK
        assert am_user.find_info(m16, aid, "local_dimensions_plus")[0] == [4, 4]


class TestColumnMajor:
    def test_fig38_placement(self, m16):
        """Fig 3.8: 4x4 array over processors (0,2,4,6); the second grid
        cell's data lands on processor 2 row-major but 4 column-major."""
        procs = [0, 2, 4, 6]
        for indexing, expected_proc in (("row", 2), ("column", 4)):
            aid, st = am_user.create_array(
                m16, "double", (4, 4), procs, ("block", "block"),
                indexing_type=indexing,
            )
            assert st is Status.OK
            am_user.write_element(m16, aid, (0, 2), 77.0)  # grid cell (0,1)
            section, st = am_user.find_local(
                m16, aid, processor=expected_proc
            )
            assert st is Status.OK
            assert 77.0 in np.asarray(section.interior())


class TestTraceAndCounters:
    def test_debug_manager_traces(self):
        machine = Machine(4)
        am_util.load_all(machine, "am_debug")
        manager = get_array_manager(machine)
        aid, _ = am_user.create_array(
            machine, "double", (4,), [0, 1, 2, 3], ["block"]
        )
        am_user.read_element(machine, aid, (0,))
        kinds = [entry[0] for entry in manager.trace_log]
        assert "create_array" in kinds
        assert "read_element" in kinds
        assert "read_element_local" in kinds

    def test_install_idempotent(self):
        machine = Machine(2)
        first = install_array_manager(machine)
        second = install_array_manager(machine)
        assert first is second
