"""Region-granular array RPC: one message per owning processor, not one
per element (the layered-fabric acceptance criterion)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.arrays import am_user, am_util
from repro.status import Status
from repro.vp.machine import Machine


@pytest.fixture
def m4():
    machine = Machine(4)
    am_util.load_all(machine)
    return machine


def make_vector(machine, n=16, procs=4):
    processors = am_util.node_array(0, 1, procs)
    array_id, status = am_user.create_array(
        machine, "double", (n,), processors, ["block"]
    )
    assert status is Status.OK
    return array_id


class TestRegionCorrectness:
    def test_read_region_round_trips_write_region(self, m4):
        array_id = make_vector(m4)
        values = np.arange(16, dtype=float)
        assert am_user.write_region(m4, array_id, [(0, 16)], values) is Status.OK
        data, status = am_user.read_region(m4, array_id, [(0, 16)])
        assert status is Status.OK
        assert np.array_equal(data, values)

    def test_partial_region_spanning_owners(self, m4):
        array_id = make_vector(m4)  # 16 elements, 4 per processor
        am_user.write_region(m4, array_id, [(0, 16)], np.arange(16.0))
        data, status = am_user.read_region(m4, array_id, [(3, 9)])
        assert status is Status.OK
        assert np.array_equal(data, np.arange(3.0, 9.0))

    def test_region_matches_elementwise_reads(self, m4):
        array_id = make_vector(m4)
        for i in range(16):
            am_user.write_element(m4, array_id, (i,), float(i * i))
        data, status = am_user.read_region(m4, array_id, [(2, 14)])
        assert status is Status.OK
        assert np.array_equal(data, np.array([float(i * i) for i in range(2, 14)]))

    def test_2d_region_crossing_grid(self, m4):
        processors = am_util.node_array(0, 1, 4)
        array_id, status = am_user.create_array(
            m4, "double", (8, 8), processors, [("block", 2), ("block", 2)]
        )
        assert status is Status.OK
        full = np.arange(64, dtype=float).reshape(8, 8)
        assert (
            am_user.write_region(m4, array_id, [(0, 8), (0, 8)], full)
            is Status.OK
        )
        # A centred patch intersecting all four sections.
        patch, status = am_user.read_region(m4, array_id, [(2, 6), (3, 7)])
        assert status is Status.OK
        assert np.array_equal(patch, full[2:6, 3:7])

    def test_invalid_region_is_rejected(self, m4):
        array_id = make_vector(m4)
        for region in ([(0, 17)], [(-1, 4)], [(4, 4)], [(0, 4), (0, 4)]):
            data, status = am_user.read_region(m4, array_id, region)
            assert status is Status.INVALID
            assert data is None
        assert (
            am_user.write_region(m4, array_id, [(0, 3)], np.zeros(4))
            is Status.INVALID  # shape mismatch
        )

    def test_unknown_array_not_found(self, m4):
        data, status = am_user.read_region(m4, "bogus", [(0, 4)])
        assert status is Status.NOT_FOUND
        assert data is None


class TestRegionMessageCounts:
    def test_read_region_routes_at_most_one_message_per_owner(self, m4):
        array_id = make_vector(m4)  # 4 owners, 4 elements each
        m4.reset_traffic()
        data, status = am_user.read_region(m4, array_id, [(0, 16)])
        assert status is Status.OK
        assert len(data) == 16
        assert m4.traffic_snapshot()["messages"] <= 4

    def test_write_region_routes_at_most_one_message_per_owner(self, m4):
        array_id = make_vector(m4)
        m4.reset_traffic()
        status = am_user.write_region(m4, array_id, [(0, 16)], np.ones(16))
        assert status is Status.OK
        assert m4.traffic_snapshot()["messages"] <= 4

    def test_region_beats_per_element_path(self, m4):
        """The acceptance criterion: O(owners) vs O(elements) messages."""
        array_id = make_vector(m4)

        m4.reset_traffic()
        data, status = am_user.read_region(m4, array_id, [(0, 16)])
        assert status is Status.OK
        region_messages = m4.traffic_snapshot()["messages"]

        m4.reset_traffic()
        for i in range(16):
            _, status = am_user.read_element(m4, array_id, (i,))
            assert status is Status.OK
        element_messages = m4.traffic_snapshot()["messages"]

        assert region_messages <= 4  # at most one per owning processor
        assert element_messages >= 12  # one per element on remote owners
        assert region_messages < element_messages

    def test_region_touching_one_owner_costs_at_most_one_message(self, m4):
        array_id = make_vector(m4)
        m4.reset_traffic()
        data, status = am_user.read_region(m4, array_id, [(4, 8)])
        assert status is Status.OK
        assert m4.traffic_snapshot()["messages"] == 1
        # Served from the handling node itself: zero messages.
        m4.reset_traffic()
        data, status = am_user.read_region(
            m4, array_id, [(0, 4)], processor=0
        )
        assert status is Status.OK
        assert m4.traffic_snapshot()["messages"] == 0


class TestLocalBlock:
    def test_get_local_block_origin_and_data(self, m4):
        array_id = make_vector(m4)
        am_user.write_region(m4, array_id, [(0, 16)], np.arange(16.0))
        for proc in range(4):
            block, status = am_user.get_local_block(m4, array_id, proc)
            assert status is Status.OK
            origin, data = block
            assert origin == (proc * 4,)
            assert np.array_equal(data, np.arange(16.0)[proc * 4 : proc * 4 + 4])

    def test_get_local_block_requires_local_section(self, m4):
        processors = am_util.node_array(1, 1, 3)  # nodes 1..3 only
        array_id, status = am_user.create_array(
            m4, "double", (6,), processors, ["block"]
        )
        assert status is Status.OK
        block, status = am_user.get_local_block(m4, array_id, 0)
        assert status is Status.NOT_FOUND
        assert block is None
