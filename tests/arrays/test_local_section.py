"""Local sections: flat storage, borders, explicit alloc/free (§3.2.1.3,
§5.1.5-§5.1.6)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arrays.local_section import TRACKER, LocalSection, dtype_for


class TestDtypes:
    def test_paper_types(self):
        assert dtype_for("int") == np.int64
        assert dtype_for("double") == np.float64

    def test_complex_extension(self):
        assert dtype_for("complex") == np.complex128

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            dtype_for("float128")


class TestStorageGeometry:
    def test_flat_storage_size_includes_borders(self):
        """§3.2.1.3: size = product of bordered local dims."""
        section = LocalSection("double", (4, 2), (2, 2, 1, 1), "row")
        assert section.local_dims_plus == (8, 4)
        assert section.flat().size == 32

    def test_interior_shape(self):
        section = LocalSection("double", (4, 2), (2, 2, 1, 1), "row")
        assert section.interior().shape == (4, 2)

    def test_interior_is_a_view_of_storage(self):
        section = LocalSection("double", (2, 2), (1, 1, 1, 1), "row")
        section.interior()[0, 0] = 9.0
        assert 9.0 in section.flat()

    def test_no_borders(self):
        section = LocalSection("int", (3,), (0, 0), "row")
        assert section.full().shape == (3,)
        assert section.interior().shape == (3,)

    def test_row_major_flat_layout(self):
        section = LocalSection("double", (2, 3), (0, 0, 0, 0), "row")
        section.interior()[...] = np.arange(6).reshape(2, 3)
        assert list(section.flat()) == [0, 1, 2, 3, 4, 5]

    def test_column_major_flat_layout(self):
        """The user chooses Fortran-style indexing (§3.2.1.3)."""
        section = LocalSection("double", (2, 3), (0, 0, 0, 0), "column")
        section.interior()[...] = np.arange(6).reshape(2, 3)
        assert list(section.flat()) == [0, 3, 1, 4, 2, 5]

    def test_read_write_elements(self):
        section = LocalSection("double", (2, 2), (1, 1, 1, 1), "row")
        section.write((1, 0), 5.5)
        assert section.read((1, 0)) == 5.5

    def test_interior_starts_zeroed(self):
        section = LocalSection("double", (4,), (1, 1), "row")
        assert np.all(section.interior() == 0.0)

    def test_bad_border_count(self):
        with pytest.raises(ValueError):
            LocalSection("double", (2, 2), (1, 1), "row")


class TestBorderSeparation:
    def test_borders_not_visible_through_interior(self):
        """§3.2.1.3: the task-parallel level sees only interior data."""
        section = LocalSection("double", (2, 2), (1, 1, 1, 1), "row")
        section.full()[0, :] = 99.0  # data-parallel writes a border row
        assert np.all(section.interior() != 99.0)

    def test_reallocate_with_borders_preserves_interior(self):
        section = LocalSection("double", (3, 3), (0, 0, 0, 0), "row")
        section.interior()[...] = np.arange(9).reshape(3, 3)
        bigger = section.reallocate_with_borders((2, 2, 2, 2))
        assert bigger.local_dims_plus == (7, 7)
        assert np.array_equal(
            bigger.interior(), np.arange(9).reshape(3, 3)
        )

    def test_reallocate_preserves_order(self):
        section = LocalSection("double", (2, 2), (1, 1, 1, 1), "column")
        replacement = section.reallocate_with_borders((0, 0, 0, 0))
        assert replacement.order == "F"


class TestExplicitLifetime:
    def test_free_releases_tracking(self):
        """The build/free primitives (§5.1.6): explicit deallocation, and
        the no-leak invariant the tracker checks."""
        live_before = TRACKER.live
        section = LocalSection("double", (8,), (0, 0), "row")
        assert TRACKER.live == live_before + 1
        section.free()
        assert TRACKER.live == live_before
        assert section.is_freed

    def test_double_free_is_safe(self):
        section = LocalSection("double", (2,), (0, 0), "row")
        section.free()
        section.free()  # no error, no double-count
        assert section.is_freed

    def test_use_after_free_raises(self):
        """§5.1.6: every use must be preceded by a data guard — using a
        freed pseudo-definitional array is an error."""
        section = LocalSection("double", (2,), (0, 0), "row")
        section.free()
        with pytest.raises(ValueError, match="freed"):
            section.interior()
        with pytest.raises(ValueError, match="freed"):
            section.flat()

    def test_nbytes(self):
        section = LocalSection("double", (4,), (1, 1), "row")
        assert section.nbytes() == 6 * 8
        section.free()


@settings(max_examples=50, deadline=None)
@given(
    st.lists(st.integers(1, 4), min_size=1, max_size=3),
    st.integers(0, 2),
    st.sampled_from(["row", "column"]),
)
def test_property_interior_embedding(local_dims, border, order):
    """Whatever is written through the interior view is read back exactly,
    for any border size and either ordering."""
    borders = (border,) * (2 * len(local_dims))
    section = LocalSection("double", local_dims, borders, order)
    data = np.random.default_rng(0).standard_normal(tuple(local_dims))
    section.interior()[...] = data
    assert np.array_equal(section.interior(), data)
    # Total non-interior cells untouched (still zero).
    total = section.full().size - section.interior().size
    assert np.count_nonzero(section.full()) <= data.size + 0
    section.free()
