"""Internal array representation (§5.1.3-§5.1.4)."""

from __future__ import annotations

import pytest

from repro.arrays.layout import ArrayLayout
from repro.arrays.local_section import LocalSection
from repro.arrays.record import SERIALS, ArrayID, ArrayRecord


def layout():
    return ArrayLayout((8, 8), (2, 2), (1, 1, 1, 1), "row", "row")


def record(**overrides):
    defaults = dict(
        array_id=ArrayID(0, 0),
        type_name="double",
        layout=layout(),
        processors=(0, 1, 2, 3),
        section=None,
    )
    defaults.update(overrides)
    return ArrayRecord(**defaults)


class TestArrayID:
    def test_is_two_tuple_of_ints(self):
        aid = ArrayID(3, 17)
        assert aid.as_tuple() == (3, 17)

    def test_equality_and_hash(self):
        assert ArrayID(1, 2) == ArrayID(1, 2)
        assert ArrayID(1, 2) != ArrayID(2, 1)
        assert len({ArrayID(0, 0), ArrayID(0, 0), ArrayID(0, 1)}) == 2

    def test_ordering(self):
        assert ArrayID(0, 1) < ArrayID(0, 2) < ArrayID(1, 0)

    def test_serials_distinguish_per_processor(self):
        a = SERIALS.next_for(5)
        b = SERIALS.next_for(5)
        c = SERIALS.next_for(6)
        assert b == a + 1
        # serials are per-processor counters
        assert SERIALS.next_for(6) == c + 1


class TestDerivedGeometry:
    def test_dims_and_grid(self):
        r = record()
        assert r.dims == (8, 8)
        assert r.grid_dims == (2, 2)
        assert r.local_dims == (4, 4)
        assert r.local_dims_plus == (6, 6)
        assert r.borders == (1, 1, 1, 1)

    def test_indexing_types(self):
        r = record()
        assert r.indexing_type == "row"
        assert r.grid_indexing_type == "row"

    def test_owner_of_translates_to_processor_numbers(self):
        r = record(processors=(10, 11, 12, 13))
        proc, local = r.owner_of((5, 2))
        # grid coords (1, 0) -> section 2 (row-major) -> processor 12
        assert proc == 12
        assert local == (1, 2)


class TestInfoDispatch:
    def test_all_selectors(self):
        r = record()
        assert r.info("type") == "double"
        assert r.info("dimensions") == [8, 8]
        assert r.info("processors") == [0, 1, 2, 3]
        assert r.info("grid_dimensions") == [2, 2]
        assert r.info("local_dimensions") == [4, 4]
        assert r.info("borders") == [1, 1, 1, 1]
        assert r.info("local_dimensions_plus") == [6, 6]
        assert r.info("indexing_type") == "row"
        assert r.info("grid_indexing_type") == "row"

    def test_unknown_selector(self):
        with pytest.raises(ValueError):
            record().info("weight")


class TestValidity:
    def test_record_with_section(self):
        section = LocalSection("double", (4, 4), (1, 1, 1, 1), "row")
        r = record(section=section)
        assert r.section is section
        section.free()

    def test_invalidation_flag(self):
        r = record()
        assert r.valid
        r.valid = False
        assert not r.valid
