"""TaskFarm x FailureDetector: park suspects, retire the confirmed dead,
revive false positives."""

from __future__ import annotations

import threading
import time

from repro.core.farm import TaskFarm
from repro.faults import (
    FaultPlan,
    FaultyTransport,
    PartitionCut,
    PartitionPlan,
)
from repro.health import FailureDetector, HealthState
from repro.vp.machine import Machine

INTERVAL = 0.02


def wait_until(predicate, timeout=10.0, interval=0.005):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


def harness(dead_after=10_000.0):
    """Machine with VP 2 isolatable; farm groups [(1,), (2,)]."""
    machine = Machine(3)
    plan = PartitionPlan([PartitionCut("iso", (2,), (0, 1))])
    plan.heal("iso")
    transport = FaultyTransport(
        machine, FaultPlan(seed=0), partitions=plan
    ).install()
    detector = FailureDetector(
        machine, interval=INTERVAL, suspect_after=2.0, dead_after=dead_after
    ).install()
    farm = TaskFarm([(1,), (2,)])
    farm.attach_detector(detector)
    return machine, plan, transport, detector, farm


def teardown(transport, detector, farm):
    farm.detach_detector()
    detector.close()
    transport.uninstall()


def test_suspected_group_parks_until_proven_alive():
    machine, plan, transport, detector, farm = harness()
    try:
        plan.cut("iso")
        assert wait_until(lambda: 1 in farm._quarantined)
        # Every job lands on the healthy group; the parked worker pulls
        # nothing and the run still completes.
        result = farm.run([lambda group: group for _ in range(6)], timeout=30.0)
        assert result.results == [(1,)] * 6
        assert result.jobs_per_group == [6, 0]
        assert result.dead_groups == []
        # Heal: the flap back to alive unparks the group.
        plan.heal("iso")
        assert wait_until(lambda: farm._quarantined == set())
        slow = lambda group: (time.sleep(0.02), group)[1]  # noqa: E731
        result = farm.run([slow for _ in range(8)], timeout=30.0)
        assert result.jobs_per_group[1] > 0
    finally:
        teardown(transport, detector, farm)


def test_inflight_timeout_on_parked_group_requeues_the_job():
    machine, plan, transport, detector, farm = harness()
    try:
        grabbed = threading.Event()
        release = threading.Event()

        def sticky(group):
            if group == (2,) and not release.is_set():
                grabbed.set()
                release.wait(timeout=20.0)
                raise TimeoutError("peer went silent mid-job")
            # The healthy group idles until the doomed group has its job
            # in flight, so one job is guaranteed to ride the timeout.
            grabbed.wait(timeout=20.0)
            return group

        def orchestrate():
            assert grabbed.wait(timeout=20.0)
            plan.cut("iso")
            assert wait_until(lambda: 1 in farm._quarantined)
            release.set()

        driver = threading.Thread(target=orchestrate)
        driver.start()
        result = farm.run([sticky, sticky], timeout=30.0)
        driver.join(timeout=20.0)
        # The job that timed out while its group was parked was requeued
        # and completed by the healthy group — not failed, not lost.
        assert sorted(result.results) == [(1,), (1,)]
        assert result.requeued_jobs >= 1
        assert result.dead_groups == []
    finally:
        teardown(transport, detector, farm)


def test_dead_verdict_retires_group_and_rejoin_revives_it():
    machine, plan, transport, detector, farm = harness(dead_after=6.0)
    try:
        plan.cut("iso")
        assert wait_until(lambda: detector.state_of(2) is HealthState.DEAD)
        assert wait_until(lambda: 1 in farm._dead_by_verdict)
        assert farm._quarantined == set()
        slow = lambda group: (time.sleep(0.02), group)[1]  # noqa: E731
        result = farm.run([slow for _ in range(4)], timeout=30.0)
        assert result.results == [(1,)] * 4
        assert result.dead_groups == [1]
        # Heal: quarantine -> rejoin -> the group is a worker again.
        plan.heal("iso")
        assert wait_until(lambda: detector.state_of(2) is HealthState.ALIVE)
        assert wait_until(lambda: farm._dead_by_verdict == set())
        slow = lambda group: (time.sleep(0.02), group)[1]  # noqa: E731
        result = farm.run([slow for _ in range(8)], timeout=30.0)
        assert result.jobs_per_group[1] > 0
        assert result.dead_groups == []
    finally:
        teardown(transport, detector, farm)
