"""Failure detector: lifecycle, verdicts, quarantine, and rejoin.

The scripted-partition tests use manual :meth:`PartitionPlan.cut` /
:meth:`heal` overrides rather than timed windows, so the silence the
detector observes is under explicit test control.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.arrays import am_user, am_util
from repro.arrays.manager import _records, get_array_manager
from repro.core.darray import DistributedArray
from repro.faults import (
    FaultPlan,
    FaultyTransport,
    PartitionCut,
    PartitionPlan,
    install_recovery,
)
from repro.health import FailureDetector, HealthState, install_detector
from repro.status import Status
from repro.vp.machine import Machine

# Fast-clock parameters: suspect after 0.04 s of silence, dead after
# 0.12 s.  Polling deadlines are generous (seconds) so slow CI only
# makes the tests slower, never flaky.
INTERVAL = 0.02
SUSPECT_AFTER = 2.0
DEAD_AFTER = 6.0


def wait_until(predicate, timeout=8.0, interval=0.005):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


def make_detector(machine, **overrides) -> FailureDetector:
    options = dict(
        interval=INTERVAL,
        suspect_after=SUSPECT_AFTER,
        dead_after=DEAD_AFTER,
    )
    options.update(overrides)
    return install_detector(machine, **options)


def isolation(vp: int, others) -> PartitionPlan:
    """A manual-override plan isolating ``vp`` (initially healed)."""
    plan = PartitionPlan(
        [PartitionCut("iso", (vp,), tuple(others))]
    )
    plan.heal("iso")
    return plan


class TestLifecycle:
    def test_install_makes_detector_the_health_authority(self):
        machine = Machine(3)
        detector = make_detector(machine)
        try:
            assert machine._health is detector
            assert detector.installed
            # Heartbeats flow: every VP stays alive.
            assert wait_until(lambda: detector.snapshot()["heartbeats_received"] > 6)
            for p in range(3):
                assert detector.state_of(p) is HealthState.ALIVE
                assert not detector.is_dead(p)
                assert not detector.is_suspect(p)
            diag = machine.diagnostics()
            assert diag["health"]["monitor"] == 0
            assert diag["health"]["states"] == {
                0: "alive", 1: "alive", 2: "alive"
            }
        finally:
            detector.close()
        assert machine._health is None
        assert machine.diagnostics()["health"] == {"enabled": False}

    def test_install_is_idempotent(self):
        machine = Machine(2)
        detector = make_detector(machine)
        try:
            assert install_detector(machine) is detector
        finally:
            detector.close()

    def test_validation(self):
        machine = Machine(2)
        with pytest.raises(ValueError):
            FailureDetector(machine, interval=0.0)
        with pytest.raises(ValueError):
            FailureDetector(machine, suspect_after=5.0, dead_after=3.0)
        with pytest.raises(Exception):
            FailureDetector(machine, monitor=7)

    def test_context_manager(self):
        machine = Machine(2)
        with FailureDetector(machine, interval=INTERVAL) as detector:
            assert machine._health is detector
        assert machine._health is None


class TestOracleIntegration:
    def test_scripted_kill_is_an_immediate_dead_verdict(self):
        machine = Machine(3)
        detector = make_detector(machine)
        try:
            verdicts = []
            detector.add_listener(verdicts.append)
            machine.fail(2)
            # No timeout wait: the oracle listener fires synchronously.
            assert detector.state_of(2) is HealthState.DEAD
            assert detector.is_dead(2)
            dead = [e for e in verdicts if e.transition == "dead"]
            assert dead and dead[0].vp == 2 and dead[0].reason == "oracle"
        finally:
            detector.close()

    def test_straggler_heartbeat_from_oracle_dead_vp_is_ignored(self):
        machine = Machine(3)
        detector = make_detector(machine)
        try:
            machine.fail(2)
            assert detector.state_of(2) is HealthState.DEAD
            # Forge a late heartbeat from the corpse: the oracle outranks
            # inference, so no quarantine happens.
            from repro.vp.message import Message

            detector._on_heartbeat(
                Message(source=2, dest=0, payload=("heartbeat", 2),
                        tag="heartbeat", kind="heartbeat")
            )
            assert detector.state_of(2) is HealthState.DEAD
            assert detector.false_positives == 0
        finally:
            detector.close()


class TestSilenceVerdicts:
    def test_partition_silence_drives_suspect_then_dead(self):
        machine = Machine(3)
        plan = isolation(2, (0, 1))
        with FaultyTransport(machine, FaultPlan(seed=0), partitions=plan):
            detector = make_detector(machine)
            try:
                assert wait_until(
                    lambda: detector.snapshot()["heartbeats_received"] > 3
                )
                plan.cut("iso")
                assert wait_until(lambda: detector.is_suspect(2))
                assert wait_until(
                    lambda: detector.state_of(2) is HealthState.DEAD
                )
                # Not an oracle death: the fabric lost the VP, the
                # machine did not.
                assert not machine.is_failed(2)
                assert machine.is_unavailable(2)
                transitions = [
                    (e.vp, e.transition) for e in detector.events()
                ]
                assert (2, "suspect") in transitions
                assert (2, "dead") in transitions
                # The suspect verdict preceded the dead verdict.
                assert transitions.index((2, "suspect")) < transitions.index(
                    (2, "dead")
                )
            finally:
                detector.close()

    def test_false_positive_heals_into_quarantine_and_rejoin(self):
        machine = Machine(3)
        plan = isolation(2, (0, 1))
        with FaultyTransport(machine, FaultPlan(seed=0), partitions=plan):
            detector = make_detector(machine)
            try:
                plan.cut("iso")
                assert wait_until(
                    lambda: detector.state_of(2) is HealthState.DEAD
                )
                plan.heal("iso")
                assert wait_until(
                    lambda: detector.state_of(2) is HealthState.ALIVE
                )
                assert detector.false_positives == 1
                assert detector.rejoins == 1
                order = [
                    e.transition for e in detector.events() if e.vp == 2
                ]
                assert order == ["suspect", "dead", "quarantine", "rejoin"]
            finally:
                detector.close()

    def test_suspicion_score_grows_with_silence(self):
        machine = Machine(3)
        plan = isolation(2, (0, 1))
        with FaultyTransport(machine, FaultPlan(seed=0), partitions=plan):
            detector = make_detector(machine, dead_after=1000.0)
            try:
                assert wait_until(
                    lambda: detector.snapshot()["heartbeats_received"] > 6
                )
                healthy = detector.suspicion(2)
                plan.cut("iso")
                assert wait_until(
                    lambda: detector.suspicion(2) > healthy + 3.0
                )
            finally:
                detector.close()


class TestFlapping:
    def test_flapping_suspect_never_fires_recovery(self):
        """suspect -> alive -> suspect flaps stay non-destructive: no
        dead verdict, no recovery, membership untouched."""
        machine = Machine(6, default_recv_timeout=5)
        am_util.load_all(machine)
        coordinator = install_recovery(machine)
        arr = DistributedArray.create(
            machine, "double", (8, 8), [0, 1, 2, 3],
            (("block", 2), ("block", 2)), replication=1,
        )
        before = tuple(
            get_array_manager(machine)
            .durability_state(arr.array_id)
            .processors
        )
        plan = isolation(3, (0, 1, 2, 4, 5))
        with FaultyTransport(machine, FaultPlan(seed=0), partitions=plan):
            # dead_after high enough that a flap window (one suspect
            # poll) cannot harden into a dead verdict.
            detector = make_detector(machine, dead_after=400.0)
            try:
                flaps = 0
                for _ in range(3):
                    plan.cut("iso")
                    assert wait_until(lambda: detector.is_suspect(3))
                    plan.heal("iso")
                    assert wait_until(
                        lambda: detector.state_of(3) is HealthState.ALIVE
                    )
                    flaps += 1
                events = [e for e in detector.events() if e.vp == 3]
                assert [e for e in events if e.transition == "suspect"]
                assert [e for e in events if e.transition == "alive"]
                assert not [e for e in events if e.transition == "dead"]
                assert coordinator.recoveries == []
                state = get_array_manager(machine).durability_state(
                    arr.array_id
                )
                assert tuple(state.processors) == before
                assert state.sections_rebuilt == 0
            finally:
                detector.close()


class TestDetectorDrivenRecovery:
    def test_verdict_triggers_recovery_and_heal_rejoins_cleanly(self):
        """The full §9 arc: partition -> dead verdict -> recovery moves
        the lost section -> heal -> quarantine -> rejoin, with the
        falsely-declared-dead VP fenced out of ownership and recovery
        fired exactly once."""
        machine = Machine(6, default_recv_timeout=5)
        am_util.load_all(machine)
        coordinator = install_recovery(machine)
        arr = DistributedArray.create(
            machine, "double", (8, 8), [0, 1, 2, 3],
            (("block", 2), ("block", 2)), replication=1,
        )
        expected = np.arange(64, dtype=float).reshape(8, 8)
        assert (
            am_user.write_region(
                machine, arr.array_id, [(0, 8), (0, 8)], expected
            )
            is Status.OK
        )
        manager = get_array_manager(machine)
        plan = isolation(3, (0, 1, 2, 4, 5))
        with FaultyTransport(machine, FaultPlan(seed=0), partitions=plan):
            detector = make_detector(machine)
            try:
                plan.cut("iso")
                assert wait_until(
                    lambda: detector.state_of(3) is HealthState.DEAD
                )
                # Recovery ran off the detector verdict (no oracle kill).
                assert not machine.is_failed(3)
                assert wait_until(
                    lambda: 3
                    not in manager.durability_state(arr.array_id).processors
                )
                ok = [r for r in coordinator.recoveries if r.get("ok")]
                assert len(ok) == 1 and ok[0]["dead"] == 3
                plan.heal("iso")
                assert wait_until(
                    lambda: detector.state_of(3) is HealthState.ALIVE
                )
                # Rejoin must not have re-fired recovery or changed
                # membership again.
                assert len(coordinator.recoveries) == 1
                state = manager.durability_state(arr.array_id)
                assert 3 not in state.processors
                # One owner per section: the rejoined VP freed its stale
                # copy instead of keeping a second live owner.
                record = _records(machine.processor(3)).get(arr.array_id)
                assert record is None or record.section is None
            finally:
                detector.close()
        assert (
            am_user.verify_array(machine, arr.array_id, 2, [0, 0, 0, 0], "row")
            is Status.OK
        )
        assert np.array_equal(arr.to_numpy(), expected)
