"""Detector edge cases: heartbeats dropped, delayed, and duplicated.

``FaultPlan(kinds=("heartbeat",))`` aims message-level faults at the
detector's own traffic while leaving the data plane intact — the
detector must tolerate lossy evidence without hardening false verdicts
(beyond what its thresholds promise) and without ever *missing* a real
death.
"""

from __future__ import annotations

import time

from repro.arrays import am_util
from repro.core.darray import DistributedArray
from repro.faults import FaultPlan, FaultyTransport, install_recovery
from repro.health import FailureDetector, HealthState
from repro.vp.machine import Machine

INTERVAL = 0.02


def wait_until(predicate, timeout=8.0, interval=0.005):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


def test_dropped_heartbeats_below_threshold_stay_alive():
    """Losing some heartbeats is indistinguishable from jitter: with
    drops well under the suspect window, nobody hardens to dead."""
    machine = Machine(4)
    plan = FaultPlan(seed=7, drop=0.3, kinds=("heartbeat",))
    with FaultyTransport(machine, plan) as ft:
        detector = FailureDetector(
            machine, interval=INTERVAL, suspect_after=6.0, dead_after=40.0
        ).install()
        try:
            assert wait_until(lambda: ft.stats.dropped >= 5)
            # Survive a long observation window without a dead verdict.
            time.sleep(30 * INTERVAL)
            for p in range(4):
                assert detector.state_of(p) is not HealthState.DEAD
            dead = [
                e for e in detector.events() if e.transition == "dead"
            ]
            assert dead == []
        finally:
            detector.close()


def test_total_heartbeat_loss_is_a_timeout_death():
    """drop=1.0 on heartbeat traffic only: every VP but the monitor
    falls silent and hardens to dead — data traffic was never touched,
    so this is purely the detector's inference."""
    machine = Machine(3)
    plan = FaultPlan(seed=1, drop=1.0, kinds=("heartbeat",))
    with FaultyTransport(machine, plan):
        detector = FailureDetector(
            machine, interval=INTERVAL, suspect_after=2.0, dead_after=6.0
        ).install()
        try:
            assert wait_until(
                lambda: detector.state_of(1) is HealthState.DEAD
                and detector.state_of(2) is HealthState.DEAD
            )
            for event in detector.events():
                if event.transition == "dead":
                    assert event.reason == "timeout"
            assert not machine.is_failed(1)
        finally:
            detector.close()


def test_delayed_heartbeats_do_not_harden_dead_verdicts():
    """Delivery delay inflates inter-arrival jitter; the dead window is
    sized in heartbeat multiples, so bounded delay must not kill."""
    machine = Machine(3)
    plan = FaultPlan(
        seed=3,
        delay=0.8,
        delay_seconds=INTERVAL,  # a full interval of extra latency
        kinds=("heartbeat",),
    )
    with FaultyTransport(machine, plan) as ft:
        detector = FailureDetector(
            machine, interval=INTERVAL, suspect_after=6.0, dead_after=40.0
        ).install()
        try:
            assert wait_until(lambda: ft.stats.delayed >= 5)
            time.sleep(30 * INTERVAL)
            assert not [
                e for e in detector.events() if e.transition == "dead"
            ]
        finally:
            detector.close()


def test_duplicated_heartbeats_are_harmless():
    """Duplicates refresh last-seen twice; nothing transitions, and the
    received counter simply runs ahead of the emission count."""
    machine = Machine(3)
    plan = FaultPlan(seed=5, duplicate=0.5, kinds=("heartbeat",))
    with FaultyTransport(machine, plan) as ft:
        detector = FailureDetector(
            machine, interval=INTERVAL, suspect_after=4.0, dead_after=12.0
        ).install()
        try:
            assert wait_until(lambda: ft.stats.duplicated >= 5)
            for p in range(3):
                assert detector.state_of(p) is HealthState.ALIVE
            assert not [
                e
                for e in detector.events()
                if e.transition in ("dead", "quarantine")
            ]
        finally:
            detector.close()


def test_flapping_under_lossy_heartbeats_never_double_fires_recovery():
    """Heavy heartbeat loss makes VPs flap suspect -> alive -> suspect;
    however many flaps occur, recovery fires at most once per VP that
    actually hardens to dead — and not at all here, because the drop
    rate keeps every VP under the dead window."""
    machine = Machine(6, default_recv_timeout=5)
    am_util.load_all(machine)
    coordinator = install_recovery(machine)
    DistributedArray.create(
        machine, "double", (8, 8), [0, 1, 2, 3],
        (("block", 2), ("block", 2)), replication=1,
    )
    plan = FaultPlan(seed=11, drop=0.6, kinds=("heartbeat",))
    with FaultyTransport(machine, plan):
        # The dead window is deliberately enormous (30 s): the test is
        # about suspect/alive flapping, and no scheduler stall on a
        # loaded CI box should be able to harden a flap into a dead
        # verdict and fire real recovery.
        detector = FailureDetector(
            machine, interval=INTERVAL, suspect_after=1.5, dead_after=1500.0
        ).install()
        try:
            # Wait for genuine flapping: at least one suspect and one
            # flap-back-alive somewhere.
            assert wait_until(
                lambda: any(
                    e.transition == "alive" for e in detector.events()
                ),
                timeout=15.0,
            )
            assert coordinator.recoveries == []
            # Per-VP sanity: dead verdicts (there should be none) never
            # outnumber one per episode.
            for p in range(6):
                dead = [
                    e
                    for e in detector.events()
                    if e.vp == p and e.transition == "dead"
                ]
                assert len(dead) == 0
        finally:
            detector.close()
