"""``dead_send_policy="queue"``: buffering sends to suspected VPs.

A suspect's death is unconfirmed, so instead of raising (the suspicion
may be a network blip) or dropping (the suspect may be alive and the
data lost), the machine buffers the send and replays it when the
verdict resolves: flushed on alive/rejoin, drained to the dead counter
on a hardened dead verdict.
"""

from __future__ import annotations

import time

import pytest

from repro.faults import (
    FaultPlan,
    FaultyTransport,
    PartitionCut,
    PartitionPlan,
)
from repro.health import FailureDetector, HealthState
from repro.vp.machine import Machine

INTERVAL = 0.02


def wait_until(predicate, timeout=8.0, interval=0.005):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


def isolation(vp, others):
    plan = PartitionPlan([PartitionCut("iso", (vp,), tuple(others))])
    plan.heal("iso")
    return plan


def test_queue_is_a_valid_policy():
    machine = Machine(2, dead_send_policy="queue")
    assert machine.dead_send_policy == "queue"
    with pytest.raises(ValueError):
        Machine(2, dead_send_policy="buffer")


def test_send_to_suspect_is_buffered_and_flushed_on_heal():
    machine = Machine(3, dead_send_policy="queue")
    plan = isolation(2, (0, 1))
    with FaultyTransport(machine, FaultPlan(seed=0), partitions=plan):
        detector = FailureDetector(
            machine, interval=INTERVAL, suspect_after=2.0, dead_after=1000.0
        ).install()
        try:
            plan.cut("iso")
            assert wait_until(lambda: detector.is_suspect(2))
            machine.send(0, 2, "parked payload", tag="queued")
            assert machine.diagnostics()["suspect_queued"] == {2: 1}
            # The partition heals, a heartbeat gets through, the VP flaps
            # back to alive — and the buffered send is replayed.
            plan.heal("iso")
            assert wait_until(
                lambda: detector.state_of(2) is HealthState.ALIVE
            )
            assert wait_until(
                lambda: machine.diagnostics()["suspect_queued"] == {}
            )
            message = machine.processor(2).mailbox.recv(
                tag="queued", timeout=5.0
            )
            assert message.payload == "parked payload"
            assert message.source == 0
        finally:
            detector.close()


def test_queue_drains_to_dead_counter_on_hardened_verdict():
    machine = Machine(3, dead_send_policy="queue")
    plan = isolation(2, (0, 1))
    with FaultyTransport(machine, FaultPlan(seed=0), partitions=plan):
        detector = FailureDetector(
            machine, interval=INTERVAL, suspect_after=2.0, dead_after=6.0
        ).install()
        try:
            plan.cut("iso")
            assert wait_until(lambda: detector.is_suspect(2))
            if detector.state_of(2) is HealthState.SUSPECT:
                machine.send(0, 2, "doomed", tag="queued")
            dropped_before = machine.dropped_to_dead
            assert wait_until(
                lambda: detector.state_of(2) is HealthState.DEAD
            )
            assert machine.diagnostics()["suspect_queued"] == {}
            # Whatever was buffered at verdict time drained to the
            # dropped counter (the send may have raced the verdict, in
            # which case it was never buffered — both are legal).
            assert machine.dropped_to_dead >= dropped_before
        finally:
            detector.close()


def test_confirmed_alive_destination_sends_normally():
    """The queue guard only bites for suspects: a healthy destination
    gets ordinary synchronous delivery."""
    machine = Machine(3, dead_send_policy="queue")
    detector = FailureDetector(
        machine, interval=INTERVAL, suspect_after=4.0, dead_after=12.0
    ).install()
    try:
        machine.send(0, 1, "direct", tag="t")
        assert machine.diagnostics()["suspect_queued"] == {}
        message = machine.processor(1).mailbox.recv(tag="t", timeout=5.0)
        assert message.payload == "direct"
    finally:
        detector.close()


def test_queue_without_detector_degrades_to_normal_delivery():
    """No health authority installed: nothing is ever a suspect, so the
    queue policy only changes behaviour for oracle-dead destinations
    (where it discards, like "drop")."""
    machine = Machine(3, dead_send_policy="queue")
    machine.send(0, 1, "plain", tag="t")
    assert machine.processor(1).mailbox.recv(tag="t", timeout=5.0).payload == "plain"
    machine.fail(2)
    machine.send(0, 2, "gone", tag="t")  # no raise
    assert machine.dropped_to_dead >= 1
    assert machine.diagnostics()["suspect_queued"] == {}
