"""The do_all primitive (§5.2.1)."""

from __future__ import annotations

import threading
import time

import pytest

from repro.calls.do_all import do_all
from repro.pcn.defvar import DefVar
from repro.vp.machine import Machine


@pytest.fixture
def m4():
    return Machine(4)


class TestExecution:
    def test_runs_once_per_processor_with_index(self, m4):
        seen = []
        lock = threading.Lock()

        def program(index, parms, status):
            with lock:
                seen.append((index, threading.current_thread().name))
            status.define(index)

        result = do_all(m4, [0, 1, 2, 3], program, None, max)
        assert result == 3
        assert sorted(i for i, _ in seen) == [0, 1, 2, 3]
        # Each copy ran on its own processor's thread.
        names = {name for _, name in seen}
        assert len(names) == 4

    def test_subset_of_processors(self, m4):
        indices = []
        lock = threading.Lock()

        def program(index, parms, status):
            with lock:
                indices.append(index)
            status.define(0)

        do_all(m4, [1, 3], program, None, max)
        assert sorted(indices) == [0, 1]

    def test_parms_passed_verbatim_to_every_copy(self, m4):
        payload = {"key": "value"}
        seen = []
        lock = threading.Lock()

        def program(index, parms, status):
            with lock:
                seen.append(parms)
            status.define(0)

        do_all(m4, [0, 1], program, payload, max)
        assert all(p is payload for p in seen)

    def test_empty_group_rejected(self, m4):
        with pytest.raises(ValueError):
            do_all(m4, [], lambda i, p, s: s.define(0), None, max)


class TestCombining:
    def test_pairwise_fold_in_index_order(self, m4):
        """§3.3.1.2 demands associativity only, so the fold must preserve
        index order for non-commutative combines."""

        def program(index, parms, status):
            status.define([index])

        result = do_all(m4, [0, 1, 2, 3], program, None, lambda a, b: a + b)
        assert result == [0, 1, 2, 3]

    def test_status_out_defined_only_on_completion(self, m4):
        gate = threading.Event()
        status_out = DefVar("Status")

        def program(index, parms, status):
            if index == 1:
                gate.wait(timeout=5)
            status.define(index)

        runner = threading.Thread(
            target=do_all,
            args=(m4, [0, 1], program, None, max, status_out),
        )
        runner.start()
        time.sleep(0.05)
        assert not status_out.data()  # §4.1.2: defined only after completion
        gate.set()
        runner.join(timeout=5)
        assert status_out.read() == 1


class TestFailure:
    def test_copy_exception_propagates(self, m4):
        def program(index, parms, status):
            if index == 2:
                raise RuntimeError("copy 2 died")
            status.define(0)

        with pytest.raises(RuntimeError, match="copy 2 died"):
            do_all(m4, [0, 1, 2, 3], program, None, max)

    def test_copy_never_defines_status_times_out(self, m4):
        def program(index, parms, status):
            if index != 0:
                status.define(0)
            # copy 0 forgets to define its status

        with pytest.raises(TimeoutError):
            do_all(m4, [0, 1], program, None, max, timeout=0.2)
