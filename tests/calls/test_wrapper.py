"""Unit tests for the generated wrapper machinery (§5.2.2, §F.3-§F.5)."""

from __future__ import annotations

import pytest

from repro.arrays import am_user, am_util
from repro.calls.params import (
    Constant,
    Index,
    Local,
    Reduce,
    StatusVar,
    normalize_parameters,
)
from repro.calls.wrapper import (
    build_wrapper,
    bundle_parameters,
    next_call_group,
)
from repro.pcn.defvar import DefVar
from repro.status import Status
from repro.vp.machine import Machine


@pytest.fixture
def m2():
    machine = Machine(2)
    am_util.load_all(machine)
    return machine


class TestBundleParameters:
    def test_constants_by_value(self):
        specs = normalize_parameters([7, "text"])
        bundle, lengths = bundle_parameters(specs)
        assert bundle == (7, "text")
        assert lengths == ()

    def test_local_travels_as_array_id(self, m2):
        procs = am_util.node_array(0, 1, 2)
        aid, _ = am_user.create_array(m2, "double", (4,), procs, ["block"])
        specs = normalize_parameters([Local(aid)])
        bundle, _ = bundle_parameters(specs)
        assert bundle == (aid,)

    def test_placeholders_for_index_status_reduce(self):
        specs = normalize_parameters(
            ["index", "status", ("reduce", "double", 3, "sum")]
        )
        bundle, lengths = bundle_parameters(specs)
        assert bundle == (None, None, None)
        # §F.3: reduction lengths travel separately so the first-level
        # wrapper can declare buffers before unbundling.
        assert lengths == (3,)

    def test_multiple_reduce_lengths_in_order(self):
        specs = normalize_parameters(
            [("reduce", "double", 2, "sum"), 1, ("reduce", "int", 5, "max")]
        )
        _bundle, lengths = bundle_parameters(specs)
        assert lengths == (2, 5)


class TestGeneratedWrapper:
    def run_wrapper(self, machine, specs, program, index=0, parms=None):
        group = next_call_group()
        wrapper = build_wrapper(machine, program, specs, [0, 1], group)
        status_var = DefVar("tuple")
        wrapper(
            index,
            parms if parms is not None else bundle_parameters(specs),
            status_var,
        )
        return status_var.read()

    def test_malformed_bundle_yields_invalid(self, m2):
        specs = normalize_parameters([1])
        result = self.run_wrapper(
            m2, specs, lambda ctx, a: None, parms="not-a-bundle"
        )
        assert result == (int(Status.INVALID),)

    def test_wrong_bundle_arity_yields_invalid(self, m2):
        specs = normalize_parameters([1, 2])
        result = self.run_wrapper(
            m2, specs, lambda ctx, a, b: None, parms=((1,), ())
        )
        assert result == (int(Status.INVALID),)

    def test_success_tuple_shape(self, m2):
        specs = normalize_parameters(
            ["status", ("reduce", "double", 2, "sum")]
        )

        def program(ctx, status, buf):
            status.set(5)
            buf[:] = [1.0, 2.0]

        result = self.run_wrapper(m2, specs, program)
        assert result[0] == 5
        assert list(result[1]) == [1.0, 2.0]

    def test_reduce_length_one_unboxed(self, m2):
        specs = normalize_parameters([("reduce", "double", 1, "sum")])

        def program(ctx, buf):
            buf[0] = 3.5

        result = self.run_wrapper(m2, specs, program)
        assert result == (0, 3.5)
        assert isinstance(result[1], float)

    def test_program_exception_packs_error(self, m2):
        specs = normalize_parameters([("reduce", "double", 1, "sum")])

        def program(ctx, buf):
            raise RuntimeError("die")

        result = self.run_wrapper(m2, specs, program)
        assert result == (int(Status.ERROR), None)

    def test_context_index_matches_wrapper_index(self, m2):
        specs = normalize_parameters(["index"])
        seen = {}

        def program(ctx, index):
            seen["ctx"] = ctx.index
            seen["param"] = index
            seen["proc"] = ctx.processor_number

        self.run_wrapper(m2, specs, program, index=1)
        assert seen == {"ctx": 1, "param": 1, "proc": 1}

    def test_reduce_buffer_copied_not_aliased(self, m2):
        """The packed reduction value is a copy: later mutation of the
        program's buffer cannot corrupt the merged result."""
        specs = normalize_parameters([("reduce", "double", 2, "sum")])
        captured = {}

        def program(ctx, buf):
            buf[:] = [1.0, 1.0]
            captured["buf"] = buf

        result = self.run_wrapper(m2, specs, program)
        captured["buf"][:] = 99.0
        assert list(result[1]) == [1.0, 1.0]

    def test_group_ids_unique(self):
        assert next_call_group() != next_call_group()
