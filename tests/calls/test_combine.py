"""Generated combine programs (§F.6)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.calls.combine import make_combine_program


class TestStatusOnly:
    def test_default_max(self):
        combine = make_combine_program(None, [])
        assert combine((0,), (2,)) == (2,)
        assert combine((99,), (0,)) == (99,)

    def test_custom_status_combine(self):
        combine = make_combine_program("min", [])
        assert combine((3,), (1,)) == (1,)

    def test_callable_status_combine(self):
        combine = make_combine_program(lambda a, b: a + b, [])
        assert combine((1,), (2,)) == (3,)


class TestWithReductions:
    def test_status_and_one_reduction(self):
        """The §F example: status via max, reduction via its own combine."""
        combine = make_combine_program("max", ["sum"])
        assert combine((0, 10.0), (1, 32.0)) == (1, 42.0)

    def test_multiple_reductions_each_their_own_combine(self):
        combine = make_combine_program(None, ["sum", "min", "max"])
        out = combine((0, 1.0, 5, 5), (0, 2.0, 3, 9))
        assert out == (0, 3.0, 3, 9)

    def test_array_reduction(self):
        combine = make_combine_program(None, ["sum"])
        out = combine((0, np.array([1.0, 2.0])), (0, np.array([10.0, 20.0])))
        assert list(out[1]) == [11.0, 22.0]

    def test_missing_reduction_value_propagates_other(self):
        """A failed copy contributes None reductions; combining keeps the
        healthy side's value and the max severity status."""
        combine = make_combine_program(None, ["sum"])
        assert combine((1, None), (0, 7.0)) == (1, 7.0)
        assert combine((0, 7.0), (99, None)) == (99, 7.0)


class TestShapeGuards:
    def test_length_mismatch_yields_invalid(self):
        """The generated PCN combine's default branch: C_out = {1}."""
        combine = make_combine_program(None, ["sum"])
        assert combine((0,), (0, 1.0))[0] == 1

    def test_wrong_arity_tuples_yield_invalid(self):
        combine = make_combine_program(None, [])
        assert combine((0, 1), (0, 1))[0] == 1


@settings(max_examples=100, deadline=None)
@given(
    st.lists(st.integers(0, 99), min_size=2, max_size=6),
    st.lists(st.floats(-1e6, 1e6), min_size=2, max_size=6),
)
def test_property_pairwise_fold_matches_direct(statuses, values):
    """Folding the generated combine pairwise over per-copy tuples equals
    max(statuses) and sum(values), independent of fold order grouping."""
    n = min(len(statuses), len(values))
    tuples = [(s, v) for s, v in zip(statuses[:n], values[:n])]
    combine = make_combine_program(None, ["sum"])
    acc = tuples[0]
    for t in tuples[1:]:
        acc = combine(acc, t)
    assert acc[0] == max(s for s, _ in tuples)
    assert acc[1] == pytest.approx(sum(v for _, v in tuples), rel=1e-9)
