"""Distributed-call parameter specifications (§3.3.1.2, §4.3.1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.arrays.record import ArrayID
from repro.calls.params import (
    Constant,
    Index,
    Local,
    Reduce,
    StatusVar,
    normalize_parameters,
    reduce_specs,
    status_position,
)
from repro.pcn.defvar import DefVar


class TestPaperSyntax:
    def test_index_string(self):
        assert normalize_parameters(["index"]) == [Index()]

    def test_status_string(self):
        assert normalize_parameters(["status"]) == [StatusVar()]

    def test_local_tuple(self):
        aid = ArrayID(0, 1)
        assert normalize_parameters([("local", aid)]) == [Local(aid)]

    def test_local_tuple_requires_array_id(self):
        with pytest.raises(ValueError):
            normalize_parameters([("local", "not-an-id")])

    def test_reduce_four_tuple(self):
        [spec] = normalize_parameters([("reduce", "double", 2, "sum")])
        assert spec == Reduce("double", 2, "sum", None)

    def test_reduce_five_tuple_with_out(self):
        out = DefVar("RR")
        [spec] = normalize_parameters([("reduce", "double", 2, "sum", out)])
        assert spec.out is out

    def test_reduce_paper_six_tuple(self):
        """The paper's {"reduce", Type, Length, Mod, Pgm, Var} form."""
        out = DefVar("RR")
        [spec] = normalize_parameters(
            [("reduce", "double", 10, "thismod", "sum", out)]
        )
        assert spec.type_name == "double"
        assert spec.length == 10
        assert spec.out is out


class TestConstants:
    def test_plain_values_are_constants(self):
        specs = normalize_parameters([7, 3.5, "hello", None])
        assert all(isinstance(s, Constant) for s in specs)
        assert [s.value for s in specs] == [7, 3.5, "hello", None]

    def test_numpy_array_constant(self):
        procs = np.array([0, 1, 2])
        [spec] = normalize_parameters([procs])
        assert isinstance(spec, Constant)
        assert spec.value is procs

    def test_other_strings_are_constants(self):
        [spec] = normalize_parameters(["not-a-keyword"])
        assert isinstance(spec, Constant)


class TestValidation:
    def test_at_most_one_status(self):
        with pytest.raises(ValueError, match="at most one"):
            normalize_parameters(["status", "status"])

    def test_reduce_bad_type(self):
        with pytest.raises(ValueError):
            Reduce("quaternion", 1, "sum")

    def test_reduce_bad_length(self):
        with pytest.raises(ValueError):
            Reduce("double", 0, "sum")

    def test_reduce_bad_combine(self):
        with pytest.raises(ValueError):
            Reduce("double", 1, "frobnicate")

    def test_reduce_bad_tuple_arity(self):
        with pytest.raises(ValueError):
            normalize_parameters([("reduce", "double")])


class TestHelpers:
    def test_status_position(self):
        specs = normalize_parameters([1, "status", 2])
        assert status_position(specs) == 1

    def test_status_position_absent(self):
        assert status_position(normalize_parameters([1, 2])) is None

    def test_reduce_specs_in_order(self):
        specs = normalize_parameters(
            [("reduce", "int", 1, "max"), 5, ("reduce", "double", 2, "sum")]
        )
        found = reduce_specs(specs)
        assert [r.type_name for r in found] == ["int", "double"]
