"""distributed_call (§4.3.1): the paper's examples plus failure modes."""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.arrays import am_user, am_util
from repro.arrays.record import ArrayID
from repro.calls import Index, Local, Reduce, StatusVar, distributed_call
from repro.pcn.defvar import DefVar
from repro.spmd import collectives
from repro.status import Status
from repro.vp.machine import Machine


@pytest.fixture
def m4():
    machine = Machine(4)
    am_util.load_all(machine)
    return machine


def procs(machine, count=None):
    return am_util.node_array(
        0, 1, machine.num_nodes if count is None else count
    )


class TestPaperExampleCpgm1:
    """§4.3.1 'Distributed call with index and local-section parameters'."""

    def test_index_and_local(self, m4):
        p = procs(m4)
        aid, _ = am_user.create_array(m4, "double", (8,), p, ["block"])
        seen = []
        lock = threading.Lock()

        def cpgm1(ctx, processors, num_procs, index, local_section):
            with lock:
                seen.append((index, local_section.interior().shape))
            local_section.interior()[:] = index

        result = distributed_call(
            m4, p, cpgm1, [p, 4, Index(), Local(aid)]
        )
        # "variable Status ... is set to STATUS_OK"
        assert result.status is Status.OK
        assert sorted(i for i, _ in seen) == [0, 1, 2, 3]
        assert all(shape == (2,) for _, shape in seen)
        # local sections are genuinely per-copy: element 2j belongs to copy j
        for j in range(4):
            value, _ = am_user.read_element(m4, aid, (2 * j,))
            assert value == float(j)


class TestPaperExampleFpgm1:
    """§4.3.1 'Distributed call with index, status, and local-section
    parameters'."""

    def test_status_merged_with_max(self, m4):
        p = procs(m4)
        aid, _ = am_user.create_array(m4, "double", (8,), p, ["block"])

        def fpgm1(ctx, processors, num, index, local, status):
            status.set(index)  # copy j returns status j

        result = distributed_call(
            m4, p, fpgm1, [p, 4, Index(), Local(aid), StatusVar()]
        )
        # "Status ... is set to the maximum value over all copies"
        assert int(result.status) == 3


class TestPaperExampleCpgm2:
    """§4.3.1 'Distributed call with status, reduction, and local-section
    parameters'."""

    def test_min_status_and_combined_reduction(self, m4):
        p = procs(m4)
        aid, _ = am_user.create_array(m4, "double", (8,), p, ["block"])
        rr = DefVar("RR")

        def cpgm2(ctx, processors, num_procs, local_section, status, other):
            rank = ctx.index
            status.set(rank + 1)
            other[0] = float(rank)
            other[1] = float(rank * 10)

        result = distributed_call(
            m4,
            p,
            cpgm2,
            [
                p, 4, Local(aid), StatusVar(),
                Reduce("double", 2, lambda a, b: np.minimum(a, b), rr),
            ],
            combine="min",
        )
        # status via thismod:min -> min(1..4) = 1
        assert int(result.status) == 1
        # RR via elementwise min combine
        assert list(rr.read()) == [0.0, 0.0]
        assert list(result.reductions[0]) == [0.0, 0.0]


class TestCallSemantics:
    def test_caller_suspends_until_all_copies_done(self, m4):
        """Fig 3.2: caller resumes only after every copy terminates."""
        p = procs(m4)
        release = threading.Event()
        finished = []

        def program(ctx, index):
            if index == 3:
                release.wait(timeout=5)
            finished.append(index)

        call_done = []

        def caller():
            distributed_call(m4, p, program, [Index()])
            call_done.append(True)

        t = threading.Thread(target=caller)
        t.start()
        time.sleep(0.1)
        assert not call_done  # suspended: copy 3 still running
        release.set()
        t.join(timeout=5)
        assert call_done and sorted(finished) == [0, 1, 2, 3]

    def test_status_out_defvar_synchronisation(self, m4):
        p = procs(m4)
        status_out = DefVar("Status")
        distributed_call(
            m4, p, lambda ctx: None, [], status_out=status_out
        )
        assert status_out.read() is Status.OK

    def test_no_status_param_means_ok_on_success(self, m4):
        result = distributed_call(m4, procs(m4), lambda ctx: None, [])
        assert result.status is Status.OK

    def test_constants_same_for_all_copies(self, m4):
        values = []
        lock = threading.Lock()

        def program(ctx, a, b):
            with lock:
                values.append((a, b))

        distributed_call(m4, procs(m4), program, ["const", 12])
        assert values == [("const", 12)] * 4

    def test_copies_communicate_within_call(self, m4):
        """§3.3.1: the concurrently-executing copies can communicate just
        as they normally would."""
        out = DefVar("total")

        def program(ctx, result):
            total = collectives.allreduce(ctx.comm, ctx.index + 1, op="sum")
            result[0] = total

        res = distributed_call(
            m4, procs(m4), program, [Reduce("double", 1, "max", out)]
        )
        assert res.reductions[0] == 10.0  # 1+2+3+4
        assert out.read() == 10.0

    def test_index_is_position_in_processors_array(self, m4):
        """The index parameter indexes the *processors array*, not the
        physical processor numbers (§3.3.1.2)."""
        group = [3, 1]  # deliberately out of order
        observed = {}
        lock = threading.Lock()

        def program(ctx, index):
            with lock:
                observed[ctx.processor_number] = index

        distributed_call(m4, group, program, [Index()])
        assert observed == {3: 0, 1: 1}


class TestFailureModes:
    def test_local_of_unknown_array_is_invalid(self, m4):
        """The generated wrapper's find_local failure branch (§F.4)."""
        result = distributed_call(
            m4, procs(m4), lambda ctx, sec: None,
            [Local(ArrayID(0, 999))],
        )
        assert result.status is Status.INVALID

    def test_local_on_processor_without_section_is_invalid(self, m4):
        # Array lives on processors 0..1 only; call on 0..3.
        aid, _ = am_user.create_array(
            m4, "double", (4,), [0, 1], ["block"]
        )
        result = distributed_call(
            m4, procs(m4), lambda ctx, sec: None, [Local(aid)]
        )
        assert result.status is Status.INVALID

    def test_program_exception_is_error(self, m4):
        def bad(ctx):
            raise RuntimeError("model diverged")

        result = distributed_call(m4, procs(m4), bad, [])
        assert result.status is Status.ERROR

    def test_one_bad_copy_poisons_call_status(self, m4):
        def sometimes_bad(ctx, index):
            if index == 2:
                raise ValueError("copy 2")

        result = distributed_call(m4, procs(m4), sometimes_bad, [Index()])
        assert result.status is Status.ERROR

    def test_status_param_unassigned_is_error(self, m4):
        """§4.3.1: the program must assign status before completing."""

        def forgetful(ctx, status):
            pass

        result = distributed_call(
            m4, procs(m4), forgetful, [StatusVar()]
        )
        assert result.status is Status.ERROR

    def test_combine_without_status_rejected(self, m4):
        """§4.3.1 precondition: Combine_module != [] only meaningful with
        a status parameter."""
        with pytest.raises(ValueError):
            distributed_call(
                m4, procs(m4), lambda ctx: None, [], combine="min"
            )

    def test_empty_processor_group_rejected(self, m4):
        with pytest.raises(ValueError):
            distributed_call(m4, [], lambda ctx: None, [])

    def test_duplicate_processors_rejected(self, m4):
        with pytest.raises(ValueError):
            distributed_call(m4, [0, 0], lambda ctx: None, [])

    def test_out_of_range_processor_rejected(self, m4):
        with pytest.raises(ValueError):
            distributed_call(m4, [0, 77], lambda ctx: None, [])


class TestReduceVariants:
    def test_scalar_reduce_returns_python_scalar(self, m4):
        def program(ctx, out):
            out[0] = float(ctx.index)

        result = distributed_call(
            m4, procs(m4), program, [Reduce("double", 1, "max")]
        )
        assert result.reductions[0] == 3.0
        assert isinstance(result.reductions[0], float)

    def test_vector_reduce_returns_array(self, m4):
        def program(ctx, out):
            out[:] = ctx.index

        result = distributed_call(
            m4, procs(m4), program, [Reduce("double", 3, "sum")]
        )
        assert list(result.reductions[0]) == [6.0, 6.0, 6.0]

    def test_int_reduce(self, m4):
        def program(ctx, out):
            out[0] = ctx.index * 2

        result = distributed_call(
            m4, procs(m4), program, [Reduce("int", 1, "sum")]
        )
        assert result.reductions[0] == 12

    def test_multiple_reductions_ordered(self, m4):
        def program(ctx, lo, hi):
            lo[0] = float(ctx.index)
            hi[0] = float(ctx.index)

        result = distributed_call(
            m4,
            procs(m4),
            program,
            [Reduce("double", 1, "min"), Reduce("double", 1, "max")],
        )
        assert result.reductions == [0.0, 3.0]
