"""Replica-update fusion: one coalesced mirror message per backup per
batch flush, and its interplay with fault injection (drop/duplicate of
the fused ``array_batch`` message)."""

from __future__ import annotations

import pytest

from repro.arrays import am_user, am_util
from repro.arrays.durability import REPLICA_UPDATE_KIND, replica_store_for
from repro.arrays.manager import get_array_manager
from repro.core.darray import DistributedArray
from repro.faults import FaultPlan, FaultyTransport
from repro.faults.plan import FaultDecision
from repro.perf import ARRAY_BATCH_KIND, get_perf_layer
from repro.vp.fabric import TrafficMeter
from repro.vp.machine import Machine

DISTRIB_2X2 = (("block", 2), ("block", 2))


@pytest.fixture
def machine():
    m = Machine(6, default_recv_timeout=10)
    am_util.load_all(m)
    return m


def make_array(machine, replication=1):
    return DistributedArray.create(
        machine, "double", (8, 8), [0, 1, 2, 3], DISTRIB_2X2,
        replication=replication,
    )


def meter_on(machine):
    meter = TrafficMeter()
    machine.transport_stack.push(meter)
    return meter


def kind_count(meter, kind):
    return meter.snapshot()["by_kind"].get(kind, (0, 0))[0]


class TestFusion:
    def test_one_fused_replica_message_per_flush(self, machine):
        arr = make_array(machine, replication=1)
        meter = meter_on(machine)  # after creation: seeding not counted
        try:
            # Five writes, all landing in section 0 (rows/cols 0..3).
            for i in range(5):
                arr[0, i % 4] = float(i)
            am_user.flush_writes(machine)
            # k=1: exactly ONE replica_update for the whole batch — not
            # one per element write.
            assert kind_count(meter, REPLICA_UPDATE_KIND) == 1
        finally:
            machine.transport_stack.remove(meter)

    def test_two_backups_get_one_fused_message_each(self, machine):
        arr = make_array(machine, replication=2)
        meter = meter_on(machine)
        try:
            for i in range(4):
                arr[0, i] = float(i)
            am_user.flush_writes(machine)
            assert kind_count(meter, REPLICA_UPDATE_KIND) == 2
        finally:
            machine.transport_stack.remove(meter)

    def test_fused_update_lands_in_replica_store(self, machine):
        arr = make_array(machine, replication=1)
        for i in range(4):
            arr[0, i] = float(10 + i)
        am_user.flush_writes(machine)
        state = get_array_manager(machine).durability_state(arr.array_id)
        (backup,) = state.replica_map.backups_for(0)
        epoch, mirror = replica_store_for(
            machine.processor(backup)
        ).fetch(arr.array_id, 0)
        assert mirror[0].tolist() == [10.0, 11.0, 12.0, 13.0]
        assert epoch == state.epoch

    def test_remote_section_batch_plus_replica_is_two_messages(self, machine):
        arr = make_array(machine, replication=1)
        meter = meter_on(machine)
        try:
            # Section 3 (rows/cols 4..7) is owned by processor 3: the batch
            # itself routes, then its one fused replica update routes.
            for i in range(4):
                arr[7, 4 + i] = float(i)
            am_user.flush_writes(machine)
            counts = meter.snapshot()["by_kind"]
            assert counts[ARRAY_BATCH_KIND][0] == 1
            assert counts[REPLICA_UPDATE_KIND][0] == 1
        finally:
            machine.transport_stack.remove(meter)


class _DropFirstBatch(FaultPlan):
    """Deterministically drop the first ``array_batch`` message routed."""

    def decide(self, message, channel_ordinal):
        if message.kind == ARRAY_BATCH_KIND and not self.tripped[0]:
            self.tripped[0] = True
            return FaultDecision(drop=True)
        return FaultDecision()


class _DuplicateBatches(FaultPlan):
    """Deliver every ``array_batch`` message twice."""

    def decide(self, message, channel_ordinal):
        if message.kind == ARRAY_BATCH_KIND:
            return FaultDecision(duplicate=True)
        return FaultDecision()


def _plan(cls):
    plan = cls(seed=0)
    object.__setattr__(plan, "tripped", [False])
    return plan


class TestFaultInterplay:
    def test_dropped_batch_retries_as_one_unit(self, machine):
        perf = get_perf_layer(machine)
        perf.coalescer.retry_timeout = 0.3
        arr = make_array(machine, replication=0)
        # Faulty layer below the meter: the meter then counts every routed
        # attempt, including the one the fault layer swallows.
        ft = FaultyTransport(machine, _plan(_DropFirstBatch)).install()
        meter = meter_on(machine)
        try:
            for i in range(4):
                arr[7, 4 + i] = float(i)  # section 3, remote owner
            flushed = am_user.flush_writes(machine)
            assert flushed == 4
            # The drop consumed one whole batch; the retry re-shipped the
            # SAME four writes as a single second message — never as four
            # per-element messages.
            assert ft.stats.dropped == 1
            assert perf.coalescer.retries == 1
            assert kind_count(meter, ARRAY_BATCH_KIND) == 2
            assert arr.read_region([(7, 8), (4, 8)]).tolist() == [
                [0.0, 1.0, 2.0, 3.0]
            ]
        finally:
            ft.uninstall()
            machine.transport_stack.remove(meter)

    def test_duplicated_batch_applies_exactly_once(self, machine):
        perf = get_perf_layer(machine)
        arr = make_array(machine, replication=0)
        ft = FaultyTransport(machine, _plan(_DuplicateBatches)).install()
        try:
            for i in range(4):
                arr[7, 4 + i] = float(i)
            before = perf.versions.get(arr.array_id, 3)
            am_user.flush_writes(machine)
            assert ft.stats.duplicated == 1
            # The duplicate delivery is rejected by the owner's sequence
            # check: the section's write version moves once, not twice.
            assert perf.versions.get(arr.array_id, 3) == before + 1
            assert arr[7, 4] == 0.0 and arr[7, 7] == 3.0
        finally:
            ft.uninstall()

    def test_batch_to_dead_owner_without_recovery_is_lost(self, machine):
        machine.dead_send_policy = "drop"
        perf = get_perf_layer(machine)
        perf.coalescer.retry_timeout = 0.2
        perf.coalescer.max_retries = 1
        arr = make_array(machine, replication=0)
        arr[7, 7] = 1.0  # queued against section 3
        machine.fail(3)
        am_user.flush_writes(machine)
        # No recovery coordinator installed: the owner stays dead and the
        # batch is accounted as lost — the documented write-behind window.
        assert perf.coalescer.lost_batches == 1
