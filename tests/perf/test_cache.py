"""The epoch-validated section read cache.

Stamps are ``(durability epoch, per-section write version)``: any event
that can change a section's contents — a direct write, a batch apply, a
restore, a recovery rebuild — moves the stamp, so a cached copy can never
serve data the owner has since replaced.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.arrays import am_user, am_util
from repro.arrays.manager import get_array_manager
from repro.core.darray import DistributedArray
from repro.faults import install_recovery
from repro.perf import get_perf_layer
from repro.vp.machine import Machine

DISTRIB_2X2 = (("block", 2), ("block", 2))


@pytest.fixture
def machine():
    m = Machine(6, default_recv_timeout=10)
    am_util.load_all(m)
    am_user.set_read_cache(m, True)
    return m


def make_array(machine, replication=0):
    return DistributedArray.create(
        machine, "double", (8, 8), [0, 1, 2, 3], DISTRIB_2X2,
        replication=replication,
    )


def test_second_read_is_a_hit_and_costs_no_messages(machine):
    arr = make_array(machine)
    arr.from_numpy(np.arange(64, dtype=float).reshape(8, 8))
    cache = get_perf_layer(machine).cache
    # (7, 7) lives in section 3, owned by processor 3 — a remote read.
    assert arr[7, 7] == 63.0  # miss: one stamped section fetch
    machine.reset_traffic()
    assert arr[7, 6] == 62.0  # same section: served from the cache
    assert machine.traffic_snapshot()["messages"] == 0
    diag = cache.diagnostics()
    assert diag["hits"] == 1 and diag["misses"] == 1


def test_write_invalidates_cached_section(machine):
    arr = make_array(machine)
    arr.from_numpy(np.zeros((8, 8)))
    assert arr[7, 7] == 0.0  # populate the cache
    arr[7, 7] = 5.0  # queued; the next read flushes it and bumps the version
    assert arr[7, 7] == 5.0
    assert get_perf_layer(machine).cache.diagnostics()["invalidations"] >= 1


def test_region_write_invalidates_cached_section(machine):
    arr = make_array(machine)
    arr.from_numpy(np.zeros((8, 8)))
    assert arr[7, 7] == 0.0
    arr.from_numpy(np.full((8, 8), 9.0))
    assert arr[7, 7] == 9.0


def test_restore_bumps_epoch_and_invalidates(machine):
    arr = make_array(machine)
    ref = np.arange(64, dtype=float).reshape(8, 8)
    arr.from_numpy(ref)
    snapshot = arr.checkpoint()
    assert arr[7, 7] == 63.0  # cached under the pre-restore stamp
    arr.from_numpy(ref * 2)
    arr.restore(snapshot)
    # The restore advanced the durability epoch: the cached copy (and any
    # copy of the doubled data) must not survive it.
    assert arr[7, 7] == 63.0
    state = get_array_manager(machine).durability_state(arr.array_id)
    assert state.epoch >= 2


def test_recovery_rebuild_invalidates(machine):
    install_recovery(machine)
    arr = make_array(machine, replication=1)
    ref = np.arange(64, dtype=float).reshape(8, 8)
    arr.from_numpy(ref)
    assert arr[7, 7] == 63.0  # cached, stamped with epoch 0
    machine.fail(3)  # kills section 3's owner; a spare adopts the mirror
    state = get_array_manager(machine).durability_state(arr.array_id)
    assert 3 not in state.processors
    assert state.epoch >= 1
    # The read must miss (epoch moved) and refetch from the adopter.
    assert arr[7, 7] == 63.0
    assert get_perf_layer(machine).cache.diagnostics()["invalidations"] >= 1


def test_cache_disabled_by_default():
    m = Machine(4)
    am_util.load_all(m)
    assert not get_perf_layer(m).cache.enabled


def test_toggle_clears_cache(machine):
    arr = make_array(machine)
    arr.from_numpy(np.ones((8, 8)))
    assert arr[7, 7] == 1.0
    cache = get_perf_layer(machine).cache
    assert len(cache) == 1
    am_user.set_read_cache(machine, False)
    assert len(cache) == 0 and not cache.enabled


def test_free_drops_cached_sections(machine):
    arr = make_array(machine)
    arr.from_numpy(np.ones((8, 8)))
    assert arr[7, 7] == 1.0
    cache = get_perf_layer(machine).cache
    assert len(cache) == 1
    arr.free()
    assert len(cache) == 0


def test_lru_capacity_bounded(machine):
    cache = get_perf_layer(machine).cache
    cache.capacity = 2
    arrays = [make_array(machine) for _ in range(3)]
    for i, arr in enumerate(arrays):
        arr.from_numpy(np.full((8, 8), float(i)))
        assert arr[7, 7] == float(i)
    assert len(cache) == 2  # oldest entry evicted, not grown unbounded
