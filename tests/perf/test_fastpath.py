"""The same-node routing fast path.

When source == dest and the transport stack is empty, ``Machine.route``
skips trace stamping and interceptor dispatch.  The path must be
accounting-neutral (counters still move) and must yield to the slow path
the moment anything is watching the wire.
"""

from __future__ import annotations

import pytest

from repro.vp.fabric import TrafficMeter
from repro.vp.machine import Machine
from repro.vp.message import Message


@pytest.fixture
def machine():
    return Machine(4)


def test_same_node_message_delivered_and_counted(machine):
    machine.route(Message(source=2, dest=2, payload="loop"))
    assert machine.processor(2).mailbox.recv(timeout=5).payload == "loop"
    snap = machine.traffic_snapshot()
    assert snap["messages"] == 1 and snap["bytes"] > 0


def test_fast_path_skips_trace_stamping(machine):
    machine.route(Message(source=1, dest=1, payload="x"))
    msg = machine.processor(1).mailbox.recv(timeout=5)
    assert msg.trace_id is None  # envelope not copied, not stamped


def test_cross_node_message_still_stamped(machine):
    machine.route(Message(source=0, dest=1, payload="x"))
    assert machine.processor(1).mailbox.recv(timeout=5).trace_id is not None


def test_interceptor_disables_fast_path(machine):
    meter = TrafficMeter()
    machine.transport_stack.push(meter)
    try:
        machine.route(Message(source=3, dest=3, payload="seen"))
        msg = machine.processor(3).mailbox.recv(timeout=5)
        # Non-empty stack: the message went down the interceptor stack
        # (the meter saw it) and was trace-stamped as usual.
        assert meter.snapshot()["messages"] == 1
        assert msg.trace_id is not None
    finally:
        machine.transport_stack.remove(meter)


def test_fast_path_respects_dead_destination(machine):
    machine.dead_send_policy = "drop"
    machine.fail(2)
    with pytest.raises(Exception):
        # Dead *source* still raises before the fast path is consulted.
        machine.route(Message(source=2, dest=2, payload="x"))
