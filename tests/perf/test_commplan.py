"""Precompiled halo-exchange plans (``repro.perf.commplan``).

Covers the three correctness pillars of planning: geometry (every fused
strip carries exactly the cells a brute-force neighbour read would),
epoch validity (recovery/migration/rebalance invalidate cached plans and
stale strips are fenced, never applied), and delivery discipline
(exactly-once border fill under drop/duplicate fault injection, with the
prefetch/complete overlap producing bit-identical results).
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.arrays import am_user, am_util
from repro.arrays.manager import get_array_manager
from repro.calls import Local, Reduce, distributed_call
from repro.core.darray import DistributedArray
from repro.faults import FaultPlan, FaultyTransport, install_recovery
from repro.perf import HALO_BULK_KIND, StalePlanError, get_perf_layer
from repro.perf.commplan import HaloStrip
from repro.spmd.stencil import exchange_halos, heat_steps, jacobi_sweep
from repro.status import Status
from repro.vp.fabric import TrafficMeter
from repro.vp.machine import Machine

DISTRIB_2X2 = (("block", 2), ("block", 2))


@pytest.fixture
def machine():
    m = Machine(6, default_recv_timeout=10)
    am_util.load_all(m)
    return m


def make_array(machine, shape=(8, 8), grid=(2, 2), borders=1,
               replication=0, procs=None):
    if procs is None:
        procs = list(range(int(np.prod(grid))))
    if isinstance(borders, int):
        borders = [borders] * (2 * len(shape))
    return DistributedArray.create(
        machine, "double", shape, procs,
        [("block", g) for g in grid], borders=borders,
        replication=replication,
    )


def plans_of(machine):
    return get_perf_layer(machine).plans


def serial_reference(field, steps):
    full = np.zeros((field.shape[0] + 2, field.shape[1] + 2))
    full[1:-1, 1:-1] = field
    for _ in range(steps):
        full[1:-1, 1:-1] = jacobi_sweep(full)
    return full[1:-1, 1:-1]


# ---------------------------------------------------------------------------
# Geometry: plan slices vs brute-force neighbour reads
# ---------------------------------------------------------------------------


def section_origin(layout, section):
    coords = layout.section_coords(section)
    return tuple(c * ld for c, ld in zip(coords, layout.local_dims))


def global_range(origin, pad, slc, axis):
    """Map one local full-view slice to global index bounds."""
    return (origin[axis] + slc.start - pad, origin[axis] + slc.stop - pad)


class TestPlanGeometry:
    @pytest.mark.parametrize(
        "shape,grid,borders",
        [
            ((8, 8), (2, 2), 2),     # (block, block), square sections
            ((8, 16), (2, 2), 1),    # unequal local dims (4 x 8)
            ((8, 8), (4, 1), 3),     # (block, *): thin 2x8 strips clip
                                     # the usable depth below the pad
            ((8, 8), (1, 4), 2),     # column strips, stage-1 only
        ],
    )
    def test_slices_map_to_identical_global_cells(
        self, machine, shape, grid, borders
    ):
        """Every transfer's source interior strip and destination border
        strip cover the *same* global cells — the fused message is exactly
        the brute-force per-region read it replaces."""
        arr = make_array(machine, shape, grid, borders)
        plan = arr.halo_plan()
        assert plan is not None
        layout = arr.layout
        assert plan.depth == min(borders, min(layout.local_dims))
        for k in range(1, plan.depth + 1):
            transfers = plan.transfers(k)
            for t in transfers:
                src_o = section_origin(layout, t.edge.src_section)
                dst_o = section_origin(layout, t.edge.dest_section)
                for axis, (s, d) in enumerate(
                    zip(t.src_slices, t.dest_slices)
                ):
                    assert global_range(src_o, plan.pad, s, axis) == \
                        global_range(dst_o, plan.pad, d, axis)
                # Destination cells are border cells only: along the edge
                # axis the strip sits strictly outside the interior.
                d = t.dest_slices[t.edge.axis]
                pad = plan.pad
                interior = layout.local_dims[t.edge.axis]
                assert d.stop <= pad or d.start >= pad + interior
        # Exactly one fused transfer per neighbour per stage at any depth.
        per_dest = {}
        for t in plan.transfers(plan.depth):
            key = (t.edge.dest_section, t.edge.side)
            per_dest[key] = per_dest.get(key, 0) + 1
        assert all(n == 1 for n in per_dest.values())

    def test_depth_outside_range_rejected(self, machine):
        arr = make_array(machine, borders=2)
        plan = arr.halo_plan()
        with pytest.raises(ValueError):
            plan.transfers(0)
        with pytest.raises(ValueError):
            plan.transfers(plan.depth + 1)

    def test_non_uniform_borders_out_of_scope(self, machine):
        arr = make_array(machine, borders=[1, 1, 2, 2])
        assert arr.halo_plan() is None

    @pytest.mark.parametrize(
        "shape,grid,borders,k",
        [((8, 8), (2, 2), 2, 2), ((8, 16), (2, 2), 1, 1),
         ((12,), (4,), 2, 2)],
    )
    def test_manual_exchange_fills_borders_with_neighbour_data(
        self, machine, shape, grid, borders, k
    ):
        """Drive one exchange phase by hand on every section and check
        each border cell against a padded global mirror — the brute-force
        definition of a correct halo."""
        arr = make_array(machine, shape, grid, borders)
        values = np.arange(np.prod(shape), dtype=float).reshape(shape)
        arr.from_numpy(values)
        plan = arr.halo_plan()
        registry = plans_of(machine)
        manager = get_array_manager(machine)
        state = manager.durability_state(arr.array_id)
        pad = plan.pad
        mirror = np.zeros(tuple(s + 2 * pad for s in shape))
        mirror[tuple(slice(pad, pad + s) for s in shape)] = values
        exchanges = []
        for section, owner in enumerate(state.processors):
            record = manager._lookup(
                machine.processor(owner), arr.array_id
            )
            exchanges.append(
                (section, owner, record,
                 plan.begin(registry, record, record.section.full(),
                            section, k, ("test-call", 0), owner))
            )
        for _, _, _, ex in exchanges:
            ex.prefetch()
        threads = [
            threading.Thread(target=ex.complete) for _, _, _, ex in exchanges
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=20)
            assert not t.is_alive()
        for section, owner, record, ex in exchanges:
            full = record.section.full()
            origin = section_origin(arr.layout, section)
            for t in plan.transfers(k, section=section, role="recv"):
                got = full[t.dest_slices]
                want = mirror[tuple(
                    slice(origin[axis] + s.start, origin[axis] + s.stop)
                    for axis, s in enumerate(t.dest_slices)
                )]
                assert np.array_equal(got, want), (
                    f"section {section} side {t.edge.side}"
                )
        diag = registry.diagnostics()
        assert diag["exchanges"] == len(exchanges)
        assert diag["strips_claimed"] == sum(
            len(plan.transfers(k, section=s, role="recv"))
            for s, _, _, _ in exchanges
        )

    def test_selective_complete_claims_only_named_sides(self, machine):
        """complete(sides=...) blocks only on the borders the kernel
        reads; the other side's strip stays parked in its rendezvous."""
        arr = make_array(machine, (12,), (4,), borders=1)
        arr.from_numpy(np.arange(12, dtype=float))
        plan = arr.halo_plan()
        registry = plans_of(machine)
        manager = get_array_manager(machine)
        state = manager.durability_state(arr.array_id)
        exchanges = []
        for section, owner in enumerate(state.processors):
            record = manager._lookup(machine.processor(owner), arr.array_id)
            exchanges.append(
                (section, record,
                 plan.begin(registry, record, record.section.full(),
                            section, 1, ("sides-call", 0), owner))
            )
        for _, _, ex in exchanges:
            ex.prefetch()
        for section, record, ex in exchanges:
            ex.complete(sides=("west",))
            full = record.section.full()
            if ex.receives("west"):
                # west halo holds the neighbour's last interior cell
                assert full[0] == float(section * 3 - 1)
            if ex.receives("east"):
                # east strip arrived but was never claimed/applied
                assert full[-1] == 0.0
        assert registry.diagnostics()["pending_rendezvous"] > 0


# ---------------------------------------------------------------------------
# Planned vs unplanned equivalence + message fusion
# ---------------------------------------------------------------------------


def run_heat(machine, arr, grid, steps):
    res = distributed_call(
        machine, list(arr.processors), heat_steps,
        [grid[0], grid[1], steps, Local(arr.array_id),
         Reduce("double", 1, "max")],
    )
    assert res.status is Status.OK
    return res.reductions[0]


class TestPlannedEquivalence:
    @pytest.mark.parametrize("steps", [1, 3, 4, 7])
    def test_deep_border_sweeps_match_serial_reference(self, machine, steps):
        """Deep borders amortise one exchange over several sweeps; the
        redundant frame recomputation must stay bit-identical to the
        per-sweep exchange (= the serial single-domain reference)."""
        rng = np.random.default_rng(1)
        initial = rng.uniform(0, 100, (8, 8))
        arr = make_array(machine, (8, 8), (2, 2), borders=4)
        arr.from_numpy(initial)
        run_heat(machine, arr, (2, 2), steps)
        assert np.allclose(
            arr.to_numpy(), serial_reference(initial, steps),
            rtol=0, atol=0,
        )

    def test_planned_and_unplanned_deltas_agree(self, machine):
        rng = np.random.default_rng(2)
        initial = rng.uniform(0, 100, (8, 8))
        planned = make_array(machine, (8, 8), (2, 2), borders=4)
        planned.from_numpy(initial)
        d_planned = run_heat(machine, planned, (2, 2), 5)

        unplanned = make_array(
            machine, (8, 8), (2, 2), borders=1, procs=[0, 1, 2, 3]
        )
        unplanned.from_numpy(initial)
        registry = plans_of(machine)
        registry.enabled = False
        try:
            d_unplanned = run_heat(machine, unplanned, (2, 2), 5)
        finally:
            registry.enabled = True
        assert d_planned == d_unplanned
        assert np.array_equal(planned.to_numpy(), unplanned.to_numpy())

    def test_one_fused_message_per_neighbour_per_phase(self, machine):
        """Depth-4 borders: 9 sweeps = 3 exchange phases, 8 routed strips
        per phase on a fully remote 2x2 grid — versus 8 per *sweep* for
        the unplanned path."""
        arr = make_array(machine, (8, 8), (2, 2), borders=4)
        arr.from_numpy(np.ones((8, 8)))
        run_heat(machine, arr, (2, 2), 1)  # warm the plan cache
        meter = TrafficMeter()
        machine.transport_stack.push(meter)
        try:
            run_heat(machine, arr, (2, 2), 9)
            halo = meter.snapshot()["by_kind"].get(HALO_BULK_KIND, (0, 0))
        finally:
            machine.transport_stack.remove(meter)
        assert halo[0] == 3 * 8  # 3 phases x 8 neighbour edges

    def test_unplanned_fallback_rejects_deep_borders(self, machine):
        arr = make_array(machine, (8, 8), (2, 2), borders=4)
        arr.from_numpy(np.ones((8, 8)))
        registry = plans_of(machine)
        registry.enabled = False
        try:
            res = distributed_call(
                machine, list(arr.processors), heat_steps,
                [2, 2, 1, Local(arr.array_id)],
            )
        finally:
            registry.enabled = True
        assert res.status is Status.ERROR


class TestGridMismatch:
    def test_exchange_halos_names_grid_and_shape(self):
        class _Ctx:
            procs = [0, 1, 2]
            index = 0

        with pytest.raises(ValueError) as exc:
            exchange_halos(_Ctx(), np.zeros((4, 4)), 2, 3)
        msg = str(exc.value)
        assert "2x3" in msg and "6" in msg and "3" in msg
        assert "(4, 4)" in msg

    def test_distributed_call_with_wrong_grid_fails_cleanly(self, machine):
        arr = make_array(machine, (8, 8), (2, 2), borders=1)
        arr.from_numpy(np.ones((8, 8)))
        # Grid args disagree with the 4-owner layout: the planned path
        # refuses to engage and the fallback raises the descriptive error.
        res = distributed_call(
            machine, list(arr.processors), heat_steps,
            [4, 4, 1, Local(arr.array_id)],
        )
        assert res.status is Status.ERROR


# ---------------------------------------------------------------------------
# Plan cache: hits, invalidation, stale fencing
# ---------------------------------------------------------------------------


class TestPlanCache:
    def test_hit_then_invalidate_on_migration(self, machine):
        arr = make_array(machine)
        registry = plans_of(machine)
        base = registry.diagnostics()
        plan1 = arr.halo_plan()
        plan2 = arr.halo_plan()
        assert plan2 is plan1
        diag = registry.diagnostics()
        assert diag["compiled"] == base["compiled"] + 1
        assert diag["hits"] >= base["hits"] + 1
        arr.migrate({3: 4})  # epoch bump + membership rewrite
        plan3 = arr.halo_plan()
        assert plan3 is not plan1
        diag = registry.diagnostics()
        assert diag["invalidations"] == base["invalidations"] + 1
        assert plan3.processors[3] == 4
        assert plan3.epoch > plan1.epoch

    def test_invalidate_on_border_migration(self, machine):
        """``verify_borders`` reallocates sections with a new pad without
        bumping the epoch — geometry is part of plan validity, so the
        cached plan must recompile instead of computing stale slices."""
        arr = make_array(machine, borders=1)
        arr.from_numpy(np.arange(64, dtype=float).reshape(8, 8))
        plan1 = arr.halo_plan()
        assert plan1.pad == 1
        arr.verify_borders([2, 2, 2, 2])
        plan2 = arr.halo_plan()
        assert plan2 is not plan1 and plan2.pad == 2
        assert plans_of(machine).diagnostics()["invalidations"] >= 1
        run_heat(machine, arr, (2, 2), 3)  # deep path on the new pad

    def test_invalidate_on_rebalance_and_recovery(self, machine):
        install_recovery(machine)
        arr = make_array(machine, replication=1)
        arr.from_numpy(np.arange(64, dtype=float).reshape(8, 8))
        plan1 = arr.halo_plan()
        machine.fail(3)  # kill section 3's owner; recovery adopts mirror
        plan2 = arr.halo_plan()
        assert plan2 is not plan1 and plan2.epoch > plan1.epoch
        assert 3 not in plan2.processors
        # The recompiled plan must carry real data end-to-end.
        state = get_array_manager(machine).durability_state(arr.array_id)
        run_heat(machine, DistributedArray(
            machine, arr.array_id, arr.layout,
            tuple(state.processors), "double",
        ), (2, 2), 2)

    def test_stale_strip_is_fenced_never_applied(self, machine):
        """A strip stamped with a pre-rewrite epoch is refused: counted,
        fenced through the STALE_EPOCH machinery, and its rendezvous is
        poisoned so a claimer aborts instead of reading stale data."""
        observer = machine.observe()
        arr = make_array(machine)
        arr.from_numpy(np.zeros((8, 8)))
        arr.migrate({3: 4})  # epoch 0 -> 1
        manager = get_array_manager(machine)
        registry = plans_of(machine)
        state = manager.durability_state(arr.array_id)
        assert state.epoch >= 1
        owner = state.processors[1]
        record = manager._lookup(machine.processor(owner), arr.array_id)
        before = record.section.full().copy()
        strip = HaloStrip(
            arr.array_id, 0, 1, "west", 1, ("stale-call", 0),
            epoch=0,  # predates the migration's epoch bump
            dest_slices=(slice(0, 9), slice(0, 1)),
            data=np.full((9, 1), 1e9),
            done=None,
        )
        registry.apply_strip(owner, strip)
        assert registry.diagnostics()["stale_strips"] == 1
        # Never applied: border cells untouched.
        assert np.array_equal(record.section.full(), before)
        # The fence is the write path's fence.
        key = (
            "repro_fenced_writes_total"
            f'{{array="{arr.array_id.as_tuple()}"}}'
        )
        assert observer.metrics.snapshot()[key] >= 1
        # A claimer of that rendezvous aborts rather than blocking.
        with pytest.raises(StalePlanError):
            registry.await_strip(strip.key(), timeout=1)

    def test_strip_to_wrong_owner_refused_as_not_found(self, machine):
        arr = make_array(machine)
        registry = plans_of(machine)
        strip = HaloStrip(
            arr.array_id, 0, 1, "west", 1, ("lost-call", 0),
            epoch=0, dest_slices=(slice(0, 1), slice(0, 1)),
            data=np.zeros((1, 1)), done=None,
        )
        registry.apply_strip(5, strip)  # processor 5 owns nothing
        assert registry.diagnostics()["not_found_strips"] == 1

    def test_free_drops_plans_and_rendezvous(self, machine):
        arr = make_array(machine)
        arr.halo_plan()
        registry = plans_of(machine)
        assert registry.diagnostics()["plans"] >= 1
        arr.free()
        assert all(
            key[1] != arr.array_id.as_tuple() for key in registry._plans
        )

    def test_metrics_and_diagnostics_exposed(self, machine):
        observer = machine.observe()
        arr = make_array(machine, borders=2)
        arr.from_numpy(np.ones((8, 8)))
        arr.halo_plan()
        arr.halo_plan()
        run_heat(machine, arr, (2, 2), 2)
        snap = observer.metrics.snapshot()
        assert snap["repro_comm_plans_compiled_total"] >= 1
        assert snap["repro_comm_plans_hits_total"] >= 1
        assert snap["repro_halo_exchanges_total"] >= 4
        assert snap["repro_halo_strips_total"] >= 8
        diag = machine.diagnostics()["perf"]["comm_plans"]
        assert diag["compiled"] >= 1 and diag["exchanges"] >= 4
        spans = [
            s for s in observer.spans() if s["name"] == "perf:halo"
        ] if hasattr(observer, "spans") else []
        # span emission is best-effort introspection; presence of the
        # counters above is the hard requirement.
        assert spans is not None


# ---------------------------------------------------------------------------
# Fault injection: exactly-once border fill under drop/duplicate
# ---------------------------------------------------------------------------


class TestPlannedUnderFaults:
    @pytest.mark.parametrize(
        "plan_kwargs",
        [dict(drop=0.4), dict(duplicate=0.5), dict(drop=0.3, duplicate=0.3)],
    )
    def test_drop_duplicate_halo_traffic_is_exactly_once(
        self, machine, plan_kwargs
    ):
        """Faults scoped to ``halo_bulk`` messages only: dropped strips
        are reshipped after the ack timeout, duplicates collapse in the
        single-assignment rendezvous, and the result stays bit-identical
        to the fault-free serial reference."""
        rng = np.random.default_rng(3)
        initial = rng.uniform(0, 100, (8, 8))
        arr = make_array(machine, (8, 8), (2, 2), borders=4)
        arr.from_numpy(initial)
        registry = plans_of(machine)
        registry.retry_timeout = 0.25  # keep reship latency test-sized
        steps = 8
        fault_plan = FaultPlan(
            seed=11, kinds=(HALO_BULK_KIND,), **plan_kwargs
        )
        faulty = FaultyTransport(machine, fault_plan)
        faulty.install()
        try:
            run_heat(machine, arr, (2, 2), steps)
        finally:
            faulty.uninstall()
            registry.retry_timeout = 5.0
        assert np.allclose(
            arr.to_numpy(), serial_reference(initial, steps),
            rtol=0, atol=0,
        )
        diag = registry.diagnostics()
        if "drop" in plan_kwargs:
            assert diag["retries"] >= 1
        if "duplicate" in plan_kwargs:
            assert diag["duplicate_strips"] >= 1
