"""The write-behind coalescer: batching, flush points, and equivalence.

The §3.3 contract under test: a program whose writes ride the
write-behind buffer must be observationally equivalent to the per-write
path at every point where the writes *could* be observed — reads,
collectives, checkpoints, and distributed-call boundaries all force the
queue out first.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.arrays import am_user, am_util
from repro.calls import Local, distributed_call
from repro.core.darray import DistributedArray
from repro.perf import coalescing_disabled, get_perf_layer
from repro.status import Status
from repro.vp.machine import Machine


@pytest.fixture
def m8():
    machine = Machine(8)
    am_util.load_all(machine)
    return machine


def make_array(machine, n=16, owners=4, **kwargs):
    procs = am_util.node_array(0, 1, owners)
    return DistributedArray.create(
        machine, "double", (n,), procs, ["block"], **kwargs
    )


class TestBatching:
    def test_element_writes_are_queued_not_routed(self, m8):
        arr = make_array(m8)
        m8.reset_traffic()
        for i in range(8):
            arr[i] = float(i)
        perf = get_perf_layer(m8)
        # Below the flush threshold nothing has shipped: the writes sit
        # in the buffer and no array traffic was routed.
        assert perf.coalescer.pending_ops(arr.array_id) == 8
        assert m8.traffic_snapshot()["messages"] == 0

    def test_flush_ships_one_batch_per_dirty_section(self, m8):
        arr = make_array(m8, n=16, owners=4)
        for i in range(16):
            arr[i] = float(i)
        m8.reset_traffic()
        flushed = am_user.flush_writes(m8)
        assert flushed == 16
        # Four dirty sections; the section owned by the requesting node
        # (processor 0) applies inline, so three batches route.
        assert m8.traffic_snapshot()["messages"] == 3
        assert arr.to_numpy().tolist() == [float(i) for i in range(16)]

    def test_threshold_forces_flush(self, m8):
        arr = make_array(m8, n=64, owners=1)
        perf = get_perf_layer(m8)
        perf.coalescer.flush_ops = 4
        for i in range(8):
            arr[i] = 1.0
        # Two threshold crossings -> at most 4 writes still pending.
        assert perf.coalescer.pending_ops(arr.array_id) < 4 + 1
        assert perf.coalescer.flushes >= 2

    def test_coalescing_disabled_restores_per_write_path(self, m8):
        arr = make_array(m8, n=16, owners=4)
        with coalescing_disabled(m8):
            m8.reset_traffic()
            for i in range(4, 8):  # section 1, owned by processor 1
                arr[i] = float(i)
            # One write_element_local request per element.
            assert m8.traffic_snapshot()["messages"] == 4
        assert get_perf_layer(m8).coalescer.enabled

    def test_statuses_match_per_write_path(self, m8):
        arr = make_array(m8)
        aid = arr.array_id
        assert am_user.write_element(m8, aid, (0,), 1.0) is Status.OK
        assert am_user.write_element(m8, aid, (99,), 1.0) is Status.INVALID
        assert am_user.write_element(m8, aid, (0,), "x") is Status.INVALID
        from repro.arrays.record import ArrayID

        assert (
            am_user.write_element(m8, ArrayID(0, 999), (0,), 1.0)
            is Status.NOT_FOUND
        )


class TestFlushPoints:
    def test_read_element_flushes_dirty_section(self, m8):
        arr = make_array(m8)
        arr[5] = 7.5
        assert arr[5] == 7.5  # read-your-writes through the flush

    def test_read_region_flushes(self, m8):
        arr = make_array(m8, n=16, owners=4)
        for i in range(16):
            arr[i] = float(i)
        assert arr.read_region([(0, 16)]).tolist() == [
            float(i) for i in range(16)
        ]

    def test_find_local_flushes(self, m8):
        arr = make_array(m8, n=16, owners=4)
        for i in range(16):
            arr[i] = float(i)
        section, st = am_user.find_local(m8, arr.array_id, processor=2)
        assert st is Status.OK
        assert section.interior().tolist() == [8.0, 9.0, 10.0, 11.0]

    def test_region_write_orders_after_queued_element_writes(self, m8):
        arr = make_array(m8, n=16, owners=4)
        for i in range(16):
            arr[i] = 1.0
        arr.from_numpy(np.full(16, 2.0))  # region write = ordering barrier
        assert arr.to_numpy().tolist() == [2.0] * 16

    def test_collective_flushes(self, m8):
        from repro.spmd.collectives import barrier
        from repro.spmd.comm import GroupComm

        arr = make_array(m8, n=16, owners=4)
        arr[0] = 3.0
        perf = get_perf_layer(m8)
        assert perf.coalescer.pending_ops(arr.array_id) == 1
        comm = GroupComm(m8, [0], 0, ("test", "flush", 0))
        barrier(comm)
        assert perf.coalescer.pending_ops(arr.array_id) == 0
        assert arr[0] == 3.0

    def test_distributed_call_flushes(self, m8):
        procs = am_util.node_array(0, 1, 4)
        arr = make_array(m8, n=16, owners=4)
        for i in range(16):
            arr[i] = float(i)

        def body(ctx, section):
            section.interior()[...] += 100.0

        result = distributed_call(m8, procs, body, [Local(arr.array_id)])
        assert result.status is Status.OK
        assert arr.to_numpy().tolist() == [100.0 + i for i in range(16)]

    def test_checkpoint_includes_queued_writes(self, m8):
        arr = make_array(m8, n=16, owners=4)
        for i in range(16):
            arr[i] = float(i)
        snapshot = arr.checkpoint()
        assert snapshot.assemble().tolist() == [float(i) for i in range(16)]

    def test_free_discards_pending_writes(self, m8):
        arr = make_array(m8)
        arr[0] = 1.0
        perf = get_perf_layer(m8)
        assert perf.coalescer.pending_ops(arr.array_id) == 1
        arr.free()
        assert perf.coalescer.pending_ops(arr.array_id) == 0

    def test_explicit_flush_helper(self, m8):
        arr = make_array(m8)
        arr[1] = 4.0
        assert arr.flush() == 1
        assert arr.flush() == 0


class TestDiagnostics:
    def test_perf_counters_in_machine_diagnostics(self, m8):
        arr = make_array(m8, n=16, owners=4)
        for i in range(16):
            arr[i] = float(i)
        am_user.flush_writes(m8)
        perf = m8.diagnostics()["perf"]
        assert perf["enabled"]
        assert perf["flushes"] >= 1
        assert perf["coalesced_writes"] == 16
        assert "cache_hits" in perf and "cache_misses" in perf

    def test_observer_metrics(self, m8):
        with m8.observe() as observer:
            arr = make_array(m8, n=16, owners=4)
            for i in range(16):
                arr[i] = float(i)
            am_user.flush_writes(m8)
            snap = observer.metrics.snapshot()
            assert snap["repro_perf_flushes_total"] >= 1
            assert snap["repro_perf_coalesced_writes_total"] == 16

    def test_flush_span_annotated(self, m8):
        with m8.observe() as observer:
            arr = make_array(m8, n=16, owners=4)
            arr[0] = 1.0
            am_user.flush_writes(m8)
            spans = [
                s for s in observer.recorder.spans()
                if s["name"] == "perf:flush"
            ]
            assert spans and spans[0]["attrs"]["ops"] == 1
