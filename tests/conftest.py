"""Shared fixtures for the test suite.

Machines are cheap to construct (threads start lazily), so most fixtures
are function-scoped for isolation.  Timeouts are kept short: a suspended
PCN process that never resumes is a bug, and we want it to surface as a
TimeoutError, not a hung suite.
"""

from __future__ import annotations

import pytest

from repro.arrays.am_util import load_all, node_array
from repro.core.runtime import IntegratedRuntime
from repro.vp.machine import Machine


@pytest.fixture
def machine4() -> Machine:
    m = Machine(4)
    load_all(m)
    return m


@pytest.fixture
def machine8() -> Machine:
    m = Machine(8)
    load_all(m)
    return m


@pytest.fixture
def machine16() -> Machine:
    m = Machine(16)
    load_all(m)
    return m


@pytest.fixture
def rt4() -> IntegratedRuntime:
    return IntegratedRuntime(4)


@pytest.fixture
def rt8() -> IntegratedRuntime:
    return IntegratedRuntime(8)


@pytest.fixture
def rt16() -> IntegratedRuntime:
    return IntegratedRuntime(16)


def procs_for(machine: Machine):
    return node_array(0, 1, machine.num_nodes)
