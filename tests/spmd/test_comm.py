"""Group communicators: relocatability and traffic isolation (§3.1.4,
§3.4.1, §3.5)."""

from __future__ import annotations

import pytest

from repro.pcn.composition import par
from repro.spmd.comm import GroupComm
from repro.vp.machine import Machine


@pytest.fixture
def m8():
    return Machine(8)


def comms_for(machine, procs, group="g"):
    return [GroupComm(machine, procs, r, group) for r in range(len(procs))]


class TestPointToPoint:
    def test_send_recv_by_rank(self, m8):
        a, b = comms_for(m8, [2, 5])

        def sender():
            a.send(1, "hello", tag="t")

        def receiver():
            return b.recv(source_rank=0, tag="t")

        _s, got = par(sender, receiver)
        assert got == "hello"

    def test_ranks_are_group_relative(self, m8):
        """§3.5 relocatability: the same program logic works on any
        processor subset because it addresses ranks, not processors."""
        for procs in ([0, 1], [6, 3], [4, 7]):
            comms = comms_for(m8, procs, group=("reloc", tuple(procs)))

            def program(comm):
                if comm.rank == 0:
                    comm.send(1, comm.processor_number, tag="id")
                    return None
                return comm.recv(source_rank=0, tag="id")

            results = par(*[lambda c=c: program(c) for c in comms])
            assert results[1] == procs[0]

    def test_recv_any_source(self, m8):
        comms = comms_for(m8, [0, 1, 2])

        def worker(comm):
            if comm.rank != 0:
                comm.send(0, comm.rank, tag="in")
                return None
            return {comm.recv(tag="in"), comm.recv(tag="in")}

        results = par(*[lambda c=c: worker(c) for c in comms])
        assert results[0] == {1, 2}

    def test_sendrecv_exchange(self, m8):
        a, b = comms_for(m8, [1, 2])
        ra, rb = par(
            lambda: a.sendrecv(1, "from-a", tag="x"),
            lambda: b.sendrecv(0, "from-b", tag="x"),
        )
        assert (ra, rb) == ("from-b", "from-a")

    def test_group_isolation(self, m8):
        """Two groups sharing processors cannot intercept each other."""
        g1 = comms_for(m8, [0, 1], group="call-1")
        g2 = comms_for(m8, [0, 1], group="call-2")

        def scenario():
            # call-2's message arrives first at processor 1...
            g2[0].send(1, "for-call-2", tag="t")
            g1[0].send(1, "for-call-1", tag="t")

        def call1_receiver():
            return g1[1].recv(source_rank=0, tag="t")

        _s, got = par(scenario, call1_receiver)
        # ...but call-1's selective receive takes only its own traffic.
        assert got == "for-call-1"
        assert g2[1].recv(source_rank=0, tag="t") == "for-call-2"

    def test_bad_rank_rejected(self, m8):
        with pytest.raises(ValueError):
            GroupComm(m8, [0, 1], 2, "g")

    def test_dup_subgroup(self, m8):
        comm = GroupComm(m8, [3, 5, 7], 2, "g")
        sub = comm.dup([0, 2], "sub")
        assert sub.procs == (3, 7)
        assert sub.rank == 1

    def test_recv_message_envelope(self, m8):
        a, b = comms_for(m8, [0, 4])
        a.send(1, "payload", tag="env")
        msg = b.recv_message(source_rank=0, tag="env")
        assert msg.source == 0 and msg.dest == 4
        assert b.rank_of_source(msg) == 0
