"""The SPMD linear-algebra library (§D), validated against NumPy/SciPy."""

from __future__ import annotations

import numpy as np
import pytest

from repro.arrays import am_user, am_util
from repro.calls import Local, Reduce, distributed_call
from repro.spmd import linalg
from repro.spmd.context import OutCell
from repro.status import Status
from repro.vp.machine import Machine

scipy_linalg = pytest.importorskip("scipy.linalg")


@pytest.fixture
def m4():
    machine = Machine(4)
    am_util.load_all(machine)
    return machine


def procs(machine):
    return am_util.node_array(0, 1, machine.num_nodes)


def make_vector(machine, n, values=None):
    p = procs(machine)
    aid, st = am_user.create_array(machine, "double", (n,), p, ["block"])
    assert st is Status.OK
    if values is not None:
        from repro.pcn.defvar import DefVar

        for rank, proc in enumerate(p):
            status = DefVar("s")
            chunk = np.asarray(values)[
                rank * n // len(p) : (rank + 1) * n // len(p)
            ]
            machine.server.request(
                "write_section_local", aid, chunk.copy(), status,
                processor=int(proc),
            )
            assert Status(status.read()) is Status.OK
    return aid


def gather_vector(machine, aid, n):
    return np.array(
        [am_user.read_element(machine, aid, (i,))[0] for i in range(n)]
    )


def make_matrix(machine, n, values):
    p = procs(machine)
    aid, st = am_user.create_array(
        machine, "double", (n, n), p, [("block", len(p)), "*"]
    )
    assert st is Status.OK
    from repro.pcn.defvar import DefVar

    rows = n // len(p)
    for rank, proc in enumerate(p):
        status = DefVar("s")
        machine.server.request(
            "write_section_local",
            aid,
            np.asarray(values)[rank * rows : (rank + 1) * rows].copy(),
            status,
            processor=int(proc),
        )
        assert Status(status.read()) is Status.OK
    return aid


def gather_matrix(machine, aid, n):
    out = np.empty((n, n))
    for i in range(n):
        for j in range(n):
            out[i, j] = am_user.read_element(machine, aid, (i, j))[0]
    return out


class TestVectorOps:
    def test_vec_fill_and_affine(self, m4):
        n = 8
        v = make_vector(m4, n)
        res = distributed_call(
            m4, procs(m4),
            lambda ctx, sec: linalg.vec_affine(ctx, 2.0, 1.0, sec),
            [Local(v)],
        )
        assert res.status is Status.OK
        assert list(gather_vector(m4, v, n)) == [2.0 * i + 1 for i in range(n)]

    def test_vec_axpy(self, m4):
        n = 8
        x = make_vector(m4, n, np.arange(n, dtype=float))
        y = make_vector(m4, n, np.ones(n))
        res = distributed_call(
            m4, procs(m4),
            lambda ctx, xs, ys: linalg.vec_axpy(ctx, 3.0, xs, ys),
            [Local(x), Local(y)],
        )
        assert res.status is Status.OK
        assert np.allclose(gather_vector(m4, y, n), 3.0 * np.arange(n) + 1.0)

    def test_vec_scale(self, m4):
        n = 8
        x = make_vector(m4, n, np.arange(n, dtype=float))
        distributed_call(
            m4, procs(m4),
            lambda ctx, xs: linalg.vec_scale(ctx, -2.0, xs),
            [Local(x)],
        )
        assert np.allclose(gather_vector(m4, x, n), -2.0 * np.arange(n))

    def test_vec_dot_matches_numpy(self, m4):
        n = 8
        rng = np.random.default_rng(3)
        a_vals, b_vals = rng.standard_normal((2, n))
        a = make_vector(m4, n, a_vals)
        b = make_vector(m4, n, b_vals)

        res = distributed_call(
            m4, procs(m4),
            lambda ctx, xs, ys, out: linalg.vec_dot(ctx, xs, ys, out),
            [Local(a), Local(b), Reduce("double", 1, "max")],
        )
        assert res.reductions[0] == pytest.approx(float(a_vals @ b_vals))

    def test_vec_norm2(self, m4):
        n = 8
        vals = np.arange(n, dtype=float)
        v = make_vector(m4, n, vals)
        res = distributed_call(
            m4, procs(m4),
            lambda ctx, xs, out: linalg.vec_norm2(ctx, xs, out),
            [Local(v), Reduce("double", 1, "max")],
        )
        assert res.reductions[0] == pytest.approx(float(np.linalg.norm(vals)))

    def test_vec_copy_and_pointwise(self, m4):
        n = 8
        x = make_vector(m4, n, np.full(n, 3.0))
        y = make_vector(m4, n)
        distributed_call(
            m4, procs(m4),
            lambda ctx, xs, ys: (
                linalg.vec_copy(ctx, xs, ys),
                linalg.vec_pointwise_mul(ctx, xs, ys),
            ),
            [Local(x), Local(y)],
        )
        assert np.allclose(gather_vector(m4, y, n), 9.0)

    def test_vec_sum_with_outcell(self, m4):
        """OutCell variant used when called outside a distributed call."""
        ctx_results = []

        def program(ctx, sec):
            out = OutCell("sum")
            linalg.vec_fill(ctx, 2.0, sec)
            linalg.vec_sum(ctx, sec, out)
            ctx_results.append(out.value)

        v = make_vector(m4, 8)
        distributed_call(m4, procs(m4), program, [Local(v)])
        assert ctx_results.count(16.0) == 4


class TestMatrixOps:
    def test_matvec_matches_numpy(self, m4):
        n = 8
        rng = np.random.default_rng(5)
        a_vals = rng.standard_normal((n, n))
        x_vals = rng.standard_normal(n)
        a = make_matrix(m4, n, a_vals)
        x = make_vector(m4, n, x_vals)
        y = make_vector(m4, n)
        res = distributed_call(
            m4, procs(m4),
            lambda ctx, am, xm, ym: linalg.mat_vec(ctx, am, xm, ym),
            [Local(a), Local(x), Local(y)],
        )
        assert res.status is Status.OK
        assert np.allclose(gather_vector(m4, y, n), a_vals @ x_vals)

    def test_mat_transpose_vec(self, m4):
        n = 8
        rng = np.random.default_rng(6)
        a_vals = rng.standard_normal((n, n))
        x_vals = rng.standard_normal(n)
        a = make_matrix(m4, n, a_vals)
        x = make_vector(m4, n, x_vals)
        y = make_vector(m4, n)
        distributed_call(
            m4, procs(m4),
            lambda ctx, am, xm, ym: linalg.mat_transpose_vec(ctx, am, xm, ym),
            [Local(a), Local(x), Local(y)],
        )
        assert np.allclose(gather_vector(m4, y, n), a_vals.T @ x_vals)

    def test_mat_fill_random_deterministic(self, m4):
        n = 8
        a1 = make_matrix(m4, n, np.zeros((n, n)))
        a2 = make_matrix(m4, n, np.zeros((n, n)))
        for aid in (a1, a2):
            distributed_call(
                m4, procs(m4),
                lambda ctx, am: linalg.mat_fill_random(ctx, 11, 1.0, am),
                [Local(aid)],
            )
        assert np.array_equal(
            gather_matrix(m4, a1, n), gather_matrix(m4, a2, n)
        )


class TestLU:
    def lu_setup(self, m4, n=8, seed=2):
        a = make_matrix(m4, n, np.zeros((n, n)))
        distributed_call(
            m4, procs(m4),
            lambda ctx, am: linalg.mat_diagonally_dominant(ctx, seed, n, am),
            [Local(a)],
        )
        a_vals = gather_matrix(m4, a, n)
        return a, a_vals

    def test_lu_factors_match_scipy(self, m4):
        n = 8
        a, a_vals = self.lu_setup(m4, n)
        res = distributed_call(
            m4, procs(m4),
            lambda ctx, am: linalg.lu_decompose(ctx, n, am),
            [Local(a)],
        )
        assert res.status is Status.OK
        lu = gather_matrix(m4, a, n)
        lower = np.tril(lu, -1) + np.eye(n)
        upper = np.triu(lu)
        assert np.allclose(lower @ upper, a_vals, atol=1e-9)

    def test_lu_solve_matches_numpy(self, m4):
        n = 8
        a, a_vals = self.lu_setup(m4, n, seed=9)
        rng = np.random.default_rng(1)
        b_vals = rng.standard_normal(n)
        b = make_vector(m4, n, b_vals)
        x = make_vector(m4, n)

        def program(ctx, am, bm, xm):
            linalg.lu_decompose(ctx, n, am)
            linalg.lu_solve(ctx, n, am, bm, xm)

        res = distributed_call(
            m4, procs(m4), program, [Local(a), Local(b), Local(x)]
        )
        assert res.status is Status.OK
        assert np.allclose(
            gather_vector(m4, x, n), np.linalg.solve(a_vals, b_vals),
            atol=1e-8,
        )
        # b unchanged (§ lu_solve postcondition)
        assert np.allclose(gather_vector(m4, b, n), b_vals)


class TestIterative:
    def test_jacobi_converges(self, m4):
        n = 8
        a = make_matrix(m4, n, np.zeros((n, n)))
        distributed_call(
            m4, procs(m4),
            lambda ctx, am: linalg.mat_diagonally_dominant(ctx, 4, n, am),
            [Local(a)],
        )
        a_vals = gather_matrix(m4, a, n)
        b_vals = np.arange(1.0, n + 1)
        b = make_vector(m4, n, b_vals)
        x = make_vector(m4, n)

        res = distributed_call(
            m4, procs(m4),
            lambda ctx, am, bm, xm, r: linalg.jacobi_iterate(
                ctx, n, 50, am, bm, xm, r
            ),
            [Local(a), Local(b), Local(x), Reduce("double", 1, "max")],
        )
        assert res.reductions[0] < 1e-8
        assert np.allclose(
            gather_vector(m4, x, n), np.linalg.solve(a_vals, b_vals),
            atol=1e-6,
        )

    def test_power_method_dominant_eigenvalue(self, m4):
        n = 8
        rng = np.random.default_rng(8)
        base = rng.standard_normal((n, n))
        sym = 0.5 * (base + base.T) + n * np.eye(n)  # dominant positive eig
        a = make_matrix(m4, n, sym)
        x = make_vector(m4, n, np.ones(n))
        res = distributed_call(
            m4, procs(m4),
            lambda ctx, am, xm, out: linalg.power_method(ctx, n, 60, am, xm, out),
            [Local(a), Local(x), Reduce("double", 1, "max")],
        )
        expected = float(np.max(np.abs(np.linalg.eigvalsh(sym))))
        assert res.reductions[0] == pytest.approx(expected, rel=1e-6)
