"""Collective operations: both algorithm families, any associative op."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pcn.composition import par
from repro.spmd import collectives
from repro.spmd.comm import GroupComm
from repro.vp.machine import Machine

ALGORITHMS = ("linear", "tree")


def run_spmd(n, body, machine=None):
    """Run ``body(comm) -> result`` as n concurrent SPMD copies."""
    m = machine if machine is not None else Machine(n)
    comms = [GroupComm(m, list(range(n)), r, "test") for r in range(n)]
    return par(*[lambda c=c: body(c) for c in comms]), m


@pytest.mark.parametrize("algorithm", ALGORITHMS)
@pytest.mark.parametrize("n", [1, 2, 3, 4, 7, 8])
class TestBarrierBcastAcrossSizes:
    def test_barrier_completes(self, n, algorithm):
        results, _ = run_spmd(
            n, lambda c: collectives.barrier(c, algorithm=algorithm) or "done"
        )
        assert results == ["done"] * n

    def test_bcast_from_root0(self, n, algorithm):
        results, _ = run_spmd(
            n,
            lambda c: collectives.bcast(
                c, "payload" if c.rank == 0 else None, algorithm=algorithm
            ),
        )
        assert results == ["payload"] * n

    def test_bcast_from_nonzero_root(self, n, algorithm):
        root = n - 1
        results, _ = run_spmd(
            n,
            lambda c: collectives.bcast(
                c, c.rank if c.rank == root else None, root=root,
                algorithm=algorithm,
            ),
        )
        assert results == [root] * n


@pytest.mark.parametrize("algorithm", ALGORITHMS)
@pytest.mark.parametrize("n", [1, 2, 3, 5, 8])
class TestReduce:
    def test_reduce_sum_at_root(self, n, algorithm):
        results, _ = run_spmd(
            n,
            lambda c: collectives.reduce(
                c, c.rank + 1, op="sum", algorithm=algorithm
            ),
        )
        assert results[0] == n * (n + 1) // 2
        assert all(r is None for r in results[1:])

    def test_allreduce_max(self, n, algorithm):
        results, _ = run_spmd(
            n,
            lambda c: collectives.allreduce(
                c, (c.rank * 7) % 5, op="max", algorithm=algorithm
            ),
        )
        expected = max((r * 7) % 5 for r in range(n))
        assert results == [expected] * n

    def test_reduce_non_commutative_rank_order(self, n, algorithm):
        """§3.3.1.2 requires associativity only; concat (associative,
        non-commutative) must fold in rank order."""
        results, _ = run_spmd(
            n,
            lambda c: collectives.reduce(
                c, [c.rank], op="concat", algorithm=algorithm
            ),
        )
        assert results[0] == list(range(n))

    def test_allreduce_arrays(self, n, algorithm):
        results, _ = run_spmd(
            n,
            lambda c: collectives.allreduce(
                c, np.full(3, float(c.rank)), op="sum", algorithm=algorithm
            ),
        )
        expected = sum(range(n))
        for r in results:
            assert list(r) == [expected] * 3


@pytest.mark.parametrize("n", [1, 2, 4, 6])
class TestGatherScatter:
    def test_gather_rank_order(self, n):
        results, _ = run_spmd(
            n, lambda c: collectives.gather(c, f"r{c.rank}")
        )
        assert results[0] == [f"r{i}" for i in range(n)]

    def test_scatter(self, n):
        results, _ = run_spmd(
            n,
            lambda c: collectives.scatter(
                c, [i * i for i in range(n)] if c.rank == 0 else None
            ),
        )
        assert results == [i * i for i in range(n)]

    def test_allgather_both_algorithms(self, n):
        for algorithm in ALGORITHMS:
            results, _ = run_spmd(
                n,
                lambda c: collectives.allgather(
                    c, c.rank * 2, algorithm=algorithm
                ),
            )
            assert results == [[i * 2 for i in range(n)]] * n

    def test_alltoall(self, n):
        results, _ = run_spmd(
            n,
            lambda c: collectives.alltoall(
                c, [(c.rank, dest) for dest in range(n)]
            ),
        )
        for rank, received in enumerate(results):
            assert received == [(src, rank) for src in range(n)]

    def test_scan_inclusive_prefix(self, n):
        results, _ = run_spmd(
            n, lambda c: collectives.scan(c, c.rank + 1, op="sum")
        )
        assert results == [sum(range(1, r + 2)) for r in range(n)]


class TestSequencesOfCollectives:
    def test_back_to_back_collectives_do_not_crosstalk(self):
        """Per-collective sequence tags keep successive operations apart
        even when messages from the next operation arrive early."""

        def body(comm):
            a = collectives.allreduce(comm, comm.rank, op="sum")
            b = collectives.allreduce(comm, comm.rank, op="max")
            c = collectives.allgather(comm, comm.rank)
            return (a, b, c)

        results, _ = run_spmd(4, body)
        assert results == [(6, 3, [0, 1, 2, 3])] * 4

    def test_mixed_collectives_and_p2p(self):
        def body(comm):
            if comm.rank == 0:
                comm.send(1, "direct", tag="p2p")
            collectives.barrier(comm)
            direct = comm.recv(source_rank=0, tag="p2p") if comm.rank == 1 else None
            return collectives.bcast(comm, direct, root=1)

        results, _ = run_spmd(3, body)
        assert results == ["direct"] * 3


class TestAlgorithmCosts:
    """The ABL-2 claim: tree algorithms move fewer messages for bcast at
    scale, and linear reduce costs ~P messages vs ~P for tree but with
    O(log P) latency.  Here we pin the exact counts."""

    def count_messages(self, n, body):
        m = Machine(n)
        m.reset_traffic()
        comms = [GroupComm(m, list(range(n)), r, "cost") for r in range(n)]
        par(*[lambda c=c: body(c) for c in comms])
        return m.traffic_snapshot()["messages"]

    def test_linear_barrier_message_count(self):
        # 2*(P-1) for gather+release
        count = self.count_messages(
            8, lambda c: collectives.barrier(c, algorithm="linear")
        )
        assert count == 14

    def test_tree_barrier_message_count(self):
        # dissemination: P * ceil(log2 P)
        count = self.count_messages(
            8, lambda c: collectives.barrier(c, algorithm="tree")
        )
        assert count == 24

    def test_linear_bcast_message_count(self):
        count = self.count_messages(
            8, lambda c: collectives.bcast(c, 1 if c.rank == 0 else None,
                                           algorithm="linear")
        )
        assert count == 7

    def test_tree_bcast_message_count(self):
        count = self.count_messages(
            8, lambda c: collectives.bcast(c, 1 if c.rank == 0 else None,
                                           algorithm="tree")
        )
        assert count == 7  # binomial also sends P-1 total, but in log depth

    def test_bad_algorithm_rejected(self):
        m = Machine(1)
        comm = GroupComm(m, [0], 0, "g")
        with pytest.raises(ValueError):
            collectives.barrier(comm, algorithm="quantum")


@settings(max_examples=20, deadline=None)
@given(
    st.integers(1, 6),
    st.lists(st.integers(-100, 100), min_size=6, max_size=6),
    st.sampled_from(["sum", "max", "min"]),
    st.sampled_from(ALGORITHMS),
)
def test_property_allreduce_matches_python_fold(n, values, op, algorithm):
    values = values[:n]
    import functools

    from repro.spmd.reduce_ops import resolve_op

    expected = functools.reduce(resolve_op(op), values)
    results, _ = run_spmd(
        n,
        lambda c: collectives.allreduce(
            c, values[c.rank], op=op, algorithm=algorithm
        ),
    )
    assert results == [expected] * n
