"""The Appendix D case study: the legacy library's failure modes and the
adaptation that fixes them without modifying the library routines."""

from __future__ import annotations

import numpy as np
import pytest

from repro.calls import Index, Local, Reduce
from repro.core.runtime import IntegratedRuntime
from repro.pcn.composition import par
from repro.spmd.legacy import (
    AdaptedEnvironment,
    CosmicEnvironment,
    LegacyMatrix,
    flatten_legacy_matrix,
    legacy_broadcast,
    legacy_inner_product,
    legacy_matvec,
    unflatten_to_legacy,
)
from repro.spmd.linalg import interior
from repro.status import Status
from repro.vp.machine import Machine
from repro.vp.message import MessageType


class TestLegacyLibraryOnItsHomeGround:
    """On nodes 0..P-1 with no other traffic, the legacy library works —
    that is why it is worth adapting rather than rewriting."""

    def test_legacy_broadcast(self):
        machine = Machine(4)
        envs = [CosmicEnvironment(machine, n) for n in range(4)]
        results = par(
            *[
                (lambda e=e: legacy_broadcast(
                    e, 4, "payload" if e.my_node == 0 else None
                ))
                for e in envs
            ]
        )
        assert results == ["payload"] * 4

    def test_legacy_inner_product(self):
        machine = Machine(4)
        envs = [CosmicEnvironment(machine, n) for n in range(4)]
        rng = np.random.default_rng(0)
        x = rng.standard_normal(8)
        y = rng.standard_normal(8)

        def body(env):
            lo = env.my_node * 2
            return legacy_inner_product(env, 4, x[lo : lo + 2], y[lo : lo + 2])

        results = par(*[lambda e=e: body(e) for e in envs])
        assert all(r == pytest.approx(float(x @ y)) for r in results)


class TestRelocatabilityDefect:
    """§D: 'replacing references to explicit processor numbers with
    references to an array of processor numbers passed as a parameter'.
    The unadapted library addresses absolute nodes, so on any group not
    starting at node 0 it misdelivers."""

    def test_legacy_misdelivers_off_home_nodes(self):
        machine = Machine(8)
        # The "call" runs on nodes 4..7, but the library talks to 0..3.
        envs = [
            CosmicEnvironment(machine, n, recv_timeout=0.3)
            for n in range(4, 8)
        ]

        def body(env):
            try:
                return legacy_broadcast(
                    env, 4, "x" if env.my_node == 4 else None
                )
            except TimeoutError:
                return "timeout"

        # Root is env.my_node == 4?  The library tests my_node == 0 —
        # *nobody* is node 0 on this group, so every copy waits to
        # receive and the root never sends: total deadlock.
        results = par(*[lambda e=e: body(e) for e in envs])
        assert all(r == "timeout" for r in results)
        # ...and stray messages for nodes 0..3 (none here) would land in
        # foreign mailboxes: the hazard the adaptation removes.

    def test_adapted_library_is_relocatable(self):
        """The same routines, handed the adapted environment, run on any
        processor subset (§3.5's requirement)."""
        rt = IntegratedRuntime(8)
        group = rt.processors(4, 4)  # nodes 4..7

        def program(ctx, index, out):
            env = AdaptedEnvironment(ctx)
            value = legacy_broadcast(env, ctx.num_procs,
                                     42.0 if env.my_node == 0 else None)
            out[0] = value

        result = rt.call(group, program, [Index(), Reduce("double", 1, "min")])
        assert result.status is Status.OK
        assert result.reductions[0] == 42.0


class TestMessageConflictDefect:
    """§D/§5.3: the untyped receives intercept foreign traffic; the
    adapted environment's typed selective receives do not."""

    def test_legacy_intercepts_pcn_traffic(self):
        machine = Machine(2)
        env = CosmicEnvironment(machine, 1)
        # A PCN-layer message arrives first...
        machine.send(0, 1, "pcn-internal", mtype=MessageType.PCN)
        machine.send(0, 1, "dp-data", mtype=MessageType.UNTYPED)
        # ...and the legacy receive steals it.
        assert env.xrecv(timeout=1) == "pcn-internal"

    def test_adapted_env_ignores_pcn_traffic(self):
        rt = IntegratedRuntime(2)

        def program(ctx, index, out):
            env = AdaptedEnvironment(ctx)
            if env.my_node == 0:
                env.xsend(1, 7.5)
                out[0] = 0.0
            else:
                # PCN-typed noise delivered straight to this node's
                # mailbox must be invisible to the adapted receive.
                rt.machine.send(
                    0, ctx.processor_number, "pcn-noise",
                    mtype=MessageType.PCN, tag="noise",
                )
                out[0] = env.xrecv(timeout=5)

        result = rt.call(
            rt.all_processors(), program,
            [Index(), Reduce("double", 1, "max")],
        )
        assert result.status is Status.OK
        assert result.reductions[0] == 7.5


class TestParameterAdaptation:
    """§D: nested arrays-of-arrays -> flat local sections and back."""

    def test_flatten_roundtrip(self):
        values = np.arange(12.0).reshape(3, 4)
        legacy = LegacyMatrix.from_values(values)
        flat = flatten_legacy_matrix(legacy)
        assert flat.shape == (12,)
        back = unflatten_to_legacy(flat, 3, 4)
        assert back.data == legacy.data

    def test_legacy_matvec_over_flat_sections(self):
        """The unmodified row-oriented legacy routine runs on data that
        lived in a flat distributed-array section."""
        rt = IntegratedRuntime(4)
        n = 8
        rng = np.random.default_rng(3)
        a_vals = rng.standard_normal((n, n))
        x_vals = rng.standard_normal(n)
        a = rt.array("double", (n, n), distrib=[("block", 4), "*"])
        a.from_numpy(a_vals)

        def program(ctx, index, sec, out):
            rows = interior(sec).shape[0]
            legacy = unflatten_to_legacy(
                interior(sec).reshape(-1), rows, n
            )
            y_rows = legacy_matvec(legacy, list(x_vals))
            out[:] = 0.0
            out[index * rows : (index + 1) * rows] = y_rows

        result = rt.call(
            rt.all_processors(), program,
            [Index(), Local(a.array_id), Reduce("double", n, "sum")],
        )
        assert result.status is Status.OK
        assert np.allclose(result.reductions[0], a_vals @ x_vals)
        a.free()
