"""Reduction operators (§3.3.1.2: binary associative operators)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.spmd.reduce_ops import (
    NAMED_OPS,
    op_concat,
    op_max,
    op_min,
    op_prod,
    op_sum,
    resolve_op,
)


class TestScalars:
    def test_max(self):
        assert op_max(2, 9) == 9

    def test_min(self):
        assert op_min(2, 9) == 2

    def test_sum(self):
        assert op_sum(2, 9) == 11

    def test_prod(self):
        assert op_prod(2, 9) == 18

    def test_concat_lists(self):
        assert op_concat([1], [2, 3]) == [1, 2, 3]


class TestArrays:
    def test_max_elementwise(self):
        out = op_max(np.array([1, 9]), np.array([5, 2]))
        assert list(out) == [5, 9]

    def test_min_elementwise(self):
        out = op_min(np.array([1, 9]), np.array([5, 2]))
        assert list(out) == [1, 2]

    def test_sum_elementwise(self):
        assert list(op_sum(np.array([1, 2]), np.array([10, 20]))) == [11, 22]

    def test_concat_arrays(self):
        out = op_concat(np.array([1]), np.array([2, 3]))
        assert list(out) == [1, 2, 3]


class TestResolve:
    def test_by_name(self):
        for name, fn in NAMED_OPS.items():
            assert resolve_op(name) is fn

    def test_callable_passthrough(self):
        fn = lambda a, b: a  # noqa: E731
        assert resolve_op(fn) is fn

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            resolve_op("median")

    def test_non_callable_non_string(self):
        with pytest.raises(ValueError):
            resolve_op(42)


@settings(max_examples=100, deadline=None)
@given(
    st.sampled_from(["max", "min", "sum", "prod"]),
    st.integers(-50, 50),
    st.integers(-50, 50),
    st.integers(-50, 50),
)
def test_property_named_ops_associative(name, a, b, c):
    """§3.3.1.2 requires associativity; every named operator satisfies it."""
    op = resolve_op(name)
    assert op(op(a, b), c) == op(a, op(b, c))


@settings(max_examples=50, deadline=None)
@given(
    st.lists(st.integers(), max_size=5),
    st.lists(st.integers(), max_size=5),
    st.lists(st.integers(), max_size=5),
)
def test_property_concat_associative(a, b, c):
    assert op_concat(op_concat(a, b), c) == op_concat(a, op_concat(b, c))
