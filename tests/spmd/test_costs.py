"""The analytic cost model, validated against exact routed-message
counters — every formula must match what the machine actually moves."""

from __future__ import annotations

import numpy as np
import pytest

from repro.pcn.composition import par
from repro.spmd import collectives, costs
from repro.spmd.comm import GroupComm
from repro.spmd.context import SPMDContext
from repro.spmd.fft import distributed_transpose
from repro.vp.machine import Machine

SIZES = [1, 2, 3, 4, 7, 8]
ALGS = ["linear", "tree"]


def measure(p, body):
    """Run body(comm) on p concurrent ranks; return routed message count."""
    machine = Machine(p)
    comms = [GroupComm(machine, list(range(p)), r, "cost") for r in range(p)]
    machine.reset_traffic()
    par(*[lambda c=c: body(c) for c in comms])
    return machine.traffic_snapshot()["messages"]


class TestCollectiveFormulas:
    @pytest.mark.parametrize("p", SIZES)
    @pytest.mark.parametrize("alg", ALGS)
    def test_barrier(self, p, alg):
        measured = measure(
            p, lambda c: collectives.barrier(c, algorithm=alg)
        )
        assert measured == costs.barrier_cost(p, alg).messages

    @pytest.mark.parametrize("p", SIZES)
    @pytest.mark.parametrize("alg", ALGS)
    def test_bcast(self, p, alg):
        measured = measure(
            p,
            lambda c: collectives.bcast(
                c, "x" if c.rank == 0 else None, algorithm=alg
            ),
        )
        assert measured == costs.bcast_cost(p, alg).messages

    @pytest.mark.parametrize("p", SIZES)
    @pytest.mark.parametrize("alg", ALGS)
    def test_reduce(self, p, alg):
        measured = measure(
            p, lambda c: collectives.reduce(c, c.rank, op="sum", algorithm=alg)
        )
        assert measured == costs.reduce_cost(p, alg).messages

    @pytest.mark.parametrize("p", SIZES)
    @pytest.mark.parametrize("alg", ALGS)
    def test_allreduce(self, p, alg):
        measured = measure(
            p,
            lambda c: collectives.allreduce(
                c, c.rank, op="sum", algorithm=alg
            ),
        )
        assert measured == costs.allreduce_cost(p, alg).messages

    @pytest.mark.parametrize("p", SIZES)
    def test_gather_scatter(self, p):
        measured = measure(p, lambda c: collectives.gather(c, c.rank))
        assert measured == costs.gather_cost(p).messages
        measured = measure(
            p,
            lambda c: collectives.scatter(
                c, list(range(p)) if c.rank == 0 else None
            ),
        )
        assert measured == costs.scatter_cost(p).messages

    @pytest.mark.parametrize("p", SIZES)
    @pytest.mark.parametrize("alg", ALGS)
    def test_allgather(self, p, alg):
        measured = measure(
            p, lambda c: collectives.allgather(c, c.rank, algorithm=alg)
        )
        assert measured == costs.allgather_cost(p, alg).messages

    @pytest.mark.parametrize("p", SIZES)
    def test_alltoall(self, p):
        measured = measure(
            p, lambda c: collectives.alltoall(c, list(range(p)))
        )
        assert measured == costs.alltoall_cost(p).messages

    @pytest.mark.parametrize("p", SIZES)
    def test_scan(self, p):
        measured = measure(p, lambda c: collectives.scan(c, c.rank))
        assert measured == costs.scan_cost(p).messages


class TestKernelFormulas:
    @pytest.mark.parametrize("grid", [(1, 1), (2, 2), (4, 1), (1, 4), (4, 2)])
    def test_halo_exchange(self, grid):
        from repro.spmd.stencil import exchange_halos

        gr, gc = grid
        p = gr * gc
        machine = Machine(p)
        contexts = [
            SPMDContext(machine, list(range(p)), r, "halo") for r in range(p)
        ]
        machine.reset_traffic()

        def body(ctx):
            full = np.zeros((4, 4))
            exchange_halos(ctx, full, gr, gc)

        par(*[lambda c=c: body(c) for c in contexts])
        assert (
            machine.traffic_snapshot()["messages"]
            == costs.halo_exchange_cost(gr, gc).messages
        )

    @pytest.mark.parametrize("grid", [(2, 2), (4, 4), (16, 1)])
    def test_halo_bytes_formula(self, grid):
        n = 64
        gr, gc = grid
        model = costs.halo_exchange_bytes(n, n, gr, gc)
        # internal perimeter argument: each cut crosses full strips
        rows, cols = n // gr, n // gc
        expected = ((gr - 1) * gc * cols + (gc - 1) * gr * rows) * 16
        assert model == expected

    @pytest.mark.parametrize("p,n", [(1, 8), (2, 16), (4, 16), (8, 32)])
    def test_fft_exchange(self, p, n):
        from repro.calls import Index, Local, distributed_call
        from repro.arrays import am_user, am_util
        from repro.spmd.fft import INVERSE, compute_roots, fft_reverse

        machine = Machine(p)
        am_util.load_all(machine)
        procs = am_util.node_array(0, 1, p)
        data, _ = am_user.create_array(
            machine, "double", (2 * n,), procs, ["block"]
        )
        eps, _ = am_user.create_array(
            machine, "double", (p, 2 * n), procs, ["block", "*"]
        )
        distributed_call(
            machine, procs,
            lambda ctx, nn, sec: compute_roots(ctx, nn, sec),
            [n, Local(eps)],
        )
        machine.reset_traffic()
        distributed_call(
            machine, procs, fft_reverse,
            [procs, p, Index(), n, INVERSE, Local(eps), Local(data)],
        )
        assert (
            machine.traffic_snapshot()["messages"]
            == costs.fft_exchange_cost(n, p).messages
        )

    @pytest.mark.parametrize("p", [2, 4])
    def test_transpose(self, p):
        n = 4 * p
        machine = Machine(p)
        contexts = [
            SPMDContext(machine, list(range(p)), r, "tr") for r in range(p)
        ]
        machine.reset_traffic()

        def body(ctx):
            block = np.zeros((n // p, n), dtype=complex)
            distributed_transpose(ctx, block)

        par(*[lambda c=c: body(c) for c in contexts])
        assert (
            machine.traffic_snapshot()["messages"]
            == costs.transpose_cost(p).messages
        )


class TestLatencyModel:
    def test_rounds_drive_latency(self):
        linear = costs.bcast_cost(8, "linear")
        tree = costs.bcast_cost(8, "tree")
        assert linear.messages == tree.messages  # same volume...
        assert tree.rounds < linear.rounds  # ...shorter critical path
        assert tree.latency(alpha=1.0) < linear.latency(alpha=1.0)

    def test_latency_includes_bandwidth_term(self):
        cost = costs.Cost(messages=4, rounds=2)
        assert cost.latency(alpha=1.0, per_message_payload=100, beta=0.01) == (
            2 * (1.0 + 1.0)
        )

    def test_singleton_groups_free(self):
        for fn in (
            costs.barrier_cost,
            costs.bcast_cost,
            costs.reduce_cost,
            costs.allreduce_cost,
            costs.allgather_cost,
        ):
            assert fn(1).messages == 0
        assert costs.alltoall_cost(1).messages == 0
        assert costs.scan_cost(1).messages == 0
