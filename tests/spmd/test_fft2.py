"""2-D FFT and distributed transpose (extension of §6.2.3's substrate)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.arrays import am_user, am_util
from repro.calls import Local, distributed_call
from repro.pcn.composition import par
from repro.pcn.defvar import DefVar
from repro.spmd.context import SPMDContext
from repro.spmd.fft import FORWARD, INVERSE, distributed_transpose, fft2
from repro.status import Status
from repro.vp.machine import Machine


def machine_with(p):
    m = Machine(p)
    am_util.load_all(m)
    return m, am_util.node_array(0, 1, p)


def scatter_rows(machine, procs, aid, flat):
    rows = flat.shape[0] // len(procs)
    for rank, proc in enumerate(procs):
        s = DefVar("s")
        machine.server.request(
            "write_section_local", aid,
            flat[rank * rows : (rank + 1) * rows].copy(), s,
            processor=int(proc),
        )
        assert Status(s.read()) is Status.OK


def gather_rows(machine, procs, aid):
    parts = []
    for proc in procs:
        d, s = DefVar("d"), DefVar("s")
        machine.server.request(
            "read_section_local", aid, d, s, processor=int(proc)
        )
        parts.append(d.read())
    return np.vstack(parts)


class TestDistributedTranspose:
    @pytest.mark.parametrize("p,n", [(2, 4), (4, 8), (2, 8)])
    def test_transpose_matches_numpy(self, p, n):
        machine, _ = machine_with(p)
        rng = np.random.default_rng(p * n)
        full = rng.standard_normal((n, n)) + 1j * rng.standard_normal((n, n))
        m = n // p
        contexts = [
            SPMDContext(machine, list(range(p)), r, "t") for r in range(p)
        ]

        def body(ctx):
            block = full[ctx.index * m : (ctx.index + 1) * m].copy()
            return distributed_transpose(ctx, block)

        blocks = par(*[lambda c=c: body(c) for c in contexts])
        result = np.vstack(blocks)
        assert np.allclose(result, full.T)

    def test_double_transpose_is_identity(self):
        machine, _ = machine_with(4)
        n, p = 8, 4
        m = n // p
        rng = np.random.default_rng(1)
        full = rng.standard_normal((n, n)).astype(complex)
        contexts = [
            SPMDContext(machine, list(range(p)), r, "t2") for r in range(p)
        ]

        def body(ctx):
            block = full[ctx.index * m : (ctx.index + 1) * m].copy()
            return distributed_transpose(
                ctx, distributed_transpose(ctx, block)
            )

        blocks = par(*[lambda c=c: body(c) for c in contexts])
        assert np.allclose(np.vstack(blocks), full)

    def test_shape_mismatch_rejected(self):
        machine, _ = machine_with(2)
        ctx = SPMDContext(machine, [0, 1], 0, "bad")
        with pytest.raises(ValueError):
            distributed_transpose(ctx, np.zeros((3, 5), dtype=complex))


def pack_complex(x):
    flat = np.empty((x.shape[0], 2 * x.shape[1]))
    flat[:, 0::2] = x.real
    flat[:, 1::2] = x.imag
    return flat


def unpack_complex(flat):
    return flat[:, 0::2] + 1j * flat[:, 1::2]


class TestFFT2:
    @pytest.mark.parametrize("p,n", [(1, 8), (2, 8), (4, 16)])
    def test_inverse_matches_numpy(self, p, n):
        machine, procs = machine_with(p)
        aid, st = am_user.create_array(
            machine, "double", (n, 2 * n), procs, [("block", p), "*"]
        )
        assert st is Status.OK
        rng = np.random.default_rng(n)
        x = rng.standard_normal((n, n)) + 1j * rng.standard_normal((n, n))
        scatter_rows(machine, procs, aid, pack_complex(x))
        res = distributed_call(
            machine, procs, fft2, [n, INVERSE, Local(aid)]
        )
        assert res.status is Status.OK
        out = unpack_complex(gather_rows(machine, procs, aid))
        assert np.allclose(out, np.fft.ifft2(x) * n * n)

    @pytest.mark.parametrize("p,n", [(2, 8), (4, 16)])
    def test_forward_matches_numpy(self, p, n):
        machine, procs = machine_with(p)
        aid, _ = am_user.create_array(
            machine, "double", (n, 2 * n), procs, [("block", p), "*"]
        )
        rng = np.random.default_rng(n + 1)
        x = rng.standard_normal((n, n)) + 1j * rng.standard_normal((n, n))
        scatter_rows(machine, procs, aid, pack_complex(x))
        res = distributed_call(
            machine, procs, fft2, [n, FORWARD, Local(aid)]
        )
        assert res.status is Status.OK
        out = unpack_complex(gather_rows(machine, procs, aid))
        assert np.allclose(out, np.fft.fft2(x) / (n * n))

    def test_roundtrip(self):
        p, n = 2, 8
        machine, procs = machine_with(p)
        aid, _ = am_user.create_array(
            machine, "double", (n, 2 * n), procs, [("block", p), "*"]
        )
        rng = np.random.default_rng(5)
        x = rng.standard_normal((n, n)) + 1j * rng.standard_normal((n, n))
        scatter_rows(machine, procs, aid, pack_complex(x))
        for flag in (INVERSE, FORWARD):
            res = distributed_call(
                machine, procs, fft2, [n, flag, Local(aid)]
            )
            assert res.status is Status.OK
        out = unpack_complex(gather_rows(machine, procs, aid))
        assert np.allclose(out, x)
