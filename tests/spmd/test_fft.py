"""Distributed FFT programs (§6.2.3), validated against numpy.fft."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arrays import am_user, am_util
from repro.calls import Index, Local, distributed_call
from repro.spmd.context import OutCell
from repro.spmd.fft import (
    FORWARD,
    INVERSE,
    as_complex,
    bit_reverse_permutation,
    compute_roots,
    dif_serial,
    dit_serial,
    fft_natural,
    fft_reverse,
    rho,
    rho_proc,
)
from repro.status import Status
from repro.vp.machine import Machine


class TestBitReversal:
    def test_rho_small_values(self):
        assert rho(3, 0b001) == 0b100
        assert rho(3, 0b110) == 0b011
        assert rho(4, 0b0001) == 0b1000

    def test_rho_is_involution(self):
        for bits in range(1, 8):
            for value in range(1 << bits):
                assert rho(bits, rho(bits, value)) == value

    def test_rho_proc_interface(self):
        """§6.2.3: by-reference parameter convention."""
        out = OutCell("returnp")
        rho_proc(None, [3], [0b011], out)
        assert out.value == 0b110
        buf = np.zeros(1, dtype=np.int64)
        rho_proc(None, [4], [1], buf)
        assert buf[0] == 8

    def test_permutation_vector(self):
        perm = bit_reverse_permutation(8)
        assert list(perm) == [0, 4, 2, 6, 1, 5, 3, 7]

    def test_permutation_rejects_non_powers(self):
        with pytest.raises(ValueError):
            bit_reverse_permutation(6)


class TestAsComplex:
    def test_native_complex_passthrough(self):
        x = np.zeros(4, dtype=np.complex128)
        assert as_complex(x) is not None
        as_complex(x)[0] = 1j
        assert x[0] == 1j

    def test_paired_doubles_alias(self):
        """The thesis' representation: successive double pairs."""
        x = np.array([1.0, 2.0, 3.0, 4.0])
        c = as_complex(x)
        assert list(c) == [1 + 2j, 3 + 4j]
        c[0] = 9 + 8j  # writes through
        assert list(x) == [9.0, 8.0, 3.0, 4.0]

    def test_odd_length_rejected(self):
        with pytest.raises(ValueError):
            as_complex(np.zeros(3))

    def test_wrong_dtype_rejected(self):
        with pytest.raises(ValueError):
            as_complex(np.zeros(4, dtype=np.float32))


def reference_inverse(x):
    """The §6.2.1 definition: f̂_j = Σ_k f_k e^{2πijk/N} (no scaling) —
    numpy's ifft times N."""
    return np.fft.ifft(x) * x.size


def reference_forward(x):
    """f_j = (1/N) Σ_k f̂_k e^{-2πijk/N} — numpy's fft divided by N."""
    return np.fft.fft(x) / x.size


class TestSerialKernels:
    @pytest.mark.parametrize("n", [2, 4, 8, 32, 128])
    def test_dit_inverse_matches_reference(self, n):
        rng = np.random.default_rng(n)
        x = rng.standard_normal(n) + 1j * rng.standard_normal(n)
        eps = np.exp(2j * np.pi * np.arange(n) / n)
        perm = bit_reverse_permutation(n)
        y = x[perm].copy()
        dit_serial(y, eps, inverse=True)
        assert np.allclose(y, reference_inverse(x))

    @pytest.mark.parametrize("n", [2, 4, 8, 32, 128])
    def test_dif_forward_matches_reference(self, n):
        rng = np.random.default_rng(n + 1)
        x = rng.standard_normal(n) + 1j * rng.standard_normal(n)
        eps = np.exp(2j * np.pi * np.arange(n) / n)
        perm = bit_reverse_permutation(n)
        y = x.copy()
        dif_serial(y, eps, inverse=False)
        assert np.allclose(y, reference_forward(x)[perm])

    @pytest.mark.parametrize("n", [4, 16, 64])
    def test_roundtrip_is_identity(self, n):
        """inverse-then-forward (with the 1/N) recovers the input — the
        §6.2.1 polynomial evaluate/interpolate pair."""
        rng = np.random.default_rng(2 * n)
        x = rng.standard_normal(n) + 1j * rng.standard_normal(n)
        eps = np.exp(2j * np.pi * np.arange(n) / n)
        perm = bit_reverse_permutation(n)
        y = x[perm].copy()
        dit_serial(y, eps, inverse=True)   # values at roots, natural order
        dif_serial(y, eps, inverse=False)  # coefficients, bit-reversed
        assert np.allclose(y[perm], x)


def distributed_fixture(p, n):
    machine = Machine(p)
    am_util.load_all(machine)
    procs = am_util.node_array(0, 1, p)
    data, st = am_user.create_array(machine, "double", (2 * n,), procs, ["block"])
    assert st is Status.OK
    eps, st = am_user.create_array(
        machine, "double", (p, 2 * n), procs, ["block", "*"]
    )
    assert st is Status.OK
    res = distributed_call(
        machine, procs,
        lambda ctx, nn, sec: compute_roots(ctx, nn, sec),
        [n, Local(eps)],
    )
    assert res.status is Status.OK
    return machine, procs, data, eps


def write_complex(machine, aid, values):
    from repro.pcn.defvar import DefVar

    flat = np.empty(2 * values.size)
    flat[0::2] = values.real
    flat[1::2] = values.imag
    info, _ = am_user.find_info(machine, aid, "processors")
    chunk = flat.size // len(info)
    for rank, proc in enumerate(info):
        status = DefVar("s")
        machine.server.request(
            "write_section_local", aid,
            flat[rank * chunk : (rank + 1) * chunk].copy(), status,
            processor=int(proc),
        )
        assert Status(status.read()) is Status.OK


def read_complex(machine, aid, n):
    from repro.pcn.defvar import DefVar

    info, _ = am_user.find_info(machine, aid, "processors")
    parts = []
    for proc in info:
        out, status = DefVar("d"), DefVar("s")
        machine.server.request(
            "read_section_local", aid, out, status, processor=int(proc)
        )
        assert Status(status.read()) is Status.OK
        parts.append(out.read())
    flat = np.concatenate(parts)
    return flat[0::2] + 1j * flat[1::2]


class TestDistributedFFT:
    @pytest.mark.parametrize("p,n", [(1, 8), (2, 8), (4, 16), (8, 32)])
    def test_fft_reverse_inverse(self, p, n):
        machine, procs, data, eps = distributed_fixture(p, n)
        rng = np.random.default_rng(7)
        x = rng.standard_normal(n) + 1j * rng.standard_normal(n)
        perm = bit_reverse_permutation(n)
        write_complex(machine, data, x[perm])
        res = distributed_call(
            machine, procs, fft_reverse,
            [procs, p, Index(), n, INVERSE, Local(eps), Local(data)],
        )
        assert res.status is Status.OK
        assert np.allclose(read_complex(machine, data, n), reference_inverse(x))

    @pytest.mark.parametrize("p,n", [(2, 8), (4, 16)])
    def test_fft_natural_forward(self, p, n):
        machine, procs, data, eps = distributed_fixture(p, n)
        rng = np.random.default_rng(17)
        x = rng.standard_normal(n) + 1j * rng.standard_normal(n)
        write_complex(machine, data, x)
        res = distributed_call(
            machine, procs, fft_natural,
            [procs, p, Index(), n, FORWARD, Local(eps), Local(data)],
        )
        assert res.status is Status.OK
        perm = bit_reverse_permutation(n)
        assert np.allclose(
            read_complex(machine, data, n), reference_forward(x)[perm]
        )

    @pytest.mark.parametrize("p,n", [(2, 16), (4, 16)])
    def test_distributed_roundtrip(self, p, n):
        machine, procs, data, eps = distributed_fixture(p, n)
        rng = np.random.default_rng(27)
        x = rng.standard_normal(n) + 1j * rng.standard_normal(n)
        perm = bit_reverse_permutation(n)
        write_complex(machine, data, x[perm])
        for program, flag in ((fft_reverse, INVERSE), (fft_natural, FORWARD)):
            res = distributed_call(
                machine, procs, program,
                [procs, p, Index(), n, flag, Local(eps), Local(data)],
            )
            assert res.status is Status.OK
        assert np.allclose(read_complex(machine, data, n)[perm], x)

    def test_compute_roots_values(self):
        machine, procs, _data, eps = distributed_fixture(2, 8)
        from repro.pcn.defvar import DefVar

        out, status = DefVar("d"), DefVar("s")
        machine.server.request(
            "read_section_local", eps, out, status, processor=0
        )
        flat = out.read().reshape(-1)
        roots = flat[0::2] + 1j * flat[1::2]
        assert np.allclose(roots, np.exp(2j * np.pi * np.arange(8) / 8))


@settings(max_examples=20, deadline=None)
@given(
    st.sampled_from([4, 8, 16, 32]),
    st.integers(0, 2**31 - 1),
)
def test_property_serial_roundtrip(n, seed):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal(n) + 1j * rng.standard_normal(n)
    eps = np.exp(2j * np.pi * np.arange(n) / n)
    perm = bit_reverse_permutation(n)
    y = x[perm].copy()
    dit_serial(y, eps, inverse=True)
    dif_serial(y, eps, inverse=False)
    assert np.allclose(y[perm], x)
