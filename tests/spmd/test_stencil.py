"""Border-exchange stencil kernels (overlap areas, §3.2.1.3)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.arrays import am_user, am_util
from repro.calls import Local, Reduce, distributed_call
from repro.spmd.stencil import (
    border_query,
    grid_coords,
    heat_steps,
    jacobi_sweep,
)
from repro.status import Status
from repro.vp.machine import Machine


@pytest.fixture
def m4():
    machine = Machine(4)
    am_util.load_all(machine)
    return machine


def make_field(machine, shape, grid, initial):
    procs = am_util.node_array(0, 1, grid[0] * grid[1])
    aid, st = am_user.create_array(
        machine, "double", shape, procs,
        [("block", grid[0]), ("block", grid[1])],
        border_info=("foreign_borders", border_query, 1)
        if callable(border_query)
        else [1, 1, 1, 1],
    )
    assert st is Status.OK
    from repro.pcn.defvar import DefVar

    rows, cols = shape[0] // grid[0], shape[1] // grid[1]
    for rank, proc in enumerate(procs):
        status = DefVar("s")
        r, c = divmod(rank, grid[1])
        machine.server.request(
            "write_section_local", aid,
            np.asarray(initial)[
                r * rows : (r + 1) * rows, c * cols : (c + 1) * cols
            ].copy(),
            status, processor=int(proc),
        )
        assert Status(status.read()) is Status.OK
    return aid, procs


def gather(machine, aid, shape, grid):
    from repro.pcn.defvar import DefVar

    rows, cols = shape[0] // grid[0], shape[1] // grid[1]
    out = np.empty(shape)
    procs, _ = am_user.find_info(machine, aid, "processors")
    for rank, proc in enumerate(procs):
        data, status = DefVar("d"), DefVar("s")
        machine.server.request(
            "read_section_local", aid, data, status, processor=int(proc)
        )
        r, c = divmod(rank, grid[1])
        out[r * rows : (r + 1) * rows, c * cols : (c + 1) * cols] = data.read()
    return out


def serial_reference(field, steps):
    """Single-domain Jacobi with zero Dirichlet halo (the border cells
    start and remain 0 on physical edges)."""
    full = np.zeros((field.shape[0] + 2, field.shape[1] + 2))
    full[1:-1, 1:-1] = field
    for _ in range(steps):
        full[1:-1, 1:-1] = jacobi_sweep(full)
    return full[1:-1, 1:-1]


class TestHelpers:
    def test_grid_coords(self):
        assert grid_coords(0, 2) == (0, 0)
        assert grid_coords(3, 2) == (1, 1)
        assert grid_coords(5, 3) == (1, 2)

    def test_border_query_protocol(self):
        assert border_query(1, 2) == (1, 1, 1, 1)
        assert border_query(9, 1) == (1, 1)

    def test_jacobi_sweep_shape(self):
        full = np.zeros((5, 6))
        assert jacobi_sweep(full).shape == (3, 4)


class TestDistributedStencil:
    @pytest.mark.parametrize("grid", [(2, 2), (4, 1), (1, 4)])
    def test_matches_serial_reference(self, m4, grid):
        """The distributed bordered sweep equals the single-domain sweep —
        border exchange is exactly the glue that makes them agree."""
        shape = (8, 8)
        rng = np.random.default_rng(0)
        initial = rng.uniform(0, 100, shape)
        aid, procs = make_field(m4, shape, grid, initial)
        steps = 3
        res = distributed_call(
            m4, procs, heat_steps,
            [grid[0], grid[1], steps, Local(aid)],
        )
        assert res.status is Status.OK
        result = gather(m4, aid, shape, grid)
        assert np.allclose(result, serial_reference(initial, steps))

    def test_delta_reduces_over_time(self, m4):
        shape = (8, 8)
        initial = np.zeros(shape)
        initial[4, 4] = 1000.0
        aid, procs = make_field(m4, shape, (2, 2), initial)
        deltas = []
        for _ in range(4):
            res = distributed_call(
                m4, procs, heat_steps,
                [2, 2, 2, Local(aid), Reduce("double", 1, "max")],
            )
            deltas.append(res.reductions[0])
        assert deltas[-1] < deltas[0]

    def test_stencil_requires_borders(self, m4):
        procs = am_util.node_array(0, 1, 4)
        aid, st = am_user.create_array(
            m4, "double", (8, 8), procs, ("block", "block")
        )  # no borders
        assert st is Status.OK
        res = distributed_call(
            m4, procs, heat_steps, [2, 2, 1, Local(aid)]
        )
        assert res.status is Status.ERROR  # kernel rejects borderless arrays

    def test_conservation_trend(self, m4):
        """Diffusion with zero-edge Dirichlet only loses mass (monotone
        non-increasing total)."""
        shape = (8, 8)
        initial = np.full(shape, 50.0)
        aid, procs = make_field(m4, shape, (2, 2), initial)
        previous = initial.sum()
        for _ in range(3):
            distributed_call(
                m4, procs, heat_steps, [2, 2, 1, Local(aid)]
            )
            current = gather(m4, aid, shape, (2, 2)).sum()
            assert current <= previous + 1e-9
            previous = current
