"""QR, conjugate gradient, and matrix-matrix operations (§D extensions)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.arrays import am_user, am_util
from repro.calls import Local, Reduce, distributed_call
from repro.spmd import linalg
from repro.status import Status
from repro.vp.machine import Machine


@pytest.fixture
def m4():
    machine = Machine(4)
    am_util.load_all(machine)
    return machine


def procs(machine):
    return am_util.node_array(0, 1, machine.num_nodes)


def scatter_matrix(machine, n, values):
    p = procs(machine)
    aid, st = am_user.create_array(
        machine, "double", (n, n), p, [("block", len(p)), "*"]
    )
    assert st is Status.OK
    from repro.pcn.defvar import DefVar

    rows = n // len(p)
    for rank, proc in enumerate(p):
        status = DefVar("s")
        machine.server.request(
            "write_section_local", aid,
            np.asarray(values)[rank * rows : (rank + 1) * rows].copy(),
            status, processor=int(proc),
        )
        assert Status(status.read()) is Status.OK
    return aid


def gather_matrix(machine, aid, n):
    from repro.pcn.defvar import DefVar

    p = procs(machine)
    rows = n // len(p)
    out = np.empty((n, n))
    for rank, proc in enumerate(p):
        data, status = DefVar("d"), DefVar("s")
        machine.server.request(
            "read_section_local", aid, data, status, processor=int(proc)
        )
        out[rank * rows : (rank + 1) * rows] = data.read()
    return out


def scatter_vector(machine, n, values):
    p = procs(machine)
    aid, st = am_user.create_array(machine, "double", (n,), p, ["block"])
    assert st is Status.OK
    from repro.pcn.defvar import DefVar

    chunk = n // len(p)
    for rank, proc in enumerate(p):
        status = DefVar("s")
        machine.server.request(
            "write_section_local", aid,
            np.asarray(values)[rank * chunk : (rank + 1) * chunk].copy(),
            status, processor=int(proc),
        )
    return aid


def gather_vector(machine, aid, n):
    return np.array(
        [am_user.read_element(machine, aid, (i,))[0] for i in range(n)]
    )


class TestQR:
    def make_spd_free_matrix(self, m4, n=8, seed=3):
        rng = np.random.default_rng(seed)
        a_vals = rng.standard_normal((n, n)) + n * np.eye(n)
        return scatter_matrix(m4, n, a_vals), a_vals

    def test_qr_orthonormal_and_reconstructs(self, m4):
        n = 8
        aid, a_vals = self.make_spd_free_matrix(m4)

        collected = {}

        def program(ctx, q_sec):
            r = np.zeros((n, n))
            linalg.qr_decompose(ctx, n, q_sec, r)
            collected[ctx.index] = r

        res = distributed_call(m4, procs(m4), program, [Local(aid)])
        assert res.status is Status.OK
        q = gather_matrix(m4, aid, n)
        # every copy computed the identical replicated R
        rs = list(collected.values())
        for r in rs[1:]:
            assert np.allclose(r, rs[0])
        r = rs[0]
        assert np.allclose(q.T @ q, np.eye(n), atol=1e-9)
        assert np.allclose(q @ r, a_vals, atol=1e-9)
        assert np.allclose(r, np.triu(r))

    def test_qr_solve_matches_numpy(self, m4):
        n = 8
        aid, a_vals = self.make_spd_free_matrix(m4, seed=5)
        rng = np.random.default_rng(0)
        b_vals = rng.standard_normal(n)
        b = scatter_vector(m4, n, b_vals)
        x = scatter_vector(m4, n, np.zeros(n))

        def program(ctx, q_sec, b_sec, x_sec):
            r = np.zeros((n, n))
            linalg.qr_decompose(ctx, n, q_sec, r)
            linalg.qr_solve(ctx, n, q_sec, r, b_sec, x_sec)

        res = distributed_call(
            m4, procs(m4), program, [Local(aid), Local(b), Local(x)]
        )
        assert res.status is Status.OK
        assert np.allclose(
            gather_vector(m4, x, n), np.linalg.solve(a_vals, b_vals),
            atol=1e-8,
        )
        assert np.allclose(gather_vector(m4, b, n), b_vals)  # b unchanged


class TestConjugateGradient:
    def test_cg_solves_spd_system(self, m4):
        n = 8
        rng = np.random.default_rng(7)
        base = rng.standard_normal((n, n))
        spd = base @ base.T + n * np.eye(n)
        a = scatter_matrix(m4, n, spd)
        b_vals = rng.standard_normal(n)
        b = scatter_vector(m4, n, b_vals)
        x = scatter_vector(m4, n, np.zeros(n))

        res = distributed_call(
            m4, procs(m4),
            lambda ctx, am, bm, xm, r: linalg.conjugate_gradient(
                ctx, n, 50, 1e-10, am, bm, xm, r
            ),
            [Local(a), Local(b), Local(x), Reduce("double", 1, "max")],
        )
        assert res.status is Status.OK
        assert res.reductions[0] < 1e-9
        assert np.allclose(
            gather_vector(m4, x, n), np.linalg.solve(spd, b_vals), atol=1e-7
        )

    def test_cg_respects_iteration_cap(self, m4):
        n = 8
        rng = np.random.default_rng(9)
        base = rng.standard_normal((n, n))
        spd = base @ base.T + n * np.eye(n)
        a = scatter_matrix(m4, n, spd)
        b = scatter_vector(m4, n, np.ones(n))
        x = scatter_vector(m4, n, np.zeros(n))

        res = distributed_call(
            m4, procs(m4),
            lambda ctx, am, bm, xm, r: linalg.conjugate_gradient(
                ctx, n, 1, 0.0, am, bm, xm, r
            ),
            [Local(a), Local(b), Local(x), Reduce("double", 1, "max")],
        )
        # one iteration cannot fully converge a random SPD system
        assert res.reductions[0] > 0.0


class TestMatMat:
    def test_matmat_matches_numpy(self, m4):
        n = 8
        rng = np.random.default_rng(11)
        a_vals = rng.standard_normal((n, n))
        b_vals = rng.standard_normal((n, n))
        a = scatter_matrix(m4, n, a_vals)
        b = scatter_matrix(m4, n, b_vals)
        c = scatter_matrix(m4, n, np.zeros((n, n)))
        res = distributed_call(
            m4, procs(m4),
            lambda ctx, am, bm, cm: linalg.mat_mat(ctx, am, bm, cm),
            [Local(a), Local(b), Local(c)],
        )
        assert res.status is Status.OK
        assert np.allclose(gather_matrix(m4, c, n), a_vals @ b_vals)

    def test_frobenius_norm(self, m4):
        n = 8
        rng = np.random.default_rng(13)
        a_vals = rng.standard_normal((n, n))
        a = scatter_matrix(m4, n, a_vals)
        res = distributed_call(
            m4, procs(m4),
            lambda ctx, am, out: linalg.mat_frobenius_norm(ctx, am, out),
            [Local(a), Reduce("double", 1, "max")],
        )
        assert res.reductions[0] == pytest.approx(
            float(np.linalg.norm(a_vals, "fro"))
        )

    def test_matmat_identity(self, m4):
        n = 8
        rng = np.random.default_rng(17)
        a_vals = rng.standard_normal((n, n))
        a = scatter_matrix(m4, n, a_vals)
        eye = scatter_matrix(m4, n, np.eye(n))
        c = scatter_matrix(m4, n, np.zeros((n, n)))
        distributed_call(
            m4, procs(m4),
            lambda ctx, am, bm, cm: linalg.mat_mat(ctx, am, bm, cm),
            [Local(a), Local(eye), Local(c)],
        )
        assert np.allclose(gather_matrix(m4, c, n), a_vals)


class TestCholesky:
    def make_spd(self, m4, n=8, seed=2):
        rng = np.random.default_rng(seed)
        base = rng.standard_normal((n, n))
        spd = base @ base.T + n * np.eye(n)
        return scatter_matrix(m4, n, spd), spd

    def test_factor_is_lower_and_reconstructs(self, m4):
        n = 8
        aid, spd = self.make_spd(m4, n)
        res = distributed_call(
            m4, procs(m4),
            lambda ctx, am: linalg.cholesky_decompose(ctx, n, am),
            [Local(aid)],
        )
        assert res.status is Status.OK
        l_factor = gather_matrix(m4, aid, n)
        assert np.allclose(l_factor, np.tril(l_factor))
        assert np.allclose(l_factor @ l_factor.T, spd, atol=1e-8)
        assert np.allclose(
            l_factor, np.linalg.cholesky(spd), atol=1e-8
        )

    def test_cholesky_solve_matches_numpy(self, m4):
        n = 8
        aid, spd = self.make_spd(m4, n, seed=6)
        rng = np.random.default_rng(1)
        b_vals = rng.standard_normal(n)
        b = scatter_vector(m4, n, b_vals)
        x = scatter_vector(m4, n, np.zeros(n))

        def program(ctx, am, bm, xm):
            linalg.cholesky_decompose(ctx, n, am)
            linalg.cholesky_solve(ctx, n, am, bm, xm)

        res = distributed_call(
            m4, procs(m4), program, [Local(aid), Local(b), Local(x)]
        )
        assert res.status is Status.OK
        assert np.allclose(
            gather_vector(m4, x, n), np.linalg.solve(spd, b_vals), atol=1e-8
        )
        assert np.allclose(gather_vector(m4, b, n), b_vals)  # b unchanged

    @pytest.mark.parametrize("n", [4, 8, 16])
    def test_various_sizes(self, m4, n):
        aid, spd = self.make_spd(m4, n, seed=n)
        res = distributed_call(
            m4, procs(m4),
            lambda ctx, am: linalg.cholesky_decompose(ctx, n, am),
            [Local(aid)],
        )
        assert res.status is Status.OK
        l_factor = gather_matrix(m4, aid, n)
        assert np.allclose(l_factor @ l_factor.T, spd, atol=1e-7)
