"""SPMDContext and OutCell (§3.3.1.2's call environment)."""

from __future__ import annotations

import pytest

from repro.pcn.composition import par
from repro.spmd.context import OutCell, SPMDContext
from repro.vp.machine import Machine


class TestOutCell:
    def test_starts_unassigned(self):
        cell = OutCell("x")
        assert not cell.assigned
        assert cell.value is None

    def test_set_marks_assigned(self):
        cell = OutCell("x", initial=7)
        assert cell.value == 7
        cell.set(9)
        assert cell.assigned
        assert cell.value == 9

    def test_repr(self):
        cell = OutCell("status")
        cell.set(0)
        assert "status" in repr(cell)


class TestSPMDContext:
    @pytest.fixture
    def machine(self):
        return Machine(8)

    def test_basic_fields(self, machine):
        ctx = SPMDContext(machine, [3, 5, 7], 1, "g")
        assert ctx.num_procs == 3
        assert ctx.processor_number == 5
        assert ctx.index == 1
        assert ctx.node is machine.processor(5)

    def test_comm_is_group_scoped(self, machine):
        ctx = SPMDContext(machine, [3, 5], 0, "mygroup")
        assert ctx.comm.group == "mygroup"
        assert ctx.comm.procs == (3, 5)
        assert ctx.comm.rank == 0

    def test_bad_index_rejected(self, machine):
        with pytest.raises(ValueError):
            SPMDContext(machine, [0, 1], 5, "g")

    def test_subcontext_selects_ranks(self, machine):
        ctx = SPMDContext(machine, [2, 4, 6, 7], 2, "g")
        sub = ctx.subcontext([0, 2])
        assert sub.procs == (2, 6)
        assert sub.index == 1
        assert sub.processor_number == 6

    def test_subcontext_communication_isolated(self, machine):
        """Subgroup traffic doesn't collide with the parent group's."""
        parents = [SPMDContext(machine, [0, 1], r, "parent") for r in range(2)]

        def body(ctx):
            sub = ctx.subcontext([0, 1], group="child")
            if ctx.index == 0:
                ctx.comm.send(1, "parent-msg", tag="t")
                sub.comm.send(1, "child-msg", tag="t")
                return None
            child = sub.comm.recv(source_rank=0, tag="t")
            parent = ctx.comm.recv(source_rank=0, tag="t")
            return (parent, child)

        results = par(*[lambda c=c: body(c) for c in parents])
        assert results[1] == ("parent-msg", "child-msg")

    def test_repr(self, machine):
        ctx = SPMDContext(machine, [0, 1], 0, "g")
        assert "index=0/2" in repr(ctx)
