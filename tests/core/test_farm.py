"""Task farms over disjoint processor groups (§2.3.4)."""

from __future__ import annotations

import threading
import time

import pytest

from repro.core.farm import TaskFarm


class TestValidation:
    def test_overlapping_groups_rejected(self):
        with pytest.raises(ValueError, match="disjoint"):
            TaskFarm([[0, 1], [1, 2]])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            TaskFarm([])


class TestScheduling:
    def test_results_in_job_order(self):
        farm = TaskFarm([[0], [1], [2]])
        result = farm.run([lambda g, j=j: j * j for j in range(9)])
        assert result.results == [j * j for j in range(9)]

    def test_jobs_receive_their_group(self):
        farm = TaskFarm([[0, 1], [2, 3]])
        result = farm.run([lambda g: tuple(g) for _ in range(6)])
        assert set(result.results) <= {(0, 1), (2, 3)}

    def test_all_groups_participate_when_jobs_block(self):
        """With jobs that take real time, every worker pulls work."""
        farm = TaskFarm([[0], [1], [2], [3]])

        def job(group):
            time.sleep(0.02)
            return group[0]

        result = farm.run([job] * 12)
        assert all(count > 0 for count in result.jobs_per_group)
        assert sum(result.jobs_per_group) == 12

    def test_concurrent_execution_across_groups(self):
        barrier = threading.Barrier(3, timeout=5)
        farm = TaskFarm([[0], [1], [2]])

        def job(group):
            barrier.wait()
            return True

        assert farm.run([job] * 3).results == [True] * 3

    def test_fewer_jobs_than_groups(self):
        farm = TaskFarm([[0], [1], [2], [3]])
        result = farm.run([lambda g: "only"])
        assert result.results == ["only"]

    def test_zero_jobs(self):
        farm = TaskFarm([[0]])
        assert farm.run([]).results == []

    def test_load_imbalance_metric(self):
        farm = TaskFarm([[0], [1]])
        result = farm.run([lambda g: time.sleep(0.01) for _ in range(8)])
        assert result.load_imbalance() >= 1.0

    def test_job_exception_propagates(self):
        farm = TaskFarm([[0]])

        def bad(group):
            raise ValueError("job failed")

        with pytest.raises(ValueError, match="job failed"):
            farm.run([bad])
