"""Task farms over disjoint processor groups (§2.3.4)."""

from __future__ import annotations

import threading
import time

import pytest

from repro.core.farm import TaskFarm


class TestValidation:
    def test_overlapping_groups_rejected(self):
        with pytest.raises(ValueError, match="disjoint"):
            TaskFarm([[0, 1], [1, 2]])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            TaskFarm([])


class TestScheduling:
    def test_results_in_job_order(self):
        farm = TaskFarm([[0], [1], [2]])
        result = farm.run([lambda g, j=j: j * j for j in range(9)])
        assert result.results == [j * j for j in range(9)]

    def test_jobs_receive_their_group(self):
        farm = TaskFarm([[0, 1], [2, 3]])
        result = farm.run([lambda g: tuple(g) for _ in range(6)])
        assert set(result.results) <= {(0, 1), (2, 3)}

    def test_all_groups_participate_when_jobs_block(self):
        """With jobs that take real time, every worker pulls work."""
        farm = TaskFarm([[0], [1], [2], [3]])

        def job(group):
            time.sleep(0.02)
            return group[0]

        result = farm.run([job] * 12)
        assert all(count > 0 for count in result.jobs_per_group)
        assert sum(result.jobs_per_group) == 12

    def test_concurrent_execution_across_groups(self):
        barrier = threading.Barrier(3, timeout=5)
        farm = TaskFarm([[0], [1], [2]])

        def job(group):
            barrier.wait()
            return True

        assert farm.run([job] * 3).results == [True] * 3

    def test_fewer_jobs_than_groups(self):
        farm = TaskFarm([[0], [1], [2], [3]])
        result = farm.run([lambda g: "only"])
        assert result.results == ["only"]

    def test_zero_jobs(self):
        farm = TaskFarm([[0]])
        assert farm.run([]).results == []

    def test_load_imbalance_metric(self):
        farm = TaskFarm([[0], [1]])
        result = farm.run([lambda g: time.sleep(0.01) for _ in range(8)])
        assert result.load_imbalance() >= 1.0

    def test_job_exception_propagates(self):
        farm = TaskFarm([[0]])

        def bad(group):
            raise ValueError("job failed")

        with pytest.raises(ValueError, match="job failed"):
            farm.run([bad])

    def test_job_exception_does_not_hang_idle_peers(self):
        """Workers wait with no timeout, so a crashing job must wake its
        blocked peers explicitly or the run would hang forever."""
        farm = TaskFarm([[0], [1], [2]])
        release = threading.Event()

        def bad(group):
            release.wait(5)
            raise ValueError("boom")

        # One job, three workers: two peers block on the empty queue.
        release.set()
        with pytest.raises(ValueError, match="boom"):
            farm.run([bad])


class TestIdleWakeup:
    def test_idle_workers_do_no_timed_polling(self):
        """Regression for the 20 ms busy-wait: every wait on the farm's
        condition variable must be untimed (pure ``notify_all`` wakeup)."""
        farm = TaskFarm([[0], [1], [2], [3]])
        timeouts = []
        original_wait = farm._cond.wait

        def spying_wait(timeout=None):
            timeouts.append(timeout)
            return original_wait(timeout)

        farm._cond.wait = spying_wait

        def slow(group):
            # Hold the queue empty long enough that idle workers would
            # have polled several times under the old 20 ms timeout.
            time.sleep(0.1)
            return group[0]

        result = farm.run([slow])
        assert result.results[0] in (0, 1, 2, 3)
        assert timeouts, "idle workers never blocked on the condition"
        assert all(t is None for t in timeouts)


class TestElasticGroups:
    def test_add_group_when_idle(self):
        farm = TaskFarm([[0]])
        assert farm.add_group([1, 2]) == 1
        assert farm.groups == [(0,), (1, 2)]
        result = farm.run([lambda g: tuple(g) for _ in range(4)])
        assert set(result.results) <= {(0,), (1, 2)}
        assert len(result.jobs_per_group) == 2

    def test_add_group_rejects_overlap(self):
        farm = TaskFarm([[0, 1]])
        with pytest.raises(ValueError, match="disjoint"):
            farm.add_group([1, 2])

    def test_add_group_mid_run_absorbs_queued_jobs(self):
        """A group added while run() is in flight spawns a worker into
        the live run and starts pulling queued jobs immediately."""
        farm = TaskFarm([[0]])
        first_started = threading.Event()
        release_first = threading.Event()

        def slow_first(group):
            first_started.set()
            assert release_first.wait(5)
            return ("slow", group)

        def quick(group):
            return ("quick", tuple(group))

        jobs = [slow_first] + [quick] * 6
        result_box = {}

        def drive():
            result_box["result"] = farm.run(jobs)

        runner = threading.Thread(target=drive)
        runner.start()
        assert first_started.wait(5)
        # The lone original worker is stuck in slow_first; every quick
        # job is queued.  The new group must drain them on its own.
        index = farm.add_group([5, 6])
        deadline = time.monotonic() + 5
        while time.monotonic() < deadline:
            with farm._cond:
                run = farm._run
                done = run is not None and run["state"]["unfinished"] == 1
            if done:
                break
            time.sleep(0.005)
        else:
            release_first.set()
            runner.join(5)
            pytest.fail("added group never drained the queue")
        release_first.set()
        runner.join(5)
        result = result_box["result"]
        assert result.results[0] == ("slow", (0,))
        assert result.results[1:] == [("quick", (5, 6))] * 6
        assert result.jobs_per_group[index] == 6
        assert result.jobs_per_group[0] == 1

    def test_add_group_after_run_completes_is_fresh(self):
        farm = TaskFarm([[0]])
        farm.run([lambda g: 1])
        farm.add_group([3])
        result = farm.run([lambda g: tuple(g) for _ in range(4)])
        assert set(result.results) <= {(0,), (3,)}
