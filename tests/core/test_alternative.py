"""The alternative integration model (§2.2): task-parallel subprograms in
a data-parallel computation."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.core.alternative import call_task_parallel_on
from repro.pcn.composition import par


class TestElementScope:
    def test_one_instance_per_element(self, rt4):
        with rt4.array("double", (8,), distrib=["block"]) as arr:
            seen = []
            lock = threading.Lock()

            def program(idx, value):
                with lock:
                    seen.append(idx)

            count = call_task_parallel_on(arr, program)
            assert count == 8
            assert sorted(seen) == [(i,) for i in range(8)]

    def test_return_value_written_back(self, rt4):
        with rt4.array("double", (8,), distrib=["block"]) as arr:
            arr.from_numpy(np.arange(8, dtype=float))
            call_task_parallel_on(arr, lambda idx, v: v * 10)
            assert list(arr.to_numpy()) == [i * 10.0 for i in range(8)]

    def test_none_return_leaves_element(self, rt4):
        with rt4.array("double", (8,), distrib=["block"]) as arr:
            arr.from_numpy(np.arange(8, dtype=float))
            call_task_parallel_on(
                arr, lambda idx, v: v + 100 if idx[0] % 2 == 0 else None
            )
            out = arr.to_numpy()
            assert list(out[0::2]) == [100.0, 102.0, 104.0, 106.0]
            assert list(out[1::2]) == [1.0, 3.0, 5.0, 7.0]

    def test_instances_run_concurrently(self, rt4):
        """The paper: concurrently once per element — instances can
        rendezvous, which sequential execution could not."""
        with rt4.array("double", (4,), distrib=["block"]) as arr:
            barrier = threading.Barrier(4, timeout=5)

            def program(idx, value):
                barrier.wait()
                return float(idx[0])

            call_task_parallel_on(arr, program)
            assert list(arr.to_numpy()) == [0.0, 1.0, 2.0, 3.0]

    def test_instances_may_spawn_processes(self, rt4):
        """Each copy of the task-parallel program can consist of multiple
        processes (§2.2)."""
        with rt4.array("double", (4,), distrib=["block"]) as arr:

            def program(idx, value):
                partials = par(lambda: idx[0], lambda: 1)
                return float(sum(partials))

            call_task_parallel_on(arr, program)
            assert list(arr.to_numpy()) == [1.0, 2.0, 3.0, 4.0]

    def test_2d_indices(self, rt4):
        with rt4.array(
            "double", (4, 4), distrib=(("block", 2), ("block", 2))
        ) as arr:
            call_task_parallel_on(
                arr, lambda idx, v: float(10 * idx[0] + idx[1])
            )
            expected = np.array(
                [[10 * i + j for j in range(4)] for i in range(4)], float
            )
            assert np.array_equal(arr.to_numpy(), expected)

    def test_caller_suspends_until_all_instances_finish(self, rt4):
        with rt4.array("double", (4,), distrib=["block"]) as arr:
            release = threading.Event()

            def program(idx, value):
                if idx[0] == 0:
                    release.wait(timeout=5)
                return 1.0

            done = []

            def caller():
                call_task_parallel_on(arr, program)
                done.append(True)

            t = threading.Thread(target=caller)
            t.start()
            import time

            time.sleep(0.05)
            assert not done
            release.set()
            t.join(timeout=5)
            assert done


class TestSectionScope:
    def test_one_instance_per_section(self, rt4):
        with rt4.array("double", (8,), distrib=["block"]) as arr:
            seen = []
            lock = threading.Lock()

            def program(section, data):
                with lock:
                    seen.append((section, data.shape))

            count = call_task_parallel_on(arr, program, scope="section")
            assert count == 4
            assert sorted(seen) == [(s, (2,)) for s in range(4)]

    def test_returned_block_replaces_section(self, rt4):
        with rt4.array("double", (8,), distrib=["block"]) as arr:
            call_task_parallel_on(
                arr,
                lambda section, data: np.full_like(data, float(section)),
                scope="section",
            )
            assert list(arr.to_numpy()) == [0, 0, 1, 1, 2, 2, 3, 3]

    def test_program_receives_copy_not_alias(self, rt4):
        with rt4.array("double", (8,), distrib=["block"]) as arr:
            arr.from_numpy(np.zeros(8))

            def program(section, data):
                data[:] = 99.0  # mutating the copy, returning None

            call_task_parallel_on(arr, program, scope="section")
            assert np.all(arr.to_numpy() == 0.0)


class TestValidation:
    def test_bad_scope(self, rt4):
        with rt4.array("double", (4,), distrib=["block"]) as arr:
            with pytest.raises(ValueError):
                call_task_parallel_on(arr, lambda i, v: v, scope="row")

    def test_instance_exception_propagates(self, rt4):
        with rt4.array("double", (4,), distrib=["block"]) as arr:

            def bad(idx, value):
                if idx[0] == 2:
                    raise RuntimeError("element 2 failed")

            with pytest.raises(RuntimeError, match="element 2"):
                call_task_parallel_on(arr, bad)
