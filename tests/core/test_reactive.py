"""Reactive computations / discrete-event graphs (§2.3.3)."""

from __future__ import annotations

import pytest

from repro.core.reactive import Event, ReactiveGraph


class TestEvents:
    def test_at_derives_time(self):
        e = Event(1.0, "kind", "payload")
        later = e.at(0.5)
        assert later.time == 1.5
        assert later.kind == "kind"
        assert later.payload == "payload"

    def test_at_overrides(self):
        e = Event(0.0, "a", 1)
        assert e.at(1.0, "b", 2) == Event(1.0, "b", 2)


class TestGraphConstruction:
    def test_duplicate_node_rejected(self):
        g = ReactiveGraph()
        g.add_node("x", lambda n, e: None)
        with pytest.raises(ValueError):
            g.add_node("x", lambda n, e: None)

    def test_empty_graph_rejected(self):
        with pytest.raises(ValueError):
            ReactiveGraph().run([])

    def test_unknown_destination_raises(self):
        g = ReactiveGraph()
        g.add_node("only", lambda n, e: [("ghost", e)])
        with pytest.raises(KeyError):
            g.run([("only", Event(0, "go"))], timeout=5)


class TestEventFlow:
    def test_single_event_single_node(self):
        g = ReactiveGraph()
        node = g.add_node("sink", lambda n, e: None)
        result = g.run([("sink", Event(0.0, "hello"))])
        assert result.events_handled == 1
        assert node.handled == [(0.0, "hello")]

    def test_chain_propagation(self):
        g = ReactiveGraph()
        g.add_node("a", lambda n, e: [("b", e.at(1.0))])
        g.add_node("b", lambda n, e: [("c", e.at(1.0))])
        log = []
        g.add_node("c", lambda n, e: log.append(e.time))
        result = g.run([("a", Event(0.0, "go"))])
        assert result.events_handled == 3
        assert log == [2.0]

    def test_fanout(self):
        g = ReactiveGraph()
        g.add_node("src", lambda n, e: [("d1", e), ("d2", e), ("d2", e)])
        g.add_node("d1", lambda n, e: None)
        g.add_node("d2", lambda n, e: None)
        result = g.run([("src", Event(0.0, "x"))])
        assert result.per_node_counts == {"src": 1, "d1": 1, "d2": 2}

    def test_cyclic_graph_terminates_on_quiescence(self):
        """Irregular, data-dependent cascades (the point of task
        parallelism, §1.1.4) terminate when no handler emits."""
        g = ReactiveGraph()

        def bouncer(n, e):
            if e.payload > 0:
                return [("bouncer", e.at(1.0, payload=e.payload - 1))]

        g.add_node("bouncer", bouncer)
        result = g.run([("bouncer", Event(0.0, "bounce", 10))])
        assert result.events_handled == 11

    def test_local_time_advances_monotonically(self):
        g = ReactiveGraph()
        node = g.add_node("n", lambda n, e: None)
        g.run([
            ("n", Event(5.0, "later")),
            ("n", Event(1.0, "earlier")),
        ])
        assert node.local_time == 5.0

    def test_node_state_is_private_and_persistent(self):
        g = ReactiveGraph()

        def counter(n, e):
            n.state["count"] = n.state.get("count", 0) + 1

        node = g.add_node("c", counter)
        g.run([("c", Event(0, "x")), ("c", Event(1, "x")), ("c", Event(2, "x"))])
        assert node.state["count"] == 3

    def test_multiple_initial_events(self):
        g = ReactiveGraph()
        g.add_node("n", lambda n, e: None)
        result = g.run([("n", Event(0, "a")), ("n", Event(0, "b"))])
        assert result.events_handled == 2

    def test_timeout_on_livelock(self):
        g = ReactiveGraph()
        g.add_node("loop", lambda n, e: [("loop", e.at(1.0))])
        with pytest.raises(TimeoutError):
            g.run([("loop", Event(0, "forever"))], timeout=0.3)

    def test_handler_events_processed_in_fifo_order_per_node(self):
        g = ReactiveGraph()
        order = []
        g.add_node("sink", lambda n, e: order.append(e.payload))
        g.add_node(
            "src",
            lambda n, e: [("sink", e.at(0, payload=i)) for i in range(5)],
        )
        g.run([("src", Event(0, "go"))])
        assert order == [0, 1, 2, 3, 4]


class TestStrictTopology:
    def test_declared_edges_allow_flow(self):
        from repro.core.reactive import TopologyError

        g = ReactiveGraph()
        g.add_node("a", lambda n, e: [("b", e)])
        log = []
        g.add_node("b", lambda n, e: log.append(e.kind))
        g.connect("a", "b")
        g.run([("a", Event(0, "x"))])
        assert log == ["x"]

    def test_undeclared_edge_raises(self):
        from repro.core.reactive import TopologyError

        g = ReactiveGraph()
        g.add_node("a", lambda n, e: [("b", e)])
        g.add_node("b", lambda n, e: None)
        g.add_node("c", lambda n, e: None)
        g.connect("a", "c")  # strict now; a->b undeclared
        with pytest.raises(TopologyError):
            g.run([("a", Event(0, "x"))], timeout=5)

    def test_dynamic_graph_without_declared_edges(self):
        """No connect() calls: any destination remains legal (§2.3.3's
        mutable graphs)."""
        g = ReactiveGraph()
        g.add_node("a", lambda n, e: [("b", e)])
        log = []
        g.add_node("b", lambda n, e: log.append(1))
        result = g.run([("a", Event(0, "x"))])
        assert result.events_handled == 2

    def test_connect_unknown_node_rejected(self):
        g = ReactiveGraph()
        g.add_node("a", lambda n, e: None)
        with pytest.raises(KeyError):
            g.connect("a", "ghost")

    def test_initial_events_bypass_edge_check(self):
        """Injection is external stimulus, not an edge."""
        from repro.core.reactive import TopologyError

        g = ReactiveGraph()
        g.add_node("a", lambda n, e: None)
        g.add_node("b", lambda n, e: None)
        g.connect("a", "b")
        result = g.run([("b", Event(0, "external"))])
        assert result.events_handled == 1
