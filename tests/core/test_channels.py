"""Direct DP<->DP channels — the §7.2.1 extension."""

from __future__ import annotations

import pytest

from repro.calls import Index, Reduce
from repro.core.channels import Channel
from repro.pcn.composition import par
from repro.status import Status


class TestConstruction:
    def test_width_mismatch_rejected(self, rt8):
        with pytest.raises(ValueError, match="equal widths"):
            Channel(rt8.machine, [0, 1], [2, 3, 4])

    def test_width(self, rt8):
        ch = Channel(rt8.machine, [0, 1, 2], [3, 4, 5])
        assert ch.width == 3

    def test_unique_group_ids(self, rt8):
        a = Channel(rt8.machine, [0], [1])
        b = Channel(rt8.machine, [0], [1])
        assert a.group != b.group


class TestEndResolution:
    def test_end_requires_matching_context(self, rt8):
        """An end can only be taken by the copy whose rank/processor
        matches the channel's wiring."""
        ch = Channel(rt8.machine, [0, 1], [2, 3])
        errors = []

        def wrong_group_program(ctx, index):
            try:
                ch.end_a(ctx)
            except ValueError as exc:
                errors.append(str(exc))

        rt8.call([4, 5], wrong_group_program, [Index()])
        assert len(errors) == 2


class TestDataFlow:
    def test_rank_to_rank_pairing(self, rt8):
        """Copy r of the producer call talks to copy r of the consumer."""
        ga, gb = rt8.split_processors(2)
        ch = Channel(rt8.machine, ga, gb)
        received = {}

        def producer(ctx, index):
            ch.end_a(ctx).send(("from", index))

        def consumer(ctx, index):
            received[index] = ch.end_b(ctx).recv()

        par(
            lambda: rt8.call(ga, producer, [Index()]),
            lambda: rt8.call(gb, consumer, [Index()]),
        )
        assert received == {i: ("from", i) for i in range(4)}

    def test_bidirectional(self, rt8):
        ga, gb = rt8.split_processors(2)
        ch = Channel(rt8.machine, ga, gb)
        echoes = []

        def side_a(ctx, index):
            end = ch.end_a(ctx)
            end.send(index * 2)
            echoes.append(end.recv())

        def side_b(ctx, index):
            end = ch.end_b(ctx)
            end.send(end.recv() + 1)

        par(
            lambda: rt8.call(ga, side_a, [Index()]),
            lambda: rt8.call(gb, side_b, [Index()]),
        )
        assert sorted(echoes) == [1, 3, 5, 7]

    def test_stream_of_items_through_channel(self, rt8):
        """The §7.2.1 scenario: significant per-step data volume flowing
        stage to stage without transiting the TP level."""
        ga, gb = rt8.split_processors(2)
        ch = Channel(rt8.machine, ga, gb)
        items = 5
        sums = []

        def producer(ctx, index, sec):
            end = ch.end_a(ctx)
            data = sec.interior()
            for k in range(items):
                data[:] = k + index
                end.send(data.copy(), tag=k)

        def consumer(ctx, index, out):
            end = ch.end_b(ctx)
            total = 0.0
            for k in range(items):
                total += float(end.recv(tag=k).sum())
            out[0] = total

        a = rt8.array("double", (8,), ga, ["block"])
        results = par(
            lambda: rt8.call(ga, producer, [Index(), a]),
            lambda: rt8.call(
                gb, consumer, [Index(), Reduce("double", 1, "sum")]
            ),
        )
        assert results[1].status is Status.OK
        # Each of 4 producer ranks sends 5 chunks of 2 elements valued k+index.
        expected = sum(
            2 * (k + index) for index in range(4) for k in range(items)
        )
        assert results[1].reductions[0] == expected
        a.free()

    def test_channel_traffic_does_not_disturb_intra_call_comm(self, rt8):
        """Channel messages carry their own group id, so the consumer
        call's internal collectives are unaffected (§3.4.1 extended)."""
        from repro.spmd import collectives

        ga, gb = rt8.split_processors(2)
        ch = Channel(rt8.machine, ga, gb)

        def producer(ctx, index):
            ch.end_a(ctx).send("channel-data")

        def consumer(ctx, index, out):
            internal = collectives.allreduce(ctx.comm, 1, op="sum")
            payload = ch.end_b(ctx).recv()
            out[0] = internal if payload == "channel-data" else -1

        results = par(
            lambda: rt8.call(ga, producer, [Index()]),
            lambda: rt8.call(
                gb, consumer, [Index(), Reduce("double", 1, "min")]
            ),
        )
        assert results[1].reductions[0] == 4.0
