"""Coupled simulations (§2.3.1)."""

from __future__ import annotations

import threading

import pytest

from repro.core.coupled import Component, CoupledSimulation


class TestStructure:
    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            CoupledSimulation(
                [
                    Component("x", lambda c, k: None, [0]),
                    Component("x", lambda c, k: None, [1]),
                ]
            )

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            CoupledSimulation([])

    def test_component_lookup(self):
        sim = CoupledSimulation([Component("a", lambda c, k: None, [0])])
        assert sim.component("a").name == "a"
        with pytest.raises(KeyError):
            sim.component("b")


class TestStepping:
    def test_each_component_steps_every_timestep(self):
        counts = {"a": 0, "b": 0}

        def stepper(comp, k):
            counts[comp.name] += 1

        sim = CoupledSimulation(
            [Component("a", stepper, [0]), Component("b", stepper, [1])]
        )
        result = sim.run(7)
        assert counts == {"a": 7, "b": 7}
        assert result.steps == 7
        assert len(result.step_wall_times) == 7

    def test_step_index_passed(self):
        seen = []

        def stepper(comp, k):
            seen.append(k)

        CoupledSimulation([Component("a", stepper, [0])]).run(3)
        assert seen == [0, 1, 2]

    def test_components_step_concurrently(self):
        """Within one time step the components rendezvous — only possible
        if they are truly concurrent."""
        barrier = threading.Barrier(2, timeout=5)

        def stepper(comp, k):
            barrier.wait()

        sim = CoupledSimulation(
            [
                Component("ocean", stepper, [0]),
                Component("atmos", stepper, [1]),
            ]
        )
        sim.run(3)  # would raise BrokenBarrierError if sequential

    def test_exchange_runs_after_each_step(self):
        log = []

        def stepper(comp, k):
            log.append(("step", comp.name, k))

        def exchange(components, k):
            log.append(("exchange", k))

        CoupledSimulation(
            [Component("a", stepper, [0])], exchange=exchange
        ).run(2)
        assert log == [
            ("step", "a", 0),
            ("exchange", 0),
            ("step", "a", 1),
            ("exchange", 1),
        ]

    def test_exchange_sees_component_state(self):
        def stepper(comp, k):
            comp.state["value"] = k * 10

        captured = []

        def exchange(components, k):
            captured.append(components[0].state["value"])

        CoupledSimulation(
            [Component("a", stepper, [0])], exchange=exchange
        ).run(3)
        assert captured == [0, 10, 20]

    def test_step_exception_propagates(self):
        def bad(comp, k):
            raise RuntimeError("model blew up")

        sim = CoupledSimulation([Component("a", bad, [0])])
        with pytest.raises(RuntimeError, match="blew up"):
            sim.run(1)


class TestMetrics:
    def test_exchange_fraction_between_0_and_1(self):
        import time

        sim = CoupledSimulation(
            [Component("a", lambda c, k: time.sleep(0.005), [0])],
            exchange=lambda comps, k: time.sleep(0.005),
        )
        result = sim.run(3)
        assert 0.0 < result.exchange_fraction() < 1.0
        assert result.mean_step_time() > 0.0
