"""Pipelined computations (§2.3.2, Fig 2.2)."""

from __future__ import annotations

import time

import pytest

from repro.core.pipeline import Pipeline, Stage


def work(dt):
    def body(item):
        time.sleep(dt)
        return item + 1

    return body


class TestCorrectness:
    def test_outputs_in_order(self):
        pipe = Pipeline([Stage("a", lambda x: x * 2), Stage("b", lambda x: x + 1)])
        result = pipe.run(range(10))
        assert result.outputs == [x * 2 + 1 for x in range(10)]

    def test_empty_input(self):
        pipe = Pipeline([Stage("a", lambda x: x)])
        assert pipe.run([]).outputs == []

    def test_single_stage(self):
        pipe = Pipeline([Stage("only", lambda x: -x)])
        assert pipe.run([1, 2, 3]).outputs == [-1, -2, -3]

    def test_no_stages_rejected(self):
        with pytest.raises(ValueError):
            Pipeline([])

    def test_sequential_baseline_same_outputs(self):
        stages = [Stage("a", lambda x: x + 1), Stage("b", lambda x: x * 3)]
        items = list(range(8))
        concurrent = Pipeline(stages).run(items)
        sequential = Pipeline(stages).run_sequential(items)
        assert concurrent.outputs == sequential.outputs

    def test_stage_records_one_interval_per_item(self):
        pipe = Pipeline([Stage("a", lambda x: x), Stage("b", lambda x: x)])
        result = pipe.run(range(5))
        assert [len(r.intervals) for r in result.records] == [5, 5]


class TestFig22Overlap:
    """The Fig 2.2 claim: while stage 1 processes item N, stage 2
    processes item N-1 and stage 3 item N-2 — stages overlap after fill."""

    def test_stages_overlap_in_concurrent_run(self):
        stages = [Stage(f"s{i}", work(0.02)) for i in range(3)]
        result = Pipeline(stages).run(range(6))
        assert result.overlap_intervals() > 0.0

    def test_no_overlap_in_sequential_run(self):
        stages = [Stage(f"s{i}", work(0.02)) for i in range(3)]
        result = Pipeline(stages).run_sequential(range(6))
        assert result.overlap_intervals() == 0.0

    def test_simulated_speedup_approaches_stage_count(self):
        """With balanced stages and many items, sequential/pipelined
        makespan ratio tends to the number of stages."""
        stages = [Stage(f"s{i}", work(0.005)) for i in range(3)]
        result = Pipeline(stages).run(range(20))
        # The median-based estimator is robust to scheduling-noise spikes
        # (under full-suite load a single inflated interval would wreck
        # the max-based metric).  Ideal is 3.0 for 3 balanced stages.
        speedup = result.steady_state_speedup()
        assert 1.8 < speedup <= 3.5

    def test_bottleneck_stage_dominates(self):
        """An unbalanced pipeline is paced by its slowest stage."""
        stages = [
            Stage("fast1", work(0.001)),
            Stage("slow", work(0.01)),
            Stage("fast2", work(0.001)),
        ]
        result = Pipeline(stages).run(range(10))
        # Median service times are robust to load spikes: the slow stage
        # must dominate both fast stages combined.
        medians = {
            r.name: sorted(r.service_times())[len(r.service_times()) // 2]
            for r in result.records
        }
        assert medians["slow"] > medians["fast1"] + medians["fast2"]
        # An unbalanced pipeline cannot approach the 3x balanced ideal.
        assert result.steady_state_speedup() < 2.2

    def test_wall_clock_beats_sequential_for_sleep_stages(self):
        """sleep() releases the GIL, so real overlap is observable."""
        stages = [Stage(f"s{i}", work(0.01)) for i in range(3)]
        items = range(8)
        concurrent = Pipeline(stages).run(items)
        sequential = Pipeline(stages).run_sequential(items)
        assert concurrent.wall_time < sequential.wall_time


class TestResultMetrics:
    def test_empty_result_metrics(self):
        result = Pipeline([Stage("a", lambda x: x)]).run([])
        assert result.simulated_pipelined_makespan() == 0.0
        assert result.simulated_speedup() == 1.0

    def test_busy_time_positive(self):
        result = Pipeline([Stage("a", work(0.002))]).run(range(3))
        assert result.stage_busy_times()["a"] >= 0.006


class TestSteadyStateSpeedup:
    def test_single_item_is_unity(self):
        result = Pipeline([Stage("a", work(0.002))] * 1).run([0])
        assert result.steady_state_speedup() == pytest.approx(1.0)

    def test_empty_run_is_unity(self):
        result = Pipeline([Stage("a", lambda x: x)]).run([])
        assert result.steady_state_speedup() == 1.0

    def test_robust_to_one_spiked_interval(self):
        """A single inflated service time must not collapse the estimate
        (the motivation for the median-based metric)."""
        result = Pipeline(
            [Stage("a", lambda x: x), Stage("b", lambda x: x)]
        ).run(range(9))
        # forge one wild outlier in stage a's records
        idx, start, _end = result.records[0].intervals[0]
        result.records[0].intervals[0] = (idx, start, start + 10.0)
        spiky = result.steady_state_speedup()
        assert 1.0 <= spiky <= 2.5

    def test_balanced_two_stages_approach_two(self):
        result = Pipeline(
            [Stage("a", work(0.004)), Stage("b", work(0.004))]
        ).run(range(16))
        assert 1.5 < result.steady_state_speedup() <= 2.3
