"""The pythonic DistributedArray handle."""

from __future__ import annotations

import numpy as np
import pytest

from repro.status import ArrayNotFoundError, InvalidParameterError
from repro.core.darray import DistributedArray


class TestCreation:
    def test_create_with_defaults(self, rt8):
        a = rt8.array("double", (8, 8))
        assert a.dims == (8, 8)
        assert np.prod(a.grid) == 8
        a.free()

    def test_create_explicit_distrib(self, rt8):
        a = rt8.array("double", (16, 4), distrib=[("block", 8), "*"])
        assert a.grid == (8, 1)
        assert a.local_dims == (2, 4)
        a.free()

    def test_create_failure_raises(self, rt8):
        with pytest.raises(InvalidParameterError):
            rt8.array("double", (7,), distrib=["block"])  # 8 ∤ 7

    def test_subset_of_processors(self, rt8):
        a = rt8.array("double", (4,), processors=[2, 5], distrib=["block"])
        assert a.local_dims == (2,)
        a.free()

    def test_context_manager_frees(self, rt8):
        with rt8.array("double", (8,)) as a:
            a[0] = 1.0
        with pytest.raises(ArrayNotFoundError):
            a[0]


class TestElementAccess:
    def test_getset_multidim(self, rt4):
        with rt4.array("double", (4, 4), distrib=("block", ("block", 4))) as a:
            a[1, 2] = 6.25
            assert a[1, 2] == 6.25

    def test_getset_1d_scalar_index(self, rt4):
        with rt4.array("double", (8,), distrib=["block"]) as a:
            a[3] = 1.5
            assert a[3] == 1.5

    def test_out_of_range_raises(self, rt4):
        with rt4.array("double", (8,), distrib=["block"]) as a:
            with pytest.raises(InvalidParameterError):
                a[99]

    def test_use_after_free_raises(self, rt4):
        a = rt4.array("double", (8,), distrib=["block"])
        a.free()
        with pytest.raises(ArrayNotFoundError):
            a[0] = 1.0
        with pytest.raises(ArrayNotFoundError):
            a.info("dimensions")


class TestInfo:
    def test_info_selectors(self, rt4):
        with rt4.array("int", (8, 8), distrib=(("block", 2), ("block", 2))) as a:
            assert a.info("type") == "int"
            assert a.info("dimensions") == [8, 8]
            assert a.info("grid_dimensions") == [2, 2]
            assert a.info("local_dimensions") == [4, 4]

    def test_repr(self, rt4):
        a = rt4.array("double", (8,), distrib=["block"])
        assert "double" in repr(a)
        a.free()
        assert "FREED" in repr(a)


class TestBulkTransfer:
    def test_roundtrip_row_major(self, rt8):
        data = np.arange(64, dtype=float).reshape(8, 8)
        with rt8.array("double", (8, 8)) as a:
            a.from_numpy(data)
            assert np.array_equal(a.to_numpy(), data)

    def test_roundtrip_matches_element_reads(self, rt4):
        data = np.arange(16, dtype=float).reshape(4, 4)
        with rt4.array(
            "double", (4, 4), distrib=(("block", 2), ("block", 2))
        ) as a:
            a.from_numpy(data)
            for i in range(4):
                for j in range(4):
                    assert a[i, j] == data[i, j]

    def test_roundtrip_int(self, rt4):
        data = np.arange(8).reshape(2, 4)
        with rt4.array(
            "int", (2, 4), distrib=(("block", 2), ("block", 2))
        ) as a:
            a.from_numpy(data)
            assert a.to_numpy().dtype == np.int64
            assert np.array_equal(a.to_numpy(), data)

    def test_shape_mismatch_rejected(self, rt4):
        with rt4.array("double", (4, 4)) as a:
            with pytest.raises(ValueError):
                a.from_numpy(np.zeros((3, 3)))

    def test_bulk_transfer_with_borders(self, rt4):
        data = np.arange(16, dtype=float).reshape(4, 4)
        with rt4.array(
            "double", (4, 4), distrib=(("block", 2), ("block", 2)),
            borders=[1, 1, 1, 1],
        ) as a:
            a.from_numpy(data)
            assert np.array_equal(a.to_numpy(), data)


class TestVerifyBorders:
    def test_verify_updates_layout(self, rt4):
        with rt4.array(
            "double", (4, 4), distrib=(("block", 2), ("block", 2))
        ) as a:
            data = np.arange(16, dtype=float).reshape(4, 4)
            a.from_numpy(data)
            a.verify_borders([1, 1, 2, 2])
            assert a.layout.borders == (1, 1, 2, 2)
            assert np.array_equal(a.to_numpy(), data)

    def test_verify_indexing_mismatch_raises(self, rt4):
        with rt4.array(
            "double", (4, 4), distrib=(("block", 2), ("block", 2))
        ) as a:
            with pytest.raises(InvalidParameterError):
                a.verify_borders([0, 0, 0, 0], indexing="column")


class TestRuntimeHelpers:
    def test_split_processors_disjoint(self, rt8):
        groups = rt8.split_processors(4)
        flat = [int(p) for g in groups for p in g]
        assert sorted(flat) == list(range(8))

    def test_split_uneven_rejected(self, rt8):
        with pytest.raises(ValueError):
            rt8.split_processors(3)

    def test_processors_pattern(self, rt8):
        assert list(rt8.processors(1, 3, stride=2)) == [1, 3, 5]

    def test_call_accepts_darray_directly(self, rt4):
        """rt.call converts DistributedArray parameters to Local specs."""
        with rt4.array("double", (8,), distrib=["block"]) as a:

            def program(ctx, sec):
                sec.interior()[:] = ctx.index

            result = rt4.call(rt4.all_processors(), program, [a])
            assert int(result.status) == 0
            assert a[0] == 0.0 and a[7] == 3.0


class TestColumnMajorBulkTransfer:
    def test_roundtrip_column_major(self, rt4):
        """The bulk gather/scatter path must respect column-major grid
        indexing (Fig 3.8 placement applies to sections too)."""
        data = np.arange(16, dtype=float).reshape(4, 4)
        with DistributedArray.create(
            rt4.machine, "double", (4, 4), rt4.all_processors(),
            (("block", 2), ("block", 2)), indexing="column",
        ) as a:
            a.from_numpy(data)
            assert np.array_equal(a.to_numpy(), data)
            # cross-check against element reads
            for i in range(4):
                for j in range(4):
                    assert a[i, j] == data[i, j]

    def test_column_major_bulk_matches_row_major_content(self, rt4):
        data = np.random.default_rng(0).standard_normal((4, 4))
        outs = {}
        for indexing in ("row", "column"):
            with DistributedArray.create(
                rt4.machine, "double", (4, 4), rt4.all_processors(),
                (("block", 2), ("block", 2)), indexing=indexing,
            ) as a:
                a.from_numpy(data)
                outs[indexing] = a.to_numpy()
        assert np.array_equal(outs["row"], outs["column"])


class TestIntArraysEndToEnd:
    def test_int_array_through_distributed_call(self, rt4):
        with rt4.array("int", (8,), distrib=["block"]) as a:

            def program(ctx, sec):
                sec.interior()[:] = ctx.index * 100

            rt4.call(rt4.all_processors(), program, [a])
            values = a.to_numpy()
            assert values.dtype == np.int64
            assert list(values) == [0, 0, 100, 100, 200, 200, 300, 300]
