"""The IntegratedRuntime facade."""

from __future__ import annotations

import numpy as np
import pytest

from repro.calls import Reduce
from repro.core.runtime import IntegratedRuntime
from repro.spmd import collectives


class TestConstruction:
    def test_nodes_exposed(self):
        rt = IntegratedRuntime(6)
        assert rt.num_nodes == 6
        assert rt.machine.num_nodes == 6

    def test_array_manager_loaded(self):
        rt = IntegratedRuntime(2)
        assert rt.array_manager is not None
        assert rt.machine.server.provides("create_array")

    def test_trace_variant(self):
        rt = IntegratedRuntime(2, trace_arrays=True)
        rt.array("double", (4,), distrib=[("block", 2)]).free()
        assert rt.array_manager.trace_enabled
        assert len(rt.array_manager.trace_log) > 0

    def test_repr(self):
        assert "nodes=4" in repr(IntegratedRuntime(4))


class TestProcessorGroups:
    def test_all_processors(self):
        rt = IntegratedRuntime(5)
        assert list(rt.all_processors()) == [0, 1, 2, 3, 4]

    def test_processors_with_stride(self):
        rt = IntegratedRuntime(8)
        assert list(rt.processors(1, 3, stride=3)) == [1, 4, 7]

    def test_split_processors(self):
        rt = IntegratedRuntime(8)
        a, b = rt.split_processors(2)
        assert list(a) == [0, 1, 2, 3]
        assert list(b) == [4, 5, 6, 7]

    def test_split_uneven_rejected(self):
        with pytest.raises(ValueError):
            IntegratedRuntime(8).split_processors(3)


class TestArrayDefaults:
    def test_default_full_machine_block(self):
        rt = IntegratedRuntime(4)
        arr = rt.array("double", (16,))
        assert arr.grid == (4,)
        arr.free()

    def test_balanced_default_grid_2d(self):
        """8 nodes: no square 2-D grid exists; the pythonic default falls
        back to a balanced factorisation (documented extension)."""
        rt = IntegratedRuntime(8)
        arr = rt.array("double", (16, 16))
        assert int(np.prod(arr.grid)) == 8
        for d, g in zip(arr.dims, arr.grid):
            assert d % g == 0
        arr.free()

    def test_explicit_distrib_not_overridden(self):
        rt = IntegratedRuntime(4)
        arr = rt.array("double", (16, 4), distrib=[("block", 4), "*"])
        assert arr.grid == (4, 1)
        arr.free()


class TestCalls:
    def test_call_everywhere(self):
        rt = IntegratedRuntime(4)
        result = rt.call_everywhere(
            lambda ctx, out: out.__setitem__(
                0, collectives.allreduce(ctx.comm, 1.0, op="sum")
            ),
            [Reduce("double", 1, "max")],
        )
        assert result.reductions[0] == 4.0

    def test_call_timeout_propagates(self):
        rt = IntegratedRuntime(2)
        import time

        with pytest.raises(TimeoutError):
            rt.call(
                rt.all_processors(),
                lambda ctx: time.sleep(5),
                [],
                timeout=0.1,
            )
