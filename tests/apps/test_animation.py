"""Animation-frame generation (§2.3.4, Fig 2.4)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps import animation
from repro.core.runtime import IntegratedRuntime


@pytest.fixture
def rt():
    return IntegratedRuntime(8)


def serial_julia(shape, c, max_iter):
    h, w = shape
    ys = np.linspace(-1.5, 1.5, h)
    xs = np.linspace(-1.5, 1.5, w)
    z = xs[None, :] + 1j * ys[:, None]
    count = np.zeros(z.shape)
    live = np.ones(z.shape, dtype=bool)
    for _ in range(max_iter):
        z[live] = z[live] ** 2 + c
        escaped = live & (np.abs(z) > 2.0)
        live &= ~escaped
        count[live] += 1.0
    return count / max_iter


class TestRenderer:
    def test_distributed_render_matches_serial(self, rt):
        """The row-block distributed render equals the single-domain
        computation — each copy's strip is exactly its rows."""
        c = animation.julia_parameter(0, 8)
        frame = animation.render_frame_on(
            rt, rt.all_processors(), (16, 16), c, max_iter=25
        )
        assert np.allclose(frame, serial_julia((16, 16), c, 25))

    def test_render_on_subset_group(self, rt):
        c = animation.julia_parameter(1, 8)
        group = rt.processors(2, 2)
        frame = animation.render_frame_on(rt, group, (8, 8), c, max_iter=10)
        assert np.allclose(frame, serial_julia((8, 8), c, 10))

    def test_values_normalised(self, rt):
        frame = animation.render_frame_on(
            rt, rt.all_processors(), (8, 8),
            animation.julia_parameter(2, 8), max_iter=10,
        )
        assert frame.min() >= 0.0 and frame.max() <= 1.0


class TestParameterPath:
    def test_parameters_distinct_per_frame(self):
        params = {animation.julia_parameter(k, 12) for k in range(12)}
        assert len(params) == 12

    def test_path_is_cyclic(self):
        assert animation.julia_parameter(0, 8) == pytest.approx(
            animation.julia_parameter(8, 8)
        )


class TestFarmedAnimation:
    def test_frames_in_order_and_distinct(self, rt):
        result = animation.render_animation(
            rt, frames=6, groups=2, shape=(8, 8), max_iter=10
        )
        assert len(result.frames) == 6
        # frame order preserved regardless of which group rendered what
        for k, frame in enumerate(result.frames):
            expected = serial_julia(
                (8, 8), animation.julia_parameter(k, 6), 10
            )
            assert np.allclose(frame, expected)

    def test_groups_share_the_work(self, rt):
        result = animation.render_animation(
            rt, frames=8, groups=4, shape=(8, 8), max_iter=15
        )
        busy_groups = sum(
            1 for c in result.farm_result.jobs_per_group if c > 0
        )
        assert busy_groups >= 2  # renders take long enough to spread

    def test_single_group_degenerate(self, rt):
        result = animation.render_animation(
            rt, frames=2, groups=1, shape=(8, 8), max_iter=5
        )
        assert len(result.frames) == 2
