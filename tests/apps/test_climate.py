"""The coupled climate simulation (§2.3.1, Fig 2.1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.climate import ClimateSimulation
from repro.core.runtime import IntegratedRuntime


@pytest.fixture
def rt():
    return IntegratedRuntime(8)


class TestCoupling:
    def test_interface_gap_shrinks(self, rt):
        """Coupling drives the ocean-top and atmosphere-bottom temperatures
        together."""
        sim = ClimateSimulation(
            rt, shape=(8, 16), ocean_temp=10.0, atmos_temp=-10.0
        )
        initial_gap = 20.0
        run = sim.run(steps=6)
        assert run.interface_gap() < initial_gap / 2
        sim.free()

    def test_uncoupled_domains_stay_apart(self, rt):
        """Ablation: with coupling 0 the exchange is inert and the gap
        decays only through each domain's own edge losses."""
        coupled = ClimateSimulation(rt, shape=(8, 16), coupling=0.9)
        gap_coupled = coupled.run(4).interface_gap()
        coupled.free()
        uncoupled = ClimateSimulation(rt, shape=(8, 16), coupling=0.0)
        gap_uncoupled = uncoupled.run(4).interface_gap()
        uncoupled.free()
        assert gap_coupled < gap_uncoupled

    def test_fields_bounded_by_initial_extremes(self, rt):
        sim = ClimateSimulation(
            rt, shape=(8, 16), ocean_temp=10.0, atmos_temp=-10.0
        )
        run = sim.run(5)
        for field in (run.ocean, run.atmosphere):
            assert field.max() <= 10.0 + 1e-9
            assert field.min() >= -10.0 - 1e-9
        sim.free()


class TestSemanticEquivalence:
    def test_concurrent_equals_sequential(self, rt):
        """FIG-2.1's key claim: running the two data-parallel components
        concurrently (the paper's structure) produces *bit-identical*
        fields to stepping them one at a time — the distributed call is
        semantically a sequential call (§2.1)."""
        sim_a = ClimateSimulation(rt, shape=(8, 16))
        run_a = sim_a.run(5)
        sim_a.free()

        rt_b = IntegratedRuntime(8)
        sim_b = ClimateSimulation(rt_b, shape=(8, 16))
        run_b = sim_b.run_reference(5)
        sim_b.free()

        assert np.array_equal(run_a.ocean, run_b.ocean)
        assert np.array_equal(run_a.atmosphere, run_b.atmosphere)

    def test_deterministic_across_runs(self, rt):
        sim_a = ClimateSimulation(rt, shape=(8, 16))
        first = sim_a.run(4)
        sim_a.free()
        rt2 = IntegratedRuntime(8)
        sim_b = ClimateSimulation(rt2, shape=(8, 16))
        second = sim_b.run(4)
        sim_b.free()
        assert np.array_equal(first.ocean, second.ocean)


class TestValidation:
    def test_odd_node_count_rejected(self):
        with pytest.raises(ValueError):
            ClimateSimulation(IntegratedRuntime(5))

    def test_exchange_fraction_reported(self, rt):
        sim = ClimateSimulation(rt, shape=(8, 16))
        run = sim.run(3)
        assert run.coupled_result is not None
        assert 0.0 <= run.coupled_result.exchange_fraction() <= 1.0
        sim.free()


class TestDomainGrids:
    def test_2d_decomposition_matches_row_decomposition(self, rt):
        """The physics is decomposition-independent: a (2,2) grid per
        domain produces exactly the same fields as row strips."""
        sim_rows = ClimateSimulation(rt, shape=(8, 16))
        run_rows = sim_rows.run(4)
        sim_rows.free()

        rt2 = IntegratedRuntime(8)
        sim_grid = ClimateSimulation(rt2, shape=(8, 16), domain_grid=(2, 2))
        run_grid = sim_grid.run(4)
        sim_grid.free()

        assert np.array_equal(run_rows.ocean, run_grid.ocean)
        assert np.array_equal(run_rows.atmosphere, run_grid.atmosphere)

    def test_bad_grid_rejected(self, rt):
        with pytest.raises(ValueError):
            ClimateSimulation(rt, shape=(8, 16), domain_grid=(3, 2))
