"""The reactor discrete-event simulation (§2.3.3, Fig 2.3)."""

from __future__ import annotations

import pytest

from repro.apps.reactor import ReactorSimulation
from repro.core.runtime import IntegratedRuntime


@pytest.fixture
def rt():
    return IntegratedRuntime(8)


class TestCascade:
    def test_temperature_monotonically_decreases(self, rt):
        sim = ReactorSimulation(rt)
        trace = sim.run(max_ticks=10)
        assert len(trace.temperatures) >= 3
        assert all(
            a > b
            for a, b in zip(trace.temperatures, trace.temperatures[1:])
        )
        sim.free()

    def test_quiesces_when_cooled(self, rt):
        sim = ReactorSimulation(rt, safe_temperature=400.0)
        trace = sim.run(max_ticks=50)
        assert trace.cooled_down(400.0)
        # Events stop after the safe temperature is reached, well before
        # the tick cap: data-dependent termination (§1.1.4 irregularity).
        assert trace.demands < 50
        sim.free()

    def test_tick_cap_bounds_run(self, rt):
        sim = ReactorSimulation(rt, safe_temperature=0.0)  # never "safe"
        trace = sim.run(max_ticks=4)
        assert trace.demands == 4
        sim.free()

    def test_each_tick_produces_one_flow_and_temperature(self, rt):
        sim = ReactorSimulation(rt)
        trace = sim.run(max_ticks=6)
        assert len(trace.flows) == len(trace.temperatures) == trace.demands
        sim.free()

    def test_event_graph_counts(self, rt):
        """Every tick flows through all four components exactly once:
        driver(tick) -> pump -> valve -> reactor -> driver(temperature)."""
        sim = ReactorSimulation(rt)
        trace = sim.run(max_ticks=5)
        counts = trace.result.per_node_counts
        ticks = trace.demands
        assert counts["pump"] == ticks
        assert counts["valve"] == ticks
        assert counts["reactor"] == ticks
        assert counts["driver"] == 2 * ticks  # tick + temperature events
        sim.free()

    def test_flows_positive_and_bounded_by_valve(self, rt):
        sim = ReactorSimulation(rt)
        trace = sim.run(max_ticks=6)
        assert all(f > 0 for f in trace.flows)
        sim.free()

    def test_deterministic(self, rt):
        sim_a = ReactorSimulation(rt, seed=3)
        trace_a = sim_a.run(max_ticks=5)
        sim_a.free()
        rt_b = IntegratedRuntime(8)
        sim_b = ReactorSimulation(rt_b, seed=3)
        trace_b = sim_b.run(max_ticks=5)
        sim_b.free()
        assert trace_a.temperatures == trace_b.temperatures
        assert trace_a.flows == trace_b.flows


class TestValidation:
    def test_odd_nodes_rejected(self):
        with pytest.raises(ValueError):
            ReactorSimulation(IntegratedRuntime(3))
