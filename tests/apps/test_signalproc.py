"""Signal-processing pipelines: convolution, correlation, filtering
(§2.3.2)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.signalproc import SpectralProcessor
from repro.core.runtime import IntegratedRuntime
from repro.spmd.signal import (
    circular_convolve_reference,
    circular_correlate_reference,
    lowpass_reference,
)


@pytest.fixture(scope="module")
def rt():
    return IntegratedRuntime(8)


def signals(n, count=1, seed=0):
    rng = np.random.default_rng(seed)
    return [rng.uniform(-1, 1, n) for _ in range(count)]


class TestConvolution:
    def test_matches_direct_convolution(self, rt):
        n = 16
        proc = SpectralProcessor(rt, n, kind="convolve")
        x, y = signals(n, 2, seed=1)
        out = proc.process_one(x, y)
        assert np.allclose(out, circular_convolve_reference(x, y), atol=1e-9)
        proc.free()

    def test_matches_numpy_fft_convolution(self, rt):
        n = 32
        proc = SpectralProcessor(rt, n, kind="convolve")
        x, y = signals(n, 2, seed=2)
        expected = np.real(np.fft.ifft(np.fft.fft(x) * np.fft.fft(y)))
        out = proc.process_one(x, y)
        assert np.allclose(out, expected, atol=1e-9)
        proc.free()

    def test_delta_is_identity(self, rt):
        n = 16
        proc = SpectralProcessor(rt, n, kind="convolve")
        x = signals(n, 1, seed=3)[0]
        delta = np.zeros(n)
        delta[0] = 1.0
        assert np.allclose(proc.process_one(x, delta), x, atol=1e-9)
        proc.free()

    def test_shifted_delta_rotates(self, rt):
        n = 16
        proc = SpectralProcessor(rt, n, kind="convolve")
        x = signals(n, 1, seed=4)[0]
        delta3 = np.zeros(n)
        delta3[3] = 1.0
        assert np.allclose(
            proc.process_one(x, delta3), np.roll(x, 3), atol=1e-9
        )
        proc.free()


class TestCorrelation:
    def test_matches_direct_correlation(self, rt):
        n = 16
        proc = SpectralProcessor(rt, n, kind="correlate")
        x, y = signals(n, 2, seed=5)
        out = proc.process_one(x, y)
        assert np.allclose(
            out, circular_correlate_reference(x, y), atol=1e-9
        )
        proc.free()

    def test_autocorrelation_peaks_at_zero_lag(self, rt):
        n = 32
        proc = SpectralProcessor(rt, n, kind="correlate")
        x = signals(n, 1, seed=6)[0]
        out = proc.process_one(x, x)
        assert np.argmax(out) == 0
        assert out[0] == pytest.approx(float(x @ x))
        proc.free()

    def test_detects_known_shift(self, rt):
        """Correlating a signal against its rotation peaks at the lag."""
        n = 32
        proc = SpectralProcessor(rt, n, kind="correlate")
        x = signals(n, 1, seed=7)[0]
        shifted = np.roll(x, 5)
        out = proc.process_one(x, shifted)
        assert np.argmax(out) == 5
        proc.free()


class TestLowpass:
    def test_matches_reference_filter(self, rt):
        n = 32
        proc = SpectralProcessor(rt, n, kind="lowpass", cutoff=0.25)
        x = signals(n, 1, seed=8)[0]
        out = proc.process_one(x)
        assert np.allclose(out, lowpass_reference(x, 0.25), atol=1e-9)
        proc.free()

    def test_passes_dc(self, rt):
        n = 16
        proc = SpectralProcessor(rt, n, kind="lowpass", cutoff=0.1)
        constant = np.full(n, 3.0)
        assert np.allclose(proc.process_one(constant), constant, atol=1e-9)
        proc.free()

    def test_removes_nyquist_tone(self, rt):
        n = 16
        proc = SpectralProcessor(rt, n, kind="lowpass", cutoff=0.3)
        nyquist = np.cos(np.pi * np.arange(n))  # alternating +1/-1
        out = proc.process_one(nyquist)
        assert np.allclose(out, 0.0, atol=1e-9)
        proc.free()

    def test_cutoff_one_is_identity(self, rt):
        n = 16
        proc = SpectralProcessor(rt, n, kind="lowpass", cutoff=1.0)
        x = signals(n, 1, seed=9)[0]
        assert np.allclose(proc.process_one(x), x, atol=1e-9)
        proc.free()


class TestPipelineStream:
    def test_stream_of_convolutions(self, rt):
        n = 16
        proc = SpectralProcessor(rt, n, kind="convolve")
        pairs = [tuple(signals(n, 2, seed=s)) for s in range(4)]
        result = proc.process_stream(pairs)
        for out, (x, y) in zip(result.outputs, pairs):
            assert np.allclose(
                out, circular_convolve_reference(x, y), atol=1e-9
            )
        assert result.overlap_intervals() >= 0.0
        proc.free()

    def test_gain_stage(self, rt):
        n = 16
        proc = SpectralProcessor(rt, n, kind="scale", gain=2.5)
        x = signals(n, 1, seed=10)[0]
        assert np.allclose(proc.process_one(x), 2.5 * x, atol=1e-9)
        proc.free()


class TestValidation:
    def test_unknown_kind_rejected(self, rt):
        with pytest.raises(ValueError):
            SpectralProcessor(rt, 16, kind="bandstop")

    def test_binary_kind_needs_two_signals(self, rt):
        proc = SpectralProcessor(rt, 16, kind="convolve")
        with pytest.raises(ValueError):
            proc.process_one(np.zeros(16))
        proc.free()
