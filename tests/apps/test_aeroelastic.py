"""The aeroelasticity simulation (§2.3.1, multidisciplinary coupling)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.aeroelastic import AeroelasticSimulation
from repro.core.runtime import IntegratedRuntime


@pytest.fixture
def rt():
    return IntegratedRuntime(8)


class TestFixedPoint:
    def test_coupling_converges(self, rt):
        sim = AeroelasticSimulation(rt, span_points=16)
        result = sim.run(max_iterations=40, tolerance=1e-8)
        assert result.converged
        assert result.final_change() < 1e-8
        sim.free()

    def test_coupling_history_decreases(self, rt):
        sim = AeroelasticSimulation(rt, span_points=16)
        result = sim.run(max_iterations=15, tolerance=0.0)
        h = result.coupling_history
        # under-relaxed fixed point: changes shrink geometrically-ish
        assert h[-1] < h[0]
        assert h[-1] < h[len(h) // 2]
        sim.free()

    def test_fixed_point_satisfies_both_disciplines(self, rt):
        """At convergence, the deflection solves the structural system for
        the (converged) aerodynamic load."""
        sim = AeroelasticSimulation(rt, span_points=16, seed=4)
        result = sim.run(max_iterations=60, tolerance=1e-10)
        assert result.converged
        stiffness = sim.stiffness.to_numpy()
        load = sim.load.to_numpy()
        deflection = sim.deflection.to_numpy()
        assert np.allclose(stiffness @ deflection, load, atol=1e-6)
        sim.free()

    def test_nonzero_physics(self, rt):
        """A nonzero angle of attack produces nonzero pressures and
        deflections (the coupling actually transfers data)."""
        sim = AeroelasticSimulation(rt, span_points=16, alpha=0.2)
        result = sim.run(max_iterations=40)
        assert np.any(np.abs(result.pressures) > 1e-6)
        assert np.any(np.abs(result.deflections) > 1e-9)
        sim.free()

    def test_zero_alpha_trivial_fixed_point(self, rt):
        sim = AeroelasticSimulation(rt, span_points=16, alpha=0.0)
        result = sim.run(max_iterations=40)
        assert result.converged
        assert np.allclose(result.deflections, 0.0, atol=1e-8)
        sim.free()


class TestSemanticEquivalence:
    def test_concurrent_equals_sequential(self, rt):
        sim_a = AeroelasticSimulation(rt, span_points=16, seed=9)
        run_a = sim_a.run(max_iterations=10, tolerance=0.0)
        sim_a.free()
        rt_b = IntegratedRuntime(8)
        sim_b = AeroelasticSimulation(rt_b, span_points=16, seed=9)
        run_b = sim_b.run_reference(max_iterations=10, tolerance=0.0)
        sim_b.free()
        assert np.array_equal(run_a.pressures, run_b.pressures)
        assert np.array_equal(run_a.deflections, run_b.deflections)
        assert run_a.coupling_history == run_b.coupling_history


class TestValidation:
    def test_odd_nodes_rejected(self):
        with pytest.raises(ValueError):
            AeroelasticSimulation(IntegratedRuntime(5))

    def test_indivisible_span_rejected(self, rt):
        with pytest.raises(ValueError):
            AeroelasticSimulation(rt, span_points=15)


class TestDesignOptimization:
    """The 'optimization' in multidisciplinary design and optimization:
    an outer design loop whose every objective evaluation is a full
    coupled solve."""

    def test_design_hits_target_lift(self, rt):
        from repro.apps.aeroelastic import design_for_lift

        result = design_for_lift(
            rt, target_lift=10.0, tolerance=1e-4, max_evaluations=30
        )
        assert result.converged
        assert result.lift_error() <= 1e-4
        assert 0.0 < result.alpha < 1.0

    def test_lift_monotone_in_alpha(self, rt):
        from repro.apps.aeroelastic import AeroelasticSimulation, total_lift

        lifts = []
        for alpha in (0.0, 0.25, 0.5):
            sim = AeroelasticSimulation(rt, alpha=alpha)
            sim.run(max_iterations=40)
            lifts.append(total_lift(sim))
            sim.free()
        assert lifts[0] < lifts[1] < lifts[2]

    def test_unreachable_target_reports_not_converged(self, rt):
        from repro.apps.aeroelastic import design_for_lift

        result = design_for_lift(
            rt, target_lift=1e9, tolerance=1e-4, max_evaluations=6
        )
        assert not result.converged
        assert result.evaluations == 2  # bounds probe only

    def test_zero_target_found_at_lower_bound(self, rt):
        from repro.apps.aeroelastic import design_for_lift

        result = design_for_lift(
            rt, target_lift=0.0, tolerance=1e-6, max_evaluations=20
        )
        # lift(0) == 0 exactly; the bounds probe itself may satisfy it or
        # bisection walks to ~0.
        assert result.lift_error() <= 1e-4 or result.alpha < 0.01
