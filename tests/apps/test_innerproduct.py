"""The §6.1 inner-product example."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps import innerproduct
from repro.arrays.local_section import TRACKER
from repro.core.runtime import IntegratedRuntime


class TestExpectedValue:
    @pytest.mark.parametrize("m", [1, 4, 16, 100])
    def test_closed_form(self, m):
        direct = float(np.sum((np.arange(m) + 1.0) ** 2))
        assert innerproduct.expected_inner_product(m) == direct


class TestRun:
    @pytest.mark.parametrize("nodes,local_m", [(1, 4), (2, 4), (4, 4), (8, 2)])
    def test_matches_closed_form(self, nodes, local_m):
        rt = IntegratedRuntime(nodes)
        result = innerproduct.run(rt, local_m=local_m)
        assert result == innerproduct.expected_inner_product(nodes * local_m)

    def test_vectors_freed_after_run(self, rt4):
        live_before = TRACKER.live
        innerproduct.run(rt4, local_m=4)
        assert TRACKER.live == live_before

    def test_postcondition_vector_contents(self, rt4):
        """§6.1.3 postcondition: V1[i] == V2[i] == i+1.  Verified by
        driving test_iprdv directly on arrays we keep."""
        from repro.calls.params import Index, Reduce

        procs = rt4.all_processors()
        m = 8
        v1 = rt4.array("double", (m,), procs, ["block"])
        v2 = rt4.array("double", (m,), procs, ["block"])
        rt4.call(
            procs,
            innerproduct.test_iprdv,
            [procs, 4, Index(), m, 2, v1, v2, Reduce("double", 1, "max")],
        )
        for i in range(m):
            assert v1[i] == v2[i] == i + 1.0
        v1.free()
        v2.free()
