"""Polynomial multiplication via the FFT pipeline (§6.2)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps import polymul
from repro.core.runtime import IntegratedRuntime


@pytest.fixture(scope="module")
def rt():
    return IntegratedRuntime(8)


@pytest.fixture(scope="module")
def multiplier(rt):
    return polymul.PolynomialMultiplier(rt, n=16)


class TestReference:
    def test_polymul_reference_matches_convolution(self):
        f = np.array([1.0, 2.0])
        g = np.array([3.0, 4.0])
        out = polymul.polymul_reference(
            np.pad(f, (0, 2)), np.pad(g, (0, 2))
        )
        assert list(out[:3]) == [3.0, 10.0, 8.0]

    def test_random_pairs_deterministic(self):
        a = polymul.random_pairs(8, 3, seed=5)
        b = polymul.random_pairs(8, 3, seed=5)
        for (f1, g1), (f2, g2) in zip(a, b):
            assert np.array_equal(f1, f2) and np.array_equal(g1, g2)


class TestSingleMultiply:
    def test_matches_numpy(self, multiplier):
        f, g = polymul.random_pairs(16, 1, seed=2)[0]
        out = multiplier.multiply_one(f, g)
        assert np.allclose(out, polymul.polymul_reference(f, g), atol=1e-9)

    def test_identity_polynomial(self, multiplier):
        """F * 1 = F (padded)."""
        f = np.arange(16, dtype=float)
        one = np.zeros(16)
        one[0] = 1.0
        out = multiplier.multiply_one(f, one)
        expected = np.zeros(32)
        expected[:16] = f
        assert np.allclose(out, expected, atol=1e-9)

    def test_monomial_shift(self, multiplier):
        """F * x^k shifts coefficients by k."""
        f = np.zeros(16)
        f[:4] = [1, 2, 3, 4]
        xk = np.zeros(16)
        xk[3] = 1.0
        out = multiplier.multiply_one(f, xk)
        assert np.allclose(out[3:7], [1, 2, 3, 4], atol=1e-9)
        assert np.allclose(out[:3], 0, atol=1e-9)


class TestPipeline:
    def test_stream_outputs_correct_and_ordered(self, multiplier):
        pairs = polymul.random_pairs(16, 5, seed=3)
        result = multiplier.multiply_stream(pairs)
        assert len(result.outputs) == 5
        for out, pair in zip(result.outputs, pairs):
            assert np.allclose(out, polymul.polymul_reference(*pair), atol=1e-9)

    def test_sequential_baseline_identical_outputs(self, multiplier):
        pairs = polymul.random_pairs(16, 3, seed=4)
        concurrent = multiplier.multiply_stream(pairs)
        sequential = multiplier.multiply_stream_sequential(pairs)
        for a, b in zip(concurrent.outputs, sequential.outputs):
            assert np.allclose(a, b, atol=1e-12)

    def test_pipeline_overlap_fig22(self, multiplier):
        """Fig 2.2: stages operate concurrently after the pipeline fills."""
        pairs = polymul.random_pairs(16, 6, seed=6)
        result = multiplier.multiply_stream(pairs)
        assert result.overlap_intervals() > 0.0
        assert result.simulated_speedup() > 1.0


class TestValidation:
    def test_requires_four_groups(self):
        rt = IntegratedRuntime(6)
        with pytest.raises(ValueError, match="4 processor groups"):
            polymul.PolynomialMultiplier(rt, n=8)

    def test_small_machine_single_proc_groups(self):
        rt = IntegratedRuntime(4)
        pm = polymul.PolynomialMultiplier(rt, n=8)
        f, g = polymul.random_pairs(8, 1, seed=7)[0]
        assert np.allclose(
            pm.multiply_one(f, g), polymul.polymul_reference(f, g), atol=1e-9
        )
        pm.free()


class TestElementIOPath:
    """The thesis' literal element-at-a-time data movement (§6.2.2's
    get_input/pad_input/put_output) vs the bulk-section path."""

    def test_element_io_matches_bulk_path(self):
        rt = IntegratedRuntime(4)
        faithful = polymul.PolynomialMultiplier(rt, n=8, use_element_io=True)
        bulk = polymul.PolynomialMultiplier(rt, n=8)
        f, g = polymul.random_pairs(8, 1, seed=21)[0]
        out_faithful = faithful.multiply_one(f, g)
        out_bulk = bulk.multiply_one(f, g)
        assert np.allclose(out_faithful, out_bulk, atol=1e-12)
        assert np.allclose(
            out_faithful, polymul.polymul_reference(f, g), atol=1e-9
        )
        faithful.free()
        bulk.free()

    def test_element_io_costs_more_manager_requests(self):
        """The FIG-3.9 argument applied to §6.2: per-element IO pays one
        write_element per slot; the bulk path pays one section transfer
        per processor."""
        rt = IntegratedRuntime(4)
        counts = rt.array_manager.request_counts

        faithful = polymul.PolynomialMultiplier(rt, n=8, use_element_io=True)
        f, g = polymul.random_pairs(8, 1, seed=22)[0]
        before = counts.get("write_element", 0)
        faithful.multiply_one(f, g)
        element_writes = counts.get("write_element", 0) - before
        faithful.free()

        bulk = polymul.PolynomialMultiplier(rt, n=8)
        before = counts.get("write_element", 0)
        bulk.multiply_one(f, g)
        bulk_writes = counts.get("write_element", 0) - before
        bulk.free()

        assert element_writes >= 2 * 2 * 16  # two inputs x 16 slots x 2 dbl
        assert bulk_writes == 0
