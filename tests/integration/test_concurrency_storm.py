"""Concurrency storms: racing library operations from many task-parallel
processes at once.

PCN programs freely compose array operations and distributed calls in
parallel; the array manager must serialise its internal state correctly
under that load (per-processor serials, record tables, section storage).
"""

from __future__ import annotations

import pytest

from repro.arrays import am_user, am_util
from repro.arrays.local_section import TRACKER
from repro.calls import Local, Reduce, distributed_call
from repro.pcn.composition import par, par_for
from repro.spmd import collectives
from repro.status import Status
from repro.vp.machine import Machine


@pytest.fixture
def m8():
    machine = Machine(8)
    am_util.load_all(machine)
    return machine


class TestCreationStorm:
    def test_racing_creations_from_every_processor(self, m8):
        """8 concurrent create_array requests, one per creating
        processor, over overlapping processor sets: all succeed, all IDs
        unique, all arrays independently usable."""
        procs = am_util.node_array(0, 1, 8)

        def create(k):
            aid, st = am_user.create_array(
                m8, "double", (16,), procs, ["block"], processor=k
            )
            assert st is Status.OK
            return aid

        ids = par_for(8, create)
        assert len(set(ids)) == 8
        for k, aid in enumerate(ids):
            st = am_user.write_element(m8, aid, (k,), float(k))
            assert st is Status.OK
        for k, aid in enumerate(ids):
            value, st = am_user.read_element(m8, aid, (k,))
            assert (value, st) == (float(k), Status.OK)
            assert am_user.free_array(m8, aid) is Status.OK

    def test_racing_creations_same_processor(self, m8):
        """Serial numbers are per-processor: concurrent creations on the
        same creating processor still get distinct IDs (§4.1.3)."""
        procs = am_util.node_array(0, 1, 8)

        def create(_k):
            aid, st = am_user.create_array(
                m8, "double", (8,), procs, ["block"], processor=0
            )
            assert st is Status.OK
            return aid

        ids = par_for(12, create)
        assert len(set(ids)) == 12
        for aid in ids:
            am_user.free_array(m8, aid)

    def test_create_free_interleaving_no_leaks(self, m8):
        procs = am_util.node_array(0, 1, 8)
        live_before = TRACKER.live

        def churn(_k):
            for _ in range(5):
                aid, st = am_user.create_array(
                    m8, "double", (8,), procs, ["block"]
                )
                assert st is Status.OK
                am_user.write_element(m8, aid, (0,), 1.0)
                assert am_user.free_array(m8, aid) is Status.OK

        par_for(6, churn)
        assert TRACKER.live == live_before


class TestMixedStorm:
    def test_calls_and_element_ops_concurrently(self, m8):
        """Distributed calls on one array racing TP element traffic on
        another: the §3.4 isolation guarantees under real load."""
        ga = am_util.node_array(0, 1, 4)
        gb = am_util.node_array(4, 1, 4)
        call_array, _ = am_user.create_array(m8, "double", (16,), ga, ["block"])
        elem_array, _ = am_user.create_array(m8, "double", (16,), gb, ["block"])

        def call_worker():
            for _ in range(10):
                result = distributed_call(
                    m8, ga,
                    lambda ctx, sec, out: (
                        sec.interior().__iadd__(1.0),
                        out.__setitem__(
                            0,
                            collectives.allreduce(
                                ctx.comm, float(sec.interior().sum()),
                                op="sum",
                            ),
                        ),
                    ),
                    [Local(call_array), Reduce("double", 1, "max")],
                )
                assert result.status is Status.OK
            return result.reductions[0]

        def element_worker():
            for round_no in range(10):
                for i in range(16):
                    st = am_user.write_element(
                        m8, elem_array, (i,), float(round_no * 100 + i)
                    )
                    assert st is Status.OK
            return [
                am_user.read_element(m8, elem_array, (i,))[0]
                for i in range(16)
            ]

        call_total, element_values = par(call_worker, element_worker)
        assert call_total == 160.0  # 16 elements x 10 increments
        assert element_values == [900.0 + i for i in range(16)]
        am_user.free_array(m8, call_array)
        am_user.free_array(m8, elem_array)

    def test_info_queries_race_with_verify(self, m8):
        """find_info from many processors while verify_array migrates
        borders: queries never see torn state (either old or new borders,
        both legal snapshots)."""
        procs = am_util.node_array(0, 1, 8)
        aid, _ = am_user.create_array(
            m8, "double", (16,), procs, ["block"], border_info=[1, 1]
        )

        def verifier():
            for k in range(6):
                target = [2, 2] if k % 2 == 0 else [1, 1]
                assert am_user.verify_array(
                    m8, aid, 1, target, "row"
                ) is Status.OK

        def inspector():
            seen = set()
            for _ in range(30):
                borders, st = am_user.find_info(m8, aid, "borders")
                assert st is Status.OK
                seen.add(tuple(borders))
            return seen

        _v, seen = par(verifier, inspector)
        assert seen <= {(1, 1), (2, 2)}
        am_user.free_array(m8, aid)
