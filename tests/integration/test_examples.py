"""Every example script must run clean end to end (guard against rot)."""

from __future__ import annotations

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).resolve().parents[2] / "examples").glob("*.py")
)

ARGS = {
    "quickstart.py": ["4"],
    "polynomial_pipeline.py": ["16", "3"],
    "climate_coupled.py": ["4"],
    "reactor_simulation.py": ["6"],
    "animation_frames.py": ["2", "2"],
    "direct_channels.py": ["4", "256"],
    "signal_processing.py": ["32"],
    "alternative_model.py": ["8"],
    "wing_design.py": ["8"],
}


@pytest.mark.parametrize(
    "script", EXAMPLES, ids=[p.name for p in EXAMPLES]
)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(script), *ARGS.get(script.name, [])],
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert result.returncode == 0, (
        f"{script.name} failed:\n{result.stdout}\n{result.stderr}"
    )


def test_example_inventory():
    """The README promises these examples; they must exist."""
    names = {p.name for p in EXAMPLES}
    for required in ARGS:
        assert required in names
    assert len(EXAMPLES) >= 3  # the deliverable floor
