"""End-to-end column-major (Fortran-style) arrays (§3.2.1.3, §3.2.1.4).

"The user specifies whether indexing of a multidimensional array, and
hence of its local sections, is row-major (C-style) or column-major
(Fortran-style).  This allows support for calls to data-parallel programs
using either type of indexing."  These tests drive the full stack with
Fortran-style arrays: creation, element access, local-section memory
order, distributed calls, and the Fig 3.8 placement difference.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.arrays import am_user, am_util
from repro.calls import Index, Local, distributed_call
from repro.status import Status
from repro.vp.machine import Machine


@pytest.fixture
def m4():
    machine = Machine(4)
    am_util.load_all(machine)
    return machine


def procs(machine):
    return am_util.node_array(0, 1, machine.num_nodes)


class TestColumnMajorSections:
    def test_fortran_program_sees_column_order_storage(self, m4):
        """A Fortran-style DP program reads its local section as flat
        storage in column-major order — the §4.2.1 'column'/'Fortran'
        option's whole purpose."""
        aid, st = am_user.create_array(
            m4, "double", (4, 4), procs(m4), (("block", 2), ("block", 2)),
            indexing_type="Fortran",
        )
        assert st is Status.OK
        # write the global array through global indices
        for i in range(4):
            for j in range(4):
                am_user.write_element(m4, aid, (i, j), float(10 * i + j))

        flats = {}

        def fortran_program(ctx, index, sec):
            # the flat storage, exactly as a Fortran kernel would index it
            flats[index] = sec.flat().copy()

        result = distributed_call(
            m4, procs(m4), fortran_program, [Index(), Local(aid)]
        )
        assert result.status is Status.OK
        # grid is column-major too: section 0 holds rows 0-1 x cols 0-1;
        # its flat storage runs down columns: (0,0),(1,0),(0,1),(1,1).
        assert list(flats[0]) == [0.0, 10.0, 1.0, 11.0]

    def test_interior_view_matches_global_content(self, m4):
        aid, _ = am_user.create_array(
            m4, "double", (4, 4), procs(m4), (("block", 2), ("block", 2)),
            indexing_type="column",
        )
        data = np.arange(16, dtype=float).reshape(4, 4)
        for i in range(4):
            for j in range(4):
                am_user.write_element(m4, aid, (i, j), data[i, j])

        collected = {}

        def program(ctx, index, sec):
            collected[index] = sec.interior().copy()

        distributed_call(m4, procs(m4), program, [Index(), Local(aid)])
        # section s at column-major grid coords: s=1 -> coords (1,0)
        assert np.array_equal(collected[1], data[2:4, 0:2])
        assert np.array_equal(collected[2], data[0:2, 2:4])

    def test_column_major_with_borders(self, m4):
        aid, st = am_user.create_array(
            m4, "double", (4, 4), procs(m4), (("block", 2), ("block", 2)),
            border_info=[1, 1, 1, 1], indexing_type="Fortran",
        )
        assert st is Status.OK
        am_user.write_element(m4, aid, (0, 0), 5.0)
        value, st = am_user.read_element(m4, aid, (0, 0))
        assert (value, st) == (5.0, Status.OK)
        section, _ = am_user.find_local(m4, aid, processor=0)
        assert section.order == "F"
        assert section.full().shape == (4, 4)  # 2x2 interior + borders

    def test_read_write_consistency_both_orders(self, m4):
        """The global element interface is order-independent: the same
        writes read back identically for row- and column-major arrays."""
        results = {}
        for indexing in ("row", "column"):
            aid, _ = am_user.create_array(
                m4, "double", (4, 4), procs(m4),
                (("block", 2), ("block", 2)), indexing_type=indexing,
            )
            for i in range(4):
                for j in range(4):
                    am_user.write_element(m4, aid, (i, j), float(i * 4 + j))
            results[indexing] = [
                am_user.read_element(m4, aid, (i, j))[0]
                for i in range(4)
                for j in range(4)
            ]
        assert results["row"] == results["column"]

    def test_verify_array_cannot_change_indexing(self, m4):
        aid, _ = am_user.create_array(
            m4, "double", (4, 4), procs(m4), (("block", 2), ("block", 2)),
            indexing_type="column",
        )
        st = am_user.verify_array(m4, aid, 2, [1, 1, 1, 1], "row")
        assert st is Status.INVALID
        st = am_user.verify_array(m4, aid, 2, [1, 1, 1, 1], "Fortran")
        assert st is Status.OK
