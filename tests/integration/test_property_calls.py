"""Property-based tests over the distributed-call machinery.

Hypothesis drives randomized parameter mixes, group shapes, and reduction
operators through real distributed calls, checking the §4.3.1
postconditions hold for every combination.
"""

from __future__ import annotations

import functools

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.arrays import am_util
from repro.calls import Index, Reduce, StatusVar, distributed_call
from repro.spmd.reduce_ops import resolve_op
from repro.status import Status
from repro.vp.machine import Machine

# One machine shared across examples: building a Machine is cheap but
# hypothesis runs many examples; a shared 8-node machine with per-call
# group ids keeps examples isolated by construction.
_MACHINE = Machine(8)
am_util.load_all(_MACHINE)


@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    group_size=st.integers(1, 8),
    op=st.sampled_from(["sum", "max", "min"]),
    scale=st.integers(-5, 5),
)
def test_property_scalar_reduction_matches_fold(group_size, op, scale):
    """For any group size and named operator, the merged reduction equals
    the rank-ordered fold of the per-copy values."""
    procs = list(range(group_size))

    def program(ctx, index, out):
        out[0] = float(scale * (index + 1))

    result = distributed_call(
        _MACHINE, procs, program, [Index(), Reduce("double", 1, op)]
    )
    assert result.status is Status.OK
    expected = functools.reduce(
        resolve_op(op), [float(scale * (i + 1)) for i in range(group_size)]
    )
    assert result.reductions[0] == expected


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    statuses=st.lists(st.integers(0, 9), min_size=1, max_size=8),
)
def test_property_status_merge_is_max(statuses):
    """Default status combining is max over all copies (§4.3.1)."""
    procs = list(range(len(statuses)))

    def program(ctx, index, status):
        status.set(statuses[index])

    result = distributed_call(
        _MACHINE, procs, program, [Index(), StatusVar()]
    )
    assert int(result.status) == max(statuses)


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    length=st.integers(1, 16),
    group_size=st.sampled_from([1, 2, 4]),
)
def test_property_vector_reduction_shape_and_value(length, group_size):
    """Vector reductions preserve length and sum elementwise."""
    procs = list(range(group_size))

    def program(ctx, index, out):
        out[:] = float(index + 1)

    result = distributed_call(
        _MACHINE, procs, program,
        [Index(), Reduce("double", length, "sum")],
    )
    expected_value = sum(range(1, group_size + 1))
    if length == 1:
        assert result.reductions[0] == expected_value
    else:
        assert result.reductions[0].shape == (length,)
        assert np.all(result.reductions[0] == expected_value)


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    group=st.permutations(list(range(8))).map(lambda p: p[:4]),
)
def test_property_index_is_group_position(group):
    """Whatever the group's processor numbers and order, copy j's index
    parameter is j and it runs on group[j] (§3.3.1.2)."""
    observed = {}
    import threading

    lock = threading.Lock()

    def program(ctx, index):
        with lock:
            observed[index] = ctx.processor_number

    result = distributed_call(_MACHINE, list(group), program, [Index()])
    assert result.status is Status.OK
    assert observed == {j: group[j] for j in range(len(group))}
