"""Stress and scale tests: many arrays, many calls, deep recursion of the
problem-class helpers, concurrent mixed workloads."""

from __future__ import annotations

import numpy as np

from repro.arrays import am_user, am_util
from repro.arrays.local_section import TRACKER
from repro.calls import Index, Local, Reduce, distributed_call
from repro.core.runtime import IntegratedRuntime
from repro.pcn.composition import par, par_for
from repro.spmd import collectives
from repro.status import Status
from repro.vp.machine import Machine


class TestManyArrays:
    def test_create_use_free_many_arrays(self):
        machine = Machine(4)
        am_util.load_all(machine)
        procs = am_util.node_array(0, 1, 4)
        live_before = TRACKER.live
        ids = []
        for k in range(50):
            aid, st = am_user.create_array(
                machine, "double", (8,), procs, ["block"]
            )
            assert st is Status.OK
            am_user.write_element(machine, aid, (k % 8,), float(k))
            ids.append(aid)
        assert len(set(ids)) == 50
        for k, aid in enumerate(ids):
            value, st = am_user.read_element(machine, aid, (k % 8,))
            assert (value, st) == (float(k), Status.OK)
            assert am_user.free_array(machine, aid) is Status.OK
        assert TRACKER.live == live_before

    def test_interleaved_lifetimes(self):
        machine = Machine(4)
        am_util.load_all(machine)
        procs = am_util.node_array(0, 1, 4)
        generations = []
        for _ in range(10):
            aid, _ = am_user.create_array(
                machine, "double", (4,), procs, ["block"]
            )
            generations.append(aid)
            if len(generations) > 3:
                am_user.free_array(machine, generations.pop(0))
        # Remaining arrays still valid.
        for aid in generations:
            assert am_user.read_element(machine, aid, (0,))[1] is Status.OK


class TestManyCalls:
    def test_hundred_sequential_calls(self):
        machine = Machine(4)
        am_util.load_all(machine)
        procs = am_util.node_array(0, 1, 4)
        counter = {"n": 0}
        import threading

        lock = threading.Lock()

        def tick(ctx):
            with lock:
                counter["n"] += 1

        for _ in range(100):
            result = distributed_call(machine, procs, tick, [])
            assert result.status is Status.OK
        assert counter["n"] == 400

    def test_many_concurrent_calls_disjoint_singleton_groups(self):
        machine = Machine(8)
        am_util.load_all(machine)

        def job(group_start):
            return distributed_call(
                machine, [group_start], lambda ctx: None, []
            ).status

        results = par_for(8, job)
        assert all(st is Status.OK for st in results)

    def test_nested_parallel_compositions_of_calls(self):
        rt = IntegratedRuntime(8)
        groups = rt.split_processors(4)

        def reducer(ctx, out):
            out[0] = collectives.allreduce(ctx.comm, 1.0, op="sum")

        def wave():
            return par(
                *[
                    (lambda g=g: rt.call(
                        g, reducer, [Reduce("double", 1, "max")]
                    ))
                    for g in groups
                ]
            )

        for _ in range(5):
            results = wave()
            assert [r.reductions[0] for r in results] == [2.0] * 4


class TestLargeData:
    def test_large_vector_roundtrip(self):
        rt = IntegratedRuntime(8)
        n = 1 << 16
        arr = rt.array("double", (n,), distrib=[("block", 8)])
        data = np.random.default_rng(0).standard_normal(n)
        arr.from_numpy(data)
        assert np.array_equal(arr.to_numpy(), data)
        arr.free()

    def test_large_distributed_reduction(self):
        rt = IntegratedRuntime(8)
        n = 1 << 14
        arr = rt.array("double", (n,), distrib=[("block", 8)])
        arr.from_numpy(np.ones(n))

        def summer(ctx, sec, out):
            out[0] = collectives.allreduce(
                ctx.comm, float(sec.interior().sum()), op="sum"
            )

        result = rt.call(
            rt.all_processors(), summer, [arr, Reduce("double", 1, "max")]
        )
        assert result.reductions[0] == float(n)
        arr.free()

    def test_wide_machine(self):
        """A 32-node machine: decomposition, calls, and reductions all
        behave identically at width."""
        machine = Machine(32)
        am_util.load_all(machine)
        procs = am_util.node_array(0, 1, 32)
        aid, st = am_user.create_array(
            machine, "double", (64,), procs, ["block"]
        )
        assert st is Status.OK

        def program(ctx, index, sec, out):
            sec.interior()[:] = float(index)
            out[0] = collectives.allreduce(
                ctx.comm, float(index), op="sum"
            )

        result = distributed_call(
            machine, procs, program,
            [Index(), Local(aid), Reduce("double", 1, "max")],
        )
        assert result.status is Status.OK
        assert result.reductions[0] == sum(range(32))
        assert am_user.read_element(machine, aid, (63,))[0] == 31.0
        am_user.free_array(machine, aid)


class TestMixedWorkload:
    def test_pipeline_farm_and_calls_concurrently(self):
        """Three §2.3 problem classes sharing one machine at once."""
        from repro.core.farm import TaskFarm
        from repro.core.pipeline import Pipeline, Stage

        rt = IntegratedRuntime(8)
        g_pipe, g_farm = rt.split_processors(2)

        def pipe_work():
            stages = [Stage("a", lambda x: x + 1), Stage("b", lambda x: x * 2)]
            return Pipeline(stages).run(range(10)).outputs

        def farm_work():
            farm = TaskFarm([[int(p)] for p in g_farm])
            return farm.run(
                [lambda grp, j=j: j for j in range(12)]
            ).results

        def call_work():
            return rt.call(
                g_pipe,
                lambda ctx, out: out.__setitem__(
                    0, collectives.allreduce(ctx.comm, 1.0, op="sum")
                ),
                [Reduce("double", 1, "max")],
            ).reductions[0]

        outputs, farmed, called = par(pipe_work, farm_work, call_work)
        assert outputs == [(x + 1) * 2 for x in range(10)]
        assert farmed == list(range(12))
        assert called == 4.0
