"""Concurrent distributed calls (Fig 3.4) and data transfer through the
task-parallel level."""

from __future__ import annotations

import numpy as np
import pytest

from repro.calls import Index, Reduce
from repro.core.runtime import IntegratedRuntime
from repro.pcn.composition import par
from repro.spmd import collectives
from repro.status import Status


@pytest.fixture
def rt():
    return IntegratedRuntime(8)


class TestDisjointGroups:
    def test_two_calls_disjoint_groups_no_interference(self, rt):
        """Fig 3.4: TPA calls DPA on group A while TPB calls DPB on group
        B; each program's copies communicate internally without crossing."""
        ga, gb = rt.split_processors(2)
        a = rt.array("double", (8,), ga, ["block"])
        b = rt.array("double", (8,), gb, ["block"])

        def dpa(ctx, sec, out):
            sec.interior()[:] = 1.0
            out[0] = collectives.allreduce(ctx.comm, 1.0, op="sum")

        def dpb(ctx, sec, out):
            sec.interior()[:] = 2.0
            out[0] = collectives.allreduce(ctx.comm, 2.0, op="sum")

        ra, rb = par(
            lambda: rt.call(ga, dpa, [a, Reduce("double", 1, "max")]),
            lambda: rt.call(gb, dpb, [b, Reduce("double", 1, "max")]),
        )
        assert ra.status is Status.OK and rb.status is Status.OK
        assert ra.reductions[0] == 4.0  # group size, not 8
        assert rb.reductions[0] == 8.0
        assert np.all(a.to_numpy() == 1.0)
        assert np.all(b.to_numpy() == 2.0)
        a.free()
        b.free()

    def test_many_concurrent_calls(self, rt):
        groups = rt.split_processors(4)
        arrays = [rt.array("double", (4,), g, ["block"]) for g in groups]

        def filler(ctx, value, sec):
            sec.interior()[:] = float(value)

        par(
            *[
                (lambda g=g, arr=arr, k=k: rt.call(g, filler, [k, arr]))
                for k, (g, arr) in enumerate(zip(groups, arrays))
            ]
        )
        for k, arr in enumerate(arrays):
            assert np.all(arr.to_numpy() == float(k))
            arr.free()

    def test_sequential_calls_same_group_reuse(self, rt):
        """The same group can be called repeatedly (Fig 3.2: each call's
        processes are created at call and destroyed at return)."""
        g = rt.processors(0, 4)
        arr = rt.array("double", (8,), g, ["block"])

        def increment(ctx, sec):
            sec.interior()[:] += 1.0

        for expected in (1.0, 2.0, 3.0):
            rt.call(g, increment, [arr])
            assert np.all(arr.to_numpy() == expected)
        arr.free()


class TestTransferThroughTPLevel:
    def test_array_to_array_transfer(self, rt):
        """Fig 3.4: 'Any transfer of data between DataA and DataB must be
        done through the task-parallel program.'  Here the TP level reads
        DataA elementwise and writes DataB, across different groups and
        decompositions."""
        ga, gb = rt.split_processors(2)
        a = rt.array("double", (8,), ga, ["block"])
        b = rt.array("double", (8,), gb, [("block", 4)])

        def fill(ctx, index, sec):
            base = index * sec.interior().shape[0]
            sec.interior()[:] = np.arange(
                base, base + sec.interior().shape[0], dtype=float
            )

        rt.call(ga, fill, [Index(), a])
        # TP-level transfer, element by element (global indices).
        for i in range(8):
            b[i] = a[i] * 10.0
        assert list(b.to_numpy()) == [i * 10.0 for i in range(8)]
        a.free()
        b.free()

    def test_overlapping_group_sequential_calls_see_updates(self, rt):
        """A second call on an overlapping group observes the first
        call's writes (sequential composition of distributed calls)."""
        g = rt.all_processors()
        arr = rt.array("double", (8,), g, ["block"])

        def write_rank(ctx, sec):
            sec.interior()[:] = float(ctx.index)

        def sum_all(ctx, sec, out):
            local = float(sec.interior().sum())
            out[0] = collectives.allreduce(ctx.comm, local, op="sum")

        rt.call(g, write_rank, [arr])
        result = rt.call(g, sum_all, [arr, Reduce("double", 1, "max")])
        assert result.reductions[0] == sum(i for i in range(8))
        arr.free()
