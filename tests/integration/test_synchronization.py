"""Synchronization issues (§3.4): message conflicts and shared variables.

These tests reproduce the two §3.4 hazard analyses: typed selective
receives prevent the task-parallel runtime and called data-parallel
programs from intercepting each other's messages (§3.4.1), and the PCN
sharing discipline prevents conflicting access to shared variables
(§3.4.2).
"""

from __future__ import annotations

import threading

import pytest

from repro.pcn.composition import par
from repro.vp.machine import Machine
from repro.vp.message import MessageType


class TestMessageConflicts341:
    """§3.4.1: 'Any such conflict can be avoided by requiring that both
    ... use communication primitives based on typed messages and selective
    receives, and ensuring that the sets of types ... are disjoint.'"""

    def test_untyped_receive_intercepts_foreign_message(self):
        """The failure mode: with untyped receives (the original Cosmic
        Environment primitives), a PCN-level receive takes a data-parallel
        message that arrived first."""
        m = Machine(2)
        m.send(0, 1, "dp-payload", mtype=MessageType.DATA_PARALLEL, tag="dp")
        m.send(0, 1, "pcn-payload", mtype=MessageType.PCN, tag="pcn")
        intercepted = m.processor(1).mailbox.recv_untyped()
        assert intercepted.payload == "dp-payload"  # wrong layer's message

    def test_typed_selective_receive_prevents_interception(self):
        """The fix (§5.3): typed messages + selective receives, with the
        PCN type and the data-parallel type disjoint."""
        m = Machine(2)
        m.send(0, 1, "dp-payload", mtype=MessageType.DATA_PARALLEL, tag="t")
        m.send(0, 1, "pcn-payload", mtype=MessageType.PCN, tag="t")
        pcn_view = m.processor(1).mailbox.recv(
            mtype=MessageType.PCN, tag="t"
        )
        assert pcn_view.payload == "pcn-payload"
        dp_view = m.processor(1).mailbox.recv(
            mtype=MessageType.DATA_PARALLEL, tag="t"
        )
        assert dp_view.payload == "dp-payload"

    def test_interleaved_layers_under_concurrency(self):
        """Both layers exchange messages concurrently over the same pair
        of processors; with typing, each layer sees exactly its own
        sequence."""
        m = Machine(2)
        n_msgs = 25

        def pcn_sender():
            for i in range(n_msgs):
                m.send(0, 1, ("pcn", i), mtype=MessageType.PCN, tag=i)

        def dp_sender():
            for i in range(n_msgs):
                m.send(
                    0, 1, ("dp", i), mtype=MessageType.DATA_PARALLEL, tag=i
                )

        def pcn_receiver():
            return [
                m.processor(1).mailbox.recv(mtype=MessageType.PCN, tag=i).payload
                for i in range(n_msgs)
            ]

        def dp_receiver():
            return [
                m.processor(1)
                .mailbox.recv(mtype=MessageType.DATA_PARALLEL, tag=i)
                .payload
                for i in range(n_msgs)
            ]

        _s1, _s2, pcn_got, dp_got = par(
            pcn_sender, dp_sender, pcn_receiver, dp_receiver
        )
        assert pcn_got == [("pcn", i) for i in range(n_msgs)]
        assert dp_got == [("dp", i) for i in range(n_msgs)]


class TestSharedVariables342:
    """§3.4.2: the program as a whole is free of conflicting accesses."""

    def test_caller_and_callee_never_concurrent(self):
        """'Conflicts between a data-parallel process and its caller do
        not occur because the caller and the called program do not execute
        concurrently' — the caller suspends for the call's duration."""
        from repro.arrays import am_user, am_util
        from repro.calls import Local, distributed_call

        m = Machine(2)
        am_util.load_all(m)
        procs = am_util.node_array(0, 1, 2)
        aid, _ = am_user.create_array(m, "double", (4,), procs, ["block"])

        phases = []
        lock = threading.Lock()

        def program(ctx, sec):
            with lock:
                phases.append(("dp", ctx.index))
            sec.interior()[:] = 1.0

        with lock:
            phases.append(("caller", "before"))
        distributed_call(m, procs, program, [Local(aid)])
        with lock:
            phases.append(("caller", "after"))

        assert phases[0] == ("caller", "before")
        assert phases[-1] == ("caller", "after")
        assert {p for p in phases[1:-1]} == {("dp", 0), ("dp", 1)}

    def test_concurrent_pcn_processes_reading_shared_defvar(self):
        """Single-assignment sharing is conflict-free by construction:
        every reader obtains the same value (§3.1.1.4)."""
        from repro.pcn.defvar import DefVar

        x = DefVar("shared")
        readers = [lambda: x.read() for _ in range(6)]

        def writer():
            x.define(123)

        results = par(writer, *readers)
        assert results[1:] == [123] * 6

    def test_mutable_conflict_detected(self):
        """The dynamic check for the §3.1.1.4 restriction."""
        from repro.pcn.defvar import Mutable
        from repro.status import SharedVariableConflictError

        shared = Mutable(0)

        def illegal_writer():
            shared.set(1)

        with pytest.raises(SharedVariableConflictError):
            par(illegal_writer)

    def test_disjoint_local_sections_no_conflicts(self):
        """Copies of a DP program write concurrently, each to its own
        local section — disjoint storage, no interference."""
        from repro.arrays import am_user, am_util
        from repro.calls import Index, Local, distributed_call

        m = Machine(4)
        am_util.load_all(m)
        procs = am_util.node_array(0, 1, 4)
        aid, _ = am_user.create_array(m, "double", (16,), procs, ["block"])

        def program(ctx, index, sec):
            sec.interior()[:] = float(index)

        distributed_call(m, procs, program, [Index(), Local(aid)])
        values = [am_user.read_element(m, aid, (i,))[0] for i in range(16)]
        assert values == [float(i // 4) for i in range(16)]
