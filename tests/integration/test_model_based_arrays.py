"""Model-based testing of the array manager.

Hypothesis drives random sequences of distributed-array operations
(writes, reads from random processors, border verifications, bulk
transfers, distributed-call mutations) against a plain NumPy oracle; the
distributed array and the oracle must never disagree.  This catches
cross-operation interactions no example-based test enumerates.
"""

from __future__ import annotations

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.arrays import am_user, am_util
from repro.calls import Local, distributed_call
from repro.status import Status
from repro.vp.machine import Machine

N = 8  # global vector length
P = 4

_MACHINE = Machine(P)
am_util.load_all(_MACHINE)
_PROCS = am_util.node_array(0, 1, P)


write_op = st.tuples(
    st.just("write"), st.integers(0, N - 1),
    st.floats(-100, 100, allow_nan=False),
)
read_op = st.tuples(st.just("read"), st.integers(0, N - 1), st.integers(0, P - 1))
verify_op = st.tuples(st.just("verify"), st.integers(0, 2))
bulk_op = st.tuples(st.just("bulk"), st.integers(0, 2 ** 31 - 1))
call_op = st.tuples(st.just("call_add"), st.floats(-10, 10, allow_nan=False))

operations = st.lists(
    st.one_of(write_op, read_op, verify_op, bulk_op, call_op),
    min_size=1,
    max_size=25,
)


def _add_program(ctx, delta, sec):
    sec.interior()[:] += delta


@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(operations)
def test_property_array_tracks_numpy_oracle(ops):
    aid, st_create = am_user.create_array(
        _MACHINE, "double", (N,), _PROCS, ["block"]
    )
    assert st_create is Status.OK
    oracle = np.zeros(N)
    try:
        for op in ops:
            kind = op[0]
            if kind == "write":
                _, index, value = op
                status = am_user.write_element(
                    _MACHINE, aid, (index,), float(value)
                )
                assert status is Status.OK
                oracle[index] = value
            elif kind == "read":
                _, index, processor = op
                value, status = am_user.read_element(
                    _MACHINE, aid, (index,), processor=processor
                )
                assert status is Status.OK
                assert value == oracle[index]
            elif kind == "verify":
                _, border = op
                status = am_user.verify_array(
                    _MACHINE, aid, 1, [border, border], "row"
                )
                assert status is Status.OK  # data must survive migration
            elif kind == "bulk":
                _, seed = op
                data = np.random.default_rng(seed).uniform(-50, 50, N)
                from repro.pcn.defvar import DefVar

                for rank, proc in enumerate(_PROCS):
                    s = DefVar("s")
                    _MACHINE.server.request(
                        "write_section_local", aid,
                        data[rank * 2 : rank * 2 + 2].copy(), s,
                        processor=int(proc),
                    )
                    assert Status(s.read()) is Status.OK
                oracle = data.copy()
            else:  # call_add
                _, delta = op
                result = distributed_call(
                    _MACHINE, _PROCS, _add_program,
                    [float(delta), Local(aid)],
                )
                assert result.status is Status.OK
                oracle += delta

        # Final full sweep: every element agrees with the oracle.
        final = np.array(
            [am_user.read_element(_MACHINE, aid, (i,))[0] for i in range(N)]
        )
        assert np.allclose(final, oracle, atol=1e-9)
    finally:
        am_user.free_array(_MACHINE, aid)
