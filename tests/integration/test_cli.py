"""The ``python -m repro`` command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import DEMOS, main


class TestInfo:
    def test_info_exits_zero(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "CS-TR-93-01" in out
        for demo in DEMOS:
            assert demo in out


class TestDemo:
    @pytest.mark.parametrize("name", sorted(DEMOS))
    def test_every_demo_runs(self, name, capsys):
        assert main(["demo", name]) == 0
        out = capsys.readouterr().out
        assert f"[{name}]" in out

    def test_unknown_demo_rejected(self, capsys):
        assert main(["demo", "quantum"]) == 2
        assert "unknown demo" in capsys.readouterr().err

    def test_bad_node_count_rejected(self, capsys):
        assert main(["demo", "climate", "--nodes", "6"]) == 2
        assert "multiple of 8" in capsys.readouterr().err

    def test_innerproduct_scales_nodes(self, capsys):
        # 4 nodes x local_m=4 -> m=16 -> sum of squares = 1496
        assert main(["demo", "innerproduct", "--nodes", "4"]) == 0
        assert "1496" in capsys.readouterr().out


class TestTrace:
    def test_trace_prints_request_counts(self, capsys):
        assert main(["trace", "innerproduct"]) == 0
        out = capsys.readouterr().out
        assert "array-manager requests" in out
        assert "create_array" in out
        assert "free_array" in out
