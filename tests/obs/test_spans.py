"""Causal span layer: parenting, trace synthesis, no-op discipline."""

import threading

import pytest

from repro.obs.spans import NOOP_SPAN, SpanRecorder, span as obs_span
from repro.vp import fabric
from repro.vp.machine import Machine


@pytest.fixture()
def machine():
    m = Machine(2)
    yield m
    observer = getattr(m, "_observer", None)
    if observer is not None:
        observer.close()


class TestNoopPath:
    def test_span_without_observer_is_shared_noop(self, machine):
        handle = obs_span(machine, "anything", detail=1)
        assert handle is NOOP_SPAN
        with handle:
            pass  # enter/exit are free

    def test_span_with_spans_disabled_is_noop(self, machine):
        with machine.observe(spans=False):
            assert obs_span(machine, "anything") is NOOP_SPAN

    def test_span_on_non_machine_object_is_noop(self):
        assert obs_span(object(), "x") is NOOP_SPAN


class TestSpanRecording:
    def test_records_timing_and_attrs(self, machine):
        observer = machine.observe()
        with obs_span(machine, "phase", size=4):
            pass
        (span,) = observer.recorder.spans()
        assert span["name"] == "phase"
        assert span["attrs"] == {"size": 4}
        assert span["end"] >= span["start"]
        assert span["duration"] == span["end"] - span["start"]
        assert span["status"] == "ok"

    def test_nested_spans_parent_correctly(self, machine):
        observer = machine.observe()
        with obs_span(machine, "outer"):
            with obs_span(machine, "inner"):
                pass
        inner, outer = observer.recorder.spans()
        assert inner["name"] == "inner"  # finishes (and records) first
        assert inner["parent"] == outer["span"]
        assert outer["parent"] is None
        assert inner["trace"] == outer["trace"]
        assert observer.recorder.depth_of(inner) == 1
        assert observer.recorder.depth_of(outer) == 0

    def test_root_span_synthesizes_trace(self, machine):
        observer = machine.observe()
        with obs_span(machine, "root"):
            trace_id, _ = fabric.current_trace()
            assert trace_id is not None and trace_id.startswith("root")
        (span,) = observer.recorder.spans()
        assert span["trace"] == trace_id

    def test_span_inherits_ambient_trace(self, machine):
        observer = machine.observe()
        with fabric.execution_context(trace_id="t-preset"):
            with obs_span(machine, "inner"):
                pass
        (span,) = observer.recorder.spans()
        assert span["trace"] == "t-preset"

    def test_exception_marks_span_error_and_propagates(self, machine):
        observer = machine.observe()
        with pytest.raises(RuntimeError):
            with obs_span(machine, "failing"):
                raise RuntimeError("boom")
        (span,) = observer.recorder.spans()
        assert span["status"] == "error"
        assert span["attrs"]["error"] == "RuntimeError"

    def test_scope_restored_after_exception(self, machine):
        machine.observe()
        before = fabric.current_span_id()
        with pytest.raises(RuntimeError):
            with obs_span(machine, "failing"):
                raise RuntimeError
        assert fabric.current_span_id() == before

    def test_annotate_while_open(self, machine):
        observer = machine.observe()
        with obs_span(machine, "phase") as handle:
            handle.annotate(rows=7)
        (span,) = observer.recorder.spans()
        assert span["attrs"]["rows"] == 7

    def test_span_id_propagates_to_spawned_process(self, machine):
        observer = machine.observe()
        seen = {}

        def child(node):
            seen["span"] = fabric.current_span_id()

        with obs_span(machine, "parent") as handle:
            proc = machine.processor(0).spawn(child, machine.processor(0))
            proc.join()
        assert seen["span"] == handle.span_id


class TestRecorderQueries:
    def test_bounded_with_drop_count(self):
        recorder = SpanRecorder(max_spans=2)
        for i in range(4):
            with recorder.start(f"s{i}", {}):
                pass
        assert [s["name"] for s in recorder.spans()] == ["s2", "s3"]
        assert recorder.dropped == 2

    def test_named_and_trace_and_children_queries(self, machine):
        observer = machine.observe()
        with obs_span(machine, "outer") as outer:
            with obs_span(machine, "inner"):
                pass
        recorder = observer.recorder
        assert len(recorder.spans_named("inner")) == 1
        trace = recorder.spans()[0]["trace"]
        assert len(recorder.spans_for_trace(trace)) == 2
        assert [s["name"] for s in recorder.children_of(outer.span_id)] == [
            "inner"
        ]

    def test_spans_for_processor_last_window(self):
        recorder = SpanRecorder()
        for i in range(5):
            handle = recorder.start(f"s{i}", {})
            with fabric.execution_context(processor=3):
                with handle:
                    pass
        found = recorder.spans_for_processor(3, last=2)
        assert [s["name"] for s in found] == ["s3", "s4"]

    def test_threads_record_concurrently(self, machine):
        observer = machine.observe()

        def work(i):
            with obs_span(machine, f"t{i}"):
                pass

        threads = [
            threading.Thread(target=work, args=(i,)) for i in range(16)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(observer.recorder.spans()) == 16
