"""Metrics registry: counters, gauges, histograms, Prometheus export."""

import threading

import pytest

from repro.obs.metrics import DEFAULT_BUCKETS, Histogram, MetricsRegistry


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        reg = MetricsRegistry()
        c = reg.counter("requests_total")
        assert c.value == 0
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_rejects_negative_increment(self):
        c = MetricsRegistry().counter("requests_total")
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_concurrent_increments_are_exact(self):
        c = MetricsRegistry().counter("requests_total")

        def hammer():
            for _ in range(1000):
                c.inc()

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == 8000


class TestGauge:
    def test_set_inc_dec(self):
        g = MetricsRegistry().gauge("depth")
        g.set(5)
        g.inc()
        g.dec(3)
        assert g.value == 3


class TestHistogram:
    def test_observations_land_in_correct_buckets(self):
        h = Histogram("wait", (), buckets=(0.01, 0.1, 1.0))
        for value in (0.005, 0.05, 0.5, 5.0):
            h.observe(value)
        sample = h.sample()
        assert sample["count"] == 4
        assert sample["sum"] == pytest.approx(5.555)
        assert sample["buckets"] == {"0.01": 1, "0.1": 1, "1.0": 1}
        assert sample["inf"] == 1

    def test_boundary_value_goes_to_lower_bucket(self):
        h = Histogram("wait", (), buckets=(1.0, 2.0))
        h.observe(1.0)
        assert h.sample()["buckets"]["1.0"] == 1

    def test_rejects_unsorted_buckets(self):
        with pytest.raises(ValueError):
            Histogram("wait", (), buckets=(1.0, 0.5))

    def test_default_buckets_are_sorted(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)


class TestRegistry:
    def test_get_or_create_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("a", vp=1) is reg.counter("a", vp=1)
        assert reg.counter("a", vp=1) is not reg.counter("a", vp=2)
        assert reg.counter("a", vp=1) is not reg.counter("b", vp=1)

    def test_label_order_is_normalised(self):
        reg = MetricsRegistry()
        assert reg.counter("a", x=1, y=2) is reg.counter("a", y=2, x=1)

    def test_snapshot_keys_carry_labels(self):
        reg = MetricsRegistry()
        reg.counter("hits_total", vp=3).inc()
        reg.gauge("depth").set(7)
        snap = reg.snapshot()
        assert snap['hits_total{vp="3"}'] == 1
        assert snap["depth"] == 7

    def test_prometheus_format(self):
        reg = MetricsRegistry()
        reg.counter("hits_total", vp=0).inc(2)
        reg.histogram("wait_seconds", buckets=(0.1, 1.0)).observe(0.5)
        text = reg.to_prometheus()
        assert "# TYPE hits_total counter" in text
        assert 'hits_total{vp="0"} 2' in text
        assert "# TYPE wait_seconds histogram" in text
        # cumulative buckets: 0 at le=0.1, 1 at le=1.0, 1 at +Inf
        assert 'wait_seconds_bucket{le="0.1"} 0' in text
        assert 'wait_seconds_bucket{le="1"} 1' in text
        assert 'wait_seconds_bucket{le="+Inf"} 1' in text
        assert "wait_seconds_sum 0.5" in text
        assert "wait_seconds_count 1" in text
        assert text.endswith("\n")
