"""Observer lifecycle, instrumentation feeds, and diagnostics."""

import threading
import time

import pytest

from repro.core.runtime import IntegratedRuntime
from repro.obs.observer import Observer
from repro.pcn.defvar import DefVar
from repro.vp.machine import Machine
from repro.vp.message import Message


@pytest.fixture()
def machine():
    m = Machine(4)
    yield m
    observer = getattr(m, "_observer", None)
    if observer is not None:
        observer.close()


@pytest.fixture()
def rt():
    runtime = IntegratedRuntime(4)
    yield runtime
    if runtime.observer is not None:
        runtime.observer.close()


class TestLifecycle:
    def test_observe_installs_and_close_uninstalls(self, machine):
        observer = machine.observe()
        assert machine.observer is observer
        assert observer.installed
        assert machine.processor(0).mailbox.obs_hooks is observer
        observer.close()
        assert machine.observer is None
        assert machine.processor(0).mailbox.obs_hooks is None

    def test_observe_is_idempotent(self, machine):
        assert machine.observe() is machine.observe()

    def test_context_manager_form(self, machine):
        with machine.observe() as observer:
            assert machine.observer is observer
        assert machine.observer is None

    def test_data_readable_after_close(self, machine):
        observer = machine.observe()
        with observer.span("phase"):
            pass
        observer.close()
        assert len(observer.recorder.spans()) == 1

    def test_runtime_observe_convenience(self, rt):
        observer = rt.observe()
        assert rt.observer is observer
        assert isinstance(observer, Observer)


class TestMessageEvents:
    def test_routed_message_recorded(self, machine):
        observer = machine.observe()
        machine.route(Message(source=0, dest=1, payload="x"))
        machine.processor(1).mailbox.recv(timeout=5)
        (event,) = [
            e for e in observer.events() if e["type"] == "message"
        ]
        assert event["source"] == 0 and event["dest"] == 1
        assert event["trace"] is not None
        assert event["nbytes"] > 0

    def test_event_log_bounded(self, machine):
        observer = Observer(machine, max_events=3).install()
        for i in range(5):
            observer._record_event({"type": "message", "ts": float(i)})
        assert len(observer.events()) == 3
        assert observer.events_dropped == 2


class TestMetricFeeds:
    def test_mailbox_depth_and_wait_metrics(self, machine):
        observer = machine.observe()
        machine.route(Message(source=0, dest=1, payload="x"))
        machine.processor(1).mailbox.recv(timeout=5)
        snap = observer.metrics.snapshot()
        assert snap['repro_mailbox_delivered_total{vp="1"}'] == 1
        assert snap['repro_mailbox_depth{vp="1"}'] == 0
        assert snap['repro_mailbox_recv_wait_seconds{vp="1"}']["count"] == 1

    def test_process_spawn_metrics(self, machine):
        observer = machine.observe()
        machine.processor(2).spawn(lambda node: None, machine.processor(2)).join()
        snap = observer.metrics.snapshot()
        assert snap['repro_processes_spawned_total{vp="2"}'] >= 1
        assert 'repro_live_processes{vp="2"}' in snap

    def test_defvar_suspension_counted(self, machine):
        observer = machine.observe()
        v = DefVar("probe")
        t = threading.Thread(target=lambda: v.read(timeout=5))
        t.start()
        time.sleep(0.05)
        v.define(1)
        t.join()
        snap = observer.metrics.snapshot()
        assert snap['repro_defvar_suspensions_total{vp="main"}'] == 1

    def test_suspend_hook_removed_on_close(self, machine):
        observer = machine.observe()
        observer.close()
        v = DefVar("probe")
        t = threading.Thread(target=lambda: v.read(timeout=5))
        t.start()
        time.sleep(0.05)
        v.define(1)
        t.join()
        assert (
            "repro_defvar_suspensions_total{vp=\"main\"}"
            not in observer.metrics.snapshot()
        )

    def test_fault_injection_metrics(self, rt):
        from repro.faults.plan import FaultPlan

        observer = rt.observe()
        plan = FaultPlan(seed=7, drop=1.0)  # drop everything
        with rt.inject_faults(plan):
            rt.machine.route(Message(source=0, dest=1, payload="x"))
        snap = observer.metrics.snapshot()
        assert snap['repro_faults_injected_total{type="drop"}'] == 1

    def test_replica_update_metrics(self, rt):
        from repro.core.darray import DistributedArray

        observer = rt.observe()
        arr = DistributedArray.create(
            rt.machine, "double", (8,), rt.processors(0, 2),
            [("block", 2)], replication=1,
        )
        arr[0] = 1.0
        deadline = time.monotonic() + 5
        while time.monotonic() < deadline:
            snap = observer.metrics.snapshot()
            if snap.get("repro_replica_updates_total", 0) >= 1:
                break
            time.sleep(0.01)
        assert snap["repro_replica_updates_total"] >= 1
        arr.free()


class TestDeadlockDump:
    def test_watchdog_dumps_wait_graph_and_spans(self, machine):
        from repro.faults.watchdog import Watchdog
        from repro.status import DeadlockError

        observer = machine.observe()
        never = DefVar("never-defined")

        def stuck(node):
            with observer.span("stuck-phase"):
                never.read(timeout=10)

        proc = machine.processor(1).spawn(
            stuck, machine.processor(1), name="stuck@1"
        )
        watchdog = Watchdog(machine, poll=0.01, grace=0.05)
        with pytest.raises(DeadlockError):
            watchdog.join([proc])
        never.define(None)  # release the thread
        proc.join()
        (dump,) = [e for e in observer.events() if e["type"] == "deadlock"]
        assert any("never-defined" in edge for edge in dump["wait_graph"])
        assert 1 in dump["spans_by_vp"]
        assert observer.metrics.snapshot()["repro_deadlocks_total"] == 1


class TestDiagnostics:
    def test_machine_diagnostics_without_observer(self, machine):
        assert machine.diagnostics()["observability"] == {"enabled": False}

    def test_machine_diagnostics_with_observer(self, machine):
        observer = machine.observe()
        with observer.span("phase"):
            pass
        diag = machine.diagnostics()["observability"]
        assert diag["enabled"] is True
        assert diag["spans"] == 1
        assert isinstance(diag["metrics"], dict)

    def test_span_summary_orders_by_total_time(self, machine):
        observer = machine.observe()
        with observer.span("slow"):
            time.sleep(0.02)
        with observer.span("fast"):
            pass
        summary = observer.span_summary()
        assert [row[0] for row in summary] == ["slow", "fast"]
        assert summary[0][1] == 1
