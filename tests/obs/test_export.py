"""Exporters: Chrome trace events, JSONL event log, Prometheus text."""

import json

import numpy as np
import pytest

from repro.calls import Reduce
from repro.core.runtime import IntegratedRuntime
from repro.obs.export import (
    MAIN_TRACK,
    chrome_trace,
    event_log,
    validate_chrome_trace,
)
from repro.spmd import collectives
from repro.spmd.linalg import interior


@pytest.fixture()
def rt():
    runtime = IntegratedRuntime(4)
    yield runtime
    if runtime.observer is not None:
        runtime.observer.close()


def _run_observed_call(rt):
    """One distributed call under observation; returns the observer."""
    observer = rt.observe()
    arr = rt.array("double", (8,), distrib=[("block", 4)])

    def program(ctx, sec, out):
        interior(sec)[:] = 1.0
        out[0] = collectives.allreduce(
            ctx.comm, float(interior(sec).sum()), op="sum"
        )

    result = rt.call(
        rt.all_processors(), program, [arr, Reduce("double", 1, "max")]
    )
    assert result.reductions[0] == 8.0
    arr.free()
    return observer


class TestChromeTrace:
    def test_exported_call_has_three_nested_span_levels(self, rt, tmp_path):
        """Acceptance: a distributed_call exports with >= 3 nested levels
        (call -> do_all -> wrapper -> collective) in a loadable trace."""
        observer = _run_observed_call(rt)
        path = tmp_path / "trace.json"
        observer.export_chrome_trace(str(path))
        document = json.loads(path.read_text())
        validate_chrome_trace(document)

        spans = {
            e["args"]["span"]: e
            for e in document["traceEvents"]
            if e.get("cat") == "span"
        }

        def depth(event):
            levels = 0
            parent = event["args"]["parent"]
            while parent is not None and parent in spans:
                levels += 1
                parent = spans[parent]["args"]["parent"]
            return levels

        deepest = max(spans.values(), key=depth)
        assert depth(deepest) >= 3
        names = {e["name"] for e in spans.values()}
        assert {"distributed_call", "do_all", "wrapper"} <= names
        assert any(n.startswith("collective:") for n in names)

    def test_span_and_message_events_share_trace_ids(self, rt):
        observer = _run_observed_call(rt)
        document = chrome_trace(observer)
        span_traces = {
            e["args"]["trace"]
            for e in document["traceEvents"]
            if e.get("cat") == "span" and e["name"] == "wrapper"
        }
        message_traces = {
            e["args"]["trace"]
            for e in document["traceEvents"]
            if e.get("cat") == "message"
        }
        assert span_traces & message_traces

    def test_tracks_are_named_per_vp(self, rt):
        observer = _run_observed_call(rt)
        document = chrome_trace(observer)
        names = {
            e["tid"]: e["args"]["name"]
            for e in document["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert names.get(0) == "vp0"
        if MAIN_TRACK in names:
            assert names[MAIN_TRACK] == "main"

    def test_timestamps_relative_and_nonnegative(self, rt):
        observer = _run_observed_call(rt)
        document = chrome_trace(observer)
        for event in document["traceEvents"]:
            if event["ph"] != "M":
                assert event["ts"] >= 0

    def test_non_primitive_attrs_serialised(self, rt):
        observer = rt.observe()
        with observer.span("phase", data=np.arange(3)):
            pass
        document = chrome_trace(observer)
        json.dumps(document)  # must be serialisable end to end
        validate_chrome_trace(document)


class TestValidator:
    def test_accepts_minimal_document(self):
        assert validate_chrome_trace(
            {"traceEvents": [
                {"name": "x", "ph": "X", "ts": 0, "dur": 1, "pid": 0, "tid": 0}
            ]}
        )

    @pytest.mark.parametrize(
        "document, complaint",
        [
            ([], "JSON object"),
            ({}, "traceEvents"),
            ({"traceEvents": [{}]}, "missing"),
            (
                {"traceEvents": [
                    {"name": "x", "ph": "?", "ts": 0, "pid": 0, "tid": 0}
                ]},
                "phase",
            ),
            (
                {"traceEvents": [
                    {"name": "x", "ph": "X", "ts": -1, "dur": 1,
                     "pid": 0, "tid": 0}
                ]},
                "negative",
            ),
            (
                {"traceEvents": [
                    {"name": "x", "ph": "X", "ts": 0, "pid": 0, "tid": 0}
                ]},
                "dur",
            ),
            (
                {"traceEvents": [
                    {"name": "x", "ph": "i", "ts": 0, "pid": 0, "tid": "a"}
                ]},
                "integer",
            ),
        ],
    )
    def test_rejects_malformed_documents(self, document, complaint):
        with pytest.raises(ValueError, match=complaint):
            validate_chrome_trace(document)


class TestJsonlAndPrometheus:
    def test_jsonl_round_trips_and_is_ordered(self, rt, tmp_path):
        observer = _run_observed_call(rt)
        path = tmp_path / "events.jsonl"
        count = observer.export_jsonl(str(path))
        lines = path.read_text().splitlines()
        assert len(lines) == count > 0
        entries = [json.loads(line) for line in lines]
        timestamps = [e["ts"] for e in entries]
        assert timestamps == sorted(timestamps)
        assert {"span", "message"} <= {e["type"] for e in entries}

    def test_event_log_merges_spans_and_messages(self, rt):
        observer = _run_observed_call(rt)
        entries = event_log(observer)
        assert any(e["type"] == "span" for e in entries)
        assert any(e["type"] == "message" for e in entries)

    def test_prometheus_snapshot_written(self, rt, tmp_path):
        observer = _run_observed_call(rt)
        path = tmp_path / "metrics.prom"
        text = observer.export_prometheus(str(path))
        assert path.read_text() == text
        assert "repro_mailbox_delivered_total" in text
        assert "# TYPE repro_mailbox_recv_wait_seconds histogram" in text
