"""TaskFarm graceful degradation when a group's processors die."""

from __future__ import annotations

import threading

import pytest

from repro.arrays import am_util
from repro.calls import Index, Reduce, distributed_call
from repro.core.farm import TaskFarm
from repro.status import ProcessorFailedError, Status
from repro.vp.machine import Machine


def make_machine(nodes=4):
    machine = Machine(nodes, default_recv_timeout=2.0)
    am_util.load_all(machine)
    return machine


def sum_indices(ctx, index, out):
    out[0] = float(index + 1)


class TestFarmFailover:
    def test_acceptance_kill_one_vp_mid_farm_all_jobs_complete(self):
        """Killing a VP mid-farm retires its group; survivors finish every
        job (degraded concurrency, no lost work)."""
        machine = make_machine(4)
        farm = TaskFarm([(0, 1), (2, 3)])
        kill_after = threading.Event()

        def job_factory(i):
            def job(group):
                if group == (2, 3) and not kill_after.is_set():
                    kill_after.set()
                    machine.fail(2)
                result = distributed_call(
                    machine,
                    list(group),
                    sum_indices,
                    [Index(), Reduce("double", 1, "sum")],
                )
                return (i, result.reductions[0])
            return job

        result = farm.run([job_factory(i) for i in range(8)], timeout=30.0)
        assert [r[0] for r in result.results] == list(range(8))
        assert all(r[1] == 3.0 for r in result.results)  # 1 + 2 per group
        assert result.dead_groups == [1]
        assert result.requeued_jobs == 1
        # Every completed job was counted for the surviving group(s).
        assert result.jobs_per_group[0] == 8
        assert result.jobs_per_group[1] == 0

    def test_group_dead_before_farm_starts(self):
        machine = make_machine(4)
        machine.fail(3)
        farm = TaskFarm([(0, 1), (2, 3)])
        dead_group_tried = threading.Event()

        def job(group):
            if group == (2, 3):
                dead_group_tried.set()
            else:
                # Hold the healthy group until the dead group has claimed a
                # job, so its failure is always observed (not racy on which
                # worker drains the queue first).
                dead_group_tried.wait(5.0)
            result = distributed_call(
                machine,
                list(group),
                sum_indices,
                [Index(), Reduce("double", 1, "sum")],
            )
            return result.status

        result = farm.run([job] * 4, timeout=30.0)
        assert result.results == [Status.OK] * 4
        assert result.dead_groups == [1]
        assert result.requeued_jobs == 1

    def test_all_groups_dead_raises(self):
        machine = make_machine(4)
        machine.fail(0)
        machine.fail(2)
        farm = TaskFarm([(0, 1), (2, 3)])

        def job(group):
            return distributed_call(
                machine,
                list(group),
                sum_indices,
                [Index(), Reduce("double", 1, "sum")],
            )

        with pytest.raises(ProcessorFailedError, match="every task-farm"):
            farm.run([job] * 3, timeout=30.0)

    def test_non_machine_errors_still_propagate(self):
        farm = TaskFarm([(0,), (1,)])

        def bad_job(group):
            raise ValueError("job bug, not a machine fault")

        with pytest.raises(ValueError, match="job bug"):
            farm.run([bad_job], timeout=10.0)

    def test_healthy_farm_unchanged(self):
        machine = make_machine(4)
        farm = TaskFarm([(0, 1), (2, 3)])

        def job(group):
            result = distributed_call(
                machine,
                list(group),
                sum_indices,
                [Index(), Reduce("double", 1, "sum")],
            )
            return result.reductions[0]

        result = farm.run([job] * 6, timeout=30.0)
        assert result.results == [3.0] * 6
        assert result.dead_groups == []
        assert result.requeued_jobs == 0
        assert sum(result.jobs_per_group) == 6
