"""Watchdog: wait-graph construction and DeadlockError on circular waits."""

from __future__ import annotations

import time

import pytest

from repro.faults import Watchdog
from repro.pcn.defvar import DefVar
from repro.pcn.process import spawn
from repro.status import DeadlockError
from repro.vp.machine import Machine
from repro.vp.message import MessageType


class TestCircularWait:
    def test_two_process_defvar_cycle_raises_with_graph(self):
        x = DefVar("x")
        y = DefVar("y")

        def proc_a():
            # Waits for y, would then define x — classic circular wait.
            value = y.read(timeout=20.0)
            x.define(value)

        def proc_b():
            value = x.read(timeout=20.0)
            y.define(value)

        a = spawn(proc_a, name="A")
        b = spawn(proc_b, name="B")
        wd = Watchdog(poll=0.01, grace=0.1)
        started = time.monotonic()
        with pytest.raises(DeadlockError) as info:
            wd.join([a, b], timeout=10.0)
        # Detected by the watchdog, far sooner than any read deadline.
        assert time.monotonic() - started < 5.0
        graph = info.value.wait_graph
        assert len(graph) == 2
        resources = {e.waiter: e.resource for e in graph}
        assert resources["A"] == "defvar:y"
        assert resources["B"] == "defvar:x"

    def test_mailbox_circular_wait_detected(self):
        machine = Machine(2, default_recv_timeout=20.0)

        def node(me, peer):
            # Each node receives before sending: nobody ever sends.
            machine.processor(me).mailbox.recv(
                mtype=MessageType.PCN, tag="ping", source=peer
            )
            machine.send(me, peer, "pong", tag="ping")

        a = spawn(node, 0, 1, name="node0")
        b = spawn(node, 1, 0, name="node1")
        wd = Watchdog(machine, poll=0.01, grace=0.1)
        with pytest.raises(DeadlockError) as info:
            wd.join([a, b], timeout=10.0)
        kinds = sorted(e.resource.split(":")[0] for e in info.value.wait_graph)
        assert kinds == ["mailbox", "mailbox"]

    def test_deadlock_message_names_the_edges(self):
        v = DefVar("lonely")
        p = spawn(lambda: v.read(timeout=20.0), name="waiter")
        wd = Watchdog(poll=0.01, grace=0.1)
        with pytest.raises(DeadlockError, match="waiter -> defvar:lonely"):
            wd.join([p], timeout=10.0)
        v.define(0)  # let the thread exit


class TestNoFalsePositives:
    def test_progressing_processes_complete_normally(self):
        x = DefVar("x")

        def producer():
            time.sleep(0.15)
            x.define(41)
            return "produced"

        def consumer():
            return x.read(timeout=10.0) + 1

        a = spawn(producer, name="producer")
        b = spawn(consumer, name="consumer")
        wd = Watchdog(poll=0.01, grace=0.3)
        results = wd.join([a, b], timeout=10.0)
        assert sorted(str(r) for r in results) == ["42", "produced"]

    def test_busy_process_suppresses_detection(self):
        """One runnable (non-suspended) process means no deadlock."""
        x = DefVar("never")

        def busy():
            deadline = time.monotonic() + 0.5
            while time.monotonic() < deadline:
                time.sleep(0.01)
            x.define(1)

        a = spawn(lambda: x.read(timeout=10.0), name="reader")
        b = spawn(busy, name="busy")
        wd = Watchdog(poll=0.01, grace=0.15)
        results = wd.join([a, b], timeout=10.0)
        assert 1 in results

    def test_join_propagates_process_errors(self):
        def boom():
            raise RuntimeError("inner failure")

        p = spawn(boom, name="boom")
        wd = Watchdog(poll=0.01, grace=0.1)
        with pytest.raises(RuntimeError, match="inner failure"):
            wd.join([p], timeout=10.0)

    def test_wait_graph_snapshot_of_running_processes(self):
        x = DefVar("snap")
        p = spawn(lambda: x.read(timeout=10.0), name="snapper")
        time.sleep(0.1)
        wd = Watchdog(poll=0.01, grace=0.1)
        graph = wd.wait_graph([p])
        assert [str(e) for e in graph] == ["snapper -> defvar:snap"]
        x.define(0)
        p.join(timeout=5.0)
        assert wd.wait_graph([p]) == []

    def test_validation(self):
        with pytest.raises(ValueError):
            Watchdog(poll=0.0)


class TestSuspectedPeers:
    """Waiting on a *suspected* peer is silence under adjudication, not
    a circular dependency: the watchdog must report it, never convert it
    into a false DeadlockError."""

    @staticmethod
    def _suspected_machine():
        from repro.faults import FaultPlan, FaultyTransport
        from repro.faults.partition import PartitionCut, PartitionPlan
        from repro.health import FailureDetector

        machine = Machine(2, default_recv_timeout=20.0)
        plan = PartitionPlan([PartitionCut("iso", (1,), (0,))])
        plan.heal("iso")
        transport = FaultyTransport(
            machine, FaultPlan(seed=0), partitions=plan
        ).install()
        detector = FailureDetector(
            machine, interval=0.02, suspect_after=2.0, dead_after=10_000.0
        ).install()
        return machine, plan, transport, detector

    def test_wait_on_suspect_times_out_instead_of_deadlocking(self):
        machine, plan, transport, detector = self._suspected_machine()
        try:
            plan.cut("iso")
            deadline = time.monotonic() + 8.0
            while not detector.is_suspect(1) and time.monotonic() < deadline:
                time.sleep(0.005)
            assert detector.is_suspect(1)

            def node0():
                return machine.processor(0).mailbox.recv(
                    mtype=MessageType.PCN, tag="ping", source=1
                )

            p = spawn(node0, name="node0")
            wd = Watchdog(machine, poll=0.01, grace=0.1)
            # Far beyond the grace window, yet no DeadlockError: the
            # join hits its own deadline and says why.
            with pytest.raises(TimeoutError, match="waiting on suspect"):
                wd.join([p], timeout=1.0)
            # The suspect proves alive; the wait satisfies normally.
            plan.heal("iso")
            while detector.is_suspect(1) and time.monotonic() < deadline:
                time.sleep(0.005)
            machine.send(1, 0, "pong", tag="ping")
            assert wd.join([p], timeout=10.0)[0].payload == "pong"
        finally:
            detector.close()
            transport.uninstall()

    def test_wait_graph_marks_suspect_edges(self):
        machine, plan, transport, detector = self._suspected_machine()
        try:
            plan.cut("iso")
            deadline = time.monotonic() + 8.0
            while not detector.is_suspect(1) and time.monotonic() < deadline:
                time.sleep(0.005)

            def node0():
                return machine.processor(0).mailbox.recv(
                    mtype=MessageType.PCN, tag="ping", source=1
                )

            p = spawn(node0, name="node0")
            time.sleep(0.1)
            wd = Watchdog(machine, poll=0.01, grace=0.1)
            graph = wd.wait_graph([p])
            assert len(graph) == 1
            assert graph[0].suspect
            assert "[waiting on suspect]" in str(graph[0])
            # A wait on a healthy peer stays an ordinary edge.
            plan.heal("iso")
            while detector.is_suspect(1) and time.monotonic() < deadline:
                time.sleep(0.005)
            graph = wd.wait_graph([p])
            assert len(graph) == 1 and not graph[0].suspect
            machine.send(1, 0, "pong", tag="ping")
            p.join(timeout=5.0)
        finally:
            detector.close()
            transport.uninstall()
