"""Failure injection across the stack.

The thesis' library procedures define a Status protocol precisely so that
partial failures surface as values rather than hangs (§4.1.2).  These
tests inject failures at every layer — dying copies, missing arrays,
malformed parameters, forgotten status assignments, crashing stage bodies,
poisoned reactive handlers — and check that the failure is contained,
reported, and leaves the rest of the system usable.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.arrays import am_user, am_util
from repro.arrays.local_section import TRACKER
from repro.arrays.record import ArrayID
from repro.calls import Index, Local, Reduce, StatusVar, distributed_call
from repro.core.pipeline import Pipeline, Stage
from repro.core.reactive import Event, ReactiveGraph
from repro.core.runtime import IntegratedRuntime
from repro.status import Status
from repro.vp.machine import Machine


@pytest.fixture
def m4():
    machine = Machine(4)
    am_util.load_all(machine)
    return machine


def procs(machine):
    return am_util.node_array(0, 1, machine.num_nodes)


class TestDistributedCallFailures:
    def test_one_dying_copy_reports_error_others_complete(self, m4):
        completed = []

        def flaky(ctx, index):
            if index == 1:
                raise RuntimeError("copy 1 crashed")
            completed.append(index)

        result = distributed_call(m4, procs(m4), flaky, [Index()])
        assert result.status is Status.ERROR
        assert sorted(completed) == [0, 2, 3]

    def test_all_copies_dying_still_returns(self, m4):
        def doomed(ctx):
            raise ValueError("everyone dies")

        result = distributed_call(m4, procs(m4), doomed, [])
        assert result.status is Status.ERROR

    def test_failed_copy_reductions_dropped_healthy_kept(self, m4):
        """A crashed copy contributes no reduction value; the merge keeps
        the healthy copies' fold and the error status."""

        def half_crash(ctx, index, out):
            if index >= 2:
                raise RuntimeError("late copies crash")
            out[0] = float(index + 1)

        result = distributed_call(
            m4, procs(m4), half_crash, [Index(), Reduce("double", 1, "sum")]
        )
        assert result.status is Status.ERROR
        assert result.reductions[0] == 3.0  # 1 + 2 from the survivors

    def test_machine_usable_after_failed_call(self, m4):
        def doomed(ctx):
            raise RuntimeError("boom")

        distributed_call(m4, procs(m4), doomed, [])
        ok = distributed_call(m4, procs(m4), lambda ctx: None, [])
        assert ok.status is Status.OK

    def test_array_intact_after_failing_writer(self, m4):
        aid, _ = am_user.create_array(m4, "double", (8,), procs(m4), ["block"])
        am_user.write_element(m4, aid, (0,), 42.0)

        def crash_before_write(ctx, sec):
            raise RuntimeError("died before touching data")

        result = distributed_call(
            m4, procs(m4), crash_before_write, [Local(aid)]
        )
        assert result.status is Status.ERROR
        assert am_user.read_element(m4, aid, (0,))[0] == 42.0

    def test_call_on_freed_array_invalid(self, m4):
        aid, _ = am_user.create_array(m4, "double", (8,), procs(m4), ["block"])
        am_user.free_array(m4, aid)
        result = distributed_call(
            m4, procs(m4), lambda ctx, sec: None, [Local(aid)]
        )
        assert result.status is Status.INVALID

    def test_status_forgotten_on_one_copy_only(self, m4):
        def mostly_diligent(ctx, index, status):
            if index != 2:
                status.set(0)

        result = distributed_call(
            m4, procs(m4), mostly_diligent, [Index(), StatusVar()]
        )
        assert result.status is Status.ERROR  # copy 2's omission surfaces

    def test_failed_call_does_not_leak_sections(self, m4):
        aid, _ = am_user.create_array(m4, "double", (8,), procs(m4), ["block"])
        live_before = TRACKER.live

        def doomed(ctx, sec):
            raise RuntimeError("x")

        distributed_call(m4, procs(m4), doomed, [Local(aid)])
        assert TRACKER.live == live_before
        am_user.free_array(m4, aid)


class TestArrayManagerFailures:
    def test_operations_on_unknown_arrays_all_not_found(self, m4):
        ghost = ArrayID(0, 12345)
        assert am_user.read_element(m4, ghost, (0,))[1] is Status.NOT_FOUND
        assert am_user.write_element(m4, ghost, (0,), 1.0) is Status.NOT_FOUND
        assert am_user.find_info(m4, ghost, "type")[1] is Status.NOT_FOUND
        assert am_user.free_array(m4, ghost) is Status.NOT_FOUND
        assert (
            am_user.verify_array(m4, ghost, 1, [], "row") is Status.NOT_FOUND
        )

    def test_failed_create_leaves_no_partial_state(self, m4):
        live_before = TRACKER.live
        _aid, st = am_user.create_array(
            m4, "double", (7,), procs(m4), ["block"]  # 4 does not divide 7
        )
        assert st is Status.INVALID
        assert TRACKER.live == live_before

    def test_borders_provider_raising_is_invalid(self, m4):
        def bad_provider(parm, rank):
            return [1]  # wrong length

        _aid, st = am_user.create_array(
            m4, "double", (8,), procs(m4), ["block"],
            border_info=("foreign_borders", bad_provider, 1),
        )
        assert st is Status.INVALID


class TestPipelineFailures:
    def test_stage_exception_propagates_and_stops(self):
        def bad(item):
            if item == 3:
                raise RuntimeError("stage choked on item 3")
            return item

        pipe = Pipeline([Stage("ok", lambda x: x), Stage("bad", bad)])
        with pytest.raises(RuntimeError, match="item 3"):
            pipe.run(range(6), timeout=5)


class TestReactiveFailures:
    def test_handler_exception_propagates(self):
        graph = ReactiveGraph()

        def poisoned(node, event):
            raise KeyError("handler bug")

        graph.add_node("bad", poisoned)
        with pytest.raises(KeyError, match="handler bug"):
            graph.run([("bad", Event(0, "go"))], timeout=5)

    def test_failure_in_one_node_does_not_hang_others(self):
        graph = ReactiveGraph()
        processed = []

        def bad(node, event):
            raise RuntimeError("bad node")

        graph.add_node("bad", bad)
        graph.add_node("good", lambda n, e: processed.append(e.kind))
        with pytest.raises(RuntimeError):
            graph.run(
                [("bad", Event(0, "x")), ("good", Event(0, "y"))], timeout=5
            )
        assert processed == ["y"]


class TestRuntimeLayerFailures:
    def test_call_failure_surfaces_through_core_layer(self):
        rt = IntegratedRuntime(4)

        def doomed(ctx):
            raise RuntimeError("model exploded")

        result = rt.call(rt.all_processors(), doomed, [])
        assert result.status is Status.ERROR

    def test_freed_array_rejected_at_handle_level(self):
        rt = IntegratedRuntime(4)
        arr = rt.array("double", (8,), distrib=["block"])
        arr.free()
        from repro.status import ArrayNotFoundError

        with pytest.raises(ArrayNotFoundError):
            arr.to_numpy()
        with pytest.raises(ArrayNotFoundError):
            arr.from_numpy(np.zeros(8))
