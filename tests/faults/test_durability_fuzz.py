"""Durability fuzz: seeded random kill schedules against a replicated
array under concurrent region writes.

Each seed draws a :func:`~repro.faults.plan.random_kills` schedule, runs
four writer threads over disjoint row bands (each write retried through
machine-level failures), and asserts the recovered array verifies and is
bit-identical to the fault-free expectation.  The seed window shifts with
``REPRO_FUZZ_SEED_BASE`` so CI shards explore disjoint schedules.
"""

import os
import threading
import time

import numpy as np
import pytest

from repro.arrays import am_user, am_util
from repro.arrays.manager import get_array_manager
from repro.core.darray import DistributedArray
from repro.faults import FaultPlan, FaultyTransport, install_recovery, random_kills
from repro.status import ProcessorFailedError, Status
from repro.vp.machine import Machine

SEED_BASE = int(os.environ.get("REPRO_FUZZ_SEED_BASE", "0"))
SEEDS = list(range(SEED_BASE, SEED_BASE + 20))

DISTRIB_2X2 = (("block", 2), ("block", 2))
DIMS = (8, 8)
# Disjoint row bands, one writer thread each, covering every row.
BANDS = [(0, 3), (3, 5), (5, 7), (7, 8)]
PASSES = 2
MAX_WRITE_ATTEMPTS = 10


def row_value(seed: int, band: int, row: int, pass_no: int) -> float:
    return float(seed * 1000 + band * 100 + row * 10 + pass_no)


def expected_array(seed: int) -> np.ndarray:
    out = np.zeros(DIMS)
    for band, (lo, hi) in enumerate(BANDS):
        for row in range(lo, hi):
            out[row, :] = row_value(seed, band, row, PASSES - 1)
    return out


def durable_write(machine, array_id, row, data, errors):
    """One row write, retried through kills and recoveries."""
    for _ in range(MAX_WRITE_ATTEMPTS):
        try:
            status = am_user.write_region(
                machine, array_id, [(row, row + 1), (0, DIMS[1])], data
            )
        except (ProcessorFailedError, TimeoutError):
            continue
        if status is Status.OK:
            return
    errors.append(f"row {row}: write never committed")


MIGRATE_SEEDS = list(range(SEED_BASE, SEED_BASE + 10))


@pytest.mark.parametrize("seed", MIGRATE_SEEDS)
def test_migrations_interleaved_with_kills_stay_epoch_consistent(seed):
    """Planned migrations racing scripted kills and concurrent writes.

    A migrator thread keeps moving sections onto spare VPs while the
    writers hammer the array and the fault plan kills section owners;
    any individual migration may fail (rolled back, or refused as stale
    when recovery rewrites membership underneath it) — but after
    quiesce the array must verify and match the fault-free expectation
    bit for bit under its final epoch-consistent membership.
    """
    from repro.arrays.placement import MigrationError

    machine = Machine(6, default_recv_timeout=5)
    am_util.load_all(machine)
    install_recovery(machine)
    arr = DistributedArray.create(
        machine, "double", DIMS, [0, 1, 2, 3], DISTRIB_2X2, replication=1
    )
    manager = get_array_manager(machine)

    plan = FaultPlan(
        seed=seed,
        kills=random_kills(seed, processors=[1, 2, 3], count=1 + seed % 2),
    )
    errors: list = []
    stop = threading.Event()

    def patient_write(row, data):
        """Like durable_write but tolerant of sections in flight: a row
        aimed at a migrating section may bounce for several rounds."""
        for _ in range(40):
            try:
                status = am_user.write_region(
                    machine, arr.array_id, [(row, row + 1), (0, DIMS[1])], data
                )
            except (ProcessorFailedError, TimeoutError):
                continue
            if status is Status.OK:
                return
            time.sleep(0.001)  # let the in-flight move land or roll back
        errors.append(f"row {row}: write never committed")

    def writer(band, lo, hi):
        for pass_no in range(PASSES):
            for row in range(lo, hi):
                data = np.full((1, DIMS[1]), row_value(seed, band, row, pass_no))
                patient_write(row, data)

    def migrator():
        """Shuttle sections onto spares until the writers finish."""
        rounds = 0
        while not stop.is_set() and rounds < 12:
            rounds += 1
            time.sleep(0.002)
            state = manager.durability_state(arr.array_id)
            if state is None:
                return
            with state.lock:
                owners = tuple(state.processors)
            spares = [
                p
                for p in range(machine.num_nodes)
                if not machine.is_failed(p) and p not in owners
            ]
            movable = [
                s
                for s, p in enumerate(owners)
                if p != 0 and not machine.is_failed(p)
            ]
            if not spares or not movable:
                continue
            section = movable[rounds % len(movable)]
            try:
                am_user.migrate_sections(
                    machine, arr.array_id, {section: spares[0]}
                )
            except (
                ProcessorFailedError,
                TimeoutError,
                MigrationError,
            ):
                continue  # rolled back or refused: both are fine

    with FaultyTransport(machine, plan) as ft:
        threads = [
            threading.Thread(target=writer, args=(band, lo, hi))
            for band, (lo, hi) in enumerate(BANDS)
        ]
        mover_thread = threading.Thread(target=migrator)
        for t in threads:
            t.start()
        mover_thread.start()
        for t in threads:
            t.join()
        stop.set()
        mover_thread.join()

    assert not errors, errors
    state = manager.durability_state(arr.array_id)
    if ft.stats.killed:
        assert set(state.processors).isdisjoint(ft.stats.killed)
    # Epoch-consistent membership after quiesce: every owner's record
    # sits at the state's authoritative epoch.
    assert len(set(state.processors)) == len(state.processors)
    assert (
        am_user.verify_array(machine, arr.array_id, 2, [0, 0, 0, 0], "row")
        is Status.OK
    )
    assert np.array_equal(arr.to_numpy(), expected_array(seed))


@pytest.mark.parametrize("seed", SEEDS)
def test_random_kills_recover_to_fault_free_contents(seed):
    machine = Machine(6, default_recv_timeout=5)
    am_util.load_all(machine)
    install_recovery(machine)
    arr = DistributedArray.create(
        machine, "double", DIMS, [0, 1, 2, 3], DISTRIB_2X2, replication=1
    )

    # Victims come from the section owners 1..3 — never VP 0, where the
    # test's own requests enter the machine.
    plan = FaultPlan(
        seed=seed,
        kills=random_kills(seed, processors=[1, 2, 3], count=1 + seed % 2),
    )
    errors: list = []

    def writer(band, lo, hi):
        for pass_no in range(PASSES):
            for row in range(lo, hi):
                data = np.full((1, DIMS[1]), row_value(seed, band, row, pass_no))
                durable_write(machine, arr.array_id, row, data, errors)

    with FaultyTransport(machine, plan) as ft:
        threads = [
            threading.Thread(target=writer, args=(band, lo, hi))
            for band, (lo, hi) in enumerate(BANDS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

    assert not errors, errors
    state = get_array_manager(machine).durability_state(arr.array_id)
    if ft.stats.killed:
        # Every fired kill hit a section owner; recovery must have moved
        # its sections off the corpse.
        assert state.sections_rebuilt >= 1
        assert set(state.processors).isdisjoint(ft.stats.killed)
    assert (
        am_user.verify_array(machine, arr.array_id, 2, [0, 0, 0, 0], "row")
        is Status.OK
    )
    assert np.array_equal(arr.to_numpy(), expected_array(seed))
