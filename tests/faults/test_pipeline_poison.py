"""Pipeline stage crashes propagate as typed poison values."""

from __future__ import annotations

import pytest

from repro.core.pipeline import Pipeline, Stage, StagePoison


def crashing_on(value):
    def work(item):
        if item == value:
            raise RuntimeError(f"stage choked on {value}")
        return item * 10
    return work


class TestPoisonMode:
    def test_poison_value_reaches_outputs(self):
        pipe = Pipeline([
            Stage("first", lambda x: x + 1),
            Stage("second", crashing_on(3)),
            Stage("third", lambda x: x + 7),
        ])
        result = pipe.run(range(4), timeout=10.0, on_error="poison")
        poisons = [o for o in result.outputs if isinstance(o, StagePoison)]
        clean = [o for o in result.outputs if not isinstance(o, StagePoison)]
        assert len(poisons) == 1
        poison = poisons[0]
        assert poison.stage == "second"
        assert isinstance(poison.error, RuntimeError)
        assert "choked on 3" in str(poison.error)
        # Items before the crash flowed through every stage untouched by
        # the failure; the third stage forwarded the poison unmodified.
        assert clean == [17, 27]  # (0+1)*10+7, (1+1)*10+7
        assert "second" in str(poison)

    def test_downstream_stage_does_not_apply_work_to_poison(self):
        seen = []

        def observer(item):
            seen.append(item)
            return item

        pipe = Pipeline([
            Stage("bad", crashing_on(0)),
            Stage("observer", observer),
        ])
        result = pipe.run([0], timeout=10.0, on_error="poison")
        assert seen == []  # poison bypassed the stage body
        assert isinstance(result.outputs[0], StagePoison)

    def test_consumers_terminate_promptly(self):
        """No consumer is stranded waiting on an undefined stream cell."""
        pipe = Pipeline([
            Stage("bad", crashing_on(0)),
            Stage("mid", lambda x: x),
            Stage("tail", lambda x: x),
        ])
        result = pipe.run(range(5), timeout=5.0, on_error="poison")
        assert len(result.outputs) == 1  # single poison, nothing hangs


class TestRaiseMode:
    def test_default_still_raises_original_error(self):
        pipe = Pipeline([
            Stage("ok", lambda x: x),
            Stage("bad", crashing_on(3)),
        ])
        with pytest.raises(RuntimeError, match="choked on 3"):
            pipe.run(range(6), timeout=10.0)

    def test_invalid_on_error_rejected(self):
        pipe = Pipeline([Stage("ok", lambda x: x)])
        with pytest.raises(ValueError, match="on_error"):
            pipe.run([1], on_error="ignore")

    def test_healthy_pipeline_unaffected_by_poison_mode(self):
        pipe = Pipeline([
            Stage("inc", lambda x: x + 1),
            Stage("dbl", lambda x: x * 2),
        ])
        result = pipe.run(range(5), timeout=10.0, on_error="poison")
        assert result.outputs == [2, 4, 6, 8, 10]
