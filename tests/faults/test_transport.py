"""FaultyTransport: message faults injected at the machine transport."""

from __future__ import annotations

import time

import pytest

from repro.faults import FaultPlan, FaultyTransport, KillSpec
from repro.status import ProcessorFailedError
from repro.vp.machine import Machine
from repro.vp.message import MessageType


@pytest.fixture
def m2():
    return Machine(2, default_recv_timeout=2.0)


def flood(machine, count, src=0, dst=1, tag="t"):
    for i in range(count):
        machine.send(src, dst, i, tag=tag)


class TestDropDuplicate:
    def test_drop_all(self, m2):
        with FaultyTransport(m2, FaultPlan(seed=1, drop=1.0)):
            flood(m2, 10)
        assert m2.processor(1).mailbox.pending() == 0

    def test_drop_partial_is_deterministic(self, m2):
        with FaultyTransport(m2, FaultPlan(seed=4, drop=0.3)) as ft:
            flood(m2, 100)
        first = ft.stats.dropped
        assert 0 < first < 100

        other = Machine(2)
        with FaultyTransport(other, FaultPlan(seed=4, drop=0.3)) as ft2:
            flood(other, 100)
        assert ft2.stats.dropped == first
        assert other.processor(1).mailbox.pending() == 100 - first

    def test_duplicate_delivers_twice(self, m2):
        with FaultyTransport(m2, FaultPlan(seed=2, duplicate=1.0)) as ft:
            flood(m2, 5)
        assert ft.stats.duplicated == 5
        assert m2.processor(1).mailbox.pending() == 10

    def test_uninstall_restores_perfect_transport(self, m2):
        ft = FaultyTransport(m2, FaultPlan(seed=1, drop=1.0)).install()
        flood(m2, 3)
        ft.uninstall()
        flood(m2, 3)
        assert m2.processor(1).mailbox.pending() == 3


class TestDelayReorder:
    def test_delayed_message_eventually_arrives(self, m2):
        plan = FaultPlan(seed=3, delay=1.0, delay_seconds=0.01)
        with FaultyTransport(m2, plan) as ft:
            flood(m2, 4)
            deadline = time.monotonic() + 2.0
            while (
                m2.processor(1).mailbox.pending() < 4
                and time.monotonic() < deadline
            ):
                time.sleep(0.005)
        assert m2.processor(1).mailbox.pending() == 4
        assert ft.stats.delayed == 4

    def test_reorder_swaps_adjacent_messages(self):
        machine = Machine(2)
        # Reorder exactly the first message on the channel: it should be
        # delivered after the second one.
        plan = FaultPlan(seed=0, reorder=1.0)
        ft = FaultyTransport(machine, plan)
        # Find a seed whose first decision reorders and second doesn't,
        # by only sending two messages and flushing.
        with ft:
            machine.send(0, 1, "a", tag="t")
            machine.send(0, 1, "b", tag="t")
        box = machine.processor(1).mailbox
        payloads = [m.payload for m in box.drain()]
        assert sorted(payloads) == ["a", "b"]
        assert ft.stats.reordered >= 1

    def test_reorder_flush_timer_recovers_lone_message(self, m2):
        plan = FaultPlan(seed=5, reorder=1.0)
        with FaultyTransport(m2, plan):
            m2.send(0, 1, "solo", tag="t")
            msg = m2.processor(1).mailbox.recv(
                mtype=MessageType.PCN, tag="t", timeout=1.0
            )
        assert msg.payload == "solo"


class TestKills:
    def test_kill_after_nth_send(self, m2):
        plan = FaultPlan(kills=(KillSpec(0, after=3, on="send"),))
        with FaultyTransport(m2, plan) as ft:
            flood(m2, 3)
            assert m2.is_failed(0)
            assert ft.stats.killed == [0]
            with pytest.raises(ProcessorFailedError):
                m2.send(0, 1, "after death", tag="t")
        assert m2.processor(1).mailbox.pending() == 3

    def test_kill_after_nth_recv(self, m2):
        plan = FaultPlan(kills=(KillSpec(1, after=2, on="recv"),))
        with FaultyTransport(m2, plan):
            flood(m2, 2)
            assert m2.is_failed(1)

    def test_kill_fires_once(self, m2):
        plan = FaultPlan(kills=(KillSpec(0, after=1, on="send"),))
        with FaultyTransport(m2, plan) as ft:
            flood(m2, 1)
            m2.revive(0)
            flood(m2, 5)
        assert ft.stats.killed == [0]
        assert not m2.is_failed(0)


class TestComposability:
    def test_workload_unchanged_with_noop_plan(self):
        """Injection off (all-zero plan) must not perturb a real workload."""
        from repro.arrays import am_util
        from repro.calls import Index, Reduce, distributed_call
        from repro.status import Status

        machine = Machine(4)
        am_util.load_all(machine)
        procs = am_util.node_array(0, 1, 4)

        def program(ctx, index, out):
            out[0] = float(index)

        with FaultyTransport(machine, FaultPlan(seed=1)):
            result = distributed_call(
                machine, procs, program, [Index(), Reduce("double", 1, "sum")]
            )
        assert result.status is Status.OK
        assert result.reductions[0] == 6.0
