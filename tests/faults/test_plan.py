"""FaultPlan determinism and filtering."""

from __future__ import annotations

import pytest

from repro.faults import FaultPlan, KillSpec
from repro.vp.message import Message, MessageType


def msg(src=0, dst=1, mtype=MessageType.DATA_PARALLEL):
    return Message(source=src, dest=dst, payload=0, mtype=mtype)


class TestFaultPlanDecisions:
    def test_same_seed_same_decisions(self):
        a = FaultPlan(seed=7, drop=0.3, duplicate=0.2, reorder=0.1)
        b = FaultPlan(seed=7, drop=0.3, duplicate=0.2, reorder=0.1)
        for n in range(200):
            assert a.decide(msg(), n) == b.decide(msg(), n)

    def test_different_seed_different_stream(self):
        a = FaultPlan(seed=1, drop=0.5)
        b = FaultPlan(seed=2, drop=0.5)
        decisions_a = [a.decide(msg(), n).drop for n in range(100)]
        decisions_b = [b.decide(msg(), n).drop for n in range(100)]
        assert decisions_a != decisions_b

    def test_decision_independent_of_other_channels(self):
        """The (0,1) channel's Nth decision must not depend on traffic
        interleaved on other channels — the determinism contract."""
        plan = FaultPlan(seed=3, drop=0.4)
        direct = [plan.decide(msg(0, 1), n).drop for n in range(50)]
        again = [plan.decide(msg(0, 1), n).drop for n in range(50)]
        other = [plan.decide(msg(2, 3), n).drop for n in range(50)]
        assert direct == again
        assert direct != other  # overwhelmingly likely with 50 draws

    def test_drop_rate_roughly_matches_probability(self):
        plan = FaultPlan(seed=11, drop=0.1)
        drops = sum(
            plan.decide(msg(s, d), n).drop
            for s in range(4)
            for d in range(4)
            for n in range(100)
        )
        assert 0.05 * 1600 < drops < 0.15 * 1600

    def test_zero_probabilities_never_fault(self):
        plan = FaultPlan(seed=5)
        for n in range(100):
            d = plan.decide(msg(), n)
            assert not (d.drop or d.duplicate or d.delay or d.reorder)

    def test_mtype_filter_exempts_other_traffic(self):
        plan = FaultPlan(
            seed=9, drop=1.0, mtypes=(MessageType.DATA_PARALLEL,)
        )
        assert plan.decide(msg(mtype=MessageType.DATA_PARALLEL), 0).drop
        assert not plan.decide(msg(mtype=MessageType.PCN), 0).drop
        assert not plan.applies_to(msg(mtype=MessageType.PCN))

    def test_probability_validation(self):
        with pytest.raises(ValueError):
            FaultPlan(drop=1.5)
        with pytest.raises(ValueError):
            FaultPlan(reorder=-0.1)


class TestKillSpec:
    def test_kill_spec_validation(self):
        with pytest.raises(ValueError):
            KillSpec(0, after=0)
        with pytest.raises(ValueError):
            KillSpec(0, after=1, on="route")

    def test_kills_for_filters_by_processor(self):
        plan = FaultPlan(
            kills=(KillSpec(1, after=3), KillSpec(2, after=5, on="recv"))
        )
        assert [k.processor for k in plan.kills_for(1)] == [1]
        assert plan.kills_for(0) == []
