"""Elastic placement under failure: unrecoverable arrays repaired by
runtime growth, and planned migration surviving message faults and a
mid-migration kill.

The closing loop of the elasticity story: recovery that finds *no spare
processor* records the fact instead of raising; ``Machine.add_processor``
then grows the membership pool at runtime and ``rebalance()`` repairs the
array through the same transactional mover recovery uses — with contents
bit-identical to the pre-failure state.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.arrays import am_user, am_util
from repro.arrays.manager import get_array_manager
from repro.core.darray import DistributedArray
from repro.faults import FaultPlan, FaultyTransport, KillSpec, install_recovery
from repro.status import Status
from repro.vp.machine import Machine

DISTRIB_2X2 = (("block", 2), ("block", 2))
MAX_MIGRATE_ATTEMPTS = 8


def make_array(machine, replication=1, procs=(0, 1, 2, 3)):
    return DistributedArray.create(
        machine, "double", (8, 8), list(procs), DISTRIB_2X2,
        replication=replication,
    )


def durability(machine, arr):
    return get_array_manager(machine).durability_state(arr.array_id)


# -- no spare: record, grow, repair -------------------------------------------


class TestGrowToRepair:
    def test_no_spare_is_recorded_then_repaired_by_growth(self):
        """The full elastic loop: a failure with nowhere to rebuild is
        *recorded* (never raised); diagnostics expose the reason; adding
        a processor and rebalancing repairs the array bit-identically."""
        machine = Machine(4, default_recv_timeout=10)
        am_util.load_all(machine)
        coordinator = install_recovery(machine)
        arr = make_array(machine, replication=1)
        ref = np.arange(64, dtype=float).reshape(8, 8)
        arr.from_numpy(ref)

        machine.fail(2)  # every VP hosts a section: nowhere to rebuild

        state = durability(machine, arr)
        assert state.unrecovered == [(2, "no spare processor")]
        assert state.sections_rebuilt == 0
        assert not coordinator.recoveries[-1]["ok"]
        # Diagnostics expose the reason, not just the failure.
        diag = machine.diagnostics()["arrays"][str(arr.array_id.as_tuple())]
        assert diag["unrecovered"] == [[2, "no spare processor"]] or diag[
            "unrecovered"
        ] == [(2, "no spare processor")]
        assert diag["placement"][2]["owner"] == 2  # still the corpse

        new = machine.add_processor()
        moved = arr.rebalance()

        assert moved == [2]
        state = durability(machine, arr)
        assert state.processors == (0, 1, new, 3)
        assert np.array_equal(arr.to_numpy(), ref)
        assert (
            am_user.verify_array(machine, arr.array_id, 2, [0, 0, 0, 0], "row")
            is Status.OK
        )
        diag = machine.diagnostics()["arrays"][str(arr.array_id.as_tuple())]
        assert diag["placement"][2]["owner"] == new

    def test_rebalance_without_spare_is_invalid_not_crash(self):
        machine = Machine(4, default_recv_timeout=10)
        am_util.load_all(machine)
        install_recovery(machine)
        arr = make_array(machine, replication=1)
        arr.from_numpy(np.ones((8, 8)))
        machine.fail(1)
        _moved, status = am_user.rebalance_array(machine, arr.array_id)
        assert status is Status.INVALID  # still no spare: planning fails

    def test_unreplicated_unrecoverable_repairs_from_checkpoint(self):
        machine = Machine(4, default_recv_timeout=10)
        am_util.load_all(machine)
        install_recovery(machine)
        arr = make_array(machine, replication=0)
        ref = np.arange(64, dtype=float).reshape(8, 8)
        arr.from_numpy(ref)
        arr.checkpoint()
        machine.fail(3)
        assert durability(machine, arr).unrecovered
        machine.add_processor()
        moved = arr.rebalance()
        assert moved == [3]
        assert np.array_equal(arr.to_numpy(), ref)


# -- migration racing failure -------------------------------------------------


class TestMidMigrationKill:
    def test_destination_killed_mid_migration_rolls_back(self):
        """The destination dies on the adopt message itself: the kill
        reenters recovery on the migrating thread, the move aborts, and
        the array remains intact on its original owners."""
        machine = Machine(6, default_recv_timeout=5)
        am_util.load_all(machine)
        install_recovery(machine)
        arr = make_array(machine, replication=1)
        ref = np.arange(64, dtype=float).reshape(8, 8)
        arr.from_numpy(ref)

        # VP 4 receives exactly one message in this plan: the adopt.
        plan = FaultPlan(seed=11, kills=(KillSpec(4, after=1, on="recv"),))
        with FaultyTransport(machine, plan) as ft:
            moved, status = am_user.migrate_sections(
                machine, arr.array_id, {2: 4}
            )

        assert ft.stats.killed == [4]
        assert status is Status.ERROR and moved is None
        state = durability(machine, arr)
        assert state.processors == (0, 1, 2, 3)
        assert np.array_equal(arr.to_numpy(), ref)
        log = get_array_manager(machine).migrations[-1]
        assert not log["ok"] and "error" in log

    def test_source_killed_mid_migration_recovers(self):
        """The *source* dies while yielding its section: reentrant
        recovery adopts the section onto a spare; the abandoned plan is
        refused as stale and the data survives through the replica."""
        machine = Machine(6, default_recv_timeout=5)
        am_util.load_all(machine)
        install_recovery(machine)
        arr = make_array(machine, replication=1)
        ref = np.arange(64, dtype=float).reshape(8, 8)
        arr.from_numpy(ref)

        # VP 2's next received message is the yield request itself.
        plan = FaultPlan(seed=13, kills=(KillSpec(2, after=1, on="recv"),))
        with FaultyTransport(machine, plan) as ft:
            _moved, status = am_user.migrate_sections(
                machine, arr.array_id, {2: 4}
            )

        assert ft.stats.killed == [2]
        assert status is Status.ERROR
        state = durability(machine, arr)
        assert 2 not in state.processors  # recovery rehomed the section
        assert state.sections_rebuilt == 1
        assert np.array_equal(arr.to_numpy(), ref)
        assert (
            am_user.verify_array(machine, arr.array_id, 2, [0, 0, 0, 0], "row")
            is Status.OK
        )


# -- planned migration under message faults -----------------------------------


class TestFaultyMigration:
    @pytest.mark.parametrize("seed", range(5))
    def test_drop_and_duplicate_never_corrupt_a_migration(self, seed):
        """Dropped or duplicated migrate traffic may fail an attempt —
        the attempt rolls back — but a bounded retry always lands the
        move, and the contents stay bit-identical throughout."""
        machine = Machine(6, default_recv_timeout=0.5)
        am_util.load_all(machine)
        install_recovery(machine)
        arr = make_array(machine, replication=1)
        ref = np.arange(64, dtype=float).reshape(8, 8)
        arr.from_numpy(ref)

        plan = FaultPlan(seed=seed, drop=0.1, duplicate=0.2)
        attempts = 0
        with FaultyTransport(machine, plan):
            for attempts in range(1, MAX_MIGRATE_ATTEMPTS + 1):
                try:
                    moved, status = am_user.migrate_sections(
                        machine, arr.array_id, {2: 4}
                    )
                except TimeoutError:
                    continue
                if status is Status.OK:
                    break
            else:
                pytest.fail("migration never committed")

        # Every failed attempt rolled back rather than half-committing.
        assert get_array_manager(machine).mover.aborts == attempts - 1

        assert moved == [2]
        state = durability(machine, arr)
        assert state.processors == (0, 1, 4, 3)
        assert np.array_equal(arr.to_numpy(), ref)
        assert (
            am_user.verify_array(machine, arr.array_id, 2, [0, 0, 0, 0], "row")
            is Status.OK
        )
