"""VP death semantics: poisoned mailboxes, send policies, diagnostics."""

from __future__ import annotations

import time

import pytest

from repro.pcn.process import spawn
from repro.status import ProcessorFailedError
from repro.vp.machine import Machine
from repro.vp.message import MessageType


class TestFailAndPoison:
    def test_blocked_receiver_raises_immediately_not_after_deadline(self):
        machine = Machine(2, default_recv_timeout=30.0)
        box = machine.processor(1).mailbox
        caught = []

        def receiver():
            started = time.monotonic()
            try:
                box.recv(mtype=MessageType.PCN, tag="never")
            except ProcessorFailedError as exc:
                caught.append((exc, time.monotonic() - started))

        proc = spawn(receiver)
        time.sleep(0.1)  # let the receiver block
        machine.fail(1)
        proc.join(timeout=5.0)
        assert len(caught) == 1
        exc, elapsed = caught[0]
        assert exc.processor == 1
        assert elapsed < 2.0  # well under the 30s recv deadline

    def test_recv_on_dead_processor_raises_even_with_buffered_message(self):
        machine = Machine(2)
        machine.send(0, 1, "x", tag="t")
        machine.fail(1)
        with pytest.raises(ProcessorFailedError):
            machine.processor(1).mailbox.recv(tag="t", timeout=1.0)

    def test_send_to_dead_raises_by_default(self):
        machine = Machine(2)
        machine.fail(1)
        with pytest.raises(ProcessorFailedError) as info:
            machine.send(0, 1, "x")
        assert info.value.processor == 1

    def test_send_to_dead_dropped_under_drop_policy(self):
        machine = Machine(2, dead_send_policy="drop")
        machine.fail(1)
        machine.send(0, 1, "x")  # vanishes silently
        assert machine.dropped_to_dead == 1
        assert machine.processor(1).mailbox.pending() == 0

    def test_send_from_dead_raises(self):
        machine = Machine(2)
        machine.fail(0)
        with pytest.raises(ProcessorFailedError):
            machine.send(0, 1, "x")

    def test_spawn_on_dead_raises(self):
        machine = Machine(2)
        machine.fail(1)
        with pytest.raises(ProcessorFailedError):
            machine.processor(1).spawn(lambda: None)

    def test_fail_is_idempotent_and_revive_restores(self):
        machine = Machine(2)
        machine.fail(1)
        machine.fail(1)
        assert machine.failed_processors() == [1]
        machine.revive(1)
        assert machine.failed_processors() == []
        machine.send(0, 1, "back", tag="t")
        msg = machine.processor(1).mailbox.recv(tag="t", timeout=1.0)
        assert msg.payload == "back"

    def test_check_alive(self):
        machine = Machine(4)
        machine.check_alive([0, 1, 2, 3])
        machine.fail(2)
        with pytest.raises(ProcessorFailedError):
            machine.check_alive([0, 1, 2, 3])
        machine.check_alive([0, 1, 3])

    def test_invalid_dead_send_policy_rejected(self):
        with pytest.raises(ValueError):
            Machine(2, dead_send_policy="explode")


class TestDiagnostics:
    def test_snapshot_reports_dead_pending_and_blocked(self):
        machine = Machine(3)
        machine.fail(2)
        machine.send(0, 1, "queued", tag="t")

        blocked_seen = []

        def receiver():
            try:
                machine.processor(0).mailbox.recv(tag="nothing", timeout=1.5)
            except TimeoutError:
                pass

        proc = spawn(receiver)
        time.sleep(0.1)
        diag = machine.diagnostics()
        proc.join(timeout=5.0)

        assert diag["num_nodes"] == 3
        assert diag["failed"] == [2]
        assert diag["pending_messages"] == {1: 1}
        blocked_seen = [
            b for b in diag["blocked_receivers"] if b["processor"] == 0
        ]
        assert len(blocked_seen) == 1
        assert "selective recv" in blocked_seen[0]["waiting_for"]

    def test_snapshot_clean_machine(self):
        machine = Machine(2)
        diag = machine.diagnostics()
        assert diag["failed"] == []
        assert diag["pending_messages"] == {}
        assert diag["blocked_receivers"] == []
        assert diag["dropped_to_dead"] == 0

    def test_runtime_diagnostics_facade(self):
        from repro.core.runtime import IntegratedRuntime

        rt = IntegratedRuntime(2)
        assert rt.diagnostics()["num_nodes"] == 2


class TestCallLayerWithDeadVPs:
    def test_distributed_call_on_dead_group_raises(self):
        from repro.arrays import am_util
        from repro.calls import distributed_call

        machine = Machine(4)
        am_util.load_all(machine)
        machine.fail(2)
        with pytest.raises(ProcessorFailedError):
            distributed_call(
                machine, am_util.node_array(0, 1, 4), lambda ctx: None, []
            )

    def test_copy_blocked_on_dead_peer_fails_fast(self):
        """A copy receiving from a VP that dies mid-call surfaces the
        failure as an exception (supervision hook), not a 30s hang."""
        from repro.arrays import am_util
        from repro.calls import Index, distributed_call

        machine = Machine(2, default_recv_timeout=5.0)
        am_util.load_all(machine)

        def program(ctx, index):
            if index == 0:
                # Dies before sending what rank 1 waits for.
                machine.fail(ctx.procs[0])
                return
            ctx.comm.recv(source_rank=0, tag="never")

        started = time.monotonic()
        with pytest.raises(ProcessorFailedError):
            distributed_call(
                machine, am_util.node_array(0, 1, 2), program, [Index()]
            )
        assert time.monotonic() - started < 4.0
