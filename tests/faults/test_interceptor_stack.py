"""Interceptor-stack composition: fault injection, tracing, and metering
installed together on one machine's transport stack."""

from __future__ import annotations

import pytest

from repro.faults import FaultPlan, FaultyTransport
from repro.vp.fabric import TraceInterceptor, TrafficMeter, TransportStack
from repro.vp.machine import Machine


@pytest.fixture
def m2():
    return Machine(2, default_recv_timeout=2.0)


def flood(machine, count, src=0, dst=1, tag="t"):
    for i in range(count):
        machine.send(src, dst, i, tag=tag)


class TestStackOrdering:
    def test_push_makes_top_layer(self, m2):
        a = TraceInterceptor(m2).install()
        b = TrafficMeter(m2).install()
        assert m2.transport_stack.layers() == [b, a]

    def test_remove_knits_stack_back_together(self, m2):
        a = TraceInterceptor(m2).install()
        b = TrafficMeter(m2).install()
        c = TraceInterceptor(m2).install()
        assert m2.transport_stack.remove(b)
        assert m2.transport_stack.layers() == [c, a]
        flood(m2, 3)
        assert len(a.spans()) == 3
        assert len(c.spans()) == 3
        assert b.messages == 0

    def test_remove_missing_returns_false(self, m2):
        assert not m2.transport_stack.remove(TrafficMeter(m2))

    def test_empty_stack_is_direct_delivery(self, m2):
        assert len(m2.transport_stack) == 0
        flood(m2, 2)
        assert m2.processor(1).mailbox.pending() == 2

    def test_uninstall_restores_previous_stack(self, m2):
        tracer = TraceInterceptor(m2).install()
        ft = FaultyTransport(m2, FaultPlan(seed=1, drop=1.0)).install()
        assert m2.transport_stack.layers() == [ft, tracer]
        ft.uninstall()
        assert m2.transport_stack.layers() == [tracer]
        flood(m2, 3)
        assert m2.processor(1).mailbox.pending() == 3
        assert len(tracer.spans()) == 3


class TestFaultsPlusTracing:
    def test_fault_injection_and_tracing_together(self, m2):
        """Both interceptors observe the same traffic simultaneously."""
        plan = FaultPlan(seed=4, drop=0.3)
        with TraceInterceptor(m2) as tracer:
            with FaultyTransport(m2, plan) as ft:
                flood(m2, 100)
        # The tracer sits *below* the dropper (installed first -> deeper),
        # so it records only surviving messages.
        assert 0 < ft.stats.dropped < 100
        assert len(tracer.spans()) == 100 - ft.stats.dropped
        assert m2.processor(1).mailbox.pending() == 100 - ft.stats.dropped

    def test_meter_position_determines_what_it_sees(self, m2):
        """A meter above the dropper counts all routed messages; one below
        counts only survivors."""
        below = TrafficMeter(m2).install()
        ft = FaultyTransport(m2, FaultPlan(seed=4, drop=0.3)).install()
        above = TrafficMeter(m2).install()
        flood(m2, 100)
        assert above.messages == 100
        assert below.messages == 100 - ft.stats.dropped
        assert below.messages < above.messages

    def test_fault_stats_unchanged_by_stacked_tracer(self):
        """Adding a tracer must not perturb the seeded fault decisions."""
        alone = Machine(2)
        with FaultyTransport(alone, FaultPlan(seed=4, drop=0.3)) as ft1:
            flood(alone, 100)

        stacked = Machine(2)
        with TraceInterceptor(stacked):
            with FaultyTransport(stacked, FaultPlan(seed=4, drop=0.3)) as ft2:
                flood(stacked, 100)
        assert ft2.stats.dropped == ft1.stats.dropped

    def test_duplicates_cross_lower_layers_twice(self, m2):
        tracer = TraceInterceptor(m2).install()
        with FaultyTransport(m2, FaultPlan(seed=2, duplicate=1.0)):
            flood(m2, 5)
        assert len(tracer.spans()) == 10
        assert m2.processor(1).mailbox.pending() == 10


class TestForwardFrom:
    def test_forward_from_skips_layers_above(self, m2):
        top = TrafficMeter(m2)
        bottom = TrafficMeter(m2)
        bottom.install()
        mid = TraceInterceptor(m2).install()
        top.install()
        from repro.vp.message import Message

        msg = Message(source=0, dest=1, payload="x", tag="t")
        m2.transport_stack.forward_from(mid, msg)
        assert top.messages == 0
        assert bottom.messages == 1
        assert m2.processor(1).mailbox.pending() == 1

    def test_forward_from_uninstalled_layer_reaches_terminal(self, m2):
        from repro.vp.message import Message

        stray = TraceInterceptor(m2)  # never installed
        meter = TrafficMeter(m2).install()
        msg = Message(source=0, dest=1, payload="x", tag="t")
        m2.transport_stack.forward_from(stray, msg)
        assert meter.messages == 0
        assert m2.processor(1).mailbox.pending() == 1

    def test_delayed_redelivery_crosses_meter_below(self, m2):
        """A FaultyTransport timer redelivery still flows through layers
        beneath it, resolved at release time."""
        import time

        meter = TrafficMeter(m2).install()
        plan = FaultPlan(seed=3, delay=1.0, delay_seconds=0.01)
        with FaultyTransport(m2, plan):
            flood(m2, 4)
            deadline = time.monotonic() + 2.0
            while (
                m2.processor(1).mailbox.pending() < 4
                and time.monotonic() < deadline
            ):
                time.sleep(0.005)
        assert m2.processor(1).mailbox.pending() == 4
        assert meter.messages == 4


class TestTransportStackUnit:
    def test_dispatch_and_terminal(self):
        delivered = []
        stack = TransportStack(delivered.append)

        def dropper(message, forward):
            if message != "drop-me":
                forward(message)

        stack.push(dropper)
        stack.dispatch("keep")
        stack.dispatch("drop-me")
        assert delivered == ["keep"]

    def test_contains_and_len(self):
        stack = TransportStack(lambda m: None)

        def layer(message, forward):
            forward(message)

        stack.push(layer)
        assert layer in stack
        assert len(stack) == 1
        stack.clear()
        assert layer not in stack
        assert len(stack) == 0
