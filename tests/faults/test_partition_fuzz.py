"""Partition fuzz: seeded random cuts against a replicated array, with
split-brain fencing asserted after heal.

Each seed runs a three-phase schedule:

1. **Before the cut** — banded writer threads commit a full pass of
   content and quiesce.
2. **The partition window** — the seed's cuts are forced active; the
   failure detector (not the oracle) declares the isolated minority
   dead, recovery rebuilds its sections on the majority, and a *direct
   stale-owner write probe* on the minority side must be refused with
   ``Status.STALE_EPOCH`` (the fencing token at work).
3. **After heal** — the minority heartbeats again, is quarantined and
   rejoined, and a second full write pass (interleaved with scripted
   kills and opportunistic migrations) must converge.

Final asserts: zero split-brain (exactly one live owner per section at
the authoritative epoch), every probe fenced, recovery fired at most
once per dead episode, and the array bit-identical to the fault-free
expectation.

The seed window shifts with ``REPRO_PARTITION_SEED_BASE`` so CI shards
explore disjoint schedules.
"""

from __future__ import annotations

import os
import threading
import time

import numpy as np
import pytest

from repro.arrays import am_user, am_util
from repro.arrays.manager import _records, get_array_manager
from repro.core.darray import DistributedArray
from repro.faults import (
    FaultPlan,
    FaultyTransport,
    PartitionPlan,
    install_recovery,
    random_kills,
    random_partitions,
)
from repro.health import FailureDetector, HealthState
from repro.pcn.defvar import DefVar
from repro.status import ProcessorFailedError, Status
from repro.vp import fabric
from repro.vp.machine import Machine

SEED_BASE = int(os.environ.get("REPRO_PARTITION_SEED_BASE", "0"))
SEEDS = list(range(SEED_BASE, SEED_BASE + 10))

DIMS = (8, 8)
DISTRIB_2X2 = (("block", 2), ("block", 2))
BANDS = [(0, 3), (3, 5), (5, 7), (7, 8)]
INTERVAL = 0.02


def wait_until(predicate, timeout=15.0, interval=0.005):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


def row_value(seed: int, band: int, row: int, pass_no: int) -> float:
    return float(seed * 1000 + band * 100 + row * 10 + pass_no)


def expected_array(seed: int) -> np.ndarray:
    out = np.zeros(DIMS)
    for band, (lo, hi) in enumerate(BANDS):
        for row in range(lo, hi):
            out[row, :] = row_value(seed, band, row, 1)
    return out


def run_write_pass(machine, array_id, seed, pass_no, errors):
    """One full banded write pass, each row retried through faults."""

    def writer(band, lo, hi):
        for row in range(lo, hi):
            data = np.full((1, DIMS[1]), row_value(seed, band, row, pass_no))
            for _ in range(60):
                try:
                    status = am_user.write_region(
                        machine, array_id, [(row, row + 1), (0, DIMS[1])], data
                    )
                except (ProcessorFailedError, TimeoutError):
                    continue
                if status is Status.OK:
                    break
                time.sleep(0.002)
            else:
                errors.append(f"seed {seed} pass {pass_no} row {row}: "
                              "write never committed")

    threads = [
        threading.Thread(target=writer, args=(band, lo, hi))
        for band, (lo, hi) in enumerate(BANDS)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()


def probe_stale_owner(machine, array_id, vp) -> Status:
    """A same-node write issued *on the stale minority VP itself* — no
    routed hop, so the partition cannot save us: only the epoch fencing
    token stands between this write and split-brain."""
    with fabric.execution_context(processor=vp):
        status = DefVar(f"probe@{vp}")
        machine.server.request(
            "write_element_local", array_id, (0, 0), -1.0, status,
            processor=vp,
        )
        return Status(status.read(timeout=5.0))


def live_owners_at_current_epoch(machine, manager, array_id):
    """VPs holding a section of the array at the authoritative epoch."""
    state = manager.durability_state(array_id)
    with state.lock:
        epoch = state.epoch
        members = tuple(state.processors)
    owners = []
    for p in range(machine.num_nodes):
        if machine.is_failed(p):
            continue
        record = _records(machine.processor(p)).get(array_id)
        if record is not None and record.section is not None \
                and record.epoch == epoch:
            owners.append(p)
    return owners, members


@pytest.mark.parametrize("seed", SEEDS)
def test_partition_heal_converges_without_split_brain(seed):
    machine = Machine(6, default_recv_timeout=5)
    am_util.load_all(machine)
    coordinator = install_recovery(machine)
    arr = DistributedArray.create(
        machine, "double", DIMS, [0, 1, 2, 3], DISTRIB_2X2, replication=1
    )
    manager = get_array_manager(machine)

    # Cuts drawn over the owner set only (VP 0, the monitor and request
    # entry point, always lands on the majority side; 4 and 5 stay out
    # of every cut so recovery always finds a spare).  Kills interleave
    # from the same owner pool.
    cuts = random_partitions(
        seed, processors=[0, 1, 2, 3], count=1 + seed % 2
    )
    pplan = PartitionPlan(cuts)
    pplan.heal()  # phase 1 runs connected; windows open manually
    fplan = FaultPlan(
        seed=seed,
        kills=random_kills(seed, processors=[1, 2, 3], count=1),
    )
    errors: list = []
    fenced_probes: list = []

    with FaultyTransport(machine, fplan, partitions=pplan) as ft:
        detector = FailureDetector(
            machine, interval=INTERVAL, suspect_after=2.0, dead_after=6.0
        ).install()
        try:
            # -- phase 1: connected writes, then quiesce ---------------
            run_write_pass(machine, arr.array_id, seed, 0, errors)
            assert not errors, errors

            state = manager.durability_state(arr.array_id)
            with state.lock:
                owners_before = tuple(state.processors)

            # -- phase 2: the partition window -------------------------
            minority = sorted(
                {p for cut in cuts for p in cut.side_a}
            )
            for cut in cuts:
                pplan.cut(cut.name)
            # The detector gives up on every unreachable minority VP
            # (oracle kills count immediately; timeouts harden on their
            # own clock).
            assert wait_until(
                lambda: all(detector.is_dead(p) for p in minority)
            ), f"minority {minority} never declared dead"
            # Recovery pulls the lost sections back onto the majority.
            # (If a scripted kill stranded a rebuild behind the cut —
            # the only backup on the minority side — it is retried at
            # heal, so the mid-window wait tolerates stragglers.)
            wait_until(
                lambda: all(
                    p not in manager.durability_state(arr.array_id).processors
                    for p in minority
                ),
                timeout=10.0,
            )
            # Stale-owner probes: a minority ex-owner that recovery has
            # superseded still holds its old section at the old epoch —
            # every direct write on it must bounce off the fencing
            # token.
            state = manager.durability_state(arr.array_id)
            with state.lock:
                members_mid = tuple(state.processors)
            for vp in minority:
                if (
                    machine.is_failed(vp)
                    or vp not in owners_before
                    or vp in members_mid
                ):
                    continue
                record = _records(machine.processor(vp)).get(arr.array_id)
                if record is None or record.section is None:
                    continue
                fenced_probes.append(
                    (vp, probe_stale_owner(machine, arr.array_id, vp))
                )

            # -- phase 3: heal, rejoin, write again --------------------
            pplan.heal()
            ft.flush()
            # A scripted kill may land at any point — including on a VP
            # mid-rejoin — so "rejoined" and "oracle-killed while we
            # waited" are both terminal outcomes here.
            for vp in minority:
                assert wait_until(
                    lambda v=vp: machine.is_failed(v)
                    or detector.state_of(v) is HealthState.ALIVE
                ), f"vp {vp} never rejoined after heal"
            # Membership must converge onto reachable owners (stranded
            # rebuilds retry once the minority returns) before the
            # second pass can commit everywhere.
            assert wait_until(
                lambda: all(
                    not machine.is_unavailable(p)
                    for p in manager.durability_state(arr.array_id).processors
                ),
                timeout=30.0,
            ), "membership never converged onto reachable owners"
            run_write_pass(machine, arr.array_id, seed, 1, errors)
            assert not errors, errors

            # An opportunistic migration interleaved post-heal: moving a
            # section must still work (or roll back cleanly).
            state = manager.durability_state(arr.array_id)
            with state.lock:
                owners = tuple(state.processors)
            spares = [
                p
                for p in range(machine.num_nodes)
                if not machine.is_unavailable(p) and p not in owners
            ]
            movable = [
                s for s, p in enumerate(owners)
                if p != 0 and not machine.is_unavailable(p)
            ]
            if spares and movable:
                try:
                    am_user.migrate_sections(
                        machine, arr.array_id, {movable[0]: spares[0]}
                    )
                except Exception:  # noqa: BLE001
                    pass  # refused/rolled back is acceptable mid-fuzz

            # -- acceptance --------------------------------------------
            # Every stale write was fenced with the stale-epoch status.
            for vp, status in fenced_probes:
                assert status is Status.STALE_EPOCH, (
                    f"stale probe on vp {vp} returned {status}"
                )
            # Zero split-brain: the live owners at the authoritative
            # epoch are exactly the live membership, one per section.
            owners, members = live_owners_at_current_epoch(
                machine, manager, arr.array_id
            )
            live_members = [p for p in members if not machine.is_failed(p)]
            assert sorted(owners) == sorted(live_members), (
                f"split-brain: owners {owners} vs membership {members}"
            )
            assert len(set(members)) == len(members)
            # Recovery *rebuilt* at most once per dead episode per VP
            # (failed attempts — e.g. a backup stranded behind the cut —
            # may retry, but only one rebuild may ever land).
            dead_episodes: dict[int, int] = {}
            for event in detector.events():
                if event.transition == "dead":
                    dead_episodes[event.vp] = dead_episodes.get(event.vp, 0) + 1
            rebuilt: dict[int, int] = {}
            for entry in coordinator.recoveries:
                if entry.get("ok"):
                    rebuilt[entry["dead"]] = rebuilt.get(entry["dead"], 0) + 1
            for vp, count in rebuilt.items():
                assert count <= dead_episodes.get(vp, 0), (
                    f"recovery double-fired for vp {vp}: {count} rebuilds, "
                    f"{dead_episodes.get(vp, 0)} dead episodes"
                )
            # No rebuild left permanently stranded.
            state = manager.durability_state(arr.array_id)
            with state.lock:
                assert state.unrecovered == [], state.unrecovered
            # The rejoined minority is alive with no stale ownership (its
            # stale sections were freed by the rejoin protocol).
            for vp in minority:
                if machine.is_failed(vp):
                    continue
                record = _records(machine.processor(vp)).get(arr.array_id)
                if record is not None and record.section is not None:
                    state = manager.durability_state(arr.array_id)
                    assert vp in state.processors
        finally:
            detector.close()

    assert (
        am_user.verify_array(machine, arr.array_id, 2, [0, 0, 0, 0], "row")
        is Status.OK
    )
    assert np.array_equal(arr.to_numpy(), expected_array(seed))
