"""Partition injection: cut semantics, schedules, and transport wiring."""

from __future__ import annotations

import time

import pytest

from repro.faults import (
    FaultPlan,
    FaultyTransport,
    PartitionCut,
    PartitionPlan,
    random_partitions,
)
from repro.vp.machine import Machine


class TestPartitionCut:
    def test_symmetric_cut_severs_both_directions(self):
        cut = PartitionCut("c", (0, 1), (2, 3))
        assert cut.crosses(0, 2)
        assert cut.crosses(3, 1)
        assert not cut.crosses(0, 1)
        assert not cut.crosses(2, 3)

    def test_asymmetric_cut_severs_one_way_only(self):
        cut = PartitionCut("c", (0,), (1,), symmetric=False)
        assert cut.crosses(0, 1)
        assert not cut.crosses(1, 0)

    def test_validation(self):
        with pytest.raises(ValueError):
            PartitionCut("c", (), (1,))
        with pytest.raises(ValueError):
            PartitionCut("c", (0, 1), (1, 2))
        with pytest.raises(ValueError):
            PartitionCut("c", (0,), (1,), start_after=-1.0)
        with pytest.raises(ValueError):
            PartitionCut("c", (0,), (1,), start_after=1.0, heal_after=0.5)


class TestPartitionPlan:
    def test_scheduled_window_activates_and_heals(self):
        plan = PartitionPlan(
            [PartitionCut("w", (1,), (0,), start_after=0.05, heal_after=0.15)]
        )
        plan.attach()
        assert plan.severs(1, 0) is None  # before the window
        time.sleep(0.07)
        assert plan.severs(1, 0) == "w"
        time.sleep(0.12)
        assert plan.severs(1, 0) is None  # healed on schedule

    def test_manual_overrides_beat_the_schedule(self):
        plan = PartitionPlan(
            [PartitionCut("w", (1,), (0,), start_after=0.0, heal_after=None)]
        )
        plan.attach()
        assert plan.severs(1, 0) == "w"  # active by schedule
        plan.heal("w")
        assert plan.severs(1, 0) is None
        plan.cut("w")
        assert plan.severs(1, 0) == "w"
        plan.heal()  # heal-all
        assert plan.active() == []

    def test_unknown_cut_name_rejected(self):
        plan = PartitionPlan([PartitionCut("w", (1,), (0,))])
        with pytest.raises(ValueError):
            plan.cut("nope")
        with pytest.raises(ValueError):
            PartitionPlan(
                [PartitionCut("d", (1,), (0,)), PartitionCut("d", (2,), (0,))]
            )

    def test_snapshot_reports_active_cuts_and_severed_count(self):
        plan = PartitionPlan([PartitionCut("w", (1,), (0,))])
        plan.attach()
        plan.severs(1, 0)
        snap = plan.snapshot()
        assert snap["cuts"] == ["w"]
        assert snap["active"] == ["w"]
        assert snap["severed"] == 1


class TestRandomPartitions:
    def test_same_seed_same_schedule(self):
        a = random_partitions(42, range(6), count=3)
        b = random_partitions(42, range(6), count=3)
        assert a == b
        assert a != random_partitions(43, range(6), count=3)

    def test_minority_never_contains_the_first_processor(self):
        """VP 0 (monitor / request entry point) stays on the majority
        side by default."""
        for seed in range(20):
            for cut in random_partitions(seed, range(6), count=2):
                assert 0 not in cut.side_a
                assert 0 in cut.side_b
                # Strict minority, scheduled heal.
                assert len(cut.side_a) <= (6 - 1) // 2
                assert cut.heal_after is not None
                assert cut.heal_after > cut.start_after

    def test_validation(self):
        with pytest.raises(ValueError):
            random_partitions(0, [0])
        with pytest.raises(ValueError):
            random_partitions(0, range(4), isolate=[9])


class TestTransportComposition:
    def test_severed_messages_are_counted_and_discarded(self):
        machine = Machine(3)
        plan = PartitionPlan([PartitionCut("iso", (2,), (0, 1))])
        with FaultyTransport(
            machine, FaultPlan(seed=0), partitions=plan
        ) as ft:
            machine.send(0, 2, "lost", tag="t")
            machine.send(2, 0, "lost too", tag="t")
            machine.send(0, 1, "delivered", tag="t")
            assert ft.stats.partitioned == 2
            assert (
                machine.processor(1).mailbox.recv(tag="t", timeout=5.0).payload
                == "delivered"
            )
            # Nothing leaked across the cut.
            with pytest.raises(TimeoutError):
                machine.processor(2).mailbox.recv(tag="t", timeout=0.05)

    def test_oneway_cut_lets_replies_through(self):
        machine = Machine(2)
        plan = PartitionPlan(
            [PartitionCut("half", (1,), (0,), symmetric=False)]
        )
        with FaultyTransport(
            machine, FaultPlan(seed=0), partitions=plan
        ) as ft:
            machine.send(1, 0, "swallowed", tag="t")  # crosses a -> b
            machine.send(0, 1, "arrives", tag="t")  # b -> a unaffected
            assert ft.stats.partitioned == 1
            assert (
                machine.processor(1).mailbox.recv(tag="t", timeout=5.0).payload
                == "arrives"
            )

    def test_heal_restores_traffic_and_stats_survive(self):
        machine = Machine(2)
        plan = PartitionPlan([PartitionCut("iso", (1,), (0,))])
        with FaultyTransport(
            machine, FaultPlan(seed=0), partitions=plan
        ) as ft:
            machine.send(0, 1, "one", tag="t")
            plan.heal("iso")
            machine.send(0, 1, "two", tag="t")
            assert ft.stats.partitioned == 1
            assert (
                machine.processor(1).mailbox.recv(tag="t", timeout=5.0).payload
                == "two"
            )
            assert ft.stats.as_dict()["partitioned"] == 1
