"""Recovery-coordinator tests: replica-first section rebuild onto a spare
VP, checkpoint-fallback recovery for unreplicated arrays, idempotent
installation, and torn-write rollback under supervised retry."""

import threading

import numpy as np
import pytest

from repro.arrays import am_user, am_util
from repro.arrays.manager import get_array_manager
from repro.calls import Index, Local, StatusVar
from repro.core.darray import DistributedArray
from repro.faults import (
    FaultPlan,
    FaultyTransport,
    KillSpec,
    RetryPolicy,
    install_recovery,
    supervised_call,
)
from repro.status import ProcessorFailedError, Status
from repro.vp.machine import Machine

DISTRIB_2X2 = (("block", 2), ("block", 2))


@pytest.fixture
def machine():
    m = Machine(6, default_recv_timeout=10)
    am_util.load_all(m)
    return m


def make_array(machine, replication, dims=(8, 8), procs=(0, 1, 2, 3)):
    return DistributedArray.create(
        machine, "double", dims, list(procs), DISTRIB_2X2,
        replication=replication,
    )


def durability(machine, arr):
    return get_array_manager(machine).durability_state(arr.array_id)


# -- replica-based recovery ---------------------------------------------------


class TestReplicaRecovery:
    def test_fail_rebuilds_section_from_replica(self, machine):
        coordinator = install_recovery(machine)
        arr = make_array(machine, replication=1)
        ref = np.arange(64, dtype=float).reshape(8, 8)
        arr.from_numpy(ref)

        machine.fail(2)

        state = durability(machine, arr)
        assert 2 not in state.processors
        assert state.processors == (0, 1, 4, 3)  # spare VP 4 adopted it
        assert state.sections_rebuilt == 1
        assert state.epoch == 1
        # recovered contents are bit-identical to the pre-failure array
        assert np.array_equal(arr.to_numpy(), ref)
        assert (
            am_user.verify_array(machine, arr.array_id, 2, [0, 0, 0, 0], "row")
            is Status.OK
        )
        event = coordinator.recoveries[-1]
        assert event["ok"] and event["spare"] == 4 and event["dead"] == 2

    def test_survivors_learn_new_membership(self, machine):
        install_recovery(machine)
        arr = make_array(machine, replication=1)
        arr.from_numpy(np.ones((8, 8)))
        machine.fail(1)
        # a survivor can still locate every element through its rewritten
        # membership (reads route to the adopting spare, not the corpse)
        value, status = am_user.read_element(
            machine, arr.array_id, (0, 7), processor=3
        )
        assert status is Status.OK and value == 1.0

    def test_replicas_reseeded_after_recovery(self, machine):
        install_recovery(machine)
        arr = make_array(machine, replication=1)
        arr.from_numpy(np.ones((8, 8)))
        machine.fail(2)
        # the rebuilt membership tolerates a second, later failure
        machine.fail(1)
        state = durability(machine, arr)
        assert set(state.processors).isdisjoint({1, 2})
        assert state.sections_rebuilt == 2
        assert np.array_equal(arr.to_numpy(), np.ones((8, 8)))


# -- checkpoint-based recovery (replication=0) --------------------------------


class TestCheckpointRecovery:
    def test_unreplicated_array_recovers_from_checkpoint(self, machine):
        install_recovery(machine)
        arr = make_array(machine, replication=0)
        ref = np.arange(64, dtype=float).reshape(8, 8)
        arr.from_numpy(ref)
        arr.checkpoint()

        machine.fail(3)

        state = durability(machine, arr)
        assert state.processors == (0, 1, 2, 4)
        assert np.array_equal(arr.to_numpy(), ref)

    def test_unreplicated_array_without_checkpoint_is_unrecoverable(
        self, machine
    ):
        coordinator = install_recovery(machine)
        arr = make_array(machine, replication=0)
        arr.from_numpy(np.ones((8, 8)))
        machine.fail(3)
        state = durability(machine, arr)
        assert state.unrecovered  # recorded, not silently dropped
        assert state.sections_rebuilt == 0
        assert not coordinator.recoveries[-1]["ok"]


# -- degenerate topologies ----------------------------------------------------


class TestNoSpare:
    def test_no_spare_processor_is_recorded_not_raised(self):
        m = Machine(4, default_recv_timeout=10)
        am_util.load_all(m)
        coordinator = install_recovery(m)
        arr = make_array(m, replication=1)
        arr.from_numpy(np.ones((8, 8)))
        m.fail(2)  # every VP already hosts a section: nowhere to rebuild
        state = durability(m, arr)
        assert state.unrecovered[0][0] == 2
        assert "no spare processor" in state.unrecovered[0][1]
        assert state.sections_rebuilt == 0
        event = coordinator.recoveries[-1]
        assert not event["ok"] and event["error"] == "no spare processor"


# -- idempotent installation --------------------------------------------------


class TestIdempotentInstall:
    def test_install_recovery_returns_same_coordinator(self, machine):
        assert install_recovery(machine) is install_recovery(machine)

    def test_double_install_does_not_double_rebuild(self, machine):
        c = install_recovery(machine)
        c.install()  # explicit second install of the same coordinator
        install_recovery(machine)  # and a third via the helper
        arr = make_array(machine, replication=1)
        arr.from_numpy(np.ones((8, 8)))
        machine.fail(2)
        state = durability(machine, arr)
        assert state.sections_rebuilt == 1  # exactly the one lost section
        assert sum(1 for e in c.recoveries if e["ok"]) == 1

    def test_two_distinct_coordinators_still_rebuild_once(self, machine):
        from repro.faults import RecoveryCoordinator

        a = RecoveryCoordinator(machine).install()
        b = RecoveryCoordinator(machine).install()
        arr = make_array(machine, replication=1)
        arr.from_numpy(np.ones((8, 8)))
        machine.fail(2)
        state = durability(machine, arr)
        assert state.sections_rebuilt == 1
        rebuilt = [
            e for c in (a, b) for e in c.recoveries if e.get("sections")
        ]
        assert len(rebuilt) == 1

    def test_double_fail_notifies_listeners_once(self, machine):
        seen = []
        machine.add_failure_listener(seen.append)
        machine.fail(5)
        machine.fail(5)
        assert seen == [5]

    def test_uninstall_stops_recovery(self, machine):
        coordinator = install_recovery(machine)
        coordinator.uninstall()
        arr = make_array(machine, replication=1)
        arr.from_numpy(np.ones((8, 8)))
        machine.fail(2)
        assert durability(machine, arr).sections_rebuilt == 0


# -- scripted kills -----------------------------------------------------------


class TestScriptedKill:
    def test_kill_during_writes_yields_bit_identical_array(self, machine):
        """A scripted FaultPlan kill mid-write-stream: after recovery the
        array matches the fault-free run bit for bit (acceptance check)."""
        install_recovery(machine)
        arr = make_array(machine, replication=1)
        ref = np.zeros((8, 8))
        arr.from_numpy(ref)

        plan = FaultPlan(seed=7, kills=(KillSpec(2, after=3, on="recv"),))
        expected = np.zeros((8, 8))
        with FaultyTransport(machine, plan) as ft:
            for i in range(8):
                row = np.full((1, 8), float(i + 1))
                expected[i : i + 1, :] = row
                for _ in range(4):  # bounded retry per write
                    try:
                        status = am_user.write_region(
                            machine, arr.array_id, [(i, i + 1), (0, 8)], row
                        )
                    except (ProcessorFailedError, TimeoutError):
                        continue
                    if status is Status.OK:
                        break
                else:
                    pytest.fail(f"row {i} never committed")
        assert ft.stats.killed == [2]
        state = durability(machine, arr)
        assert 2 not in state.processors
        assert np.array_equal(arr.to_numpy(), expected)
        assert (
            am_user.verify_array(machine, arr.array_id, 2, [0, 0, 0, 0], "row")
            is Status.OK
        )


# -- supervised retry with restore_arrays -------------------------------------


class TestSupervisedRestore:
    def test_retry_rolls_back_torn_writes(self, machine):
        """A non-idempotent increment program whose first attempt fails
        *after* mutating the array: with ``restore_arrays`` the retry
        starts from the pre-attempt checkpoint, so the final array shows
        exactly one increment — never the torn two."""
        arr = make_array(machine, replication=0)
        ref = np.arange(64, dtype=float).reshape(8, 8)
        arr.from_numpy(ref)

        first_attempt = [True]
        lock = threading.Lock()

        def bump(ctx, processors, num, index, local, status):
            local.interior()[:] += 1.0  # side effect lands before failure
            status.set(int(Status.OK))
            if index == 0:
                with lock:
                    fail_now, first_attempt[0] = first_attempt[0], False
                if fail_now:
                    status.set(int(Status.ERROR))

        result = supervised_call(
            machine,
            [0, 1, 2, 3],
            bump,
            [[0, 1, 2, 3], 4, Index(), Local(arr.array_id), StatusVar()],
            RetryPolicy(max_attempts=3, base_delay=0.001),
            restore_arrays=[arr],
        )
        assert result.status is Status.OK
        assert len(result.attempts) == 2
        assert np.array_equal(arr.to_numpy(), ref + 1.0)

    def test_without_restore_the_tear_is_visible(self, machine):
        """Negative control for the rollback test: the same failing
        program without ``restore_arrays`` double-applies the increment."""
        arr = make_array(machine, replication=0)
        ref = np.arange(64, dtype=float).reshape(8, 8)
        arr.from_numpy(ref)

        first_attempt = [True]
        lock = threading.Lock()

        def bump(ctx, processors, num, index, local, status):
            local.interior()[:] += 1.0
            status.set(int(Status.OK))
            if index == 0:
                with lock:
                    fail_now, first_attempt[0] = first_attempt[0], False
                if fail_now:
                    status.set(int(Status.ERROR))

        result = supervised_call(
            machine,
            [0, 1, 2, 3],
            bump,
            [[0, 1, 2, 3], 4, Index(), Local(arr.array_id), StatusVar()],
            RetryPolicy(max_attempts=3, base_delay=0.001),
        )
        assert result.status is Status.OK
        assert np.array_equal(arr.to_numpy(), ref + 2.0)

    def test_restore_arrays_requires_retry(self, machine):
        from repro.calls import distributed_call

        arr = make_array(machine, replication=0)

        def noop(ctx, procs_):
            pass

        with pytest.raises(ValueError, match="restore_arrays"):
            distributed_call(
                machine, [0, 1, 2, 3], noop, [[0, 1, 2, 3]],
                restore_arrays=[arr],
            )
