"""Timeout paths: recv deadlines, configurable defaults, call expiry."""

from __future__ import annotations

import time

import pytest

from repro.arrays import am_util
from repro.calls import Index, Reduce, distributed_call
from repro.status import Status
from repro.vp.machine import Machine
from repro.vp.mailbox import Mailbox, default_recv_timeout
from repro.vp.message import MessageType


class TestRecvTimeoutMessages:
    def test_selective_recv_timeout_names_the_filter(self):
        box = Mailbox(owner=3)
        with pytest.raises(TimeoutError) as info:
            box.recv(
                mtype=MessageType.PCN, tag="tick", source=1, timeout=0.05
            )
        text = str(info.value)
        assert "processor 3" in text
        assert "selective recv" in text
        assert "tag='tick'" in text
        assert "source=1" in text
        assert "0.05" in text

    def test_untyped_recv_timeout_message(self):
        box = Mailbox(owner=5)
        with pytest.raises(TimeoutError, match="processor 5: untyped recv"):
            box.recv_untyped(timeout=0.05)


class TestConfigurableDeadline:
    def test_builtin_default_is_30s(self, monkeypatch):
        monkeypatch.delenv("REPRO_RECV_TIMEOUT", raising=False)
        assert default_recv_timeout() == 30.0

    def test_env_var_overrides_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_RECV_TIMEOUT", "0.07")
        assert default_recv_timeout() == 0.07
        box = Mailbox(owner=0)
        started = time.monotonic()
        with pytest.raises(TimeoutError, match="0.07"):
            box.recv(tag="never")
        assert time.monotonic() - started < 5.0

    def test_malformed_env_var_ignored(self, monkeypatch):
        monkeypatch.setenv("REPRO_RECV_TIMEOUT", "not-a-number")
        assert default_recv_timeout() == 30.0
        monkeypatch.setenv("REPRO_RECV_TIMEOUT", "-3")
        assert default_recv_timeout() == 30.0

    def test_machine_parameter_reaches_every_mailbox(self):
        machine = Machine(3, default_recv_timeout=0.05)
        for node in machine.processors():
            assert node.mailbox.default_timeout == 0.05
        started = time.monotonic()
        with pytest.raises(TimeoutError):
            machine.processor(1).mailbox.recv(tag="never")
        assert time.monotonic() - started < 5.0

    def test_explicit_timeout_beats_machine_default(self):
        machine = Machine(2, default_recv_timeout=60.0)
        with pytest.raises(TimeoutError, match="0.05"):
            machine.processor(0).mailbox.recv(tag="never", timeout=0.05)


class TestDistributedCallExpiry:
    @pytest.fixture
    def m4(self):
        machine = Machine(4, default_recv_timeout=10.0)
        am_util.load_all(machine)
        return machine

    def test_call_timeout_expires(self, m4):
        def stuck(ctx):
            if ctx.index == 0:
                time.sleep(1.5)

        started = time.monotonic()
        with pytest.raises(TimeoutError):
            distributed_call(
                m4, am_util.node_array(0, 1, 4), stuck, [], timeout=0.2
            )
        assert time.monotonic() - started < 5.0

    def test_machine_reusable_after_call_timeout(self, m4):
        def stuck(ctx):
            if ctx.index == 1:
                time.sleep(0.8)

        with pytest.raises(TimeoutError):
            distributed_call(
                m4, am_util.node_array(0, 1, 4), stuck, [], timeout=0.2
            )
        time.sleep(1.0)  # let the stale copy drain

        def healthy(ctx, index, out):
            out[0] = float(index + 1)

        result = distributed_call(
            m4,
            am_util.node_array(0, 1, 4),
            healthy,
            [Index(), Reduce("double", 1, "sum")],
        )
        assert result.status is Status.OK
        assert result.reductions[0] == 10.0

    def test_machine_default_governs_call_recv(self):
        """With no explicit call timeout, a blocked DP recv dies on the
        machine's configured deadline instead of the built-in 30s."""
        machine = Machine(2, default_recv_timeout=0.2)
        am_util.load_all(machine)

        def never_receives(ctx, index):
            if ctx.index == 0:
                ctx.comm.recv(source_rank=1, tag="ghost")

        started = time.monotonic()
        result = distributed_call(
            machine,
            am_util.node_array(0, 1, 2),
            never_receives,
            [Index()],
        )
        # The blocked copy times out quickly and reports ERROR (§4.1.2
        # failure-as-value) instead of hanging toward 30s.
        assert result.status is Status.ERROR
        assert time.monotonic() - started < 10.0
