"""RetryPolicy and supervised distributed calls under injected faults."""

from __future__ import annotations

import pytest

from repro.arrays import am_util
from repro.calls import Index, Reduce, distributed_call
from repro.faults import (
    FaultPlan,
    FaultyTransport,
    RetryPolicy,
    run_with_retry,
    supervised_call,
)
from repro.status import ProcessorFailedError, Status
from repro.vp.machine import Machine
from repro.vp.message import MessageType


class TestRetryPolicy:
    def test_backoff_schedule_is_deterministic(self):
        a = RetryPolicy(max_attempts=5, base_delay=0.01, seed=3)
        b = RetryPolicy(max_attempts=5, base_delay=0.01, seed=3)
        assert [a.delay(i) for i in range(5)] == [b.delay(i) for i in range(5)]

    def test_backoff_grows_exponentially(self):
        policy = RetryPolicy(base_delay=0.01, multiplier=2.0, jitter=0.0)
        assert policy.delay(1) == pytest.approx(2 * policy.delay(0))
        assert policy.delay(2) == pytest.approx(4 * policy.delay(0))

    def test_jitter_bounded(self):
        policy = RetryPolicy(base_delay=0.01, multiplier=1.0, jitter=0.5)
        for i in range(10):
            assert 0.01 <= policy.delay(i) <= 0.015

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.0)


class TestRunWithRetry:
    def test_succeeds_first_try_no_sleep(self):
        sleeps = []
        result, history = run_with_retry(
            lambda: "ok",
            RetryPolicy(max_attempts=3),
            classify=lambda r: Status.OK,
            sleep=sleeps.append,
        )
        assert result == "ok"
        assert len(history) == 1
        assert sleeps == []

    def test_retries_until_ok(self):
        calls = {"n": 0}

        def attempt():
            calls["n"] += 1
            return Status.OK if calls["n"] >= 3 else Status.ERROR

        result, history = run_with_retry(
            attempt,
            RetryPolicy(max_attempts=5),
            classify=lambda r: r,
            sleep=lambda s: None,
        )
        assert result is Status.OK
        assert [h.status for h in history] == [
            Status.ERROR, Status.ERROR, Status.OK,
        ]

    def test_exhaustion_returns_last_failure(self):
        def attempt():
            raise ProcessorFailedError("node down", processor=1)

        last, history = run_with_retry(
            attempt,
            RetryPolicy(max_attempts=2),
            classify=lambda r: Status.OK,
            sleep=lambda s: None,
        )
        assert isinstance(last, ProcessorFailedError)
        assert len(history) == 2
        assert all(h.status is Status.ERROR for h in history)


@pytest.fixture
def m4():
    machine = Machine(4, default_recv_timeout=1.0)
    am_util.load_all(machine)
    return machine


def ring_sum(ctx, index, out):
    """Each copy passes its value around the DP ring — drop-sensitive."""
    right = (ctx.index + 1) % ctx.num_procs
    left = (ctx.index - 1) % ctx.num_procs
    total = float(ctx.index)
    value = float(ctx.index)
    for _ in range(ctx.num_procs - 1):
        ctx.comm.send(right, value, tag="ring")
        value = ctx.comm.recv(source_rank=left, tag="ring")
        total += value
    out[0] = total


class TestSupervisedDistributedCall:
    def test_requires_idempotent_declaration(self, m4):
        with pytest.raises(ValueError, match="idempotent"):
            distributed_call(
                m4,
                am_util.node_array(0, 1, 4),
                lambda ctx: None,
                [],
                retry=RetryPolicy(),
            )

    def test_clean_machine_single_attempt(self, m4):
        result = supervised_call(
            m4,
            am_util.node_array(0, 1, 4),
            ring_sum,
            [Index(), Reduce("double", 1, "max")],
            RetryPolicy(max_attempts=3, base_delay=0.001),
        )
        assert result.status is Status.OK
        assert result.reductions[0] == 6.0  # 0+1+2+3
        assert len(result.attempts) == 1

    def test_acceptance_10pct_dp_drop_converges_deterministically(self):
        """With a seeded plan dropping 10% of DP messages, the supervised
        idempotent call still returns OK and the right answer — and the
        attempt count is identical across runs with the same seed."""
        procs = am_util.node_array(0, 1, 4)
        policy = RetryPolicy(max_attempts=3, base_delay=0.001, seed=42)

        def one_run():
            # A short recv deadline makes every copy of a perturbed
            # attempt finish (with ERROR) before the next attempt starts,
            # so per-channel fault ordinals line up across runs.
            machine = Machine(4, default_recv_timeout=0.4)
            am_util.load_all(machine)
            plan = FaultPlan(
                seed=15, drop=0.10, mtypes=(MessageType.DATA_PARALLEL,)
            )
            with FaultyTransport(machine, plan) as ft:
                result = supervised_call(
                    machine,
                    procs,
                    ring_sum,
                    [Index(), Reduce("double", 1, "max")],
                    policy,
                    timeout=5.0,
                )
            return result, ft.stats.dropped

        first, dropped_first = one_run()
        assert first.status is Status.OK
        assert first.reductions[0] == 6.0

        # Seed 15 needs a real retry: attempt 1 is perturbed, attempt 2
        # succeeds — so this test exercises re-execution, not luck.
        assert len(first.attempts) > 1
        assert dropped_first > 0

        second, dropped_second = one_run()
        assert second.status is Status.OK
        assert second.reductions[0] == 6.0
        assert len(first.attempts) == len(second.attempts)
        assert dropped_first == dropped_second

    def test_supervision_exhaustion_is_failure_as_value(self, m4):
        """Supervision never raises: a plan that drops everything yields a
        Status.ERROR result with the attempt history attached."""
        plan = FaultPlan(
            seed=7, drop=1.0, mtypes=(MessageType.DATA_PARALLEL,)
        )
        with FaultyTransport(m4, plan):
            result = supervised_call(
                m4,
                am_util.node_array(0, 1, 4),
                ring_sum,
                [Index(), Reduce("double", 1, "max")],
                RetryPolicy(max_attempts=2, base_delay=0.001),
                timeout=0.3,
            )
        assert result.status is Status.ERROR
        assert len(result.attempts) == 2

    def test_machine_reusable_after_exhausted_supervision(self, m4):
        plan = FaultPlan(
            seed=7, drop=1.0, mtypes=(MessageType.DATA_PARALLEL,)
        )
        with FaultyTransport(m4, plan):
            supervised_call(
                m4,
                am_util.node_array(0, 1, 4),
                ring_sum,
                [Index(), Reduce("double", 1, "max")],
                RetryPolicy(max_attempts=1),
                timeout=0.3,
            )
        result = supervised_call(
            m4,
            am_util.node_array(0, 1, 4),
            ring_sum,
            [Index(), Reduce("double", 1, "max")],
            RetryPolicy(max_attempts=2, base_delay=0.001),
        )
        assert result.status is Status.OK
