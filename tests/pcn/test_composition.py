"""Sequential, parallel, and choice composition (§A.1)."""

from __future__ import annotations

import threading
import time

import pytest

from repro.pcn.composition import (
    GuardSuspend,
    choice,
    default,
    need,
    par,
    par_for,
    seq,
)
from repro.pcn.defvar import DefVar
from repro.pcn.process import spawn


class TestSeq:
    def test_runs_in_order(self):
        log = []
        seq(lambda: log.append(1), lambda: log.append(2), lambda: log.append(3))
        assert log == [1, 2, 3]

    def test_returns_results(self):
        assert seq(lambda: "a", lambda: "b") == ["a", "b"]

    def test_empty_seq(self):
        assert seq() == []

    def test_exception_stops_sequence(self):
        log = []

        def boom():
            raise RuntimeError("boom")

        with pytest.raises(RuntimeError):
            seq(lambda: log.append(1), boom, lambda: log.append(2))
        assert log == [1]


class TestPar:
    def test_all_statements_execute(self):
        results = set()
        lock = threading.Lock()

        def make(i):
            def body():
                with lock:
                    results.add(i)

            return body

        par(*[make(i) for i in range(10)])
        assert results == set(range(10))

    def test_par_waits_for_all(self):
        """§3.1.1.1: parallel composition terminates only when every
        process has terminated."""
        done = []

        def slow():
            time.sleep(0.1)
            done.append("slow")

        par(slow, lambda: done.append("fast"))
        assert sorted(done) == ["fast", "slow"]

    def test_par_returns_results_in_statement_order(self):
        assert par(lambda: 1, lambda: 2, lambda: 3) == [1, 2, 3]

    def test_par_propagates_exceptions(self):
        def boom():
            raise ValueError("inside par")

        with pytest.raises(ValueError, match="inside par"):
            par(lambda: None, boom)

    def test_par_statements_run_concurrently(self):
        """Two statements that rendezvous via defvars must overlap."""
        a, b = DefVar("a"), DefVar("b")

        def left():
            a.define(1)
            return b.read()

        def right():
            b.define(2)
            return a.read()

        assert par(left, right) == [2, 1]

    def test_par_for(self):
        results = par_for(5, lambda i: i * i)
        assert results == [0, 1, 4, 9, 16]

    def test_nested_composition(self):
        """{|| {; a, b}, {; c, d}} — the §A.1 nesting example."""
        log = []
        lock = threading.Lock()

        def note(x):
            with lock:
                log.append(x)

        par(
            lambda: seq(lambda: note("a"), lambda: note("b")),
            lambda: seq(lambda: note("c"), lambda: note("d")),
        )
        assert log.index("a") < log.index("b")
        assert log.index("c") < log.index("d")
        assert sorted(log) == ["a", "b", "c", "d"]


class TestChoice:
    def test_first_true_guard_wins(self):
        result = choice(
            (lambda: False, lambda: "first"),
            (lambda: True, lambda: "second"),
            (lambda: True, lambda: "third"),
        )
        assert result == "second"

    def test_boolean_guards_accepted(self):
        assert choice((False, lambda: "no"), (True, lambda: "yes")) == "yes"

    def test_default_fires_when_all_false(self):
        result = choice(
            (lambda: False, lambda: "a"),
            (default, lambda: "the default"),
        )
        assert result == "the default"

    def test_no_default_all_false_is_noop(self):
        """PCN semantics: choice with no true guard and no default does
        nothing."""
        assert choice((lambda: False, lambda: "x")) is None

    def test_two_defaults_rejected(self):
        with pytest.raises(ValueError):
            choice((default, lambda: 1), (default, lambda: 2))

    def test_guard_suspends_on_undefined_variable(self):
        """A guard needing an undefined variable suspends the choice until
        the variable is defined, then re-evaluates (PCN suspension)."""
        x = DefVar("x")
        log = []

        def chooser():
            result = choice(
                (lambda: need(x) > 0, lambda: "positive"),
                (lambda: need(x) <= 0, lambda: "non-positive"),
            )
            log.append(result)

        proc = spawn(chooser)
        time.sleep(0.05)
        assert log == []  # still suspended
        x.define(5)
        proc.join(timeout=5)
        assert log == ["positive"]

    def test_default_not_taken_while_any_guard_suspended(self):
        """default fires only when every guard is *definitely* false —
        a suspended guard blocks it."""
        x = DefVar("x")

        def chooser():
            return choice(
                (lambda: need(x) == 1, lambda: "one"),
                (default, lambda: "default"),
            )

        proc = spawn(chooser)
        time.sleep(0.05)
        x.define(1)
        assert proc.join(timeout=5) == "one"

    def test_default_taken_after_suspension_resolves_false(self):
        x = DefVar("x")

        def chooser():
            return choice(
                (lambda: need(x) == 1, lambda: "one"),
                (default, lambda: "default"),
            )

        proc = spawn(chooser)
        x.define(2)
        assert proc.join(timeout=5) == "default"

    def test_choice_timeout_when_never_defined(self):
        x = DefVar("never")
        with pytest.raises(TimeoutError):
            choice(
                (lambda: need(x) == 1, lambda: "one"),
                timeout=0.05,
            )


class TestNeed:
    def test_need_plain_value_passthrough(self):
        assert need(5) == 5

    def test_need_defined_var(self):
        v = DefVar()
        v.define(3)
        assert need(v) == 3

    def test_need_undefined_raises_suspend(self):
        v = DefVar()
        with pytest.raises(GuardSuspend) as info:
            need(v)
        assert info.value.variables == [v]
