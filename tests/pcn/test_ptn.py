"""The PTN transformation renderer (§5.2.4, §F), pinned against the
thesis' worked examples xform_ex2/3/4."""

from __future__ import annotations

import pytest

from repro.arrays.record import ArrayID
from repro.pcn.defvar import DefVar
from repro.pcn.ptn import transform_distributed_call


AA = ArrayID(0, 7)


class TestXformEx2:
    """§5.2.4 'Distributed call with index and local-section parameters':
    am_user:distributed_call(Processors, [], "cpgm",
        {Processors, P, "index", {"local", AA}}, [], [], Status)."""

    @pytest.fixture
    def result(self):
        return transform_distributed_call(
            ["Processors", "P", "index", ("local", AA)],
            module="xform_ex2",
            program="cpgm",
        )

    def test_call_block_invokes_do_all_with_wrapper_and_combine(self, result):
        assert "am_util:do_all" in result.call_block
        assert result.wrapper_name in result.call_block
        assert result.combine_name in result.call_block

    def test_status_unpacked_from_singleton_tuple(self, result):
        # "the status variable returned by the do_all call (_l1) is a
        # tuple with a single element whose value is used to set Status"
        assert "Status = _l1[0]" in result.call_block
        assert "_l1[1]" not in result.call_block

    def test_second_level_calls_find_local_then_program(self, result):
        body = result.wrapper_second
        assert "am_user:find_local" in body
        assert "cpgm(" in body
        assert body.index("find_local") < body.index("cpgm(")

    def test_index_forwarded(self, result):
        assert "Index" in result.wrapper_second

    def test_result_tuple_is_singleton(self, result):
        assert "make_tuple(1,_l1)" in result.wrapper_second

    def test_combine_uses_default_max(self, result):
        # "the combine program combines the single-element tuples ...
        # using the default status-combining program am_util:max"
        assert "am_util:max(C_in1[0],C_in2[0],C_out[0])" in result.combine
        assert "length(C_in1)==1" in result.combine

    def test_failure_branches_yield_invalid(self, result):
        assert "_l1 = {1}" in result.wrapper_first
        assert "_l1 = {1}" in result.wrapper_second
        assert "C_out = {1}" in result.combine


class TestXformEx3:
    """§5.2.4 with an added "status" parameter."""

    @pytest.fixture
    def result(self):
        return transform_distributed_call(
            ["Processors", "P", ("local", AA), "status"],
            module="xform_ex3",
            program="cpgm",
        )

    def test_local_status_declared(self, result):
        assert "int local_status" in result.wrapper_second

    def test_program_receives_local_status(self, result):
        assert "local_status)" in result.wrapper_second

    def test_status_slot_carries_program_status(self, result):
        assert "_l1[0] = local_status" in result.wrapper_second

    def test_still_singleton_tuple(self, result):
        assert "make_tuple(1,_l1)" in result.wrapper_second


class TestXformEx4:
    """§5.2.4 with status + one reduction variable of length 10."""

    @pytest.fixture
    def result(self):
        rr = DefVar("RR")

        def combine_it(a, b):
            return a + b

        return transform_distributed_call(
            [
                "Processors",
                "P",
                ("local", AA),
                "status",
                ("reduce", "double", 10, combine_it, rr),
            ],
            module="xform_ex4",
            program="cpgm",
            combine_module="am_util",
            combine_program="max",
        )

    def test_two_element_tuple(self, result):
        # "the status variable returned by the do_all call is a tuple
        # with two elements"
        assert "make_tuple(2,_l1)" in result.wrapper_second
        assert "length(C_in1)==2" in result.combine

    def test_reduction_unpacked_in_call_block(self, result):
        assert "RR = _l1[1]" in result.call_block

    def test_reduction_length_travels_through_first_level(self, result):
        # "The correct value, 10, is passed from the do_all call to the
        # first-level wrapper program as part of the parameters tuple."
        assert "10" in result.call_block
        assert "_l8a" in result.wrapper_first
        assert "_l8a" in result.wrapper_second

    def test_local_reduction_buffer_declared_with_length(self, result):
        assert "double _l7a[_l8a]" in result.wrapper_second

    def test_combine_merges_both_slots_with_their_programs(self, result):
        assert "am_util:max(C_in1[0],C_in2[0],C_out[0])" in result.combine
        assert "combine_it(C_in1[1],C_in2[1],C_out[1])" in result.combine


class TestGeneralShape:
    def test_unique_program_names_across_transformations(self):
        a = transform_distributed_call(["index"])
        b = transform_distributed_call(["index"])
        assert a.wrapper_name != b.wrapper_name
        assert a.combine_name != b.combine_name

    def test_programs_concatenation(self):
        result = transform_distributed_call(["index"])
        text = result.programs()
        assert result.wrapper_first in text
        assert result.wrapper_second in text
        assert result.combine in text

    def test_multiple_reductions(self):
        result = transform_distributed_call(
            [
                ("reduce", "double", 2, "sum"),
                ("reduce", "int", 1, "min"),
            ]
        )
        assert "make_tuple(3,_l1)" in result.wrapper_second
        assert "double _l7a[_l8a]" in result.wrapper_second
        assert "int _l7b[_l8b]" in result.wrapper_second
        assert "sum(C_in1[1]" in result.combine
        assert "min(C_in1[2]" in result.combine

    def test_no_status_packs_zero(self):
        result = transform_distributed_call(["index"])
        assert "_l1[0] = 0" in result.wrapper_second
