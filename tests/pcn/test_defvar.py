"""Definitional and mutable variables (§3.1.1.2-§3.1.1.4, §A.2)."""

from __future__ import annotations

import threading
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pcn.defvar import DefVar, Mutable, data, resolve, wait_all
from repro.status import SharedVariableConflictError, SingleAssignmentError


class TestDefVarBasics:
    def test_starts_undefined(self):
        v = DefVar("x")
        assert not v.data()

    def test_define_then_read(self):
        v = DefVar("x")
        v.define(42)
        assert v.read() == 42
        assert v.data()

    def test_read_returns_same_value_every_time(self):
        v = DefVar()
        v.define("hello")
        assert v.read() == v.read() == "hello"

    def test_double_definition_raises(self):
        v = DefVar("x")
        v.define(1)
        with pytest.raises(SingleAssignmentError):
            v.define(2)

    def test_double_definition_same_value_still_raises(self):
        # PCN definition is single-assignment, not idempotent-assignment.
        v = DefVar()
        v.define(1)
        with pytest.raises(SingleAssignmentError):
            v.define(1)

    def test_peek_on_undefined_raises(self):
        with pytest.raises(ValueError):
            DefVar().peek()

    def test_none_is_a_legal_value(self):
        v = DefVar()
        v.define(None)
        assert v.data()
        assert v.read() is None

    def test_read_timeout_on_never_defined(self):
        v = DefVar("never")
        with pytest.raises(TimeoutError):
            v.read(timeout=0.05)

    def test_repr_states(self):
        v = DefVar("myvar")
        assert "undefined" in repr(v)
        v.define(3)
        assert "3" in repr(v)


class TestDefVarSuspension:
    def test_reader_suspends_until_definition(self):
        """The §3.1.1.2 semantics: a process that requires the value of an
        undefined variable is suspended until the variable is defined."""
        v = DefVar("x")
        order = []

        def reader():
            order.append("reading")
            value = v.read()
            order.append(("got", value))

        t = threading.Thread(target=reader)
        t.start()
        time.sleep(0.05)
        order.append("defining")
        v.define(99)
        t.join(timeout=5)
        assert order == ["reading", "defining", ("got", 99)]

    def test_many_readers_all_get_same_value(self):
        v = DefVar()
        results = []
        lock = threading.Lock()

        def reader():
            value = v.read()
            with lock:
                results.append(value)

        threads = [threading.Thread(target=reader) for _ in range(8)]
        for t in threads:
            t.start()
        v.define("shared")
        for t in threads:
            t.join(timeout=5)
        assert results == ["shared"] * 8

    def test_on_define_callback_after(self):
        v = DefVar()
        seen = []
        v.on_define(seen.append)
        assert seen == []
        v.define(7)
        assert seen == [7]

    def test_on_define_callback_immediate_when_defined(self):
        v = DefVar()
        v.define(7)
        seen = []
        v.on_define(seen.append)
        assert seen == [7]

    def test_define_with_defvar_aliases(self):
        """Defining X := Y propagates Y's eventual value to X."""
        x, y = DefVar("x"), DefVar("y")
        x.define(y)
        assert not x.data()
        y.define(5)
        assert x.read() == 5

    def test_wait_all(self):
        vs = [DefVar() for _ in range(4)]
        for i, v in enumerate(vs):
            v.define(i)
        assert wait_all(iter(vs)) == [0, 1, 2, 3]


class TestDataGuardAndResolve:
    def test_data_on_plain_values(self):
        assert data(3)
        assert data("s")
        assert data(None)

    def test_data_on_defvar(self):
        v = DefVar()
        assert not data(v)
        v.define(0)
        assert data(v)

    def test_resolve_plain(self):
        assert resolve(10) == 10

    def test_resolve_defvar(self):
        v = DefVar()
        v.define(10)
        assert resolve(v) == 10


class TestDefVarRace:
    def test_concurrent_define_exactly_one_wins(self):
        """Racing definitions: exactly one succeeds, others raise."""
        for _ in range(20):
            v = DefVar()
            outcomes = []
            lock = threading.Lock()
            barrier = threading.Barrier(4)

            def attempt(i):
                barrier.wait()
                try:
                    v.define(i)
                    with lock:
                        outcomes.append(("ok", i))
                except SingleAssignmentError:
                    with lock:
                        outcomes.append(("fail", i))

            threads = [
                threading.Thread(target=attempt, args=(i,)) for i in range(4)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=5)
            winners = [o for o in outcomes if o[0] == "ok"]
            assert len(winners) == 1
            assert v.read() == winners[0][1]


class TestMutable:
    def test_owner_thread_may_write(self):
        m = Mutable(0)
        m.set(1)
        m.set(2)
        assert m.get() == 2

    def test_foreign_thread_write_raises(self):
        """§3.1.1.4: concurrent sharers must not modify a shared mutable."""
        m = Mutable(0)
        error = []

        def writer():
            try:
                m.set(5)
            except SharedVariableConflictError as exc:
                error.append(exc)

        t = threading.Thread(target=writer)
        t.start()
        t.join(timeout=5)
        assert len(error) == 1
        assert m.get() == 0

    def test_foreign_thread_read_is_fine(self):
        m = Mutable(42)
        seen = []
        t = threading.Thread(target=lambda: seen.append(m.get()))
        t.start()
        t.join(timeout=5)
        assert seen == [42]

    def test_transfer_allows_new_owner(self):
        m = Mutable(0)
        m.transfer(None)
        done = []

        def writer():
            m.adopt()
            m.set(9)
            done.append(True)

        t = threading.Thread(target=writer)
        t.start()
        t.join(timeout=5)
        assert done and m.get() == 9

    def test_adopt_when_owned_by_other_raises(self):
        m = Mutable(0)  # owned by this thread
        errors = []

        def other():
            try:
                m.adopt()
            except SharedVariableConflictError as exc:
                errors.append(exc)

        t = threading.Thread(target=other)
        t.start()
        t.join(timeout=5)
        assert len(errors) == 1


@settings(max_examples=50, deadline=None)
@given(st.lists(st.integers() | st.text() | st.none(), min_size=1, max_size=8))
def test_property_defvars_deliver_exact_values(values):
    """Whatever is defined is exactly what every reader sees."""
    variables = [DefVar(f"v{i}") for i in range(len(values))]
    for var, value in zip(variables, values):
        var.define(value)
    assert [v.read() for v in variables] == values
