"""Definitional streams (§A.3)."""

from __future__ import annotations


import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pcn.process import spawn
from repro.pcn.streams import (
    EMPTY,
    Stream,
    StreamClosed,
    StreamWriter,
    merge_streams,
    stream_from_iterable,
    stream_pair,
    stream_to_list,
)


class TestStreamBasics:
    def test_put_then_get(self):
        s = Stream()
        tail = s.put("a")
        head, rest = s.get()
        assert head == "a"
        assert rest is tail

    def test_closed_stream_raises_on_get(self):
        s = Stream()
        s.close()
        with pytest.raises(StreamClosed):
            s.get()

    def test_iteration_over_finite_stream(self):
        s = stream_from_iterable([1, 2, 3])
        assert list(s) == [1, 2, 3]

    def test_empty_stream_iterates_to_nothing(self):
        assert list(stream_from_iterable([])) == []

    def test_try_get_on_undefined(self):
        s = Stream()
        assert s.try_get() is None

    def test_try_get_on_defined(self):
        s = Stream()
        s.put(5)
        head, _tail = s.try_get()
        assert head == 5

    def test_try_get_on_closed_raises(self):
        s = Stream()
        s.close()
        with pytest.raises(StreamClosed):
            s.try_get()

    def test_closed_predicate(self):
        s = Stream()
        s.close()
        assert s.closed()
        assert s.is_definitely_closed()

    def test_is_definitely_closed_nonblocking_on_undefined(self):
        assert not Stream().is_definitely_closed()

    def test_stream_reusable_by_multiple_consumers(self):
        """Streams are definitional: two consumers see identical contents."""
        s = stream_from_iterable(list(range(10)))
        assert list(s) == list(s) == list(range(10))


class TestStreamWriter:
    def test_send_sequence(self):
        s, w = stream_pair()
        w.send_all("abc")
        w.close()
        assert list(s) == ["a", "b", "c"]

    def test_send_after_close_raises(self):
        _s, w = stream_pair()
        w.close()
        with pytest.raises(StreamClosed):
            w.send(1)

    def test_double_close_is_noop(self):
        s, w = stream_pair()
        w.close()
        w.close()
        assert list(s) == []

    def test_splice_chains_streams(self):
        """The §6.2 idiom Outstream = [..items..|Outstream_tail]."""
        tail_stream = stream_from_iterable([3, 4])
        s, w = stream_pair()
        w.send(1)
        w.send(2)
        w.splice(tail_stream)
        assert list(s) == [1, 2, 3, 4]

    def test_splice_on_closed_raises(self):
        _s, w = stream_pair()
        w.close()
        with pytest.raises(StreamClosed):
            w.splice(Stream())


class TestProducerConsumer:
    def test_consumer_suspends_until_producer_sends(self):
        s, w = stream_pair()
        results = []

        consumer = spawn(lambda: results.extend(s))
        w.send(10)
        w.send(20)
        w.close()
        consumer.join(timeout=5)
        assert results == [10, 20]

    def test_pipeline_of_stream_processes(self):
        """producer -> doubler -> consumer, all concurrent."""
        s1, w1 = stream_pair()
        s2, w2 = stream_pair()

        def doubler():
            for item in s1:
                w2.send(item * 2)
            w2.close()

        results = []
        p1 = spawn(doubler)
        p2 = spawn(lambda: results.extend(s2))
        w1.send_all(range(5))
        w1.close()
        p1.join(timeout=5)
        p2.join(timeout=5)
        assert results == [0, 2, 4, 6, 8]

    def test_stream_to_list_with_limit(self):
        s, w = stream_pair()
        w.send_all(range(100))
        # No close needed: limit bounds the read.
        assert stream_to_list(s, limit=5) == [0, 1, 2, 3, 4]


class TestMerge:
    def test_merge_two_streams_is_order_preserving_per_input(self):
        a = stream_from_iterable([1, 2, 3])
        b = stream_from_iterable(["x", "y"])
        out, w = stream_pair()
        merger = spawn(merge_streams, a, b, w)
        merger.join(timeout=5)
        merged = list(out)
        assert [m for m in merged if isinstance(m, int)] == [1, 2, 3]
        assert [m for m in merged if isinstance(m, str)] == ["x", "y"]
        assert len(merged) == 5

    def test_merge_with_one_empty(self):
        a = stream_from_iterable([])
        b = stream_from_iterable([1])
        out, w = stream_pair()
        spawn(merge_streams, a, b, w).join(timeout=5)
        assert list(out) == [1]


def test_empty_sentinel_is_singleton():
    from repro.pcn.streams import _Empty

    assert _Empty() is EMPTY


@settings(max_examples=50, deadline=None)
@given(st.lists(st.integers(), max_size=30))
def test_property_stream_roundtrip(values):
    """send_all then iterate reproduces the exact sequence."""
    assert stream_to_list(stream_from_iterable(values)) == values


@settings(max_examples=25, deadline=None)
@given(st.lists(st.integers(), max_size=15), st.lists(st.integers(), max_size=15))
def test_property_splice_concatenates(left, right):
    s, w = stream_pair()
    w.send_all(left)
    w.splice(stream_from_iterable(right))
    assert stream_to_list(s) == left + right
