"""Processes and dynamic process creation (§3.1.1.1)."""

from __future__ import annotations

import time

import pytest

from repro.pcn.process import Process, ProcessGroup, spawn


class TestProcess:
    def test_spawn_and_join_returns_result(self):
        assert spawn(lambda: 42).join(timeout=5) == 42

    def test_args_and_kwargs(self):
        proc = spawn(lambda a, b=0: a + b, 1, b=2)
        assert proc.join(timeout=5) == 3

    def test_join_reraises_body_exception(self):
        def boom():
            raise KeyError("inside process")

        with pytest.raises(KeyError):
            spawn(boom).join(timeout=5)

    def test_join_timeout(self):
        proc = spawn(time.sleep, 2.0)
        with pytest.raises(TimeoutError):
            proc.join(timeout=0.05)

    def test_is_alive_lifecycle(self):
        proc = spawn(time.sleep, 0.1)
        assert proc.is_alive()
        proc.join(timeout=5)
        assert not proc.is_alive()

    def test_processor_tag(self):
        proc = Process(lambda: None, processor=3)
        assert proc.processor == 3

    def test_names_unique(self):
        a, b = Process(lambda: None), Process(lambda: None)
        assert a.name != b.name


class TestProcessGroup:
    def test_join_all_collects_results(self):
        group = ProcessGroup()
        for i in range(5):
            group.spawn(lambda i=i: i * 10)
        assert group.join_all(timeout=5) == [0, 10, 20, 30, 40]

    def test_join_all_raises_first_error_after_joining_all(self):
        group = ProcessGroup()
        finished = []

        def boom():
            raise RuntimeError("first error")

        group.spawn(boom)
        group.spawn(lambda: finished.append(True) or time.sleep(0.05))
        with pytest.raises(RuntimeError, match="first error"):
            group.join_all(timeout=5)
        assert finished == [True]  # the healthy process still completed

    def test_len(self):
        group = ProcessGroup()
        group.spawn(lambda: None)
        group.spawn(lambda: None)
        assert len(group) == 2

    def test_add_external_process(self):
        group = ProcessGroup()
        group.add(spawn(lambda: "ext"))
        assert group.join_all(timeout=5) == ["ext"]
