"""Property-based tests over the PTN transformation renderer: for any
parameter mix, the generated artefacts keep the §F structural invariants."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arrays.record import ArrayID
from repro.pcn.ptn import transform_distributed_call

param_strategy = st.one_of(
    st.integers(-100, 100),  # constants
    st.just("index"),
    st.tuples(st.just("local"), st.just(ArrayID(0, 1))),
    st.tuples(
        st.just("reduce"),
        st.sampled_from(["double", "int"]),
        st.integers(1, 16),
        st.sampled_from(["sum", "max", "min"]),
    ),
)


@st.composite
def parameter_lists(draw):
    params = draw(st.lists(param_strategy, max_size=6))
    if draw(st.booleans()):
        position = draw(st.integers(0, len(params)))
        params.insert(position, "status")
    return params


@settings(max_examples=100, deadline=None)
@given(parameter_lists())
def test_property_tuple_arity_is_one_plus_reductions(params):
    """The merged tuple always has 1 + #reduce slots (§F.6)."""
    result = transform_distributed_call(list(params))
    n_reduce = sum(
        1 for p in params if isinstance(p, tuple) and p[0] == "reduce"
    )
    expected = 1 + n_reduce
    assert f"make_tuple({expected},_l1)" in result.wrapper_second
    assert f"length(C_in1)=={expected}" in result.combine
    # the call block unpacks exactly that many slots
    assert f"_l1[{expected - 1}]" in result.call_block
    assert f"_l1[{expected}]" not in result.call_block


@settings(max_examples=100, deadline=None)
@given(parameter_lists())
def test_property_structural_invariants(params):
    result = transform_distributed_call(list(params))
    has_status = "status" in params
    n_local = sum(
        1 for p in params if isinstance(p, tuple) and p[0] == "local"
    )
    # local sections: one find_local per Local parameter
    assert result.wrapper_second.count("am_user:find_local") == n_local
    # status declaration appears iff the call has a status parameter
    assert ("int local_status" in result.wrapper_second) == has_status
    # every generated program has the STATUS_INVALID default branch
    for text in (result.wrapper_first, result.wrapper_second):
        assert "_l1 = {1}" in text
    assert "C_out = {1}" in result.combine
    # the wrapper program names referenced by the call block exist
    assert result.wrapper_name in result.call_block
    assert result.combine_name in result.call_block


@settings(max_examples=50, deadline=None)
@given(parameter_lists(), parameter_lists())
def test_property_distinct_transformations_do_not_collide(a, b):
    ra = transform_distributed_call(list(a))
    rb = transform_distributed_call(list(b))
    assert ra.wrapper_name != rb.wrapper_name
    assert ra.combine_name != rb.combine_name
