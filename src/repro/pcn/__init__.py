"""PCN-style task-parallel substrate (§3.1.1, §A of the thesis).

This package embeds the semantics of Program Composition Notation in
Python:

* :class:`~repro.pcn.defvar.DefVar` — single-assignment (definitional)
  variables whose readers suspend until the variable is defined.
* :class:`~repro.pcn.defvar.Mutable` — multiple-assignment variables with
  the PCN sharing restriction (§3.1.1.4).
* :mod:`~repro.pcn.streams` — definitional streams (cons lists of
  definitional variables), PCN's communication mechanism (§A.3).
* :mod:`~repro.pcn.composition` — sequential, parallel, and choice
  composition (§A.1).
"""

from repro.pcn.defvar import DefVar, Mutable, data, is_defvar
from repro.pcn.streams import (
    EMPTY,
    Stream,
    StreamClosed,
    stream_from_iterable,
    stream_to_list,
)
from repro.pcn.composition import (
    Guard,
    choice,
    default,
    par,
    par_for,
    seq,
)
from repro.pcn.process import Process, ProcessGroup, spawn

__all__ = [
    "DefVar",
    "Mutable",
    "data",
    "is_defvar",
    "EMPTY",
    "Stream",
    "StreamClosed",
    "stream_from_iterable",
    "stream_to_list",
    "Guard",
    "choice",
    "default",
    "par",
    "par_for",
    "seq",
    "Process",
    "ProcessGroup",
    "spawn",
]
