"""Processes and dynamic process creation (§3.1.1.1).

A PCN parallel composition creates one concurrently-executing process per
statement and waits for all of them to terminate.  :class:`Process` wraps a
Python thread with error propagation; :class:`ProcessGroup` is the join
barrier used by ``par``.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Optional


class Process:
    """A concurrently-executing unit of computation.

    Exceptions raised by the body are captured and re-raised by
    :meth:`join`, so failures in a parallel composition surface in the
    composing process rather than being lost on a daemon thread.
    """

    _counter = 0
    _counter_lock = threading.Lock()

    def __init__(
        self,
        target: Callable[..., Any],
        args: tuple = (),
        kwargs: Optional[dict] = None,
        name: str = "",
        processor: Optional[int] = None,
    ) -> None:
        with Process._counter_lock:
            Process._counter += 1
            seq = Process._counter
        self.name = name or f"pcn-process-{seq}"
        self.processor = processor
        self._target = target
        self._args = args
        self._kwargs = kwargs or {}
        self._error: Optional[BaseException] = None
        self._result: Any = None
        self._thread = threading.Thread(
            target=self._run, name=self.name, daemon=True
        )

    def _run(self) -> None:
        try:
            self._result = self._target(*self._args, **self._kwargs)
        except BaseException as exc:  # noqa: BLE001 - propagated via join()
            self._error = exc

    def start(self) -> "Process":
        self._thread.start()
        return self

    def join(self, timeout: Optional[float] = None) -> Any:
        self._thread.join(timeout=timeout)
        if self._thread.is_alive():
            raise TimeoutError(f"process {self.name} did not terminate")
        if self._error is not None:
            raise self._error
        return self._result

    def is_alive(self) -> bool:
        return self._thread.is_alive()

    @property
    def ident(self) -> Optional[int]:
        """The underlying thread's ident (None before :meth:`start`)."""
        return self._thread.ident

    @property
    def result(self) -> Any:
        return self._result


def spawn(
    target: Callable[..., Any],
    *args: Any,
    name: str = "",
    processor: Optional[int] = None,
    **kwargs: Any,
) -> Process:
    """Create and start a process (PCN dynamic process creation)."""
    return Process(
        target, args=args, kwargs=kwargs, name=name, processor=processor
    ).start()


class ProcessGroup:
    """A set of processes joined together (a parallel composition)."""

    def __init__(self) -> None:
        self._processes: list[Process] = []

    def spawn(self, target: Callable[..., Any], *args: Any, **kwargs: Any) -> Process:
        proc = spawn(target, *args, **kwargs)
        self._processes.append(proc)
        return proc

    def add(self, process: Process) -> None:
        self._processes.append(process)

    def join_all(self, timeout: Optional[float] = None) -> list:
        """Wait for every process; re-raise the first captured error."""
        results = []
        first_error: Optional[BaseException] = None
        for proc in self._processes:
            try:
                results.append(proc.join(timeout=timeout))
            except BaseException as exc:  # noqa: BLE001
                if first_error is None:
                    first_error = exc
                results.append(None)
        if first_error is not None:
            raise first_error
        return results

    def __len__(self) -> int:
        return len(self._processes)
