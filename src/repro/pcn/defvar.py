"""Definitional (single-assignment) and mutable variables (§3.1.1.2-§3.1.1.4).

PCN's synchronisation model rests on *definition variables*: a variable that
starts in a special "undefined" state, can be assigned (*defined*) at most
once, and suspends any process that needs its value until the definition
happens.  Conflicting access to shared *mutable* variables is prevented by
the PCN restriction that concurrent sharers must not write (§3.1.1.4); the
:class:`Mutable` here enforces that restriction dynamically.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Iterator, Optional

from repro.status import SharedVariableConflictError, SingleAssignmentError

_UNDEFINED = object()

# Default number of seconds a reader waits before declaring deadlock.  PCN
# programs that suspend forever are erroneous; an explicit timeout converts a
# hang into a diagnosable failure, which matters for a test suite.
DEFAULT_TIMEOUT: float = 30.0

# Registry of threads currently suspended inside DefVar.read, keyed by
# thread ident.  The deadlock watchdog (repro.faults.watchdog) reads this
# to build the wait-graph; registration is scoped strictly to the blocking
# wait so entries never outlive the suspension.
_blocked_lock = threading.Lock()
_blocked_reads: dict[int, str] = {}

# Suspension hooks: callables invoked with the DefVar label each time a
# reader actually suspends (not on the fast already-defined path).  Fed by
# the observability layer (repro.obs.Observer) to count suspensions per VP;
# the hot path pays one truthiness check while no hook is installed.
_suspend_hooks: list[Callable[[str], None]] = []


def add_suspend_hook(callback: Callable[[str], None]) -> None:
    """Register ``callback(label)`` to fire whenever a read suspends."""
    with _blocked_lock:
        if callback not in _suspend_hooks:
            _suspend_hooks.append(callback)


def remove_suspend_hook(callback: Callable[[str], None]) -> None:
    with _blocked_lock:
        if callback in _suspend_hooks:
            _suspend_hooks.remove(callback)


def blocked_reads() -> dict[int, str]:
    """Snapshot: thread ident -> name of the DefVar it is suspended on."""
    with _blocked_lock:
        return dict(_blocked_reads)


class DefVar:
    """A single-assignment variable.

    ``define(value)`` assigns the value exactly once; a second ``define``
    raises :class:`SingleAssignmentError`.  ``read()`` returns the value,
    suspending the calling thread until the variable is defined.  ``data()``
    is a non-blocking probe (PCN's ``data`` guard).
    """

    __slots__ = ("_value", "_cond", "name", "_waiters")

    def __init__(self, name: str = "") -> None:
        self._value: Any = _UNDEFINED
        self._cond = threading.Condition()
        self._waiters: list[Callable[[Any], None]] = []
        self.name = name

    def define(self, value: Any) -> None:
        """Assign ``value``; legal at most once (§3.1.1.2)."""
        if isinstance(value, DefVar):
            # Defining one definitional variable to be another aliases them:
            # propagate the value when the source becomes defined.
            value.on_define(self.define)
            return
        with self._cond:
            if self._value is not _UNDEFINED:
                raise SingleAssignmentError(
                    f"definition variable {self.name or id(self)} defined twice"
                )
            self._value = value
            waiters = self._waiters
            self._waiters = []
            self._cond.notify_all()
        for callback in waiters:
            callback(value)

    def read(self, timeout: Optional[float] = None) -> Any:
        """Return the value, suspending until the variable is defined."""
        limit = DEFAULT_TIMEOUT if timeout is None else timeout
        with self._cond:
            if self._value is _UNDEFINED:
                ident = threading.get_ident()
                label = self.name or f"0x{id(self):x}"
                with _blocked_lock:
                    _blocked_reads[ident] = label
                    hooks = tuple(_suspend_hooks)
                for hook in hooks:
                    hook(label)
                try:
                    ok = self._cond.wait_for(
                        lambda: self._value is not _UNDEFINED, timeout=limit
                    )
                finally:
                    with _blocked_lock:
                        _blocked_reads.pop(ident, None)
                if not ok:
                    raise TimeoutError(
                        f"read of undefined variable {self.name or id(self)} "
                        f"timed out after {limit}s (suspended process)"
                    )
            return self._value

    def data(self) -> bool:
        """Non-blocking: is the variable defined?  (PCN ``data`` guard.)"""
        with self._cond:
            return self._value is not _UNDEFINED

    def peek(self) -> Any:
        """Return the value without blocking; raises if undefined."""
        with self._cond:
            if self._value is _UNDEFINED:
                raise ValueError("variable is undefined")
            return self._value

    def on_define(self, callback: Callable[[Any], None]) -> None:
        """Invoke ``callback(value)`` once the variable is defined.

        If already defined the callback runs immediately on the caller's
        thread; otherwise it runs on the defining thread.
        """
        with self._cond:
            if self._value is _UNDEFINED:
                self._waiters.append(callback)
                return
            value = self._value
        callback(value)

    def __repr__(self) -> str:
        with self._cond:
            if self._value is _UNDEFINED:
                state = "undefined"
            else:
                state = f"= {self._value!r}"
        label = self.name or f"0x{id(self):x}"
        return f"<DefVar {label} {state}>"


def is_defvar(obj: Any) -> bool:
    """True when ``obj`` is a definitional variable."""
    return isinstance(obj, DefVar)


def data(obj: Any) -> bool:
    """PCN's ``data`` guard: defined variables and plain values are data."""
    if isinstance(obj, DefVar):
        return obj.data()
    return True


def resolve(obj: Any, timeout: Optional[float] = None) -> Any:
    """Dereference ``obj`` if it is a definitional variable, else return it."""
    if isinstance(obj, DefVar):
        return obj.read(timeout=timeout)
    return obj


class Mutable:
    """A multiple-assignment variable with PCN's sharing restriction.

    The paper prevents conflicting access by requiring that when two
    concurrently-executing processes share a mutable, *neither* writes to it
    (§3.1.1.4).  We enforce a dynamic approximation: a mutable records the
    thread that owns write access; a write from a different thread while the
    owner still exists raises :class:`SharedVariableConflictError` unless
    ownership has been explicitly transferred with :meth:`transfer`.
    """

    __slots__ = ("_value", "_owner", "_lock", "name")

    def __init__(self, value: Any = None, name: str = "") -> None:
        self._value = value
        self._owner: Optional[int] = threading.get_ident()
        self._lock = threading.Lock()
        self.name = name

    def get(self) -> Any:
        with self._lock:
            return self._value

    def set(self, value: Any) -> None:
        me = threading.get_ident()
        with self._lock:
            if self._owner is not None and self._owner != me:
                raise SharedVariableConflictError(
                    f"mutable {self.name or id(self)} written by thread {me} "
                    f"while owned by thread {self._owner} (§3.1.1.4)"
                )
            self._value = value

    def transfer(self, thread_ident: Optional[int] = None) -> None:
        """Hand write-ownership to ``thread_ident`` (None = next writer)."""
        with self._lock:
            self._owner = thread_ident

    def adopt(self) -> None:
        """Claim write-ownership for the calling thread."""
        with self._lock:
            if self._owner is None:
                self._owner = threading.get_ident()
            elif self._owner != threading.get_ident():
                raise SharedVariableConflictError(
                    f"mutable {self.name or id(self)} already owned"
                )

    def __repr__(self) -> str:
        return f"<Mutable {self.name or hex(id(self))} = {self._value!r}>"


def wait_all(variables: Iterator[DefVar], timeout: Optional[float] = None) -> list:
    """Read every variable, suspending until all are defined."""
    return [v.read(timeout=timeout) for v in variables]
