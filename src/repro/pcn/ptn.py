"""PTN-style source-to-source transformation for distributed calls
(§5.2.3, §5.2.4, §F).

The thesis implements distributed calls with a Program Transformation
Notation pass that rewrites every ``am_user:distributed_call`` into a block
calling ``am_util:do_all`` and *generates* two wrapper programs and a
combine program as PCN source.  The runtime machinery of
:mod:`repro.calls.wrapper` reproduces the transformation's *behaviour* as
closures; this module reproduces its *product*: given a call's parameter
list, it renders the transformed block, the first- and second-level
wrapper programs, and the combine program as PCN-syntax text, structured
exactly like the §5.2.4 worked examples.

This serves two purposes: it documents precisely what the runtime wrapper
does (the rendered text and the executed closure are generated from the
same parameter analysis), and it lets tests pin the transformation against
the thesis' printed examples (xform_ex2/3/4).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Sequence

from repro.calls.params import (
    Constant,
    Index,
    Local,
    ParamSpec,
    Reduce,
    StatusVar,
    normalize_parameters,
)

_label_counter = itertools.count(1)


@dataclass
class TransformResult:
    """The four artefacts of one transformed distributed call (§F)."""

    call_block: str
    wrapper_first: str
    wrapper_second: str
    combine: str
    wrapper_name: str = ""
    combine_name: str = ""

    def programs(self) -> str:
        """The generated module additions, concatenated."""
        return "\n\n".join(
            [self.wrapper_first, self.wrapper_second, self.combine]
        )


@dataclass
class _Analysis:
    """Everything the generators need, computed once from the specs."""

    specs: Sequence[ParamSpec]
    module: str
    program: str
    combine_module: str
    combine_program: str
    has_status: bool = False
    reduces: list = field(default_factory=list)
    locals_: list = field(default_factory=list)

    def __post_init__(self) -> None:
        for i, spec in enumerate(self.specs):
            if isinstance(spec, StatusVar):
                self.has_status = True
            elif isinstance(spec, Reduce):
                self.reduces.append((i, spec))
            elif isinstance(spec, Local):
                self.locals_.append((i, spec))

    @property
    def tuple_len(self) -> int:
        """Length of the merged status tuple: 1 + #reductions (§F.6)."""
        return 1 + len(self.reduces)


def _parms_tuple_source(analysis: _Analysis) -> str:
    """Render the bundled Parms argument of the do_all call (§F.2).

    Constants appear by their source text, Local parameters by their
    array-ID variable, Index/Status placeholders as ``_``; reduction
    entries contribute a placeholder plus their Length at the tail (the
    first-level wrapper peels lengths off to declare local buffers)."""
    entries = []
    lengths = []
    for spec in analysis.specs:
        if isinstance(spec, Constant):
            entries.append(str(spec.value))
        elif isinstance(spec, Local):
            entries.append(f"{spec.array_id}" if isinstance(
                spec.array_id, str
            ) else "AA")
        elif isinstance(spec, Reduce):
            entries.append("_")
            lengths.append(str(spec.length))
        else:
            entries.append("_")
    return "{" + ",".join(entries + lengths) + "}"


def transform_distributed_call(
    parameters: Sequence,
    module: str = "xform",
    program: str = "cpgm",
    processors: str = "Processors",
    combine_module: str = "",
    combine_program: str = "",
    status_var: str = "Status",
) -> TransformResult:
    """Apply the §F transformation to one distributed call.

    ``parameters`` uses the same forms as
    :func:`repro.calls.api.distributed_call`; Local specs may carry a
    string in place of an ArrayID so the rendered text shows the source
    variable name (as the thesis' examples do with ``AA``).
    """
    specs = normalize_parameters(
        [p if not isinstance(p, tuple) or p[:1] != ("local",) else p
         for p in parameters]
    )
    n = next(_label_counter)
    wrapper1 = f"wrapper_{n}"
    wrapper2 = f"wrapper2_{n}"
    combine = f"combine_{n + 1}"
    analysis = _Analysis(
        specs, module, program, combine_module, combine_program
    )

    result = TransformResult(
        call_block=_render_call_block(
            analysis, processors, wrapper1, combine, status_var
        ),
        wrapper_first=_render_wrapper_first(analysis, wrapper1, wrapper2),
        wrapper_second=_render_wrapper_second(analysis, wrapper2),
        combine=_render_combine(analysis, combine),
        wrapper_name=wrapper1,
        combine_name=combine,
    )
    return result


def _render_call_block(
    analysis: _Analysis,
    processors: str,
    wrapper1: str,
    combine: str,
    status_var: str,
) -> str:
    """The transformed call site (§F.1, §F.5): a parallel block running
    do_all and unpacking the merged tuple into Status and the reduction
    variables."""
    lines = [
        "{||",
        f'    am_util:do_all({processors},"{analysis.module}",'
        f'"{wrapper1}",',
        f"        {_parms_tuple_source(analysis)},",
        f'        "{analysis.module}","{combine}",_l1),',
        f"    {status_var} = _l1[0]",
    ]
    for k, (_i, spec) in enumerate(analysis.reduces):
        var = getattr(spec.out, "name", None) or f"RR{k}"
        lines.append(f"    , {var} = _l1[{k + 1}]")
    lines.append("}")
    return "\n".join(lines)


def _render_wrapper_first(
    analysis: _Analysis, wrapper1: str, wrapper2: str
) -> str:
    """The first-level wrapper (§F.3): peel reduction lengths off the
    Parms tuple — values needed to *declare* second-level locals — and
    delegate; a bundle that fails to match yields STATUS_INVALID."""
    n_lengths = len(analysis.reduces)
    peeled = ["_l7"] + [f"_l8{chr(97 + k)}" for k in range(n_lengths)]
    pattern = ",".join(peeled)
    forward = ",".join(["Index", "_l7", "_l1"] + peeled[1:])
    return "\n".join(
        [
            f"{wrapper1}(Index,Parms,_l1)",
            "{?  Parms ?= {" + pattern + "} ->",
            f"        {wrapper2}({forward}),",
            "    default ->",
            "        _l1 = {1}",
            "}",
        ]
    )


def _render_wrapper_second(analysis: _Analysis, wrapper2: str) -> str:
    """The second-level wrapper (§F.4): declare local status/reduction
    variables, unbundle Parms, find_local every local section, call the
    program, and pack the result tuple."""
    decls = []
    if analysis.has_status:
        decls.append("int local_status")
    for k, (_i, spec) in enumerate(analysis.reduces):
        ctype = {"double": "double", "int": "int", "char": "char",
                 "complex": "double"}[spec.type_name]
        decls.append(f"{ctype} _l7{chr(97 + k)}[_l8{chr(97 + k)}]")

    unbundle = []
    call_args = []
    find_locals = []
    for i, spec in enumerate(analysis.specs):
        slot = f"_p{i}"
        if isinstance(spec, Constant):
            unbundle.append(slot)
            call_args.append(slot)
        elif isinstance(spec, Local):
            unbundle.append(slot)
            local = f"_s{i}"
            find_locals.append(
                f"        am_user:find_local({slot},{local},_st{i}),"
            )
            call_args.append(local)
        elif isinstance(spec, Index):
            unbundle.append("_")
            call_args.append("Index")
        elif isinstance(spec, StatusVar):
            unbundle.append("_")
            call_args.append("local_status")
        else:  # Reduce
            k = [j for j, (ri, _s) in enumerate(analysis.reduces)
                 if ri == i][0]
            unbundle.append("_")
            call_args.append(f"_l7{chr(97 + k)}")

    pack = ["_l1[0] = "
            + ("local_status" if analysis.has_status else "0")]
    for k in range(len(analysis.reduces)):
        pack.append(f"_l1[{k + 1}] = _l7{chr(97 + k)}")

    lengths = [f"_l8{chr(97 + k)}" for k in range(len(analysis.reduces))]
    header_parms = ",".join(["Index", "Parms", "_l1"] + lengths)
    lines = [f"{wrapper2}({header_parms})"]
    lines.extend(decls)
    lines.append("{?  Parms ?= {" + ",".join(unbundle) + "} ->")
    lines.append("    {||")
    lines.extend(find_locals)
    lines.append(
        f"        {analysis.program}({','.join(call_args)}),"
    )
    lines.append(f"        make_tuple({analysis.tuple_len},_l1),")
    lines.extend(f"        {p}," for p in pack)
    lines.append("    },")
    lines.append("    default ->")
    lines.append("        _l1 = {1}")
    lines.append("}")
    return "\n".join(lines)


def _render_combine(analysis: _Analysis, combine: str) -> str:
    """The generated combine program (§F.6): merge two result tuples,
    status slot by the user's (or default max) combiner, each reduction
    slot by its own combiner."""
    status_comb = (
        f"{analysis.combine_module}:{analysis.combine_program}"
        if analysis.combine_module
        else "am_util:max"
    )
    n = analysis.tuple_len
    lines = [
        f"{combine}(C_in1,C_in2,C_out)",
        "{?  data(C_in1),tuple(C_in2),"
        f"length(C_in1)=={n},length(C_in2)=={n} ->",
        "    {||",
        f"        make_tuple({n},C_out),",
        f"        {status_comb}(C_in1[0],C_in2[0],C_out[0]),",
    ]
    for k, (_i, spec) in enumerate(analysis.reduces):
        comb = spec.combine if isinstance(spec.combine, str) else getattr(
            spec.combine, "__name__", "combine_it"
        )
        lines.append(
            f"        {comb}(C_in1[{k + 1}],C_in2[{k + 1}],"
            f"C_out[{k + 1}]),"
        )
    lines.append("    },")
    lines.append("    default ->")
    lines.append("        C_out = {1}")
    lines.append("}")
    return "\n".join(lines)
