"""Sequential, parallel, and choice composition (§A.1).

PCN builds programs by composing statements three ways::

    {; A, B}    sequential composition  ->  seq(A, B)
    {|| A, B}   parallel composition    ->  par(A, B)
    {? g1 -> A, g2 -> B}  choice        ->  choice((g1, A), (g2, B))

Statements are represented as zero-argument callables (thunks).  ``par``
creates one process per statement and waits for all of them to terminate —
exactly the operational semantics given in §3.1.1.1.

Choice composition evaluates guards in order.  A guard may *suspend* by
raising :class:`GuardSuspend` when a definitional variable it needs is still
undefined (the ``data`` test); ``choice`` then waits for that variable and
re-evaluates.  At most one alternative's body executes.  A ``default``
alternative fires when every other guard evaluates to a definite False.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Optional, Sequence, Union

from repro.pcn.defvar import DefVar
from repro.pcn.process import ProcessGroup

Thunk = Callable[[], Any]


def seq(*statements: Thunk) -> list:
    """Execute statements in order; return their results."""
    return [stmt() for stmt in statements]


def par(*statements: Thunk, timeout: Optional[float] = None) -> list:
    """Execute statements concurrently; wait for all to terminate.

    Equivalent to PCN's ``{|| ...}``: one process per statement, joined
    before ``par`` returns (§3.1.1.1).
    """
    group = ProcessGroup()
    for stmt in statements:
        group.spawn(stmt)
    return group.join_all(timeout=timeout)


def par_for(
    count: int,
    body: Callable[[int], Any],
    timeout: Optional[float] = None,
) -> list:
    """Parallel quantification: run ``body(i)`` for i in 0..count-1.

    The PCN idiom ``{|| i over 0..n-1 :: body(i)}``.
    """
    group = ProcessGroup()
    for i in range(count):
        group.spawn(body, i)
    return group.join_all(timeout=timeout)


class GuardSuspend(Exception):
    """Raised inside a guard when a needed definitional variable is
    undefined; carries the variables to wait on before retrying."""

    def __init__(self, *variables: DefVar) -> None:
        super().__init__("guard suspended on undefined variable")
        self.variables = list(variables)


def need(var: DefVar) -> Any:
    """Read ``var`` inside a guard, suspending the guard if undefined.

    Guards must not block (all alternatives are notionally evaluated
    together), so an undefined variable raises :class:`GuardSuspend` and the
    enclosing ``choice`` re-evaluates once the variable is defined.
    """
    if isinstance(var, DefVar):
        if not var.data():
            raise GuardSuspend(var)
        return var.peek()
    return var


class _Default:
    """Sentinel guard for the ``default`` alternative."""

    def __repr__(self) -> str:
        return "default"


default = _Default()

Guard = Union[Callable[[], Any], bool, _Default]


def _evaluate_guard(guard: Guard) -> bool:
    if isinstance(guard, bool):
        return guard
    if isinstance(guard, _Default):
        raise TypeError("default alternative evaluated as a normal guard")
    return bool(guard())


def choice(
    *alternatives: tuple[Guard, Thunk],
    timeout: Optional[float] = None,
) -> Any:
    """Choice composition ``{? g1 -> b1, g2 -> b2, default -> bd}``.

    Evaluates guards; executes the body of the first alternative whose guard
    is True.  Guards that suspend (via :func:`need`) cause ``choice`` to wait
    for the needed variables and re-evaluate.  The ``default`` body runs only
    when *every* other guard is definitely False.  If all guards are False
    and there is no default, ``choice`` is a no-op (PCN semantics).
    """
    normal: list[tuple[Guard, Thunk]] = []
    default_body: Optional[Thunk] = None
    for guard, body in alternatives:
        if isinstance(guard, _Default):
            if default_body is not None:
                raise ValueError("choice with two default alternatives")
            default_body = body
        else:
            normal.append((guard, body))

    while True:
        suspended_on: list[DefVar] = []
        any_suspended = False
        for guard, body in normal:
            try:
                if _evaluate_guard(guard):
                    return body()
            except GuardSuspend as suspend:
                any_suspended = True
                suspended_on.extend(suspend.variables)
        if not any_suspended:
            if default_body is not None:
                return default_body()
            return None
        _wait_for_any(suspended_on, timeout=timeout)


def _wait_for_any(variables: Sequence[DefVar], timeout: Optional[float]) -> None:
    """Block until at least one of ``variables`` becomes defined."""
    event = threading.Event()
    for var in variables:
        var.on_define(lambda _value: event.set())
    limit = 30.0 if timeout is None else timeout
    if not event.wait(timeout=limit):
        raise TimeoutError(
            "choice suspended indefinitely: no guard variable was defined "
            f"within {limit}s"
        )
