"""Definitional streams (§A.3).

PCN represents a stream of messages between two processes as a shared
definitional list: the producer defines the list cell by cell
(``Stream = [Msg | Tail]``), the consumer pattern-matches each cell,
suspending when it reaches an undefined tail.  The empty list ``[]`` closes
the stream.

:class:`Stream` wraps one definitional cell; :class:`StreamWriter` holds the
producer's moving tail reference so production is O(1) per message.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Optional

from repro.pcn.defvar import DefVar


class _Empty:
    """Sentinel for the empty list ``[]`` that terminates a stream."""

    _instance: Optional["_Empty"] = None

    def __new__(cls) -> "_Empty":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "EMPTY"


EMPTY = _Empty()


class StreamClosed(Exception):
    """Raised when reading past the end of a closed stream."""


class Stream:
    """A consumer-side view of a definitional stream.

    A stream is a definitional variable whose value is either ``EMPTY``
    (closed) or a cons cell ``(head, Stream)``.
    """

    __slots__ = ("cell",)

    def __init__(self, cell: Optional[DefVar] = None) -> None:
        self.cell = cell if cell is not None else DefVar("stream")

    # -- consumer protocol -------------------------------------------------

    def get(self, timeout: Optional[float] = None) -> tuple[Any, "Stream"]:
        """Return ``(head, tail)``, suspending until the cell is defined.

        Raises :class:`StreamClosed` on the empty stream.
        """
        value = self.cell.read(timeout=timeout)
        if value is EMPTY:
            raise StreamClosed
        head, tail = value
        return head, tail

    def try_get(self) -> Optional[tuple[Any, "Stream"]]:
        """Non-blocking ``get``; None when the cell is still undefined."""
        if not self.cell.data():
            return None
        value = self.cell.peek()
        if value is EMPTY:
            raise StreamClosed
        return value

    def closed(self, timeout: Optional[float] = None) -> bool:
        """Suspend until the cell is defined; True when it is ``EMPTY``."""
        return self.cell.read(timeout=timeout) is EMPTY

    def is_definitely_closed(self) -> bool:
        """Non-blocking: True when the cell is defined and empty."""
        return self.cell.data() and self.cell.peek() is EMPTY

    def __iter__(self) -> Iterator[Any]:
        stream = self
        while True:
            try:
                head, stream = stream.get()
            except StreamClosed:
                return
            yield head

    # -- producer protocol (direct, for one-shot definitions) --------------

    def put(self, value: Any) -> "Stream":
        """Define this cell as ``[value | Tail]``; return the tail stream."""
        tail = Stream()
        self.cell.define((value, tail))
        return tail

    def close(self) -> None:
        """Define this cell as the empty list, closing the stream."""
        self.cell.define(EMPTY)

    def __repr__(self) -> str:
        if not self.cell.data():
            return "<Stream ...undefined>"
        if self.cell.peek() is EMPTY:
            return "<Stream []>"
        return "<Stream [..|..]>"


class StreamWriter:
    """Producer handle that tracks the moving tail of a stream."""

    __slots__ = ("_tail", "_closed")

    def __init__(self, stream: Stream) -> None:
        self._tail = stream
        self._closed = False

    def send(self, value: Any) -> None:
        if self._closed:
            raise StreamClosed("send on closed stream")
        self._tail = self._tail.put(value)

    def send_all(self, values: Iterable[Any]) -> None:
        for value in values:
            self.send(value)

    def close(self) -> None:
        if not self._closed:
            self._tail.close()
            self._closed = True

    def splice(self, tail: Stream) -> None:
        """Terminate this writer's stream with an existing stream ``tail``.

        Mirrors the PCN idiom ``Outstream = Outstream_tail`` used in §6.2 to
        chain streams across recursive calls.
        """
        if self._closed:
            raise StreamClosed("splice on closed stream")
        self._tail.cell.define(tail.cell)
        self._closed = True

    @property
    def is_closed(self) -> bool:
        return self._closed


def stream_pair() -> tuple[Stream, StreamWriter]:
    """Create a stream and its producer handle."""
    stream = Stream()
    return stream, StreamWriter(stream)


def stream_from_iterable(values: Iterable[Any]) -> Stream:
    """Build an already-fully-defined stream holding ``values``."""
    stream, writer = stream_pair()
    writer.send_all(values)
    writer.close()
    return stream


def stream_to_list(stream: Stream, limit: Optional[int] = None) -> list:
    """Consume a stream into a list (suspends as needed).

    ``limit`` bounds the number of elements taken; None reads to close.
    """
    out: list[Any] = []
    for value in stream:
        out.append(value)
        if limit is not None and len(out) >= limit:
            break
    return out


def merge_streams(a: Stream, b: Stream, out: StreamWriter) -> None:
    """Fair nondeterministic merge of two streams into ``out``.

    Runs on the calling thread until both inputs close.  The merge prefers
    whichever input has data available, suspending only when neither does.
    """
    live: list[Optional[Stream]] = [a, b]
    while any(s is not None for s in live):
        progressed = False
        for i, s in enumerate(live):
            if s is None:
                continue
            try:
                item = s.try_get()
            except StreamClosed:
                live[i] = None
                progressed = True
                continue
            if item is not None:
                head, tail = item
                out.send(head)
                live[i] = tail
                progressed = True
        if not progressed:
            # Neither input ready: block on the first live one briefly.
            for s in live:
                if s is not None:
                    try:
                        head, tail = s.get(timeout=0.05)
                    except StreamClosed:
                        live[live.index(s)] = None
                    except TimeoutError:
                        pass
                    else:
                        out.send(head)
                        live[live.index(s)] = tail
                    break
    out.close()
