"""The alternative integration model (§2.2).

Besides its primary model, the thesis sketches the dual: "allowing
task-parallel programs to serve as subprograms in a data-parallel program
... calling a task-parallel program on a distributed data structure is
equivalent to calling it concurrently once for each element of the
distributed data structure, and each copy of the task-parallel program can
consist of multiple processes."

:func:`call_task_parallel_on` implements exactly that semantics.  The
call:

* runs one instance of the task-parallel program per **element** (the
  paper's granularity) or per **local section** (the practical batching,
  selectable with ``scope``);
* gives each instance its element's global indices and current value and
  applies each instance's returned value back to the array;
* suspends the caller until every instance — including any processes those
  instances spawned and joined — has terminated, preserving the
  sequential-call equivalence that anchors both integration models (§2.1).

Instances are placed on the processor owning their element, so a
task-parallel subprogram observes the same locality a data-parallel
statement would.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

import numpy as np

from repro.core.darray import DistributedArray
from repro.pcn.process import ProcessGroup


ElementProgram = Callable[[tuple, Any], Any]
SectionProgram = Callable[[int, np.ndarray], Optional[np.ndarray]]


def call_task_parallel_on(
    array: DistributedArray,
    program: Callable,
    scope: str = "element",
    timeout: Optional[float] = None,
) -> int:
    """Call a task-parallel ``program`` over a distributed array (§2.2).

    ``scope="element"``: ``program(global_indices, value) -> new_value``
    runs concurrently once per element; a non-None return value is written
    back.  ``scope="section"``: ``program(section_number, ndarray) ->
    ndarray | None`` runs once per local section with a *copy* of the
    interior; a returned array replaces the section's data.

    Returns the number of program instances executed.  The caller is
    suspended until every instance terminates.
    """
    if scope not in ("element", "section"):
        raise ValueError(f"scope must be 'element' or 'section': {scope!r}")
    machine = array.machine
    layout = array.layout

    if scope == "section":
        return _run_per_section(array, program, timeout)

    # Element scope: fetch each section once, spawn one process per
    # element on the owning processor, then write changed sections back.
    group = ProcessGroup()
    staged: list[tuple[int, np.ndarray]] = []
    results: dict[tuple, Any] = {}
    import threading

    lock = threading.Lock()
    count = 0
    snapshot = array.to_numpy()
    for section, proc in enumerate(array.processors):
        node = machine.processor(proc)
        slices = array._section_slices(section)
        block = snapshot[slices]
        staged.append((section, block))
        for local in np.ndindex(*layout.local_dims):
            global_idx = layout.global_indices(section, local)
            value = snapshot[global_idx]
            count += 1

            def instance(idx=global_idx, val=value):
                out = program(idx, val)
                if out is not None:
                    with lock:
                        results[idx] = out

            group.add(node.spawn(instance, name=f"tp-elem{global_idx}"))
    group.join_all(timeout=timeout)
    if results:
        for idx, value in results.items():
            snapshot[idx] = value
        array.from_numpy(snapshot)
    return count


def _run_per_section(
    array: DistributedArray,
    program: SectionProgram,
    timeout: Optional[float],
) -> int:
    machine = array.machine
    group = ProcessGroup()
    replacements: dict[int, np.ndarray] = {}
    import threading

    lock = threading.Lock()
    snapshot = array.to_numpy()
    for section, proc in enumerate(array.processors):
        node = machine.processor(proc)
        block = snapshot[array._section_slices(section)].copy()

        def instance(sec=section, data=block):
            out = program(sec, data)
            if out is not None:
                with lock:
                    replacements[sec] = np.asarray(out)

        group.add(node.spawn(instance, name=f"tp-section{section}"))
    group.join_all(timeout=timeout)
    if replacements:
        for section, data in replacements.items():
            snapshot[array._section_slices(section)] = data
        array.from_numpy(snapshot)
    return len(array.processors)
