"""The integrated task/data-parallel runtime facade.

One object wiring together the three layers of the prototype: the virtual
machine, the array manager, and distributed calls.  A task-parallel Python
program holds an :class:`IntegratedRuntime` and uses the §2.1 repertoire:

* ``rt.array(...)`` — create and manipulate distributed data structures;
* ``rt.call(...)`` — call data-parallel programs (suspending, sequential-
  call-equivalent semantics);
* plain Python + :mod:`repro.pcn` composition for everything task-parallel.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Sequence

import numpy as np

from repro.arrays.am_util import load_all, node_array
from repro.arrays.manager import ArrayManager, get_array_manager
from repro.calls.api import CallResult, distributed_call
from repro.core.darray import DistributedArray
from repro.vp.machine import Machine


class IntegratedRuntime:
    """Machine + array manager + distributed calls, ready to use."""

    def __init__(
        self,
        num_nodes: int,
        trace_arrays: bool = False,
        default_recv_timeout: Optional[float] = None,
        dead_send_policy: str = "raise",
    ) -> None:
        self.machine = Machine(
            num_nodes,
            default_recv_timeout=default_recv_timeout,
            dead_send_policy=dead_send_policy,
        )
        load_all(self.machine, "am_debug" if trace_arrays else "am")

    def inject_faults(self, plan) -> "Any":
        """Install a :class:`~repro.faults.plan.FaultPlan` on the machine.

        Returns the installed
        :class:`~repro.faults.transport.FaultyTransport` (also usable as a
        context manager via ``with rt.inject_faults(plan): ...``).
        """
        from repro.faults.transport import FaultyTransport

        return FaultyTransport(self.machine, plan).install()

    def observe(self, **options: Any) -> "Any":
        """Enable runtime telemetry (spans, metrics, message events).

        Forwards to :meth:`~repro.vp.machine.Machine.observe`; returns the
        installed :class:`~repro.obs.Observer`, also usable as a context
        manager (``with rt.observe() as obs: ...`` uninstalls on exit).
        """
        return self.machine.observe(**options)

    @property
    def observer(self) -> Optional[Any]:
        return self.machine.observer

    def diagnostics(self) -> dict:
        """Machine-health snapshot (dead VPs, pending messages, blockers)."""
        return self.machine.diagnostics()

    @property
    def num_nodes(self) -> int:
        return self.machine.num_nodes

    @property
    def array_manager(self) -> ArrayManager:
        return get_array_manager(self.machine)

    # -- processor groups -----------------------------------------------------------

    def all_processors(self) -> np.ndarray:
        return node_array(0, 1, self.num_nodes)

    def processors(self, first: int, count: int, stride: int = 1) -> np.ndarray:
        """A processor group: ``[first, first+stride, ...]`` (§C.2)."""
        return node_array(first, stride, count)

    def split_processors(self, groups: int) -> list[np.ndarray]:
        """Partition the machine into ``groups`` equal disjoint groups.

        The Fig 3.4 / §6.2 pattern: concurrent distributed calls run on
        disjoint subsets of the available processors.
        """
        if self.num_nodes % groups != 0:
            raise ValueError(
                f"{self.num_nodes} processors do not split into {groups} "
                f"equal groups"
            )
        per = self.num_nodes // groups
        return [node_array(g * per, 1, per) for g in range(groups)]

    # -- distributed data structures ----------------------------------------------------

    def array(
        self,
        type_name: str,
        dims: Sequence[int],
        processors: Optional[Sequence[int]] = None,
        distrib: Optional[Sequence] = None,
        borders: Any = None,
        indexing: str = "row",
    ) -> DistributedArray:
        """Create a distributed array (defaults: all processors, block
        decomposition in every dimension)."""
        procs = (
            self.all_processors() if processors is None else processors
        )
        if distrib is None:
            # The thesis' default ("square" grid) requires an exact N-th
            # root of P; when none exists we fall back to a balanced valid
            # factorisation (documented extension, DESIGN.md).
            from repro.arrays.decomposition import Block, balanced_grid

            dist: Sequence = [
                Block(g) for g in balanced_grid(dims, len(procs))
            ]
        else:
            dist = distrib
        return DistributedArray.create(
            self.machine, type_name, dims, procs, dist,
            borders=borders, indexing=indexing,
        )

    # -- distributed calls -----------------------------------------------------------------

    def call(
        self,
        processors: Sequence[int],
        program: Callable[..., Any],
        parameters: Sequence[Any],
        combine: Optional[Any] = None,
        timeout: Optional[float] = None,
    ) -> CallResult:
        """Make a distributed call (§4.3.1) on a processor group.

        Accepts :class:`DistributedArray` handles directly in the parameter
        list (converted to ``Local`` specs)."""
        from repro.calls.params import Local

        converted = [
            Local(p.array_id) if isinstance(p, DistributedArray) else p
            for p in parameters
        ]
        return distributed_call(
            self.machine,
            processors,
            program,
            converted,
            combine=combine,
            timeout=timeout,
        )

    def call_everywhere(
        self,
        program: Callable[..., Any],
        parameters: Sequence[Any],
        combine: Optional[Any] = None,
    ) -> CallResult:
        return self.call(self.all_processors(), program, parameters, combine)

    def __repr__(self) -> str:
        return f"<IntegratedRuntime nodes={self.num_nodes}>"
