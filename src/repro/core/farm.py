"""Inherently parallel computations (§2.3.4, Fig 2.4).

A problem in this class decomposes into independent subproblems, each
solvable by a data-parallel program, with minimal or no communication among
them — the thesis' example is generating animation frames, two or more
frames generated independently and concurrently, each by a different
data-parallel program.

:class:`TaskFarm` schedules independent jobs over disjoint processor
groups: one PCN worker process per group pulls jobs from a shared queue and
runs each job's distributed call(s) on its group.  With G groups the farm
exposes G-way concurrency — the FIG-2.4 benchmark measures the ~linear
scaling.

Failure semantics: a group whose processors die mid-farm (its job raises
:class:`~repro.status.ProcessorFailedError`) is retired and its in-flight
job is requeued onto the surviving groups, so the farm completes every job
with degraded concurrency — the failure-resilience-by-re-execution posture
of Chunks and Tasks (arXiv:1210.7427).  Only when *every* group has died
does the farm raise.
"""

from __future__ import annotations

import collections
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence

from repro.pcn.process import ProcessGroup
from repro.status import ProcessorFailedError

Job = Callable[[Sequence[int]], Any]


@dataclass
class FarmResult:
    results: list
    wall_time: float
    jobs_per_group: list[int]
    dead_groups: list[int] = field(default_factory=list)
    requeued_jobs: int = 0

    def load_imbalance(self) -> float:
        """max/mean jobs per group (1.0 = perfectly balanced)."""
        if not self.jobs_per_group:
            return 1.0
        mean = sum(self.jobs_per_group) / len(self.jobs_per_group)
        return max(self.jobs_per_group) / mean if mean else 1.0


class TaskFarm:
    """Dynamic job farm over disjoint processor groups."""

    def __init__(self, groups: Sequence[Sequence[int]]) -> None:
        if not groups:
            raise ValueError("a task farm needs at least one group")
        flat: list[int] = []
        for g in groups:
            flat.extend(int(p) for p in g)
        if len(set(flat)) != len(flat):
            raise ValueError(
                "task-farm groups must be disjoint (Fig 3.4: concurrent "
                "distributed calls run on disjoint processor groups)"
            )
        self.groups = [tuple(int(p) for p in g) for g in groups]

    def run(
        self, jobs: Sequence[Job], timeout: Optional[float] = None
    ) -> FarmResult:
        """Run every job; each ``job(group_processors)`` returns a result.

        Results are returned in job order regardless of which group ran
        which job.  A job that raises ``ProcessorFailedError`` retires its
        group and is requeued for a surviving group; any other exception
        propagates unchanged.
        """
        pending: collections.deque = collections.deque(enumerate(jobs))
        lock = threading.Lock()
        cond = threading.Condition(lock)
        state = {
            "unfinished": len(jobs),
            "alive_workers": len(self.groups),
            "requeued": 0,
        }
        results: list[Any] = [None] * len(jobs)
        counts = [0] * len(self.groups)
        dead_groups: list[int] = []

        def worker(group_index: int) -> None:
            group = self.groups[group_index]
            while True:
                with cond:
                    while not pending and state["unfinished"] > 0:
                        cond.wait(timeout=0.02)
                    if state["unfinished"] == 0 or not pending:
                        if state["unfinished"] == 0:
                            return
                        continue
                    item = pending.popleft()
                job_index, job = item
                try:
                    result = job(group)
                except ProcessorFailedError:
                    # This group's processors died: give the job back and
                    # retire the group so survivors pick up the slack.
                    with cond:
                        pending.append(item)
                        state["alive_workers"] -= 1
                        state["requeued"] += 1
                        dead_groups.append(group_index)
                        last_alive = state["alive_workers"] == 0
                        cond.notify_all()
                    if last_alive:
                        raise ProcessorFailedError(
                            "every task-farm group failed with "
                            f"{state['unfinished']} job(s) unfinished"
                        )
                    return
                results[job_index] = result
                with cond:
                    counts[group_index] += 1
                    state["unfinished"] -= 1
                    cond.notify_all()

        pg = ProcessGroup()
        started = time.perf_counter()
        for gi in range(len(self.groups)):
            pg.spawn(worker, gi)
        pg.join_all(timeout=timeout)
        wall = time.perf_counter() - started
        return FarmResult(
            results=results,
            wall_time=wall,
            jobs_per_group=counts,
            dead_groups=sorted(dead_groups),
            requeued_jobs=state["requeued"],
        )
