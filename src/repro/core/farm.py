"""Inherently parallel computations (§2.3.4, Fig 2.4).

A problem in this class decomposes into independent subproblems, each
solvable by a data-parallel program, with minimal or no communication among
them — the thesis' example is generating animation frames, two or more
frames generated independently and concurrently, each by a different
data-parallel program.

:class:`TaskFarm` schedules independent jobs over disjoint processor
groups: one PCN worker process per group pulls jobs from a shared queue and
runs each job's distributed call(s) on its group.  With G groups the farm
exposes G-way concurrency — the FIG-2.4 benchmark measures the ~linear
scaling.
"""

from __future__ import annotations

import queue
import time
from dataclasses import dataclass
from typing import Any, Callable, Optional, Sequence

from repro.pcn.process import ProcessGroup

Job = Callable[[Sequence[int]], Any]


@dataclass
class FarmResult:
    results: list
    wall_time: float
    jobs_per_group: list[int]

    def load_imbalance(self) -> float:
        """max/mean jobs per group (1.0 = perfectly balanced)."""
        if not self.jobs_per_group:
            return 1.0
        mean = sum(self.jobs_per_group) / len(self.jobs_per_group)
        return max(self.jobs_per_group) / mean if mean else 1.0


class TaskFarm:
    """Dynamic job farm over disjoint processor groups."""

    def __init__(self, groups: Sequence[Sequence[int]]) -> None:
        if not groups:
            raise ValueError("a task farm needs at least one group")
        flat: list[int] = []
        for g in groups:
            flat.extend(int(p) for p in g)
        if len(set(flat)) != len(flat):
            raise ValueError(
                "task-farm groups must be disjoint (Fig 3.4: concurrent "
                "distributed calls run on disjoint processor groups)"
            )
        self.groups = [tuple(int(p) for p in g) for g in groups]

    def run(
        self, jobs: Sequence[Job], timeout: Optional[float] = None
    ) -> FarmResult:
        """Run every job; each ``job(group_processors)`` returns a result.

        Results are returned in job order regardless of which group ran
        which job.
        """
        work: "queue.Queue[Optional[tuple[int, Job]]]" = queue.Queue()
        for item in enumerate(jobs):
            work.put(item)
        for _ in self.groups:
            work.put(None)  # one poison pill per worker

        results: list[Any] = [None] * len(jobs)
        counts = [0] * len(self.groups)

        def worker(group_index: int) -> None:
            group = self.groups[group_index]
            while True:
                item = work.get()
                if item is None:
                    return
                job_index, job = item
                results[job_index] = job(group)
                counts[group_index] += 1

        pg = ProcessGroup()
        started = time.perf_counter()
        for gi in range(len(self.groups)):
            pg.spawn(worker, gi)
        pg.join_all(timeout=timeout)
        wall = time.perf_counter() - started
        return FarmResult(
            results=results, wall_time=wall, jobs_per_group=counts
        )
