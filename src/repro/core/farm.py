"""Inherently parallel computations (§2.3.4, Fig 2.4).

A problem in this class decomposes into independent subproblems, each
solvable by a data-parallel program, with minimal or no communication among
them — the thesis' example is generating animation frames, two or more
frames generated independently and concurrently, each by a different
data-parallel program.

:class:`TaskFarm` schedules independent jobs over disjoint processor
groups: one PCN worker process per group pulls jobs from a shared queue and
runs each job's distributed call(s) on its group.  With G groups the farm
exposes G-way concurrency — the FIG-2.4 benchmark measures the ~linear
scaling.

Failure semantics: a group whose processors die mid-farm (its job raises
:class:`~repro.status.ProcessorFailedError`) is retired and its in-flight
job is requeued onto the surviving groups, so the farm completes every job
with degraded concurrency — the failure-resilience-by-re-execution posture
of Chunks and Tasks (arXiv:1210.7427).  Only when *every* group has died
does the farm raise.

With a failure detector attached (:meth:`TaskFarm.attach_detector`) the
farm distinguishes *suspected* from *confirmed-dead* processors: a group
containing a suspect is **parked** — its worker stops pulling jobs and an
in-flight job that times out is requeued, not failed — until the suspect
either proves alive (group resumes) or hardens to a dead verdict (group
retires, and is revived if the VP is later quarantined and rejoined as a
false positive).  Parking instead of retiring is what keeps a transient
network partition from permanently halving farm concurrency.
"""

from __future__ import annotations

import collections
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence

from repro.pcn.process import ProcessGroup
from repro.status import ProcessorFailedError

Job = Callable[[Sequence[int]], Any]


@dataclass
class FarmResult:
    results: list
    wall_time: float
    jobs_per_group: list[int]
    dead_groups: list[int] = field(default_factory=list)
    requeued_jobs: int = 0

    def load_imbalance(self) -> float:
        """max/mean jobs per group (1.0 = perfectly balanced)."""
        if not self.jobs_per_group:
            return 1.0
        mean = sum(self.jobs_per_group) / len(self.jobs_per_group)
        return max(self.jobs_per_group) / mean if mean else 1.0


class TaskFarm:
    """Dynamic job farm over disjoint processor groups.

    Elastic: :meth:`add_group` may be called at any time — including
    while :meth:`run` is in flight — and spawns a worker for the new
    group immediately, so capacity added at runtime
    (``Machine.add_processor``) starts absorbing queued jobs without
    waiting for the next farm run.
    """

    def __init__(self, groups: Sequence[Sequence[int]]) -> None:
        if not groups:
            raise ValueError("a task farm needs at least one group")
        self.groups: list[tuple[int, ...]] = []
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        # The in-flight run's shared state (None when idle); add_group
        # uses it to splice a worker into a live run.
        self._run: Optional[dict] = None
        # Detector-driven state (empty/None without attach_detector):
        # parked groups (a member is suspected) and groups retired by a
        # dead verdict (revivable on false-positive rejoin).
        self._detector: Optional[Any] = None
        self._quarantined: set[int] = set()
        self._dead_by_verdict: set[int] = set()
        for group in groups:
            self._admit(group)

    def _admit(self, group: Sequence[int]) -> int:
        """Validate and append one group; caller holds no lock or _lock."""
        members = tuple(int(p) for p in group)
        if not members:
            raise ValueError("a task-farm group needs at least one processor")
        taken = {p for g in self.groups for p in g}
        if len(set(members)) != len(members) or taken & set(members):
            raise ValueError(
                "task-farm groups must be disjoint (Fig 3.4: concurrent "
                "distributed calls run on disjoint processor groups)"
            )
        self.groups.append(members)
        return len(self.groups) - 1

    def add_group(self, group: Sequence[int]) -> int:
        """Add one disjoint processor group; returns its index.

        If a run is active, a worker for the group is spawned into it
        immediately and the queue is re-notified, so the new capacity
        starts pulling jobs at once.
        """
        with self._cond:
            index = self._admit(group)
            run = self._run
            if run is not None:
                run["counts"].append(0)
                run["state"]["alive_workers"] += 1
                run["pg"].spawn(run["worker"], index)
                self._cond.notify_all()
        return index

    # -- failure-detector integration -----------------------------------------

    def attach_detector(self, detector: Any) -> None:
        """Subscribe the farm to a :class:`repro.health.FailureDetector`.

        Suspicion parks groups, dead verdicts retire them, and a
        false-positive rejoin revives a retired group mid-run.
        """
        with self._cond:
            if self._detector is detector:
                return
            if self._detector is not None:
                self._detector.remove_listener(self._on_health_event)
            self._detector = detector
        detector.add_listener(self._on_health_event)

    def detach_detector(self) -> None:
        with self._cond:
            detector, self._detector = self._detector, None
            self._quarantined.clear()
            self._dead_by_verdict.clear()
            self._cond.notify_all()
        if detector is not None:
            detector.remove_listener(self._on_health_event)

    def _groups_with(self, vp: int) -> list[int]:
        return [gi for gi, group in enumerate(self.groups) if vp in group]

    def _group_clear(self, group_index: int) -> bool:
        """True when no member of the group is suspected or dead."""
        detector = self._detector
        if detector is None:
            return True
        machine = detector.machine
        return all(
            not detector.is_suspect(p) and not machine.is_unavailable(p)
            for p in self.groups[group_index]
        )

    def _on_health_event(self, event: Any) -> None:
        """Detector listener: translate per-VP verdicts into group state.

        Runs on the detector's monitor (or heartbeat-delivery) thread;
        takes only the farm condition lock, never detector internals.
        """
        with self._cond:
            if self._detector is None:
                return
            if event.transition in ("suspect", "quarantine"):
                self._quarantined.update(self._groups_with(event.vp))
            elif event.transition == "dead":
                for gi in self._groups_with(event.vp):
                    self._quarantined.discard(gi)
                    self._dead_by_verdict.add(gi)
            elif event.transition in ("alive", "rejoin"):
                for gi in self._groups_with(event.vp):
                    if not self._group_clear(gi):
                        continue
                    self._quarantined.discard(gi)
                    if gi in self._dead_by_verdict:
                        self._dead_by_verdict.discard(gi)
                        run = self._run
                        if run is not None:
                            # Revive: splice a fresh worker for the
                            # falsely-declared-dead group into the run.
                            run["state"]["alive_workers"] += 1
                            run["pg"].spawn(run["worker"], gi)
            self._cond.notify_all()

    def run(
        self, jobs: Sequence[Job], timeout: Optional[float] = None
    ) -> FarmResult:
        """Run every job; each ``job(group_processors)`` returns a result.

        Results are returned in job order regardless of which group ran
        which job.  A job that raises ``ProcessorFailedError`` retires its
        group and is requeued for a surviving group; any other exception
        propagates unchanged.

        Idle workers block on the queue's condition variable with **no
        timeout**: they are woken only by job completion, a requeue, a
        new group, or an abort — an idle farm does zero timed polling.
        """
        pending: collections.deque = collections.deque(enumerate(jobs))
        cond = self._cond
        state = {
            "unfinished": len(jobs),
            "alive_workers": len(self.groups),
            "requeued": 0,
            "aborted": False,
        }
        results: list[Any] = [None] * len(jobs)
        counts = [0] * len(self.groups)
        dead_groups: list[int] = []

        def retire_locked(group_index: int) -> bool:
            """Drop the group from the run; True when it was the last one.

            Caller holds ``cond`` and, on True, must abort + raise.
            """
            state["alive_workers"] -= 1
            dead_groups.append(group_index)
            last_alive = state["alive_workers"] == 0 and state["unfinished"] > 0
            if last_alive:
                state["aborted"] = True
            cond.notify_all()
            return last_alive

        def worker(group_index: int) -> None:
            group = self.groups[group_index]
            while True:
                with cond:
                    while (
                        (not pending or group_index in self._quarantined)
                        and state["unfinished"] > 0
                        and not state["aborted"]
                        and group_index not in self._dead_by_verdict
                    ):
                        cond.wait()
                    if state["unfinished"] == 0 or state["aborted"]:
                        return
                    if group_index in self._dead_by_verdict:
                        # Detector verdict: retire without touching a job
                        # (a rejoin may later revive the group).
                        if retire_locked(group_index):
                            raise ProcessorFailedError(
                                "every task-farm group failed with "
                                f"{state['unfinished']} job(s) unfinished"
                            )
                        return
                    item = pending.popleft()
                job_index, job = item
                try:
                    result = job(group)
                except TimeoutError:
                    with cond:
                        if (
                            group_index in self._quarantined
                            or group_index in self._dead_by_verdict
                        ):
                            # The group is merely suspected (or freshly
                            # verdicted): park, don't fail the run — the
                            # job goes back for survivors or for this
                            # group once it proves alive.
                            pending.append(item)
                            state["requeued"] += 1
                            cond.notify_all()
                            continue
                        state["aborted"] = True
                        cond.notify_all()
                    raise
                except ProcessorFailedError:
                    # This group's processors died: give the job back and
                    # retire the group so survivors pick up the slack.
                    with cond:
                        pending.append(item)
                        state["alive_workers"] -= 1
                        state["requeued"] += 1
                        dead_groups.append(group_index)
                        last_alive = state["alive_workers"] == 0
                        if last_alive:
                            state["aborted"] = True
                        cond.notify_all()
                    if last_alive:
                        raise ProcessorFailedError(
                            "every task-farm group failed with "
                            f"{state['unfinished']} job(s) unfinished"
                        )
                    return
                except BaseException:
                    # Unexpected job failure: without a timed poll, the
                    # peers blocked on cond.wait() must be woken or the
                    # join below would hang on them forever.
                    with cond:
                        state["aborted"] = True
                        cond.notify_all()
                    raise
                results[job_index] = result
                with cond:
                    counts[group_index] += 1
                    state["unfinished"] -= 1
                    cond.notify_all()

        pg = ProcessGroup()
        run_ctx = {
            "state": state,
            "counts": counts,
            "pg": pg,
            "worker": worker,
        }
        started = time.perf_counter()
        with cond:
            if self._run is not None:
                raise RuntimeError("task farm is already running")
            self._run = run_ctx
            for gi in range(len(self.groups)):
                pg.spawn(worker, gi)
        try:
            pg.join_all(timeout=timeout)
        finally:
            with cond:
                self._run = None
                # Leave no worker blocked if join_all raised (timeout).
                state["aborted"] = True
                cond.notify_all()
        wall = time.perf_counter() - started
        return FarmResult(
            results=results,
            wall_time=wall,
            jobs_per_group=counts,
            dead_groups=sorted(dead_groups),
            requeued_jobs=state["requeued"],
        )
