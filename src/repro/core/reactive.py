"""Reactive computations (§2.3.3, Fig 2.3).

A problem in this class is "a not-necessarily-regular graph of
communicating processes operating asynchronously, in which each process is
a data-parallel computation, and communication among neighbouring processes
is performed by a task-parallel top-level program".  Discrete-event
simulation is the motivating instance: graph nodes are system components
(pumps, valves, the reactor), events model their interaction, and a
computationally intensive component model is a distributed call.

:class:`ReactiveGraph` runs one PCN process per node.  Nodes exchange
timestamped :class:`Event` objects along FIFO streams; a node's handler
consumes one event and emits zero or more (destination, event) pairs.
Termination uses in-flight counting: when no event is queued or being
handled anywhere, every input stream is closed and the run completes —
so irregular, data-dependent event cascades (the "dynamic computations"
task parallelism exists for, §1.1.4) terminate without a preset horizon.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence

from repro.pcn.process import ProcessGroup
from repro.pcn.streams import stream_pair


@dataclass(frozen=True)
class Event:
    """A timestamped event."""

    time: float
    kind: str
    payload: Any = None

    def at(self, dt: float, kind: Optional[str] = None, payload: Any = None) -> "Event":
        """Derived event ``dt`` later (convenience for handlers)."""
        return Event(
            self.time + dt,
            kind if kind is not None else self.kind,
            payload if payload is not None else self.payload,
        )


Handler = Callable[["ReactiveNode", Event], Optional[Sequence[tuple[str, Event]]]]


@dataclass
class ReactiveNode:
    """One graph node: a component of the simulated system.

    ``handler(node, event)`` processes one event, returning the events to
    emit as ``(destination_name, Event)`` pairs.  ``state`` is the node's
    private mutable state; ``processors`` the group its data-parallel model
    runs on (the handler closes over it for distributed calls).
    """

    name: str
    handler: Handler
    state: dict = field(default_factory=dict)
    processors: Optional[Sequence[int]] = None
    handled: list = field(default_factory=list)  # (local time, kind) log
    local_time: float = 0.0


@dataclass
class ReactiveResult:
    events_handled: int
    wall_time: float
    per_node_counts: dict

    def __repr__(self) -> str:
        return (
            f"<ReactiveResult events={self.events_handled} "
            f"wall={self.wall_time:.3f}s nodes={self.per_node_counts}>"
        )


class _InFlight:
    """Distributed-termination counter: >0 while any event is queued or
    being handled."""

    def __init__(self) -> None:
        self._count = 0
        self._cond = threading.Condition()

    def increment(self, by: int = 1) -> None:
        with self._cond:
            self._count += by

    def decrement(self) -> None:
        with self._cond:
            self._count -= 1
            if self._count == 0:
                self._cond.notify_all()

    def wait_zero(self, timeout: float) -> bool:
        with self._cond:
            return self._cond.wait_for(lambda: self._count == 0, timeout)


class TopologyError(Exception):
    """An event was emitted along an undeclared edge of a strict graph."""


class ReactiveGraph:
    """An asynchronous graph of event-handling nodes.

    By default the graph is *dynamic*: handlers may emit to any node (the
    thesis allows the graph to "change as the computation proceeds",
    §2.3.3).  Declaring edges with :meth:`connect` makes the topology
    *strict*: an emission along an undeclared edge raises
    :class:`TopologyError` — a structural safety net for fixed-topology
    simulations like the Fig 2.3 reactor.
    """

    def __init__(self) -> None:
        self.nodes: dict[str, ReactiveNode] = {}
        self.edges: set[tuple[str, str]] = set()
        self._strict = False

    def add_node(
        self,
        name: str,
        handler: Handler,
        state: Optional[dict] = None,
        processors: Optional[Sequence[int]] = None,
    ) -> ReactiveNode:
        if name in self.nodes:
            raise ValueError(f"duplicate node {name!r}")
        node = ReactiveNode(
            name=name,
            handler=handler,
            state=state if state is not None else {},
            processors=processors,
        )
        self.nodes[name] = node
        return node

    def connect(self, source: str, dest: str) -> None:
        """Declare a directed edge; the first declaration makes the
        topology strict."""
        for name in (source, dest):
            if name not in self.nodes:
                raise KeyError(f"no node named {name!r}")
        self.edges.add((source, dest))
        self._strict = True

    def _check_edge(self, source: str, dest: str) -> None:
        if self._strict and (source, dest) not in self.edges:
            raise TopologyError(
                f"undeclared edge {source!r} -> {dest!r}; declared edges: "
                f"{sorted(self.edges)}"
            )

    def run(
        self,
        initial_events: Sequence[tuple[str, Event]],
        timeout: float = 30.0,
    ) -> ReactiveResult:
        """Inject ``initial_events`` and run to quiescence."""
        if not self.nodes:
            raise ValueError("reactive graph has no nodes")
        inflight = _InFlight()
        writers = {}
        streams = {}
        locks = {}
        for name in self.nodes:
            stream, writer = stream_pair()
            streams[name] = stream
            writers[name] = writer
            locks[name] = threading.Lock()

        def emit(dest: str, event: Event) -> None:
            if dest not in writers:
                raise KeyError(f"no node named {dest!r}")
            inflight.increment()
            with locks[dest]:
                writers[dest].send(event)

        errors: list[BaseException] = []
        errors_lock = threading.Lock()

        def node_process(node: ReactiveNode) -> None:
            for event in streams[node.name]:
                try:
                    node.local_time = max(node.local_time, event.time)
                    node.handled.append((event.time, event.kind))
                    out = node.handler(node, event) or ()
                    for dest, new_event in out:
                        self._check_edge(node.name, dest)
                        emit(dest, new_event)
                except BaseException as exc:  # noqa: BLE001 - re-raised below
                    with errors_lock:
                        errors.append(exc)
                finally:
                    inflight.decrement()

        group = ProcessGroup()
        started = time.perf_counter()
        for node in self.nodes.values():
            group.spawn(node_process, node)
        for dest, event in initial_events:
            emit(dest, event)

        if not inflight.wait_zero(timeout):
            raise TimeoutError(
                f"reactive graph did not quiesce within {timeout}s"
            )
        for name in self.nodes:
            with locks[name]:
                writers[name].close()
        group.join_all(timeout=timeout)
        if errors:
            raise errors[0]
        wall = time.perf_counter() - started
        counts = {n.name: len(n.handled) for n in self.nodes.values()}
        return ReactiveResult(
            events_handled=sum(counts.values()),
            wall_time=wall,
            per_node_counts=counts,
        )
