"""The paper's contribution as a pythonic public API (§2.1).

The integration model adds two operations to the task-parallel repertoire:
*creation and manipulation of distributed data structures*, and *calls to
data-parallel programs* (§2.1).  :class:`~repro.core.runtime
.IntegratedRuntime` exposes exactly those, plus one helper class per
problem class of §2.3:

* :class:`~repro.core.pipeline.Pipeline` — pipelined computations (§2.3.2);
* :class:`~repro.core.coupled.CoupledSimulation` — coupled simulations
  (§2.3.1);
* :class:`~repro.core.reactive.ReactiveGraph` — reactive / discrete-event
  computations (§2.3.3);
* :class:`~repro.core.farm.TaskFarm` — inherently parallel computations
  (§2.3.4);

and the §7.2.1 extension, :class:`~repro.core.channels.Channel` (direct
communication between concurrently-executing data-parallel programs).
"""

from repro.core.runtime import IntegratedRuntime
from repro.core.darray import DistributedArray
from repro.core.pipeline import Pipeline, Stage
from repro.core.coupled import Component, CoupledSimulation
from repro.core.reactive import ReactiveGraph, ReactiveNode, Event
from repro.core.farm import TaskFarm
from repro.core.channels import Channel
from repro.core.alternative import call_task_parallel_on

__all__ = [
    "IntegratedRuntime",
    "DistributedArray",
    "Pipeline",
    "Stage",
    "Component",
    "CoupledSimulation",
    "ReactiveGraph",
    "ReactiveNode",
    "Event",
    "TaskFarm",
    "Channel",
    "call_task_parallel_on",
]
