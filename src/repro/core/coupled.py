"""Coupled simulations (§2.3.1, Fig 2.1).

A problem in this class consists of two or more interdependent subproblems,
each solved by a data-parallel program; the coupling — exchange of boundary
data at each time step — is performed by a task-parallel top level.  The
climate example: an ocean simulation and an atmosphere simulation, each a
time-stepped data-parallel program, exchanging boundary data every step
through the task-parallel layer (Fig 2.1).

:class:`CoupledSimulation` runs the components *concurrently* each step
(one PCN process per component) and then applies the exchange function —
which, per the model's restriction (Fig 3.4), moves data between the
components' distributed arrays **through the task-parallel level**, never
directly between the data-parallel programs.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence

from repro.pcn.composition import par


@dataclass
class Component:
    """One coupled subproblem.

    ``step(component, step_index)`` advances the component one time step —
    typically one distributed call on ``processors``.  ``state`` carries
    whatever the component needs (distributed arrays, parameters).
    """

    name: str
    step: Callable[["Component", int], Any]
    processors: Sequence[int]
    state: dict = field(default_factory=dict)


@dataclass
class CoupledResult:
    steps: int
    wall_time: float
    step_wall_times: list[float]
    exchange_wall_times: list[float]

    def mean_step_time(self) -> float:
        return sum(self.step_wall_times) / max(1, len(self.step_wall_times))

    def exchange_fraction(self) -> float:
        """Fraction of total time spent in the TP-level exchange — the
        §7.2.1 bottleneck measure."""
        total = self.wall_time
        if total == 0.0:
            return 0.0
        return sum(self.exchange_wall_times) / total


class CoupledSimulation:
    """Concurrent components + per-step task-parallel boundary exchange."""

    def __init__(
        self,
        components: Sequence[Component],
        exchange: Optional[Callable[[Sequence[Component], int], None]] = None,
    ) -> None:
        if not components:
            raise ValueError("a coupled simulation needs >= 1 component")
        names = [c.name for c in components]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate component names: {names}")
        self.components = list(components)
        self.exchange = exchange

    def component(self, name: str) -> Component:
        for c in self.components:
            if c.name == name:
                return c
        raise KeyError(name)

    def run(self, steps: int, timeout: Optional[float] = None) -> CoupledResult:
        """Advance all components ``steps`` time steps.

        Each step: all components advance concurrently (their distributed
        calls run on disjoint processor groups), then the exchange runs on
        the single task-parallel thread of control.
        """
        step_times: list[float] = []
        exchange_times: list[float] = []
        started = time.perf_counter()
        for k in range(steps):
            t0 = time.perf_counter()
            par(
                *[
                    (lambda comp=c, kk=k: comp.step(comp, kk))
                    for c in self.components
                ],
                timeout=timeout,
            )
            t1 = time.perf_counter()
            if self.exchange is not None:
                self.exchange(self.components, k)
            t2 = time.perf_counter()
            step_times.append(t1 - t0)
            exchange_times.append(t2 - t1)
        wall = time.perf_counter() - started
        return CoupledResult(
            steps=steps,
            wall_time=wall,
            step_wall_times=step_times,
            exchange_wall_times=exchange_times,
        )
