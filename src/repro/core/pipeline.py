"""Pipelined computations (§2.3.2, Fig 2.2).

A problem in this class decomposes into subproblems forming pipeline
stages; the stages execute concurrently as tasks, each stage typically a
data-parallel program on its own processor group.  "Except during the
initial filling of the pipeline, all stages can operate concurrently" —
the property the FIG-2.2 benchmark measures.

:class:`Pipeline` wires one PCN process per stage, connected by
definitional streams (the §6.2 program structure).  Each stage applies its
``work`` function to successive items; ``work`` is ordinary Python and may
make distributed calls on the stage's processor group.

Instrumentation records per-item service intervals per stage, from which
:class:`PipelineResult` derives both measured wall-clock figures and the
GIL-independent *simulated* makespans (sequential vs pipelined) used for
shape comparison.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Optional, Sequence

from repro.pcn.process import ProcessGroup
from repro.pcn.streams import Stream, StreamWriter, stream_pair


@dataclass(frozen=True)
class StagePoison:
    """Typed poison value a crashed stage emits downstream.

    When a stage body raises, the failure must not strand consumers on an
    undefined stream cell; the stage sends this marker so every downstream
    stage (and the output collector) *sees* the crash as a value — the
    §4.1.2 failure-as-value discipline applied to streams.  Downstream
    stages forward a poison untouched rather than applying ``work`` to it.
    """

    stage: str
    error: BaseException
    item_index: int

    def __str__(self) -> str:
        return (
            f"<poison from stage {self.stage!r} at item {self.item_index}: "
            f"{self.error!r}>"
        )


@dataclass
class Stage:
    """One pipeline stage.

    ``work(item) -> item`` transforms one data set; ``processors`` is the
    stage's processor group (informational — ``work`` closes over it when
    making distributed calls).
    """

    name: str
    work: Callable[[Any], Any]
    processors: Optional[Sequence[int]] = None


@dataclass
class StageRecord:
    """Service intervals for one stage: (item_index, start, end)."""

    name: str
    intervals: list = field(default_factory=list)

    def busy_time(self) -> float:
        return sum(end - start for _, start, end in self.intervals)

    def service_times(self) -> list[float]:
        return [end - start for _, start, end in self.intervals]


@dataclass
class PipelineResult:
    """Outputs plus timing instrumentation for one pipeline run."""

    outputs: list
    records: list[StageRecord]
    wall_time: float

    def stage_busy_times(self) -> dict[str, float]:
        return {r.name: r.busy_time() for r in self.records}

    def simulated_sequential_makespan(self) -> float:
        """Makespan had the stages run one-after-another per item (no
        overlap): the sum of every service time."""
        return sum(r.busy_time() for r in self.records)

    def simulated_pipelined_makespan(self) -> float:
        """Ideal pipelined makespan from the measured service times: fill
        the pipeline with the first item, then the bottleneck stage paces
        every further item (Fig 2.2's steady state)."""
        if not self.records or not self.records[0].intervals:
            return 0.0
        n_items = len(self.records[0].intervals)
        first_item = sum(
            r.service_times()[0] for r in self.records if r.service_times()
        )
        bottleneck = max(
            max(r.service_times()) if r.service_times() else 0.0
            for r in self.records
        )
        return first_item + bottleneck * (n_items - 1)

    def simulated_speedup(self) -> float:
        """Sequential/pipelined makespan ratio — approaches the number of
        (balanced) stages as the item count grows."""
        pipelined = self.simulated_pipelined_makespan()
        if pipelined == 0.0:
            return 1.0
        return self.simulated_sequential_makespan() / pipelined

    def steady_state_speedup(self) -> float:
        """Like :meth:`simulated_speedup` but built from *median* service
        times, making it robust to scheduling-noise spikes in any single
        interval (the estimator used by the FIG-2.2 benchmark)."""
        medians = []
        for record in self.records:
            times = sorted(record.service_times())
            if not times:
                return 1.0
            medians.append(times[len(times) // 2])
        n_items = len(self.records[0].intervals)
        if n_items == 0:
            return 1.0
        sequential = sum(medians) * n_items
        pipelined = sum(medians) + max(medians) * (n_items - 1)
        return sequential / pipelined if pipelined else 1.0

    def overlap_intervals(self) -> float:
        """Total time during which >= 2 stages were simultaneously busy in
        the *actual* run (0 for a sequential execution)."""
        edges = []
        for record in self.records:
            for _, start, end in record.intervals:
                edges.append((start, 1))
                edges.append((end, -1))
        edges.sort()
        overlap = 0.0
        depth = 0
        prev = None
        for t, delta in edges:
            if prev is not None and depth >= 2:
                overlap += t - prev
            depth += delta
            prev = t
        return overlap


class Pipeline:
    """A linear pipeline of concurrently-executing stages."""

    def __init__(self, stages: Sequence[Stage]) -> None:
        if not stages:
            raise ValueError("a pipeline needs at least one stage")
        self.stages = list(stages)

    def _stage_process(
        self,
        stage: Stage,
        record: StageRecord,
        upstream: Stream,
        downstream: StreamWriter,
        on_error: str,
    ) -> None:
        index = 0
        try:
            for item in upstream:
                if isinstance(item, StagePoison):
                    # A crash upstream: forward the typed poison without
                    # applying work, so the failure travels to the sink.
                    downstream.send(item)
                    continue
                start = time.perf_counter()
                try:
                    result = stage.work(item)
                except Exception as exc:  # noqa: BLE001
                    downstream.send(StagePoison(stage.name, exc, index))
                    if on_error == "raise":
                        raise
                    return
                end = time.perf_counter()
                record.intervals.append((index, start, end))
                downstream.send(result)
                index += 1
        finally:
            # Close downstream even when the stage body raises, so the
            # rest of the pipeline drains and terminates instead of
            # suspending on an undefined stream cell; the error itself
            # propagates through the process join (or, under
            # on_error="poison", only as the StagePoison value).
            downstream.close()

    def run(
        self,
        items: Iterable[Any],
        timeout: Optional[float] = None,
        on_error: str = "raise",
    ) -> PipelineResult:
        """Feed ``items`` through the pipeline; all stages run concurrently
        as PCN processes connected by streams.

        A crashing stage always sends a :class:`StagePoison` downstream so
        consumers terminate instead of stranding.  ``on_error`` selects how
        the crash surfaces to the caller: ``"raise"`` re-raises the original
        exception after the pipeline drains (poisons are filtered from
        ``outputs``); ``"poison"`` returns normally with the poison value(s)
        present in ``outputs`` for the caller to inspect.
        """
        if on_error not in ("raise", "poison"):
            raise ValueError(
                f"on_error must be 'raise' or 'poison', not {on_error!r}"
            )
        records = [StageRecord(s.name) for s in self.stages]
        head, feed = stream_pair()
        upstream = head
        group = ProcessGroup()
        for stage, record in zip(self.stages, records):
            out_stream, out_writer = stream_pair()
            group.spawn(
                self._stage_process, stage, record, upstream, out_writer,
                on_error,
            )
            upstream = out_stream
        tail = upstream

        started = time.perf_counter()
        outputs: list[Any] = []

        def consume() -> None:
            for item in tail:
                if isinstance(item, StagePoison) and on_error == "raise":
                    continue
                outputs.append(item)

        group.spawn(consume)
        for item in items:
            feed.send(item)
        feed.close()
        group.join_all(timeout=timeout)
        wall = time.perf_counter() - started
        return PipelineResult(outputs=outputs, records=records, wall_time=wall)

    def run_sequential(
        self, items: Iterable[Any]
    ) -> PipelineResult:
        """Baseline: apply every stage to each item on one thread of
        control (the unintegrated, purely data-parallel formulation)."""
        records = [StageRecord(s.name) for s in self.stages]
        outputs = []
        started = time.perf_counter()
        for index, item in enumerate(items):
            for stage, record in zip(self.stages, records):
                t0 = time.perf_counter()
                item = stage.work(item)
                t1 = time.perf_counter()
                record.intervals.append((index, t0, t1))
            outputs.append(item)
        wall = time.perf_counter() - started
        return PipelineResult(outputs=outputs, records=records, wall_time=wall)
