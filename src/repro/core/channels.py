"""Direct communication between data-parallel programs — the §7.2.1
extension.

The base model routes *all* data exchanged between different data-parallel
programs through the common task-parallel caller, which "creates a
bottleneck for problems in which there is a significant amount of data to
be exchanged" (§7.2.1).  The proposed extension: let concurrently-executing
data-parallel programs communicate over **channels defined by the
task-parallel calling program and passed to the data-parallel programs as
parameters** (the Fortran M approach).

:class:`Channel` implements that extension.  The task-parallel program —
which knows both processor groups — creates the channel; each side's copies
obtain an end from their context.  Copy ``r`` of the producer call is wired
to copy ``r`` of the consumer call (groups must be the same size), and
traffic is DATA_PARALLEL-typed under the channel's private group id, so it
can never conflict with either call's internal communication or with PCN
traffic (§3.4.1 extended).

The S-7.2.1 benchmark compares stage-to-stage transfer through the
task-parallel level against transfer over a channel.
"""

from __future__ import annotations

import itertools
from typing import Any, Hashable, Optional, Sequence

from repro.spmd.context import SPMDContext
from repro.vp.machine import Machine
from repro.vp.message import MessageType

_channel_ids = itertools.count()


class ChannelEnd:
    """One copy's handle on a channel (producer or consumer side)."""

    def __init__(
        self,
        machine: Machine,
        my_proc: int,
        peer_proc: int,
        group: Hashable,
        rank: int,
    ) -> None:
        self._machine = machine
        self._my_proc = my_proc
        self._peer_proc = peer_proc
        self._group = group
        self.rank = rank

    def send(self, payload: Any, tag: Hashable = None) -> None:
        self._machine.send(
            source=self._my_proc,
            dest=self._peer_proc,
            payload=payload,
            mtype=MessageType.DATA_PARALLEL,
            tag=tag,
            group=self._group,
        )

    def recv(self, tag: Hashable = None, timeout: Optional[float] = None) -> Any:
        node = self._machine.processor(self._my_proc)
        msg = node.mailbox.recv(
            mtype=MessageType.DATA_PARALLEL,
            tag=tag,
            source=self._peer_proc,
            group=self._group,
            timeout=timeout,
        )
        return msg.payload


class Channel:
    """A rank-to-rank conduit between two concurrent distributed calls."""

    def __init__(
        self,
        machine: Machine,
        side_a_processors: Sequence[int],
        side_b_processors: Sequence[int],
    ) -> None:
        a = tuple(int(p) for p in side_a_processors)
        b = tuple(int(p) for p in side_b_processors)
        if len(a) != len(b):
            raise ValueError(
                f"channel endpoints must have equal widths: {len(a)} vs "
                f"{len(b)} (copy r talks to copy r)"
            )
        self.machine = machine
        self.side_a = a
        self.side_b = b
        self.group = ("channel", next(_channel_ids))

    @property
    def width(self) -> int:
        return len(self.side_a)

    def end_a(self, ctx: SPMDContext) -> ChannelEnd:
        """The side-A end for one copy (its rank selects the pairing)."""
        self._check_membership(ctx, self.side_a, "A")
        return ChannelEnd(
            self.machine,
            self.side_a[ctx.index],
            self.side_b[ctx.index],
            self.group,
            ctx.index,
        )

    def end_b(self, ctx: SPMDContext) -> ChannelEnd:
        self._check_membership(ctx, self.side_b, "B")
        return ChannelEnd(
            self.machine,
            self.side_b[ctx.index],
            self.side_a[ctx.index],
            self.group,
            ctx.index,
        )

    def _check_membership(
        self, ctx: SPMDContext, side: tuple[int, ...], label: str
    ) -> None:
        if ctx.index >= len(side) or side[ctx.index] != ctx.processor_number:
            raise ValueError(
                f"copy index {ctx.index} on vp{ctx.processor_number} is not "
                f"rank {ctx.index} of channel side {label} {list(side)}; the "
                "channel must be created over the same processor groups as "
                "the distributed calls using it"
            )
