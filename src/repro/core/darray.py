"""Pythonic handle for distributed arrays.

Wraps an :class:`~repro.arrays.record.ArrayID` with the §3.2.1.5 operation
set — element read/write by global indices, info queries, border
verification, deletion — raising typed exceptions instead of returning
Status values, plus NumPy gather/scatter conveniences built on bulk section
transfer.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

import numpy as np

from repro.arrays import am_user
from repro.arrays.layout import ArrayLayout
from repro.arrays.record import ArrayID
from repro.status import ArrayNotFoundError, check_status
from repro.vp.machine import Machine


class DistributedArray:
    """A distributed array viewed as a global construct (§3.1.3)."""

    def __init__(
        self,
        machine: Machine,
        array_id: ArrayID,
        layout: ArrayLayout,
        processors: tuple[int, ...],
        type_name: str,
        replication: int = 0,
    ) -> None:
        self.machine = machine
        self.array_id = array_id
        self.layout = layout
        self.processors = processors
        self.type_name = type_name
        self.replication = replication
        self._freed = False

    # -- creation ------------------------------------------------------------------

    @classmethod
    def create(
        cls,
        machine: Machine,
        type_name: str,
        dims: Sequence[int],
        processors: Sequence[int],
        distrib: Sequence,
        borders: Any = None,
        indexing: str = "row",
        on_processor: int = 0,
        replication: int = 0,
    ) -> "DistributedArray":
        """Create a distributed array, raising on failure.

        ``replication=k`` keeps ``k`` backup mirrors of every section (see
        ``docs/fault_model.md``, Durable arrays).
        """
        array_id, status = am_user.create_array(
            machine,
            type_name,
            dims,
            processors,
            distrib,
            border_info=borders,
            indexing_type=indexing,
            processor=on_processor,
            replication=replication,
        )
        check_status(
            status,
            f"create_array({type_name}, dims={tuple(dims)}, "
            f"distrib={tuple(distrib)}) failed: {status.name}",
        )
        grid_dims, st = am_user.find_info(machine, array_id, "grid_dimensions")
        check_status(st)
        border_list, st = am_user.find_info(machine, array_id, "borders")
        check_status(st)
        indexing_type, st = am_user.find_info(machine, array_id, "indexing_type")
        check_status(st)
        layout = ArrayLayout(
            dims=tuple(int(d) for d in dims),
            grid=tuple(int(g) for g in grid_dims),
            borders=tuple(int(b) for b in border_list),
            indexing=indexing_type,
            grid_indexing=indexing_type,
        )
        return cls(
            machine,
            array_id,
            layout,
            tuple(int(p) for p in processors),
            type_name,
            replication=replication,
        )

    # -- element access ---------------------------------------------------------------

    def _check_live(self) -> None:
        if self._freed:
            raise ArrayNotFoundError(f"array {self.array_id} has been freed")

    def __getitem__(self, indices) -> Any:
        self._check_live()
        if not isinstance(indices, tuple):
            indices = (indices,)
        value, status = am_user.read_element(self.machine, self.array_id, indices)
        check_status(status, f"read_element{indices} failed")
        return value

    def __setitem__(self, indices, value) -> None:
        self._check_live()
        if not isinstance(indices, tuple):
            indices = (indices,)
        status = am_user.write_element(
            self.machine, self.array_id, indices, value
        )
        check_status(status, f"write_element{indices} failed")

    # -- region access ----------------------------------------------------------------

    def read_region(self, region: Sequence[Sequence[int]]) -> np.ndarray:
        """Dense copy of a rectangular region (one half-open ``(start,
        stop)`` pair per dimension) — one message per owning processor."""
        self._check_live()
        data, status = am_user.read_region(
            self.machine, self.array_id, region
        )
        check_status(status, f"read_region{tuple(region)} failed")
        return data

    def write_region(
        self, region: Sequence[Sequence[int]], values: Any
    ) -> None:
        """Overwrite a rectangular region from a dense array of its shape."""
        self._check_live()
        status = am_user.write_region(
            self.machine, self.array_id, region, values
        )
        check_status(status, f"write_region{tuple(region)} failed")

    def write_region_targeted(
        self, region: Sequence[Sequence[int]], values: Any
    ) -> None:
        """Overwrite a region with one fused write per owning processor,
        issued directly at each owner (``am_user.write_region_targeted``)
        instead of through a single intermediary hop."""
        self._check_live()
        status = am_user.write_region_targeted(
            self.machine, self.array_id, region, values
        )
        check_status(status, f"write_region_targeted{tuple(region)} failed")

    def halo_plan(self, op: str = "stencil5") -> Any:
        """The compiled halo-exchange plan for this array (or None when
        planning cannot engage — see ``am_user.halo_plan``)."""
        self._check_live()
        return am_user.halo_plan(self.machine, self.array_id, op)

    def local_block(self, processor: int) -> tuple[tuple[int, ...], np.ndarray]:
        """``(global origin, interior copy)`` of one processor's section."""
        self._check_live()
        block, status = am_user.get_local_block(
            self.machine, self.array_id, processor
        )
        check_status(status, f"get_local_block@{processor} failed")
        return block

    # -- info ---------------------------------------------------------------------------

    @property
    def dims(self) -> tuple[int, ...]:
        return self.layout.dims

    @property
    def grid(self) -> tuple[int, ...]:
        return self.layout.grid

    @property
    def local_dims(self) -> tuple[int, ...]:
        return self.layout.local_dims

    def info(self, which: str) -> Any:
        self._check_live()
        value, status = am_user.find_info(self.machine, self.array_id, which)
        check_status(status, f"find_info({which!r}) failed")
        return value

    # -- borders ----------------------------------------------------------------------------

    def verify_borders(self, border_info: Any, indexing: Optional[str] = None) -> None:
        """§4.2.7: ensure borders match, reallocating sections if needed."""
        self._check_live()
        status = am_user.verify_array(
            self.machine,
            self.array_id,
            self.layout.rank,
            border_info,
            indexing if indexing is not None else self.layout.indexing,
        )
        check_status(status, "verify_array failed")
        borders, st = am_user.find_info(self.machine, self.array_id, "borders")
        check_status(st)
        self.layout = self.layout.replace_borders(tuple(int(b) for b in borders))

    # -- durability ---------------------------------------------------------------------------

    def checkpoint(self) -> Any:
        """Epoch-consistent snapshot of the whole array (quiesces writers
        at a barrier); also becomes the latest checkpoint used by
        replication-free recovery."""
        self._check_live()
        snapshot, status = am_user.checkpoint_array(
            self.machine, self.array_id
        )
        check_status(status, "checkpoint_array failed")
        return snapshot

    def restore(self, snapshot: Any) -> None:
        """Write a snapshot back under a fresh epoch; stale in-flight
        replica updates from before the restore are rejected."""
        self._check_live()
        status = am_user.restore_array(self.machine, self.array_id, snapshot)
        check_status(status, "restore_array failed")

    def flush(self) -> int:
        """Drain this array's pending write-behind writes (repro.perf);
        returns the number of writes flushed."""
        self._check_live()
        return am_user.flush_writes(self.machine, self.array_id)

    # -- elastic placement --------------------------------------------------------------------

    def _refresh_processors(self) -> None:
        procs, status = am_user.find_info(
            self.machine, self.array_id, "processors"
        )
        check_status(status, "find_info('processors') failed")
        self.processors = tuple(int(p) for p in procs)

    def migrate(self, assignments: Any) -> list[int]:
        """Move sections per ``{section: destination processor}``.

        A migration barrier: pending coalesced writes flush first, the
        epoch bump invalidates cached section copies, and the move rolls
        back under a fresh epoch if anything fails mid-flight (see
        ``docs/elasticity.md``).  Returns the moved section numbers.
        """
        self._check_live()
        moved, status = am_user.migrate_sections(
            self.machine, self.array_id, assignments
        )
        check_status(status, f"migrate_sections({assignments!r}) failed")
        self._refresh_processors()
        return list(moved)

    def rebalance(self, targets: Optional[Sequence[int]] = None) -> list[int]:
        """Repair/respread placement: sections on dead owners (or owners
        outside ``targets``) move to spare processors — including ones
        added at runtime with ``Machine.add_processor()``.  Returns the
        moved section numbers (empty when already balanced)."""
        self._check_live()
        moved, status = am_user.rebalance_array(
            self.machine, self.array_id, targets
        )
        check_status(status, "rebalance_array failed")
        self._refresh_processors()
        return list(moved)

    # -- lifetime ------------------------------------------------------------------------------

    def free(self) -> None:
        self._check_live()
        status = am_user.free_array(self.machine, self.array_id)
        check_status(status, "free_array failed")
        self._freed = True

    def __enter__(self) -> "DistributedArray":
        return self

    def __exit__(self, *exc) -> None:
        if not self._freed:
            self.free()

    # -- bulk transfer (gather/scatter through the TP level) -------------------------------------

    def _section_slices(self, section: int) -> tuple[slice, ...]:
        coords = self.layout.section_coords(section)
        return tuple(
            slice(c * ld, (c + 1) * ld)
            for c, ld in zip(coords, self.layout.local_dims)
        )

    def to_numpy(self) -> np.ndarray:
        """Assemble the global array on the caller.

        A whole-array region read: one section copy per owning processor,
        with data crossing address spaces by message copy.
        """
        return self.read_region([(0, d) for d in self.layout.dims])

    def from_numpy(self, values: np.ndarray) -> None:
        """Scatter a global NumPy array into the local sections (a
        whole-array region write — one message per owning processor)."""
        self._check_live()
        values = np.asarray(values)
        if tuple(values.shape) != self.layout.dims:
            raise ValueError(
                f"shape {values.shape} != array dims {self.layout.dims}"
            )
        self.write_region([(0, d) for d in self.layout.dims], values)

    def __repr__(self) -> str:
        return (
            f"<DistributedArray {self.array_id} {self.type_name}"
            f"{list(self.dims)} grid={list(self.grid)}"
            f"{' FREED' if self._freed else ''}>"
        )
