"""Distributed arrays and the array manager (§3.2, §4.2, §5.1).

The only distributed data structure the prototype supports is the
*distributed array*: an N-dimensional array block-partitioned into local
sections and distributed one-per-processor over a processor grid.  The
runtime support is the **array manager**, one server process per processor
(§3.2.2.2); programs manipulate arrays only through library procedures that
issue array-manager server requests (§5.1.2).
"""

from repro.arrays.decomposition import (
    BLOCK,
    STAR,
    Block,
    DecompositionError,
    compute_grid,
    normalize_distrib,
)
from repro.arrays.durability import (
    ArraySnapshot,
    DurabilityState,
    RecoveryCoordinator,
    ReplicaMap,
    ReplicaUpdate,
    install_recovery,
)
from repro.arrays.layout import ArrayLayout
from repro.arrays.placement import (
    MIGRATE_KIND,
    MigrationError,
    PlacementPlan,
    SectionMove,
    SectionMover,
    SectionSourceError,
    StalePlanError,
)
from repro.arrays.rebalance import Rebalancer
from repro.arrays.record import ArrayID, ArrayRecord
from repro.arrays.local_section import LocalSection
from repro.arrays.manager import ArrayManager, install_array_manager
from repro.arrays import am_user, am_util

__all__ = [
    "ArraySnapshot",
    "DurabilityState",
    "RecoveryCoordinator",
    "ReplicaMap",
    "ReplicaUpdate",
    "install_recovery",
    "MIGRATE_KIND",
    "MigrationError",
    "PlacementPlan",
    "Rebalancer",
    "SectionMove",
    "SectionMover",
    "SectionSourceError",
    "StalePlanError",
    "BLOCK",
    "STAR",
    "Block",
    "DecompositionError",
    "compute_grid",
    "normalize_distrib",
    "ArrayLayout",
    "ArrayID",
    "ArrayRecord",
    "LocalSection",
    "ArrayManager",
    "install_array_manager",
    "am_user",
    "am_util",
]
