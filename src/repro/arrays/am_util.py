"""Utility library procedures (§C).

The thesis ships a small ``am_util`` module alongside the core library:
array constructors, module loading, atomic printing, and the default
``max`` reduction operator.
"""

from __future__ import annotations

import sys
import threading
from typing import Any, Iterable, Optional

import numpy as np

from repro.arrays.manager import install_array_manager
from repro.pcn.defvar import DefVar
from repro.vp.machine import Machine


def tuple_to_int_array(values: Iterable[int]) -> np.ndarray:
    """am_util:tuple_to_int_array (§C.1): definitional int array from a
    tuple."""
    return np.asarray(list(values), dtype=np.int64)


def node_array(first: int, stride: int, count: int) -> np.ndarray:
    """am_util:node_array (§C.2): the patterned array
    ``[first, first+stride, first+2*stride, ...]`` of processor numbers."""
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    return np.asarray(
        [first + i * stride for i in range(count)], dtype=np.int64
    )


def load_all(
    machine: Machine,
    server_name: str = "am",
    done: Optional[DefVar] = None,
) -> DefVar:
    """am_util:load_all (§C.3): load a module on all processors.

    Loading ``"am"`` starts the array manager (§B.3); ``"am_debug"`` starts
    the tracing variant.  Returns the Done variable, defined (to ``[]``,
    represented as None) once the load completes everywhere.
    """
    if server_name == "am":
        install_array_manager(machine, trace=False)
    elif server_name == "am_debug":
        install_array_manager(machine, trace=True)
    else:
        raise ValueError(f"unknown server module {server_name!r}")
    done_var = done if done is not None else DefVar("Done")
    done_var.define(None)
    return done_var


_print_lock = threading.Lock()


def atomic_print(*items: Any, file=None) -> None:
    """am_util:atomic_print (§C.4): write one line atomically.

    Definitional variables among ``items`` are read first, so the line
    prints only after all referenced variables become defined — matching
    the §C.4 postcondition.
    """
    rendered = []
    for item in items:
        if isinstance(item, DefVar):
            item = item.read()
        rendered.append(str(item))
    line = "".join(rendered)
    with _print_lock:
        print(line, file=file if file is not None else sys.stdout, flush=True)


def max_combine(in1: Any, in2: Any) -> Any:
    """am_util:max (§C.5): the default status/reduction combiner."""
    if isinstance(in1, np.ndarray) or isinstance(in2, np.ndarray):
        return np.maximum(in1, in2)
    return max(in1, in2)


def min_combine(in1: Any, in2: Any) -> Any:
    """Binary min, the combiner used in the §4.3.1 cpgm2 example."""
    if isinstance(in1, np.ndarray) or isinstance(in2, np.ndarray):
        return np.minimum(in1, in2)
    return min(in1, in2)


def sum_combine(in1: Any, in2: Any) -> Any:
    """Binary sum, a common reduction combiner (inner product, §6.1)."""
    return in1 + in2


def processors_of(machine: Machine) -> np.ndarray:
    """All processor numbers of the machine: node_array(0, 1, num_nodes)."""
    return node_array(0, 1, machine.num_nodes)
