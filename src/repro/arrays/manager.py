"""The array manager: per-processor runtime support for distributed arrays
(§3.2.2.2, §5.1.1).

The array manager consists of one server process per processor; all requests
to create or manipulate distributed arrays are handled by the *local*
array-manager process, which communicates with its peers as needed.  The
request types implemented here are exactly those enumerated in §5.1.1:

================  ==========================================================
create_local      create a local section on one processor
create_array      create the whole array (create_local on every processor)
free_local        free one local section
free_array        free the whole array (free_local everywhere)
read_element_local / read_element      element read via global indices
write_element_local / write_element    element write via global indices
find_local        reference to the local section on *this* processor
copy_local        reallocate a local section with different borders
verify_array      compare borders, copy_local everywhere on mismatch
find_info         dimensions / processors / indexing / ... (§4.2.6)
================  ==========================================================

Results and Status values are returned by defining definitional variables
supplied in the request — the bidirectional server communication of §5.1.1.
"""

from __future__ import annotations

import functools
import itertools
import threading
from typing import Any, Optional, Sequence

import numpy as np

from repro.arrays.borders import BorderSpecError, resolve_borders
from repro.arrays.decomposition import DecompositionError, compute_grid
from repro.arrays.durability import (
    RECOVERY_KIND,
    REPLICA_UPDATE_KIND,
    ArraySnapshot,
    DurabilityState,
    ReplicaMap,
    ReplicaUpdate,
    replica_store_for,
)
from repro.arrays.layout import ArrayLayout, normalize_indexing
from repro.arrays.local_section import LocalSection, dtype_for
from repro.arrays.placement import (
    MIGRATE_KIND,
    MigrationError,
    PlacementPlan,
    SectionMover,
)
from repro.arrays.record import SERIALS, ArrayID, ArrayRecord
from repro.obs.spans import span as obs_span
from repro.perf import (
    ARRAY_BATCH_KIND,
    HALO_BULK_KIND,
    PerfLayer,
    define_once,
)
from repro.pcn.defvar import DefVar
from repro.status import ProcessorFailedError, Status
from repro.vp import fabric
from repro.vp.machine import Machine
from repro.vp.message import Message
from repro.vp.processor import VirtualProcessor

# Envelope kind for the rejoin protocol: membership rewrites pushed onto
# a falsely-suspected VP leaving quarantine.  Exempt from the machine's
# "queue" dead_send_policy (a quarantined dest is still a suspect) and
# catalogued in docs/transport.md.
REJOIN_KIND = "rejoin"

_RECORDS_KEY = "am.records"


def _records(node: VirtualProcessor) -> dict[ArrayID, ArrayRecord]:
    table = node.load_default(_RECORDS_KEY)
    if table is None:
        table = {}
        node.store(_RECORDS_KEY, table)
    return table


def _define(var: Optional[DefVar], value: Any) -> None:
    if var is not None:
        var.define(value)


class ArrayManager:
    """The machine-wide array-manager service.

    ``install_array_manager(machine)`` registers the capabilities with the
    machine's server (the ``load "am"`` of §B.3); library procedures in
    :mod:`repro.arrays.am_user` then issue server requests against it.
    """

    def __init__(self, machine: Machine, trace: bool = False) -> None:
        self.machine = machine
        self.trace_enabled = trace
        self.trace_log: list[tuple] = []
        self._trace_lock = threading.Lock()
        # Request counters: the simulated-cost model for FIG-3.9.
        self.request_counts: dict[str, int] = {}
        # Machine-wide durability bookkeeping: one DurabilityState per
        # array (authoritative epoch, membership, replica map, latest
        # checkpoint, recovery statistics).
        self._durability: dict[ArrayID, DurabilityState] = {}
        self._durability_lock = threading.Lock()
        self._checkpoint_serials = itertools.count()
        # The shared section-migration engine (repro.arrays.placement):
        # failure recovery and planned migration both execute their
        # placement plans through this one mover.
        self.mover = SectionMover(machine, self)
        # Planned-migration log, surfaced via diagnostics and tests.
        self.migrations: list[dict] = []

    # -- bookkeeping ----------------------------------------------------------

    def _note(self, request_type: str, *detail: Any) -> None:
        with self._trace_lock:
            self.request_counts[request_type] = (
                self.request_counts.get(request_type, 0) + 1
            )
            if self.trace_enabled:
                self.trace_log.append((request_type, *detail))

    def _instrumented(self, name: str, handler) -> Any:
        """Wrap one server handler in an ``am:<name>`` observability span.

        The handler executes on its target node, so the span lands on that
        VP's track and parents onto the requester's span carried by the
        routed message.  One attribute probe per request while observation
        is off.
        """
        label = f"am:{name}"

        @functools.wraps(handler)
        def traced(node: VirtualProcessor, *parameters: Any) -> Any:
            if getattr(self.machine, "_observer", None) is None:
                # Observation off: skip the span plumbing entirely rather
                # than paying for a no-op context manager per request.
                return handler(node, *parameters)
            with obs_span(self.machine, label, vp=node.number):
                return handler(node, *parameters)

        return traced

    def capabilities(self) -> dict:
        handlers = {
            "create_array": self.create_array,
            "create_local": self.create_local,
            "free_array": self.free_array,
            "free_local": self.free_local,
            "read_element": self.read_element,
            "read_element_local": self.read_element_local,
            "write_element": self.write_element,
            "write_element_local": self.write_element_local,
            "find_local": self.find_local,
            "find_info": self.find_info,
            "copy_local": self.copy_local,
            "verify_array": self.verify_array,
            "read_section_local": self.read_section_local,
            "read_section_stamped": self.read_section_stamped,
            "write_section_local": self.write_section_local,
            "read_region": self.read_region,
            "read_region_local": self.read_region_local,
            "write_region": self.write_region,
            "write_region_local": self.write_region_local,
            "get_local_block": self.get_local_block,
            "checkpoint_array": self.checkpoint_array,
            "restore_array": self.restore_array,
            "restore_local": self.restore_local,
            "replica_fetch": self.replica_fetch,
            "adopt_section": self.adopt_section,
            "update_membership_local": self.update_membership_local,
            "reseed_replicas_local": self.reseed_replicas_local,
            "rejoin_local": self.rejoin_local,
            "yield_section_local": self.yield_section_local,
            "migrate_sections": self.migrate_sections,
            "rebalance_array": self.rebalance_array,
        }
        return {
            name: self._instrumented(name, handler)
            for name, handler in handlers.items()
        }

    # -- helpers ---------------------------------------------------------------

    def _lookup(
        self, node: VirtualProcessor, array_id: ArrayID
    ) -> Optional[ArrayRecord]:
        record = _records(node).get(array_id)
        if record is None or not record.valid:
            return None
        return record

    def record_for_section(
        self, node: VirtualProcessor, section: Any
    ) -> Optional[ArrayRecord]:
        """Reverse lookup: the valid record whose live local section *is*
        ``section`` (object identity) on this node.  Lets SPMD kernels
        that were handed a bare :class:`LocalSection` recover the array
        it belongs to (the halo-plan engagement path in
        :mod:`repro.spmd.stencil`)."""
        if section is None:
            return None
        for record in list(_records(node).values()):
            if record.valid and record.section is section:
                return record
        return None

    def _peer_request(
        self,
        request_type: str,
        processor: int,
        *parameters: Any,
        kind: str = "server_request",
    ) -> None:
        """Array-manager process -> array-manager process communication."""
        self.machine.server.request(
            request_type, *parameters, processor=processor, kind=kind
        )

    # -- perf plumbing ---------------------------------------------------------

    def _perf(self) -> Optional[PerfLayer]:
        return getattr(self.machine, "_perf", None)

    def _flush_writes(
        self, array_id: Any = None, section: Optional[int] = None
    ) -> None:
        """Flush-point hook: drain coalesced writes that the operation
        about to run could observe (read of a dirty range, checkpoint,
        restore, verify — see docs/performance.md)."""
        perf = self._perf()
        if perf is not None:
            perf.coalescer.flush(array_id, section)

    def _bump_version(
        self, node: VirtualProcessor, record: ArrayRecord
    ) -> None:
        """Advance the section's write version so epoch-validated cache
        entries for it stop validating.  Caller holds ``record.lock``."""
        perf = self._perf()
        if perf is not None:
            perf.versions.bump(
                record.array_id, record.section_number_for(node.number)
            )

    # -- durability plumbing ---------------------------------------------------

    def durability_state(self, array_id: ArrayID) -> Optional[DurabilityState]:
        with self._durability_lock:
            return self._durability.get(array_id)

    def durability_states(self) -> list[tuple[ArrayID, DurabilityState]]:
        with self._durability_lock:
            return sorted(self._durability.items(), key=lambda kv: kv[0])

    def durability_diagnostics(self) -> dict:
        """Per-array durability snapshot for ``Machine.diagnostics()``."""
        return {
            str(array_id.as_tuple()): state.diagnostics()
            for array_id, state in self.durability_states()
        }

    def _replicate(
        self,
        node: VirtualProcessor,
        record: ArrayRecord,
        op: str,
        target: Optional[tuple],
        data: Any,
    ) -> None:
        """Ship one epoch-stamped ``replica_update`` message per backup of
        this node's section.  Caller holds ``record.lock``, so the update
        carries a consistent (data, epoch) pair.  Dead backups are skipped:
        recovery rewrites the replica map when membership changes."""
        if record.replication <= 0 or record.replica_map is None:
            return
        section_number = record.section_number_for(node.number)
        update = ReplicaUpdate(
            array_id=record.array_id,
            section=section_number,
            epoch=record.epoch,
            op=op,
            shape=record.layout.local_dims,
            type_name=record.type_name,
            data=data,
            target=target,
        )
        for backup in record.replica_map.backups_for(section_number):
            try:
                self.machine.route(
                    Message(
                        source=node.number,
                        dest=backup,
                        payload=update,
                        tag=("replica", record.array_id.as_tuple()),
                        kind=REPLICA_UPDATE_KIND,
                    )
                )
            except ProcessorFailedError:
                continue

    def _on_replica_update(self, message: Message) -> None:
        """Final delivery of a ``replica_update`` message: apply it to the
        backup's mirror, counting epoch-stale rejects per array."""
        update: ReplicaUpdate = message.payload
        node = self.machine.processor(message.dest)
        applied = replica_store_for(node).apply(update)
        observer = getattr(self.machine, "_observer", None)
        if observer is not None:
            observer.replica_update(applied)
        if not applied:
            state = self.durability_state(update.array_id)
            if state is not None:
                state.note_stale()

    # -- batched writes (repro.perf) ------------------------------------------

    def _replicate_batch(
        self, node: VirtualProcessor, record: ArrayRecord, ops: Sequence
    ) -> None:
        """Replica-update fusion: one coalesced epoch-stamped
        ``replica_update`` per backup for a whole batch, instead of one
        per write.  The backup chain is resolved once per flush (the
        per-write path recomputed it per element).  Caller holds
        ``record.lock``."""
        if record.replication <= 0 or record.replica_map is None:
            return
        section_number = record.section_number_for(node.number)
        backups = record.replica_map.backups_for(section_number)
        if not backups:
            return
        update = ReplicaUpdate(
            array_id=record.array_id,
            section=section_number,
            epoch=record.epoch,
            op="batch",
            shape=record.layout.local_dims,
            type_name=record.type_name,
            data=tuple(ops),
            target=None,
        )
        for backup in backups:
            try:
                self.machine.route(
                    Message(
                        source=node.number,
                        dest=backup,
                        payload=update,
                        tag=("replica", record.array_id.as_tuple()),
                        kind=REPLICA_UPDATE_KIND,
                    )
                )
            except ProcessorFailedError:
                continue

    def _apply_batch(self, node: VirtualProcessor, batch: Any) -> None:
        """Apply one coalesced write batch atomically on the owner.

        All sub-writes land under a single ``record.lock`` acquisition;
        mirrors get one fused replica update per backup.  The per-queue
        sequence number makes application exactly-once: a duplicated or
        late-delivered batch (fault injection, retry racing the delayed
        original) is dropped here, and its completion variable is defined
        defensively so no flusher is left waiting.
        """
        self._note("array_batch", node.number, batch.array_id)
        perf = self._perf()
        key = (batch.array_id, batch.section)
        record = self._lookup(node, batch.array_id)
        if record is None or record.section is None:
            # No section here (it migrated away, or never existed): the
            # batch is *not* applied, so do not consume its sequence
            # number — the coalescer retries the same batch against the
            # re-resolved owner, and exactly-once dedup happens at the
            # node that actually holds the section.
            define_once(batch.done, "not_found")
            return
        if self._fence_stale(record):
            # Fenced batch apply: this record was left behind by a
            # membership rewrite (stale minority-side owner).  Refuse
            # *before* consuming the sequence number, so the coalescer
            # can re-resolve the authoritative owner and retry there.
            self._refuse_stale(record.array_id, None)
            define_once(batch.done, "stale")
            return
        if perf is not None and not perf.coalescer.should_apply(
            key, batch.seq
        ):
            define_once(batch.done, "duplicate")
            return
        with obs_span(
            self.machine,
            "am:array_batch",
            vp=node.number,
            ops=len(batch.ops),
        ) as span:
            with record.lock:
                # One interior view for the whole batch (the per-write
                # path rebuilds it per element).
                interior = record.section.interior()
                for op, target, value in batch.ops:
                    if op == "element":
                        interior[target] = value
                    else:  # "region": target holds interior slices
                        interior[tuple(target)] = value
                self._bump_version(node, record)
                self._replicate_batch(node, record, batch.ops)
            if record.replication > 0 and record.replica_map is not None:
                span.annotate(fused_replicas=True)
        define_once(batch.done, "ok")

    def _on_array_batch(self, message: Message) -> None:
        """Final delivery of a ``kind="array_batch"`` message."""
        self._apply_batch(self.machine.processor(message.dest), message.payload)

    # -- epoch fencing ---------------------------------------------------------

    def _fence_stale(self, record: ArrayRecord) -> bool:
        """The fencing-token check (docs/fault_model.md §9): is this
        record's epoch behind the machine-wide authoritative epoch?

        A record left behind by a membership rewrite that could not
        reach its node — the minority side of a partition whose owner
        was falsely declared dead and replaced — carries the old epoch,
        so every commit it attempts is identifiable.  Reads ``state
        .epoch`` without the state lock (a single attribute read;
        taking ``state.lock`` under ``record.lock`` would invert the
        mover's lock order), so callers must treat a pass as
        best-effort ordering, exactly like a write racing the rewrite
        itself.
        """
        state = self.durability_state(record.array_id)
        return state is not None and record.epoch < state.epoch

    def _refuse_stale(self, array_id: ArrayID, status: Optional[DefVar]) -> None:
        """Account one fenced commit and report STALE_EPOCH.  Called
        *outside* ``record.lock`` (``note_fenced`` takes the state
        lock)."""
        state = self.durability_state(array_id)
        if state is not None:
            state.note_fenced()
        observer = getattr(self.machine, "_observer", None)
        if observer is not None:
            observer.fenced_write(str(array_id.as_tuple()))
        _define(status, Status.STALE_EPOCH)

    def _write_status(self, node: VirtualProcessor, status: DefVar) -> None:
        """Define a write's status, downgrading OK to ERROR when this node
        died mid-write (a kill triggered by the write's own replica
        traffic): the local mutation may be torn relative to its mirrors,
        so the caller must treat the write as failed and retry."""
        if self.machine.is_failed(node.number):
            _define(status, Status.ERROR)
        else:
            _define(status, Status.OK)

    # -- create -------------------------------------------------------------------

    def create_array(
        self,
        node: VirtualProcessor,
        array_id_out: DefVar,
        type_name: str,
        dimensions: Sequence[int],
        processors: Sequence[int],
        distrib_info: Sequence,
        border_info: Any,
        indexing_type: str,
        status: DefVar,
        replication: int = 0,
    ) -> None:
        """Create a distributed array (§4.2.1).

        Runs on the requesting processor; issues ``create_local`` on every
        processor in the distribution, then records the array locally so
        later requests made on the creating processor resolve (§5.1.4).

        ``replication=k`` assigns each section a deterministic chain of
        ``k`` backup processors (:meth:`ArrayLayout.replica_chains`); every
        subsequent write ships one ``replica_update`` per backup.
        """
        self._note("create_array", node.number, tuple(dimensions))
        try:
            if type_name not in ("int", "double", "complex"):
                raise ValueError(f"bad element type {type_name!r}")
            dtype_for(type_name)
            dims = tuple(int(d) for d in dimensions)
            procs = tuple(int(p) for p in processors)
            if len(set(procs)) != len(procs):
                raise ValueError("duplicate processor numbers")
            for p in procs:
                self.machine.processor(p)  # validates range
            indexing = normalize_indexing(indexing_type)
            grid = compute_grid(dims, len(procs), distrib_info)
            borders = resolve_borders(border_info, len(dims))
            layout = ArrayLayout(
                dims=dims,
                grid=grid,
                borders=borders,
                indexing=indexing,
                grid_indexing=indexing,
            )
            replication = int(replication)
            replica_map = (
                ReplicaMap.assign(layout, procs, replication)
                if replication > 0
                else None
            )
        except (
            ValueError,
            DecompositionError,
            BorderSpecError,
            TypeError,
        ):
            _define(array_id_out, None)
            _define(status, Status.INVALID)
            return

        array_id = ArrayID(node.number, SERIALS.next_for(node.number))
        border_spec = border_info if isinstance(border_info, tuple) else tuple(
            borders
        )

        # One create_local request per processor in the distribution.
        local_statuses: list[DefVar] = []
        for section_number, proc in enumerate(procs):
            st = DefVar(f"create_local@{proc}")
            local_statuses.append(st)
            self._peer_request(
                "create_local",
                proc,
                array_id,
                type_name,
                layout,
                procs,
                border_spec,
                st,
                replication,
                replica_map,
            )
        if any(Status(st.read()) is not Status.OK for st in local_statuses):
            _define(array_id_out, None)
            _define(status, Status.ERROR)
            return

        # Record on the creating processor too, even when it holds no
        # section (§5.1.4) — without a duplicate section allocation.
        table = _records(node)
        if array_id not in table:
            table[array_id] = ArrayRecord(
                array_id=array_id,
                type_name=type_name,
                layout=layout,
                processors=procs,
                section=None,
                border_spec=border_spec,
                replication=replication,
                replica_map=replica_map,
            )
        with self._durability_lock:
            self._durability[array_id] = DurabilityState(
                array_id=array_id,
                replication=replication,
                processors=procs,
                replica_map=replica_map,
                creator=node.number,
                type_name=type_name,
                layout=layout,
                border_spec=border_spec,
            )
        _define(array_id_out, array_id)
        _define(status, Status.OK)

    def create_local(
        self,
        node: VirtualProcessor,
        array_id: ArrayID,
        type_name: str,
        layout: ArrayLayout,
        processors: tuple[int, ...],
        border_spec: tuple,
        status: DefVar,
        replication: int = 0,
        replica_map: Any = None,
    ) -> None:
        """Create the local section for one processor (§5.1.1)."""
        self._note("create_local", node.number, array_id)
        section = LocalSection(
            type_name,
            layout.local_dims,
            layout.borders,
            layout.indexing,
        )
        record = ArrayRecord(
            array_id=array_id,
            type_name=type_name,
            layout=layout,
            processors=processors,
            section=section,
            border_spec=border_spec,
            replication=replication,
            replica_map=replica_map,
        )
        _records(node)[array_id] = record
        if replication > 0 and replica_map is not None:
            # Seed the backup mirrors with the initial contents: a section
            # lost *before* its first write must still be recoverable.
            with record.lock:
                self._replicate(
                    node, record, "section", None, section.interior().copy()
                )
        _define(status, Status.OK)

    # -- free ----------------------------------------------------------------------

    def free_array(
        self, node: VirtualProcessor, array_id: Any, status: DefVar
    ) -> None:
        """Delete a distributed array and free its storage (§4.2.2)."""
        self._note("free_array", node.number, array_id)
        record = self._lookup(node, array_id) if isinstance(
            array_id, ArrayID
        ) else None
        if record is None:
            _define(status, Status.NOT_FOUND)
            return
        # Pending coalesced writes to a dying array can never be
        # observed: drop them (and any cache entries) instead of racing
        # the free.
        perf = self._perf()
        if perf is not None:
            perf.drop_array(record.array_id)
        statuses = []
        for proc in record.processors:
            st = DefVar(f"free_local@{proc}")
            statuses.append(st)
            self._peer_request("free_local", proc, array_id, st)
        for st in statuses:
            st.read()
        # Invalidate the creating-processor record as well (§5.1.3).
        record.valid = False
        with self._durability_lock:
            self._durability.pop(array_id, None)
        _define(status, Status.OK)

    def free_local(
        self, node: VirtualProcessor, array_id: ArrayID, status: DefVar
    ) -> None:
        self._note("free_local", node.number, array_id)
        record = _records(node).get(array_id)
        if record is None:
            _define(status, Status.NOT_FOUND)
            return
        if record.section is not None:
            record.section.free()
        record.valid = False
        replica_store_for(node).drop_array(array_id)
        _define(status, Status.OK)

    # -- element access ---------------------------------------------------------------

    def read_element(
        self,
        node: VirtualProcessor,
        array_id: Any,
        indices: Sequence[int],
        element_out: DefVar,
        status: DefVar,
    ) -> None:
        """Read one element via global indices (§4.2.3).

        Translates global indices to (processor, local indices) and issues
        ``read_element_local`` on the owner.  A read is a flush point: any
        coalesced writes pending against the element's section drain first,
        so a program always reads its own writes (§3.3 sequential
        equivalence).  With the section cache enabled, the element is
        served from an epoch-validated local copy of the section instead
        of a per-element hop.
        """
        self._note("read_element", node.number, array_id)
        record = self._lookup(node, array_id) if isinstance(
            array_id, ArrayID
        ) else None
        if record is None:
            _define(element_out, None)
            _define(status, Status.NOT_FOUND)
            return
        try:
            section, local = record.layout.locate(tuple(indices))
        except (ValueError, IndexError):
            _define(element_out, None)
            _define(status, Status.INVALID)
            return
        owner = record.processors[section]
        self._flush_writes(record.array_id, section)
        perf = self._perf()
        if perf is not None and perf.cache.enabled:
            if self._read_element_cached(
                record, section, owner, tuple(local), element_out, status
            ):
                return
        self._peer_request(
            "read_element_local", owner, array_id, local, element_out, status
        )

    def _read_element_cached(
        self,
        record: ArrayRecord,
        section: int,
        owner: int,
        local: tuple,
        element_out: DefVar,
        status: DefVar,
    ) -> bool:
        """Serve one element read through the section cache.

        Returns True when the read was fully handled (hit, or miss
        satisfied by a stamped section fetch); False falls back to the
        per-element path (e.g. no durability state to validate against).
        """
        perf = self._perf()
        array_id = record.array_id
        state = self.durability_state(array_id)
        epoch = state.epoch if state is not None else record.epoch
        version = perf.versions.get(array_id, section)
        observer = getattr(self.machine, "_observer", None)
        data = perf.cache.lookup(array_id, section, epoch, version)
        if observer is not None:
            observer.perf_cache(hit=data is not None)
        if data is not None:
            value = data[local]
            _define(
                element_out, value.item() if hasattr(value, "item") else value
            )
            _define(status, Status.OK)
            return True
        # Miss: fetch the whole section once, stamped with the owner's
        # (epoch, version) — validation of later hits costs no messages.
        out = DefVar(f"read_section_stamped@{owner}")
        st = DefVar(f"read_section_stamped_status@{owner}")
        self._peer_request("read_section_stamped", owner, array_id, out, st)
        result = Status(st.read())
        if result is not Status.OK:
            _define(element_out, None)
            _define(status, result)
            return True
        data, r_epoch, r_version = out.read()
        perf.cache.store(array_id, section, r_epoch, r_version, data)
        value = data[local]
        _define(
            element_out, value.item() if hasattr(value, "item") else value
        )
        _define(status, Status.OK)
        return True

    def read_element_local(
        self,
        node: VirtualProcessor,
        array_id: ArrayID,
        local_indices: Sequence[int],
        element_out: DefVar,
        status: DefVar,
    ) -> None:
        self._note("read_element_local", node.number, array_id)
        record = self._lookup(node, array_id)
        if record is None or record.section is None:
            _define(element_out, None)
            _define(status, Status.NOT_FOUND)
            return
        value = record.section.read(local_indices)
        _define(element_out, value.item() if hasattr(value, "item") else value)
        _define(status, Status.OK)

    def write_element(
        self,
        node: VirtualProcessor,
        array_id: Any,
        indices: Sequence[int],
        element: Any,
        status: DefVar,
    ) -> None:
        """Write one element via global indices (§4.2.4).

        With the perf layer enabled (the default), validated writes are
        acknowledged immediately and queued in the write-behind
        coalescer; the actual mutation lands at the next flush point as
        part of one fused ``array_batch`` message (docs/performance.md).
        """
        self._note("write_element", node.number, array_id)
        record = self._lookup(node, array_id) if isinstance(
            array_id, ArrayID
        ) else None
        if record is None:
            _define(status, Status.NOT_FOUND)
            return
        if not isinstance(element, (int, float, complex)):
            _define(status, Status.INVALID)
            return
        try:
            section, local = record.layout.locate(tuple(indices))
        except (ValueError, IndexError):
            _define(status, Status.INVALID)
            return
        owner = record.processors[section]
        perf = self._perf()
        if perf is not None and perf.coalescer.enabled:
            if self.machine.is_failed(owner):
                # Match the per-write path's observable behaviour for a
                # known-dead owner: raise under the "raise" policy, let
                # the write vanish under "drop".
                if self.machine.dead_send_policy == "raise":
                    raise ProcessorFailedError(
                        f"send to failed processor {owner}", processor=owner
                    )
                return
            perf.coalescer.enqueue(
                record.array_id,
                section,
                owner,
                "element",
                tuple(local),
                element,
                source=node.number,
            )
            self._write_status(node, status)
            return
        self._peer_request(
            "write_element_local", owner, array_id, local, element, status
        )

    def write_element_local(
        self,
        node: VirtualProcessor,
        array_id: ArrayID,
        local_indices: Sequence[int],
        element: Any,
        status: DefVar,
    ) -> None:
        self._note("write_element_local", node.number, array_id)
        record = self._lookup(node, array_id)
        if record is None or record.section is None:
            _define(status, Status.NOT_FOUND)
            return
        with record.lock:
            fenced = self._fence_stale(record)
            if not fenced:
                record.section.write(local_indices, element)
                self._bump_version(node, record)
                self._replicate(
                    node, record, "element", tuple(local_indices), element
                )
        if fenced:
            self._refuse_stale(record.array_id, status)
            return
        self._write_status(node, status)

    # -- local sections ------------------------------------------------------------------

    def find_local(
        self,
        node: VirtualProcessor,
        array_id: Any,
        section_out: DefVar,
        status: DefVar,
    ) -> None:
        """Local section of the array on *this* processor (§4.2.5).

        The one operation requiring a local rather than global view: it
        fails on processors holding no section of the array (§5.1.4).
        """
        self._note("find_local", node.number, array_id)
        record = self._lookup(node, array_id) if isinstance(
            array_id, ArrayID
        ) else None
        if record is None or record.section is None:
            _define(section_out, None)
            _define(status, Status.NOT_FOUND)
            return
        # The caller gets direct access to the section storage: pending
        # coalesced writes against it must land first.
        self._flush_writes(
            record.array_id, record.section_number_for(node.number)
        )
        _define(section_out, record.section)
        _define(status, Status.OK)

    def read_section_local(
        self,
        node: VirtualProcessor,
        array_id: ArrayID,
        data_out: DefVar,
        status: DefVar,
    ) -> None:
        """Copy of this processor's interior section data (extension).

        The thesis moves bulk data only through local sections inside
        distributed calls; this request is a convenience for the pythonic
        gather/scatter layer.  The returned array is a *copy* — the message
        analogue — so the requester never aliases another node's storage.
        """
        self._note("read_section_local", node.number, array_id)
        record = self._lookup(node, array_id)
        if record is None or record.section is None:
            _define(data_out, None)
            _define(status, Status.NOT_FOUND)
            return
        self._flush_writes(
            record.array_id, record.section_number_for(node.number)
        )
        _define(data_out, record.section.interior().copy())
        _define(status, Status.OK)

    def read_section_stamped(
        self,
        node: VirtualProcessor,
        array_id: ArrayID,
        out: DefVar,
        status: DefVar,
    ) -> None:
        """Section copy plus its ``(epoch, version)`` stamp.

        The fetch half of the epoch-validated read cache: the stamp rides
        the reply, so the requester can validate later cache hits against
        machine-wide epoch/version state without any extra messages.
        """
        self._note("read_section_stamped", node.number, array_id)
        record = self._lookup(node, array_id)
        if record is None or record.section is None:
            _define(out, None)
            _define(status, Status.NOT_FOUND)
            return
        section_number = record.section_number_for(node.number)
        self._flush_writes(record.array_id, section_number)
        perf = self._perf()
        with record.lock:
            data = record.section.interior().copy()
            epoch = record.epoch
            version = (
                perf.versions.get(record.array_id, section_number)
                if perf is not None
                else 0
            )
        _define(out, (data, epoch, version))
        _define(status, Status.OK)

    def write_section_local(
        self,
        node: VirtualProcessor,
        array_id: ArrayID,
        data: Any,
        status: DefVar,
    ) -> None:
        """Overwrite this processor's interior section data (extension)."""
        self._note("write_section_local", node.number, array_id)
        record = self._lookup(node, array_id)
        if record is None or record.section is None:
            _define(status, Status.NOT_FOUND)
            return
        interior = record.section.interior()
        if tuple(getattr(data, "shape", ())) != tuple(interior.shape):
            _define(status, Status.INVALID)
            return
        # A bulk overwrite is an ordering barrier for queued element
        # writes against this section: earlier writes land first.
        self._flush_writes(
            record.array_id, record.section_number_for(node.number)
        )
        with record.lock:
            fenced = self._fence_stale(record)
            if not fenced:
                interior[...] = data
                self._bump_version(node, record)
                self._replicate(
                    node, record, "section", None, interior.copy()
                )
        if fenced:
            self._refuse_stale(record.array_id, status)
            return
        self._write_status(node, status)

    # -- region access -----------------------------------------------------------------

    def _validated_region(
        self, record: ArrayRecord, region: Sequence
    ) -> Optional[tuple[tuple[int, int], ...]]:
        try:
            bounds = tuple((int(a), int(b)) for a, b in region)
            record.layout.validate_region(bounds)
        except (ValueError, IndexError, TypeError):
            return None
        return bounds

    def read_region(
        self,
        node: VirtualProcessor,
        array_id: Any,
        region: Sequence,
        data_out: DefVar,
        status: DefVar,
    ) -> None:
        """Read a rectangular region via global bounds (region-granular RPC).

        ``region`` is one half-open ``(start, stop)`` pair per dimension.
        The handler decomposes the region over the owning local sections
        and issues **one** ``read_region_local`` peer request per owner —
        O(owners) messages where the per-element path costs O(elements) —
        then assembles the pieces into a dense array of the region's shape.
        """
        self._note("read_region", node.number, array_id)
        record = self._lookup(node, array_id) if isinstance(
            array_id, ArrayID
        ) else None
        if record is None:
            _define(data_out, None)
            _define(status, Status.NOT_FOUND)
            return
        bounds = self._validated_region(record, region)
        if bounds is None:
            _define(data_out, None)
            _define(status, Status.INVALID)
            return
        # Reads are flush points: drain queued writes to any section the
        # region may touch before copying.
        self._flush_writes(record.array_id)
        out = np.zeros(
            record.layout.region_shape(bounds), dtype=dtype_for(record.type_name)
        )
        pieces = []
        for section, local_slices, out_slices in record.layout.region_sections(
            bounds
        ):
            owner = record.processors[section]
            part = DefVar(f"read_region@{owner}")
            st = DefVar(f"read_region_status@{owner}")
            self._peer_request(
                "read_region_local", owner, array_id, local_slices, part, st
            )
            pieces.append((out_slices, part, st))
        for out_slices, part, st in pieces:
            if Status(st.read()) is not Status.OK:
                _define(data_out, None)
                _define(status, Status.ERROR)
                return
            out[out_slices] = part.read()
        _define(data_out, out)
        _define(status, Status.OK)

    def read_region_local(
        self,
        node: VirtualProcessor,
        array_id: ArrayID,
        local_slices: tuple,
        data_out: DefVar,
        status: DefVar,
    ) -> None:
        """Copy one section's share of a region (interior slices)."""
        self._note("read_region_local", node.number, array_id)
        record = self._lookup(node, array_id)
        if record is None or record.section is None:
            _define(data_out, None)
            _define(status, Status.NOT_FOUND)
            return
        self._flush_writes(
            record.array_id, record.section_number_for(node.number)
        )
        _define(data_out, record.section.interior()[tuple(local_slices)].copy())
        _define(status, Status.OK)

    def write_region(
        self,
        node: VirtualProcessor,
        array_id: Any,
        region: Sequence,
        data: Any,
        status: DefVar,
    ) -> None:
        """Write a rectangular region via global bounds (region-granular RPC).

        ``data`` must match the region's shape; each owning section gets
        one ``write_region_local`` peer request carrying only its share.
        """
        self._note("write_region", node.number, array_id)
        record = self._lookup(node, array_id) if isinstance(
            array_id, ArrayID
        ) else None
        if record is None:
            _define(status, Status.NOT_FOUND)
            return
        bounds = self._validated_region(record, region)
        if bounds is None:
            _define(status, Status.INVALID)
            return
        data = np.asarray(data, dtype=dtype_for(record.type_name))
        if tuple(data.shape) != record.layout.region_shape(bounds):
            _define(status, Status.INVALID)
            return
        # Region writes stay synchronous and act as ordering barriers:
        # queued element writes from before this call land first.
        self._flush_writes(record.array_id)
        statuses = []
        for section, local_slices, out_slices in record.layout.region_sections(
            bounds
        ):
            owner = record.processors[section]
            st = DefVar(f"write_region_status@{owner}")
            statuses.append(st)
            self._peer_request(
                "write_region_local",
                owner,
                array_id,
                local_slices,
                data[out_slices].copy(),
                st,
            )
        bad = any(Status(st.read()) is not Status.OK for st in statuses)
        _define(status, Status.ERROR if bad else Status.OK)

    def write_region_local(
        self,
        node: VirtualProcessor,
        array_id: ArrayID,
        local_slices: tuple,
        data: Any,
        status: DefVar,
    ) -> None:
        """Overwrite one section's share of a region (interior slices)."""
        self._note("write_region_local", node.number, array_id)
        record = self._lookup(node, array_id)
        if record is None or record.section is None:
            _define(status, Status.NOT_FOUND)
            return
        with record.lock:
            fenced = self._fence_stale(record)
            if not fenced:
                record.section.interior()[tuple(local_slices)] = data
                self._bump_version(node, record)
                self._replicate(
                    node, record, "region", tuple(local_slices), data
                )
        if fenced:
            self._refuse_stale(record.array_id, status)
            return
        self._write_status(node, status)

    def get_local_block(
        self,
        node: VirtualProcessor,
        array_id: Any,
        block_out: DefVar,
        status: DefVar,
    ) -> None:
        """This processor's block of the global index space.

        Defines ``block_out`` with ``(origin, data)``: the global indices
        of the section's first interior element and a copy of the interior
        data.  Like ``find_local`` it needs the local view, so it fails on
        processors holding no section (§5.1.4).
        """
        self._note("get_local_block", node.number, array_id)
        record = self._lookup(node, array_id) if isinstance(
            array_id, ArrayID
        ) else None
        if record is None or record.section is None:
            _define(block_out, None)
            _define(status, Status.NOT_FOUND)
            return
        section_number = record.section_number_for(node.number)
        self._flush_writes(record.array_id, section_number)
        origin = record.layout.global_indices(
            section_number, (0,) * record.layout.rank
        )
        _define(block_out, (origin, record.section.interior().copy()))
        _define(status, Status.OK)

    def copy_local(
        self,
        node: VirtualProcessor,
        array_id: ArrayID,
        new_borders: tuple[int, ...],
        new_layout: ArrayLayout,
        status: DefVar,
    ) -> None:
        """Reallocate the local section with different borders, copying the
        interior data (§5.1.1, used by verify_array)."""
        self._note("copy_local", node.number, array_id)
        record = self._lookup(node, array_id)
        if record is None or record.section is None:
            _define(status, Status.NOT_FOUND)
            return
        replacement = record.section.reallocate_with_borders(new_borders)
        record.section.free()
        record.section = replacement
        record.layout = new_layout
        _define(status, Status.OK)

    def verify_array(
        self,
        node: VirtualProcessor,
        array_id: Any,
        n_dims: int,
        border_info: Any,
        indexing_type: str,
        status: DefVar,
    ) -> None:
        """Verify borders/indexing; reallocate local sections on border
        mismatch (§4.2.7)."""
        self._note("verify_array", node.number, array_id)
        record = self._lookup(node, array_id) if isinstance(
            array_id, ArrayID
        ) else None
        if record is None:
            _define(status, Status.NOT_FOUND)
            return
        try:
            indexing = normalize_indexing(indexing_type)
        except ValueError:
            _define(status, Status.INVALID)
            return
        if n_dims != record.layout.rank or indexing != record.indexing_type:
            # Indexing type cannot be corrected without repartitioning;
            # mismatch is invalid (§4.2.7 third example).
            _define(status, Status.INVALID)
            return
        try:
            expected = resolve_borders(border_info, record.layout.rank)
        except BorderSpecError:
            _define(status, Status.INVALID)
            return
        if expected == record.borders:
            _define(status, Status.OK)
            return
        # Sections are about to be reallocated: pending writes must land
        # in the old storage before copy_local copies it.
        self._flush_writes(record.array_id)
        new_layout = record.layout.replace_borders(expected)
        statuses = []
        for proc in record.processors:
            st = DefVar(f"copy_local@{proc}")
            statuses.append(st)
            self._peer_request(
                "copy_local", proc, array_id, expected, new_layout, st
            )
        bad = any(Status(st.read()) is not Status.OK for st in statuses)
        # Update the creating-processor record too.
        record.layout = new_layout
        _define(status, Status.ERROR if bad else Status.OK)

    # -- checkpoint / restore -----------------------------------------------------------

    def checkpoint_array(
        self,
        node: VirtualProcessor,
        array_id: Any,
        snapshot_out: DefVar,
        status: DefVar,
    ) -> None:
        """Produce an epoch-consistent snapshot of one array.

        The consistency cut: one worker per owning processor acquires its
        record's write lock, then all workers meet at a
        :func:`~repro.spmd.collectives.barrier` — at the barrier instant
        every section lock is held simultaneously, so no write is in
        flight anywhere.  Each worker copies its interior and stamps the
        new epoch before releasing, and the assembled
        :class:`ArraySnapshot` becomes the array's latest checkpoint.
        """
        self._note("checkpoint_array", node.number, array_id)
        state = (
            self.durability_state(array_id)
            if isinstance(array_id, ArrayID)
            else None
        )
        if state is None:
            _define(snapshot_out, None)
            _define(status, Status.NOT_FOUND)
            return
        from repro.spmd.comm import GroupComm

        # A checkpoint is a flush point: writes accepted before the call
        # must be inside the cut.  Flush before taking the state lock so
        # batch application never contends with the quiesce barrier.
        self._flush_writes(array_id)
        with state.lock:
            procs = state.processors
            target_epoch = state.epoch + 1
            group = (
                "am.ckpt",
                array_id.as_tuple(),
                next(self._checkpoint_serials),
            )
            try:
                results: list[DefVar] = []
                for rank, proc in enumerate(procs):
                    comm = GroupComm(self.machine, procs, rank, group)
                    # Internal comm: its barrier runs with every record
                    # lock held, so the collective flush hook must not
                    # fire inside it (it could need one of those locks).
                    comm.internal = True
                    result = DefVar(f"checkpoint@{proc}")
                    results.append(result)
                    self.machine.processor(proc).spawn(
                        self._checkpoint_section,
                        self.machine.processor(proc),
                        array_id,
                        comm,
                        target_epoch,
                        result,
                        name=f"am-checkpoint-{proc}",
                    )
                sections: dict[int, np.ndarray] = {}
                limit = self.machine.default_recv_timeout
                for section_number, result in enumerate(results):
                    outcome, data = result.read(timeout=limit)
                    if outcome != "ok":
                        raise RuntimeError(
                            f"checkpoint worker for section {section_number} "
                            f"failed"
                        )
                    sections[section_number] = data
            except Exception:  # noqa: BLE001 - quiesce failures -> Status
                _define(snapshot_out, None)
                _define(status, Status.ERROR)
                return
            snapshot = ArraySnapshot(
                array_id=array_id,
                epoch=target_epoch,
                type_name=state.type_name,
                layout=state.layout,
                processors=procs,
                replication=state.replication,
                sections=sections,
            )
            state.epoch = target_epoch
            state.last_checkpoint = snapshot
            state.last_checkpoint_epoch = target_epoch
        observer = getattr(self.machine, "_observer", None)
        if observer is not None:
            observer.array_epoch(array_id, target_epoch)
        _define(snapshot_out, snapshot)
        _define(status, Status.OK)

    def _checkpoint_section(
        self,
        node: VirtualProcessor,
        array_id: ArrayID,
        comm: Any,
        epoch: int,
        result: DefVar,
    ) -> None:
        """Per-owner checkpoint worker: lock, barrier, copy, stamp."""
        from repro.spmd.collectives import barrier

        record = self._lookup(node, array_id)
        if record is None or record.section is None:
            # Still participate in the barrier so peers are not stranded
            # holding their locks.
            barrier(comm)
            result.define(("error", None))
            return
        with record.lock:
            barrier(comm)
            data = record.section.interior().copy()
            record.epoch = epoch
        result.define(("ok", data))

    def restore_array(
        self,
        node: VirtualProcessor,
        array_id: Any,
        snapshot: Any,
        status: DefVar,
    ) -> None:
        """Write a snapshot back into the array under a fresh epoch.

        Sections are restored onto the *current* membership (recovery may
        have remapped owners since the snapshot was taken); mirrors are
        reseeded by each owner, so in-flight replica updates stamped
        before the restore are rejected as stale.
        """
        self._note("restore_array", node.number, array_id)
        state = (
            self.durability_state(array_id)
            if isinstance(array_id, ArrayID)
            else None
        )
        if state is None:
            _define(status, Status.NOT_FOUND)
            return
        if not isinstance(snapshot, ArraySnapshot) or (
            snapshot.array_id != array_id
        ):
            _define(status, Status.INVALID)
            return
        # Writes accepted before the restore belong to the overwritten
        # past: flush them out so they cannot land *after* the restore.
        self._flush_writes(array_id)
        with state.lock:
            new_epoch = max(state.epoch, snapshot.epoch) + 1
            statuses: list[DefVar] = []
            for section_number, proc in enumerate(state.processors):
                data = snapshot.sections.get(section_number)
                if data is None:
                    _define(status, Status.INVALID)
                    return
                st = DefVar(f"restore_local@{proc}")
                statuses.append(st)
                self._peer_request(
                    "restore_local", proc, array_id, data, new_epoch, st
                )
            bad = any(
                Status(st.read()) is not Status.OK for st in statuses
            )
            if bad:
                _define(status, Status.ERROR)
                return
            state.epoch = new_epoch
        observer = getattr(self.machine, "_observer", None)
        if observer is not None:
            observer.array_epoch(array_id, new_epoch)
        _define(status, Status.OK)

    def restore_local(
        self,
        node: VirtualProcessor,
        array_id: ArrayID,
        data: Any,
        epoch: int,
        status: DefVar,
    ) -> None:
        """Overwrite this section from a snapshot at the given epoch."""
        self._note("restore_local", node.number, array_id)
        record = self._lookup(node, array_id)
        if record is None or record.section is None:
            _define(status, Status.NOT_FOUND)
            return
        interior = record.section.interior()
        if tuple(getattr(data, "shape", ())) != tuple(interior.shape):
            _define(status, Status.INVALID)
            return
        with record.lock:
            interior[...] = data
            record.epoch = int(epoch)
            self._bump_version(node, record)
            self._replicate(node, record, "section", None, interior.copy())
        self._write_status(node, status)

    # -- recovery ------------------------------------------------------------------------

    def replica_fetch(
        self,
        node: VirtualProcessor,
        array_id: ArrayID,
        section: int,
        out: DefVar,
        status: DefVar,
    ) -> None:
        """Fetch this backup's mirror of one section: ``(epoch, data)``."""
        self._note("replica_fetch", node.number, array_id)
        entry = replica_store_for(node).fetch(array_id, int(section))
        if entry is None:
            _define(out, None)
            _define(status, Status.NOT_FOUND)
            return
        _define(out, entry)
        _define(status, Status.OK)

    def adopt_section(
        self,
        node: VirtualProcessor,
        array_id: ArrayID,
        type_name: str,
        layout: ArrayLayout,
        processors: tuple[int, ...],
        border_spec: tuple,
        replication: int,
        replica_map: Any,
        epoch: int,
        data: Any,
        status: DefVar,
    ) -> None:
        """Install a rebuilt section on a spare processor (recovery)."""
        self._note("adopt_section", node.number, array_id)
        state = self.durability_state(array_id)
        if state is not None and int(epoch) < state.epoch:
            # Fenced adopt: the epoch this adopt was computed at has
            # been superseded (a stale mover, or a minority-side plan
            # surviving past heal).  Installing it would resurrect old
            # data under an old epoch — refuse instead.
            self._refuse_stale(array_id, status)
            return
        section = LocalSection(
            type_name, layout.local_dims, layout.borders, layout.indexing
        )
        section.interior()[...] = data
        record = ArrayRecord(
            array_id=array_id,
            type_name=type_name,
            layout=layout,
            processors=tuple(processors),
            section=section,
            border_spec=border_spec,
            replication=replication,
            replica_map=replica_map,
            epoch=int(epoch),
        )
        _records(node)[array_id] = record
        with record.lock:
            self._bump_version(node, record)
        _define(status, Status.OK)

    def update_membership_local(
        self,
        node: VirtualProcessor,
        array_id: ArrayID,
        processors: tuple[int, ...],
        replica_map: Any,
        epoch: int,
        status: DefVar,
    ) -> None:
        """Rewrite a surviving record's membership after recovery."""
        self._note("update_membership_local", node.number, array_id)
        record = _records(node).get(array_id)
        if record is None or not record.valid:
            _define(status, Status.NOT_FOUND)
            return
        with record.lock:
            if int(epoch) < record.epoch:
                # Fenced membership rewrite: a delayed rewrite from a
                # superseded plan must not roll this record's epoch (its
                # fencing token) backwards.
                stale = True
            else:
                stale = False
                record.processors = tuple(processors)
                record.replica_map = replica_map
                record.epoch = int(epoch)
                record.invalidate_section_index()
        if stale:
            self._refuse_stale(array_id, status)
            return
        _define(status, Status.OK)

    def reseed_replicas_local(
        self,
        node: VirtualProcessor,
        array_id: ArrayID,
        status: DefVar,
    ) -> None:
        """Push this owner's full section to its (new) backups at the
        current epoch, so mirrors reflect post-recovery reality and older
        in-flight updates are rejected as stale."""
        self._note("reseed_replicas_local", node.number, array_id)
        record = self._lookup(node, array_id)
        if record is None:
            _define(status, Status.NOT_FOUND)
            return
        if record.section is None:
            # A record without a section (the creating processor, or an
            # owner that just yielded its section to a migration) has
            # nothing to reseed — an OK no-op, so recovery running
            # reentrantly under a mid-migration kill is not tripped by
            # the section being legitimately in flight.
            _define(status, Status.OK)
            return
        with record.lock:
            self._replicate(
                node, record, "section", None,
                record.section.interior().copy(),
            )
        _define(status, Status.OK)

    # -- quarantine rejoin (repro.health) -----------------------------------------

    def rejoin_local(
        self,
        node: VirtualProcessor,
        array_id: ArrayID,
        processors: tuple[int, ...],
        replica_map: Any,
        epoch: int,
        status: DefVar,
    ) -> None:
        """Rewrite authoritative membership onto a falsely-suspected VP
        leaving quarantine.

        While the VP was unreachable, recovery may have reassigned its
        sections: any section this node still holds that the new
        membership places elsewhere is freed (the rebuilt copy is
        authoritative — keeping both would be split-brain), then the
        record's membership, replica map, and epoch are rewritten so the
        node's fencing token is current again and its routing view
        matches the survivors'.
        """
        self._note("rejoin_local", node.number, array_id)
        record = _records(node).get(array_id)
        if record is None or not record.valid:
            # Nothing of the array here: the rejoin is a no-op, not an
            # error — the VP may simply never have held a section.
            _define(status, Status.OK)
            return
        new_processors = tuple(processors)
        with record.lock:
            if record.section is not None:
                try:
                    section_number = record.section_number_for(node.number)
                except ValueError:
                    section_number = None
                still_owner = (
                    section_number is not None
                    and section_number < len(new_processors)
                    and new_processors[section_number] == node.number
                )
                if not still_owner:
                    record.section.free()
                    record.section = None
            record.processors = new_processors
            record.replica_map = replica_map
            record.epoch = int(epoch)
            record.invalidate_section_index()
            if node.number in new_processors:
                self._bump_version(node, record)
        _define(status, Status.OK)

    def rejoin_processor(self, vp: int, origin: int = 0) -> dict:
        """Run the rejoin protocol for one quarantined VP across every
        durable array: push current membership/epoch onto it (freeing
        sections it lost to recovery) and clear the per-array
        ``recovered_procs`` guard so a *real* death of this VP later
        fires recovery again.

        Called by the failure detector's monitor thread when a
        false-positive resumes heartbeating.  Best-effort per array: a
        re-cut partition or concurrent death leaves the VP quarantined
        and the next quarantine round retries.
        """
        machine = self.machine
        results: dict = {}
        if machine.is_failed(vp):
            return results
        if origin == vp or machine.is_unavailable(origin):
            origin = next(
                (
                    p
                    for p in range(machine.num_nodes)
                    if p != vp and not machine.is_unavailable(p)
                ),
                origin,
            )
        for array_id, state in self.durability_states():
            with state.lock:
                membership = tuple(state.processors)
                replica_map = state.replica_map
                epoch = state.epoch
                state.recovered_procs.discard(vp)
            try:
                with fabric.execution_context(processor=origin):
                    st = DefVar(f"rejoin@{vp}")
                    machine.server.request(
                        "rejoin_local",
                        array_id,
                        membership,
                        replica_map,
                        epoch,
                        st,
                        processor=vp,
                        kind=REJOIN_KIND,
                    )
                    results[array_id] = Status(
                        st.read(timeout=machine.default_recv_timeout)
                    )
            except (ProcessorFailedError, TimeoutError):
                results[array_id] = Status.ERROR
        return results

    # -- planned migration (repro.arrays.placement) -----------------------------------

    def yield_section_local(
        self,
        node: VirtualProcessor,
        array_id: ArrayID,
        expected_epoch: int,
        out: DefVar,
        status: DefVar,
    ) -> None:
        """Surrender this processor's section to a migration: copy the
        interior, free the storage, and leave the record section-less.

        Guarded by the epoch the plan was computed at: a fault-delayed
        yield arriving after a rollback (or any other epoch bump) is
        refused with INVALID instead of destroying restored data.
        """
        self._note("yield_section_local", node.number, array_id)
        record = self._lookup(node, array_id)
        if record is None or record.section is None:
            define_once(out, None)
            define_once(status, Status.NOT_FOUND)
            return
        with record.lock:
            if record.epoch != int(expected_epoch):
                define_once(out, None)
                define_once(status, Status.INVALID)
                return
            data = record.section.interior().copy()
            record.section.free()
            record.section = None
            self._bump_version(node, record)
        define_once(out, data)
        define_once(status, Status.OK)

    def _run_plan(
        self,
        node: VirtualProcessor,
        array_id: ArrayID,
        state: DurabilityState,
        plan: Optional[PlacementPlan],
        moved_out: DefVar,
        status: DefVar,
    ) -> None:
        """Execute one planned migration, logging the outcome."""
        if plan is None or not plan.moves:
            _define(moved_out, [])
            _define(status, Status.OK)
            return
        entry = {
            "array": array_id.as_tuple(),
            "moves": [(m.section, m.source, m.dest) for m in plan.moves],
            "ok": False,
        }
        try:
            with obs_span(
                self.machine,
                "migrate",
                array=str(array_id.as_tuple()),
                moves=len(plan.moves),
            ):
                outcome = self.mover.execute_locked(
                    state, plan, kind=MIGRATE_KIND, origin=node.number
                )
        except Exception as exc:  # noqa: BLE001 - rolled back -> Status
            entry["error"] = repr(exc)
            with self._trace_lock:
                self.migrations.append(entry)
            _define(moved_out, None)
            _define(status, Status.ERROR)
            return
        entry["ok"] = True
        entry["epoch"] = outcome["epoch"]
        with self._trace_lock:
            self.migrations.append(entry)
        _define(moved_out, outcome["sections"])
        _define(status, Status.OK)

    def migrate_sections(
        self,
        node: VirtualProcessor,
        array_id: Any,
        assignments: Any,
        moved_out: DefVar,
        status: DefVar,
    ) -> None:
        """Move sections per an explicit ``{section: destination}`` map
        (or a prebuilt :class:`PlacementPlan`).  Defines ``moved_out``
        with the list of section numbers that moved.

        The move is transactional against failure: a mid-plan death or
        dropped message rolls the sourced sections back onto the current
        owners under a fresh epoch and returns ERROR.
        """
        self._note("migrate_sections", node.number, array_id)
        state = (
            self.durability_state(array_id)
            if isinstance(array_id, ArrayID)
            else None
        )
        if state is None:
            _define(moved_out, None)
            _define(status, Status.NOT_FOUND)
            return
        with state.lock:
            try:
                plan = (
                    assignments
                    if isinstance(assignments, PlacementPlan)
                    else PlacementPlan.from_assignments(
                        state, dict(assignments)
                    )
                )
            except MigrationError:
                _define(moved_out, None)
                _define(status, Status.INVALID)
                return
            self._run_plan(node, array_id, state, plan, moved_out, status)

    def rebalance_array(
        self,
        node: VirtualProcessor,
        array_id: Any,
        targets: Any,
        moved_out: DefVar,
        status: DefVar,
    ) -> None:
        """Repair/respread one array: keep sections whose owner is alive
        (and within ``targets``, when given); move the rest onto spare
        processors — including processors added at runtime, which is how
        ``add_processor()`` + ``rebalance()`` repairs an array recovery
        had to leave unrecovered for want of a spare."""
        self._note("rebalance_array", node.number, array_id)
        state = (
            self.durability_state(array_id)
            if isinstance(array_id, ArrayID)
            else None
        )
        if state is None:
            _define(moved_out, None)
            _define(status, Status.NOT_FOUND)
            return
        with state.lock:
            try:
                plan = PlacementPlan.rebalance(
                    state,
                    self.machine,
                    None if targets is None else tuple(targets),
                )
            except MigrationError:
                _define(moved_out, None)
                _define(status, Status.INVALID)
                return
            self._run_plan(node, array_id, state, plan, moved_out, status)

    # -- info ---------------------------------------------------------------------------

    def find_info(
        self,
        node: VirtualProcessor,
        array_id: Any,
        which: str,
        out: DefVar,
        status: DefVar,
    ) -> None:
        """Information about a distributed array (§4.2.6)."""
        self._note("find_info", node.number, array_id, which)
        record = self._lookup(node, array_id) if isinstance(
            array_id, ArrayID
        ) else None
        if record is None:
            _define(out, None)
            _define(status, Status.NOT_FOUND)
            return
        try:
            value = record.info(which)
        except ValueError:
            _define(out, None)
            _define(status, Status.INVALID)
            return
        _define(out, value)
        _define(status, Status.OK)


_MANAGER_KEY = "am.manager"


def install_array_manager(
    machine: Machine, trace: bool = False
) -> ArrayManager:
    """Load the array manager onto a machine (the ``load "am"`` of §B.3).

    Idempotent: a machine has at most one array manager.
    """
    existing = getattr(machine, "_array_manager", None)
    if existing is not None:
        return existing
    manager = ArrayManager(machine, trace=trace)
    machine.server.load(manager.capabilities())
    # Durability traffic rides the fabric under its own envelope kinds:
    # replica updates apply at the backup's final delivery, recovery
    # requests execute as server calls distinguishable by meters/tracers.
    machine.register_kind_handler(
        REPLICA_UPDATE_KIND, manager._on_replica_update
    )
    machine.register_kind_handler(RECOVERY_KIND, machine.server._execute)
    # Planned-migration RPCs (yield/adopt/membership rewrites issued by
    # the section mover) travel under their own kind, so meters and
    # fault plans can target elective moves separately from recovery.
    machine.register_kind_handler(MIGRATE_KIND, machine.server._execute)
    # Quarantine-rejoin RPCs (membership rewrites onto a falsely-suspected
    # VP) carry their own kind: exempt from suspect-send queueing and
    # targetable by fault plans independently of recovery/migration.
    machine.register_kind_handler(REJOIN_KIND, machine.server._execute)
    # The batching-and-caching layer (repro.perf): fused write batches
    # arrive under their own kind and apply atomically at the owner.
    machine.register_kind_handler(ARRAY_BATCH_KIND, manager._on_array_batch)
    machine._perf = PerfLayer(machine, manager)  # type: ignore[attr-defined]
    # Precompiled halo-exchange strips (repro.perf.commplan): one fused
    # bulk message per neighbour per phase, epoch-fenced at delivery and
    # parked in a rendezvous until the receiving copy claims it.
    machine.register_kind_handler(
        HALO_BULK_KIND, machine._perf.plans.deliver
    )
    machine._array_manager = manager  # type: ignore[attr-defined]
    return manager


def get_array_manager(machine: Machine) -> ArrayManager:
    manager = getattr(machine, "_array_manager", None)
    if manager is None:
        raise RuntimeError(
            "array manager not loaded; call install_array_manager(machine) "
            "or am_util.load_all(machine, 'am') first (§B.3)"
        )
    return manager
