"""Metrics-driven rebalancing: close the loop from telemetry to placement.

PR 4 gave the machine runtime metrics (mailbox depth gauges, receive-wait
histograms); this module reads them back and turns them into
:class:`~repro.arrays.placement.PlacementPlan`\\ s, so a machine whose
shape or load changed can *act* on what it observes — the "Chunks and
Tasks" posture that dynamic algorithms need dynamic placement.

The :class:`Rebalancer` is deliberately a policy shell around mechanisms
that live elsewhere: it only ever *proposes* plans (from
``repro_mailbox_depth`` and ``repro_mailbox_recv_wait_seconds``) and
applies them through ``ArrayManager.migrate_sections`` /
``rebalance_array`` — the same transactional mover recovery uses, so a
bad proposal can fail safely and roll back.

Signals, per virtual processor:

* **mailbox depth** (gauge) — messages delivered but not yet received;
  a persistently deep mailbox marks an overloaded VP.
* **mean receive wait** (histogram sum/count) — how long receivers sit
  idle waiting for traffic; a long wait marks an *underloaded* VP.

``load(vp) = depth - wait_weight * mean_wait`` folds both into one
score: hot VPs score high, idle VPs score low (possibly negative).
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.arrays.placement import MigrationError, PlacementPlan
from repro.status import Status

DEPTH_METRIC = "repro_mailbox_depth"
WAIT_METRIC = "repro_mailbox_recv_wait_seconds"


class Rebalancer:
    """Propose and apply placement changes from observed load.

    ``imbalance_ratio`` — a section moves only when its owner's load is
    at least this multiple of the best candidate's (hysteresis against
    thrashing); ``min_load`` — owners below this absolute load are never
    considered hot; ``wait_weight`` — how strongly idle receive-wait
    discounts a VP's load score.
    """

    def __init__(
        self,
        machine: Any,
        imbalance_ratio: float = 2.0,
        min_load: float = 1.0,
        wait_weight: float = 1.0,
    ) -> None:
        if imbalance_ratio < 1.0:
            raise ValueError("imbalance_ratio must be >= 1.0")
        self.machine = machine
        self.imbalance_ratio = float(imbalance_ratio)
        self.min_load = float(min_load)
        self.wait_weight = float(wait_weight)
        # Applied-step log for tests and operators.
        self.history: List[dict] = []

    # -- signal extraction ----------------------------------------------------

    def loads(self) -> Dict[int, float]:
        """Per-VP load scores from the installed observer's metrics.

        Every processor gets a score (0.0 when no metric has touched it
        yet — a VP added a moment ago is a cold, attractive target).
        Empty when no observer is installed: no telemetry, no opinions.
        """
        observer = getattr(self.machine, "_observer", None)
        if observer is None:
            return {}
        depth: Dict[int, float] = {}
        wait: Dict[int, float] = {}
        for instrument in observer.metrics.instruments():
            labels = dict(instrument.labels)
            vp = labels.get("vp")
            if vp is None or not str(vp).isdigit():
                continue
            vp = int(vp)
            if instrument.name == DEPTH_METRIC:
                depth[vp] = float(instrument.value)
            elif instrument.name == WAIT_METRIC:
                sample = instrument.sample()
                if sample["count"]:
                    wait[vp] = sample["sum"] / sample["count"]
        return {
            p: depth.get(p, 0.0) - self.wait_weight * wait.get(p, 0.0)
            for p in range(self.machine.num_nodes)
        }

    # -- planning -------------------------------------------------------------

    def propose(self) -> List[PlacementPlan]:
        """One plan per durable array that should change placement.

        Two rules, in priority order:

        1. **Repair** — any section owned by a failed processor moves to
           a spare unconditionally (the metric gates do not apply to
           correctness);
        2. **Spread** — the hottest owner sheds its section to the
           coldest spare when its load clears ``min_load`` and exceeds
           the spare's by ``imbalance_ratio``.
        """
        manager = getattr(self.machine, "_array_manager", None)
        if manager is None:
            return []
        machine = self.machine
        scores = self.loads()
        plans: List[PlacementPlan] = []
        for array_id, state in manager.durability_states():
            with state.lock:
                owners = tuple(state.processors)
                # Detector verdicts count: a VP the failure detector has
                # declared dead is as unplaceable as an oracle-failed one.
                dead_owned = [
                    s
                    for s, p in enumerate(owners)
                    if machine.is_unavailable(p)
                ]
                spares = [
                    p
                    for p in range(machine.num_nodes)
                    if not machine.is_unavailable(p) and p not in owners
                ]
                spares.sort(key=lambda p: scores.get(p, 0.0))
                assignments: Dict[int, int] = {}
                for section in dead_owned:
                    if not spares:
                        break
                    assignments[section] = spares.pop(0)
                if not dead_owned and scores and spares:
                    live = [
                        (scores.get(p, 0.0), s, p)
                        for s, p in enumerate(owners)
                        if not machine.is_unavailable(p)
                    ]
                    if live:
                        hot_load, hot_section, _hot = max(live)
                        cold = spares[0]
                        cold_load = scores.get(cold, 0.0)
                        if hot_load >= self.min_load and (
                            hot_load
                            >= self.imbalance_ratio * max(cold_load, 0.0)
                            + (0.0 if cold_load > 0 else self.min_load)
                        ):
                            assignments[hot_section] = cold
                try:
                    plan = (
                        PlacementPlan.from_assignments(state, assignments)
                        if assignments
                        else None
                    )
                except MigrationError:
                    plan = None
            if plan is not None:
                plans.append(plan)
        return plans

    # -- actuation ------------------------------------------------------------

    def step(self) -> List[dict]:
        """Propose and apply: one closed-loop iteration.

        Returns one entry per attempted plan with the array, the moves,
        and whether the transactional migration committed.
        """
        from repro.arrays import am_user

        applied: List[dict] = []
        for plan in self.propose():
            moved, status = am_user.migrate_sections(
                self.machine, plan.array_id, plan
            )
            entry = {
                "array": plan.array_id.as_tuple(),
                "moves": [
                    (m.section, m.source, m.dest) for m in plan.moves
                ],
                "ok": status is Status.OK,
                "moved": list(moved) if moved is not None else [],
            }
            applied.append(entry)
            self.history.append(entry)
        return applied
