"""Section placement: one engine that moves array sections between VPs.

PR 3's recovery coordinator grew the machinery for relocating a local
section — pick a destination, source the bytes (live owner, surviving
replica, or checkpoint), adopt them on the new owner, rewrite every
survivor's membership and replica map, bump the epoch.  That machinery
was buried inside ``RecoveryCoordinator._rebuild_locked`` and therefore
only ran as a side effect of death.  This module extracts it into a
standalone engine so *planned* migration (elastic rebalancing onto
processors added at runtime, ``DistributedArray.rebalance()``) and
*failure* recovery share exactly one code path that moves a section:

* :class:`PlacementPlan` — an immutable description of a membership
  change: which sections move where, the resulting processor tuple, and
  the replica map recomputed for it.  Built by
  :meth:`PlacementPlan.for_failure` (recovery: dead owner -> spare),
  :meth:`PlacementPlan.from_assignments` (explicit ``{section: dest}``),
  or :meth:`PlacementPlan.rebalance` (repair dead owners / respread onto
  a target set).

* :class:`SectionMover` — executes a plan under the array's
  ``DurabilityState`` lock: source each moving section, adopt it on its
  destination, rewrite membership on every holder, reseed mirrors, and
  commit the epoch bump.  Planned migration runs with ``rollback=True``
  — a failure mid-plan (destination dies, fault-injected drop times
  out, concurrent recovery rewrites membership underneath) restores the
  sourced sections onto the current owners under a *fresh* epoch, so a
  delayed ``yield_section_local`` from the abandoned attempt is refused
  by its epoch guard instead of destroying restored data.  Recovery
  runs with ``rollback=False`` and ``flush=False``: its caller already
  records partial progress as ``unrecovered``, and flushing the write
  coalescer from inside a failure listener could self-deadlock on the
  non-reentrant per-key flush locks when the kill fired mid-flush.

The migration barrier (docs/elasticity.md): a planned move first drains
the write coalescer for the array, so write-behind batches aimed at the
old owner land before the section leaves it; the commit's epoch bump
invalidates every ``SectionCache`` entry for the moved sections, and the
coalescer re-resolves owners from the durability state at ship time, so
batches racing the move chase the section to its new owner.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.pcn.defvar import DefVar
from repro.status import ProcessorFailedError, Status
from repro.vp import fabric

# Envelope kind for planned-migration RPCs: yield/adopt/membership
# traffic is distinguishable from recovery's on the wire (meters,
# tracers, fault plans can target one without the other).
MIGRATE_KIND = "migrate"


class MigrationError(RuntimeError):
    """A planned migration could not be completed (and was rolled back)."""


class StalePlanError(MigrationError):
    """The membership/epoch a plan was computed against changed before
    it could commit — a kill fired during the plan's own traffic and ran
    recovery reentrantly (``state.lock`` is an RLock, so the nested
    rebuild completes inside the outer one).  The caller recomputes the
    plan from the rewritten state and retries."""


class SectionSourceError(Exception):
    """No copy of a section survives anywhere (owner dead, no replica,
    no checkpoint).  Carries the section number so recovery can record
    its exact per-section diagnostic."""

    def __init__(self, section: int) -> None:
        super().__init__(f"section {section}: no replica or checkpoint")
        self.section = section


@dataclass(frozen=True)
class SectionMove:
    """One section changing owners: ``source`` may be dead (recovery)."""

    section: int
    source: int
    dest: int


@dataclass(frozen=True)
class PlacementPlan:
    """An immutable membership change for one array.

    ``base_processors`` is the membership the plan was computed against;
    the mover refuses a plan whose base no longer matches the live state
    (stale plan).  ``reason`` is ``"recovery"`` or ``"migrate"`` and
    selects which statistic (``sections_rebuilt`` / ``sections_migrated``)
    and observer metric the commit advances.
    """

    array_id: Any
    reason: str
    base_processors: Tuple[int, ...]
    new_processors: Tuple[int, ...]
    new_replica_map: Any
    moves: Tuple[SectionMove, ...]

    @staticmethod
    def _replica_map(state: Any, processors: Tuple[int, ...]) -> Any:
        if state.replication <= 0:
            return None
        from repro.arrays.durability import ReplicaMap

        return ReplicaMap.assign(state.layout, processors, state.replication)

    @classmethod
    def for_failure(cls, state: Any, dead: int, spare: int) -> "PlacementPlan":
        """Recovery's plan: every section of ``dead`` moves to ``spare``."""
        base = tuple(state.processors)
        moves = tuple(
            SectionMove(section, dead, spare)
            for section, proc in enumerate(base)
            if proc == dead
        )
        new_processors = tuple(spare if p == dead else p for p in base)
        return cls(
            array_id=state.array_id,
            reason="recovery",
            base_processors=base,
            new_processors=new_processors,
            new_replica_map=cls._replica_map(state, new_processors),
            moves=moves,
        )

    @classmethod
    def from_assignments(
        cls, state: Any, assignments: Dict[int, int]
    ) -> Optional["PlacementPlan"]:
        """Plan an explicit ``{section: destination}`` migration.

        Destinations must be processors holding no section of the array
        (each VP hosts at most one section, and adopt replaces the
        record wholesale), and distinct from each other — chained moves
        (A->B while B->C) are rejected rather than ordered.  Returns
        ``None`` when every assignment is already satisfied.
        """
        base = tuple(state.processors)
        new = list(base)
        moves: List[SectionMove] = []
        dests: set = set()
        for section in sorted(assignments):
            dest = int(assignments[section])
            section = int(section)
            if not 0 <= section < len(base):
                raise MigrationError(
                    f"array {state.array_id} has no section {section}"
                )
            if dest == base[section]:
                continue  # already there
            if dest in base:
                raise MigrationError(
                    f"processor {dest} already holds a section of "
                    f"{state.array_id}"
                )
            if dest in dests:
                raise MigrationError(
                    f"two sections assigned to processor {dest}"
                )
            dests.add(dest)
            moves.append(SectionMove(section, base[section], dest))
            new[section] = dest
        if not moves:
            return None
        new_processors = tuple(new)
        return cls(
            array_id=state.array_id,
            reason="migrate",
            base_processors=base,
            new_processors=new_processors,
            new_replica_map=cls._replica_map(state, new_processors),
            moves=tuple(moves),
        )

    @classmethod
    def rebalance(
        cls,
        state: Any,
        machine: Any,
        targets: Optional[Sequence[int]] = None,
    ) -> Optional["PlacementPlan"]:
        """Plan a repair/respread: keep each section on its owner when
        the owner is alive and inside the target set; move every other
        section (dead owner, or owner outside an explicit ``targets``)
        onto a spare target holding no section of the array.

        Raises :class:`MigrationError` when a section must move but no
        spare target exists — the caller can ``Machine.add_processor()``
        and retry.  Returns ``None`` when the array is already placed.
        """
        alive = [
            p
            for p in range(machine.num_nodes)
            if not machine.is_unavailable(p)
        ]
        pool = (
            alive
            if targets is None
            else [
                int(t) for t in targets if not machine.is_unavailable(int(t))
            ]
        )
        base = tuple(state.processors)
        homeless = [
            section
            for section, owner in enumerate(base)
            if machine.is_unavailable(owner) or owner not in pool
        ]
        if not homeless:
            return None
        spares = [p for p in pool if p not in base]
        assignments: Dict[int, int] = {}
        for section in homeless:
            if not spares:
                raise MigrationError(
                    f"no spare processor for section {section} of "
                    f"{state.array_id}"
                )
            assignments[section] = spares.pop(0)
        return cls.from_assignments(state, assignments)


class SectionMover:
    """Executes placement plans — the single code path that moves a
    section, shared by failure recovery and planned migration."""

    def __init__(self, machine: Any, manager: Any) -> None:
        self.machine = machine
        self.manager = manager
        self._lock = threading.Lock()
        # Executed-plan log, surfaced through ArrayManager.migrations.
        self.moves_executed = 0
        self.aborts = 0

    # -- plan helpers ---------------------------------------------------------

    def select_spare(self, state: Any, alive: Sequence[int]) -> Optional[int]:
        """Recovery's spare choice: first alive VP holding no section."""
        return next((p for p in alive if p not in state.processors), None)

    # -- execution ------------------------------------------------------------

    def execute_locked(
        self,
        state: Any,
        plan: PlacementPlan,
        *,
        kind: str,
        origin: Optional[int] = None,
        rollback: bool = True,
        flush: bool = True,
    ) -> dict:
        """Run one plan; the caller holds ``state.lock`` throughout.

        The protocol, in order: (migration barrier) flush coalesced
        writes for the array; source each moving section — a live yield
        from its owner, else the freshest surviving replica, else the
        latest checkpoint; adopt it on the destination at the new epoch;
        rewrite membership on every holder; reseed mirrors; commit the
        state.  ``rollback=True`` (planned migration) restores sourced
        sections under a fresh epoch on any failure and re-raises;
        ``rollback=False`` (recovery) propagates the failure with state
        untouched, matching the pre-extraction recovery semantics.
        """
        machine = self.machine
        array_id = plan.array_id
        if tuple(plan.base_processors) != tuple(state.processors):
            raise StalePlanError(
                f"stale plan for {array_id}: membership is "
                f"{tuple(state.processors)}, plan assumed "
                f"{tuple(plan.base_processors)}"
            )
        entry_epoch = state.epoch
        new_epoch = entry_epoch + 1
        if flush:
            # Migration barrier: write-behind batches aimed at the old
            # owner must land before the section leaves it.  Recovery
            # passes flush=False — a kill that fired inside a flush
            # already holds this key's flush lock on this very thread.
            perf = getattr(machine, "_perf", None)
            if perf is not None:
                perf.coalescer.flush(array_id)
        if origin is None or machine.is_unavailable(origin):
            origin = next(
                p
                for p in range(machine.num_nodes)
                if not machine.is_unavailable(p)
            )
        sourced: List[Tuple[SectionMove, np.ndarray]] = []
        try:
            # Moves and membership traffic must originate from a live
            # node: recovery may be running on the dead VP's own thread.
            with fabric.execution_context(processor=origin):
                for move in plan.moves:
                    data = self._section_data(
                        state, array_id, move, entry_epoch, kind
                    )
                    if state.epoch != entry_epoch:
                        # A kill during our sourcing traffic ran recovery
                        # reentrantly and committed a new membership;
                        # adopting against the old one would clobber it.
                        raise StalePlanError(
                            f"membership of {array_id} changed while "
                            f"sourcing section {move.section}"
                        )
                    sourced.append((move, data))
                    self._request(
                        "adopt_section",
                        array_id,
                        state.type_name,
                        state.layout,
                        plan.new_processors,
                        state.border_spec,
                        state.replication,
                        plan.new_replica_map,
                        new_epoch,
                        data,
                        processor=move.dest,
                        kind=kind,
                    )
                if rollback:
                    dead_dests = [
                        move.dest
                        for move in plan.moves
                        if machine.is_unavailable(move.dest)
                    ]
                    if dead_dests:
                        # A destination died *after* adopting (kills fire
                        # once the delivery completes): committing would
                        # hand the section to a corpse.
                        raise MigrationError(
                            f"destination processor {dead_dests[0]} of "
                            f"{array_id} failed mid-migration"
                        )
                if state.epoch != entry_epoch:
                    # A kill during our own traffic ran recovery
                    # reentrantly (state.lock is an RLock) and rewrote
                    # the membership underneath the plan.
                    raise StalePlanError(
                        f"membership of {array_id} changed mid-migration "
                        f"(concurrent recovery)"
                    )
                dests = {move.dest for move in plan.moves}
                holders = (
                    set(plan.new_processors)
                    | set(plan.base_processors)
                    | {state.creator}
                ) - dests
                for holder in sorted(holders):
                    if machine.is_unavailable(holder):
                        # An unreachable holder keeps its old record at
                        # the old epoch — exactly what the fencing check
                        # (docs/fault_model.md §9) exists to refuse if
                        # the holder was falsely suspected and returns.
                        continue
                    self._request(
                        "update_membership_local",
                        array_id,
                        plan.new_processors,
                        plan.new_replica_map,
                        new_epoch,
                        processor=holder,
                        kind=kind,
                    )
                if state.replication > 0 and plan.new_replica_map is not None:
                    for owner in plan.new_processors:
                        if machine.is_unavailable(owner):
                            continue
                        self._request(
                            "reseed_replicas_local",
                            array_id,
                            processor=owner,
                            kind=kind,
                        )
                if state.epoch != entry_epoch:
                    # Final gate at the commit point: the rewrite/reseed
                    # traffic above can itself trigger a kill, whose
                    # reentrant recovery commits a new epoch after the
                    # mid-migration check already passed.
                    raise StalePlanError(
                        f"membership of {array_id} changed during "
                        f"commit traffic"
                    )
        except Exception:
            if rollback:
                self._abort_locked(state, plan, sourced, new_epoch, kind)
            raise
        state.processors = plan.new_processors
        state.replica_map = plan.new_replica_map
        state.epoch = new_epoch
        if plan.reason == "recovery":
            state.sections_rebuilt += len(plan.moves)
        else:
            state.sections_migrated += len(plan.moves)
        with self._lock:
            self.moves_executed += len(plan.moves)
        observer = getattr(machine, "_observer", None)
        if observer is not None:
            for _ in plan.moves:
                if plan.reason == "recovery":
                    observer.section_rebuilt(array_id)
                else:
                    observer.section_migrated(array_id)
            observer.array_epoch(array_id, new_epoch)
        return {
            "sections": [move.section for move in plan.moves],
            "epoch": new_epoch,
            "moves": [
                (move.section, move.source, move.dest) for move in plan.moves
            ],
        }

    # -- sourcing -------------------------------------------------------------

    def _section_data(
        self,
        state: Any,
        array_id: Any,
        move: SectionMove,
        entry_epoch: int,
        kind: str,
    ) -> np.ndarray:
        """A copy of the moving section.

        Live source: yield it (destructive copy-and-free, guarded by the
        epoch the plan was computed at, so a fault-delayed yield from an
        aborted attempt is refused).  Dead source: freshest surviving
        replica, then the latest checkpoint — recovery's sourcing order.
        """
        machine = self.machine
        if not machine.is_unavailable(move.source):
            out = DefVar(f"yield_section@{move.source}")
            status = DefVar(f"yield_section_status@{move.source}")
            try:
                machine.server.request(
                    "yield_section_local",
                    array_id,
                    entry_epoch,
                    out,
                    status,
                    processor=move.source,
                    kind=kind,
                )
                result = Status(
                    status.read(timeout=machine.default_recv_timeout)
                )
            except ProcessorFailedError:
                # The source died under us: fall through to the replica
                # path exactly as if the plan had targeted a dead owner.
                result = None
            except TimeoutError:
                # The yield request was dropped or delayed in transit
                # while the source is still alive.  A late execution
                # would free the section, so adopt nothing — abort and
                # let the epoch guard refuse the straggler.
                raise MigrationError(
                    f"yield of section {move.section} from processor "
                    f"{move.source} timed out"
                )
            if result is Status.OK:
                return out.read()
            if result is not None:
                raise MigrationError(
                    f"yield of section {move.section} from processor "
                    f"{move.source} failed with {result.name}"
                )
        if state.replica_map is not None:
            chain = state.replica_map.backups_for(move.section)
            for backup in chain:
                if machine.is_unavailable(backup):
                    continue
                out = DefVar(f"replica_fetch@{backup}")
                status = DefVar(f"replica_fetch_status@{backup}")
                machine.server.request(
                    "replica_fetch",
                    array_id,
                    move.section,
                    out,
                    status,
                    processor=backup,
                    kind=kind,
                )
                if Status(status.read()) is Status.OK:
                    _epoch, data = out.read()
                    return data
            # The chain came up empty.  A membership rewrite (another
            # owner's recovery) re-derives every chain for the new ring,
            # which can orphan the only surviving mirror on a processor
            # the new chain no longer names — e.g. the mirror's host was
            # partitioned away when its owner died, then healed.  Sweep
            # the remaining live processors and take the freshest mirror.
            best: Optional[Tuple[int, np.ndarray]] = None
            for host in range(machine.num_nodes):
                if host in chain or machine.is_unavailable(host):
                    continue
                out = DefVar(f"replica_sweep@{host}")
                status = DefVar(f"replica_sweep_status@{host}")
                machine.server.request(
                    "replica_fetch",
                    array_id,
                    move.section,
                    out,
                    status,
                    processor=host,
                    kind=kind,
                )
                if Status(status.read()) is Status.OK:
                    epoch, data = out.read()
                    if best is None or epoch > best[0]:
                        best = (int(epoch), data)
            if best is not None:
                return best[1]
        if state.last_checkpoint is not None:
            data = state.last_checkpoint.sections.get(move.section)
            if data is not None:
                return data.copy()
        raise SectionSourceError(move.section)

    # -- rollback -------------------------------------------------------------

    def _abort_locked(
        self,
        state: Any,
        plan: PlacementPlan,
        sourced: List[Tuple[SectionMove, np.ndarray]],
        new_epoch: int,
        kind: str,
    ) -> None:
        """Rollback of a half-executed plan.

        Restores every sourced section onto the *current* authoritative
        owner (``state.processors`` — concurrent recovery may have
        rewritten it while we were mid-plan) under a fresh epoch above
        both the entry epoch and the abandoned plan's, so straggling
        yields and replica updates stamped with either are refused as
        stale.

        Every request runs inside the *target's* own execution context,
        so it executes node-locally with zero routed messages: the fault
        injector that failed the forward pass (drops, duplicate storms,
        kills) cannot also eat the restore.  Dead processors are skipped
        — each step is individually best-effort against concurrent
        death, but never against message faults.
        """
        machine = self.machine
        array_id = plan.array_id
        rollback_epoch = max(state.epoch, new_epoch) + 1
        restore_procs = tuple(state.processors)
        restore_map = state.replica_map
        with self._lock:
            self.aborts += 1
        for move, data in sourced:
            # Free the half-installed copy at the destination so the
            # abandoned adopt cannot shadow the restored section.
            if not machine.is_unavailable(move.dest):
                try:
                    with fabric.execution_context(processor=move.dest):
                        out = DefVar(f"unadopt@{move.dest}")
                        st = DefVar(f"unadopt_status@{move.dest}")
                        machine.server.request(
                            "yield_section_local",
                            array_id,
                            new_epoch,
                            out,
                            st,
                            processor=move.dest,
                            kind=kind,
                        )
                        st.read(timeout=machine.default_recv_timeout)
                except Exception:  # noqa: BLE001 - best effort
                    pass
            owner = (
                restore_procs[move.section]
                if move.section < len(restore_procs)
                else move.source
            )
            if machine.is_unavailable(owner):
                continue
            try:
                with fabric.execution_context(processor=owner):
                    self._request(
                        "adopt_section",
                        array_id,
                        state.type_name,
                        state.layout,
                        restore_procs,
                        state.border_spec,
                        state.replication,
                        restore_map,
                        rollback_epoch,
                        data,
                        processor=owner,
                        kind=kind,
                    )
            except Exception:  # noqa: BLE001 - best effort
                pass
        holders = (
            set(restore_procs)
            | set(plan.base_processors)
            | {state.creator}
            | {move.dest for move, _ in sourced}
        )
        for holder in sorted(holders):
            if machine.is_unavailable(holder):
                continue
            try:
                with fabric.execution_context(processor=holder):
                    self._request(
                        "update_membership_local",
                        array_id,
                        restore_procs,
                        restore_map,
                        rollback_epoch,
                        processor=holder,
                        kind=kind,
                    )
            except Exception:  # noqa: BLE001 - best effort
                pass
        if state.replication > 0 and restore_map is not None:
            for owner in restore_procs:
                if machine.is_unavailable(owner):
                    continue
                try:
                    with fabric.execution_context(processor=owner):
                        self._request(
                            "reseed_replicas_local",
                            array_id,
                            processor=owner,
                            kind=kind,
                        )
                except Exception:  # noqa: BLE001 - best effort
                    pass
        state.epoch = rollback_epoch
        observer = getattr(machine, "_observer", None)
        if observer is not None:
            observer.array_epoch(array_id, rollback_epoch)

    # -- plumbing -------------------------------------------------------------

    def _request(
        self, request_type: str, *parameters: Any, processor: int, kind: str
    ) -> None:
        """One status-checked server request on ``processor``."""
        status = DefVar(f"{request_type}@{processor}")
        self.machine.server.request(
            request_type,
            *parameters,
            status,
            processor=processor,
            kind=kind,
        )
        result = Status(status.read(timeout=self.machine.default_recv_timeout))
        if result is not Status.OK:
            raise RuntimeError(
                f"placement request {request_type!r} on processor "
                f"{processor} failed with {result.name}"
            )
