"""Block decomposition of arrays onto processor grids (§3.2.1.1-§3.2.1.2).

Only *block* decompositions are supported, but the user controls the
processor-grid dimensions with a per-dimension specification taken directly
from Fortran D:

* ``BLOCK`` (the string ``"block"``) — the grid dimension takes the default
  value;
* ``Block(n)`` (the tuple ``("block", n)``) — the grid dimension is ``n``;
* ``STAR`` (the string ``"*"``) — the grid dimension is 1 (no decomposition
  along this dimension).

Defaults (§3.2.1.2): with no dimensions specified, an N-dimensional array on
P processors uses a "square" grid, every dimension ``P**(1/N)``.  With M
dimensions specified whose product is Q, every unspecified dimension is
``(P/Q)**(1/(N-M))``.  The thesis' worked example: a 3-D array on 32
processors with the second grid dimension specified as 2 yields a 4x2x4
grid.

The thesis assumes each grid dimension divides the corresponding array
dimension; we check and reject violations (STATUS_INVALID at the library
layer).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Union


class DecompositionError(ValueError):
    """A distribution specification cannot be satisfied."""


BLOCK = "block"
STAR = "*"


@dataclass(frozen=True)
class Block:
    """The ``block(N)`` specification: grid dimension fixed to ``n``."""

    n: int

    def __post_init__(self) -> None:
        if self.n < 1:
            raise DecompositionError(f"block({self.n}): size must be >= 1")


DistribSpec = Union[str, Block, tuple]


def normalize_distrib(spec: DistribSpec) -> Union[str, Block]:
    """Accept both the pythonic and the paper's tuple syntax.

    The paper writes ``{"block", N}``; we accept ``("block", N)`` as well as
    ``Block(N)``, plus the strings ``"block"`` and ``"*"``.
    """
    if isinstance(spec, Block):
        return spec
    if isinstance(spec, tuple):
        if len(spec) == 2 and spec[0] == BLOCK and isinstance(spec[1], int):
            return Block(spec[1])
        raise DecompositionError(f"bad distribution spec {spec!r}")
    if spec == BLOCK or spec == STAR:
        return spec
    raise DecompositionError(f"bad distribution spec {spec!r}")


def _integer_root(value: int, degree: int) -> int:
    """Return ``value ** (1/degree)`` when it is an exact integer.

    Raises :class:`DecompositionError` otherwise — the thesis' default grid
    only exists when P/Q has an exact (N-M)-th root.
    """
    if degree <= 0:
        raise DecompositionError("no free dimensions to solve for")
    if value < 1:
        raise DecompositionError(
            f"cannot build a grid: {value} processors left for "
            f"{degree} unspecified dimension(s)"
        )
    root = round(value ** (1.0 / degree))
    for candidate in (root - 1, root, root + 1):
        if candidate >= 1 and candidate**degree == value:
            return candidate
    raise DecompositionError(
        f"{value} has no exact integer {degree}-th root; specify grid "
        f"dimensions explicitly with block(N)"
    )


def compute_grid(
    dims: Sequence[int],
    num_processors: int,
    distrib: Sequence[DistribSpec],
) -> tuple[int, ...]:
    """Compute the processor-grid dimensions for a distribution request.

    Implements the defaulting rule of §3.2.1.2 and validates that

    * the grid uses exactly ``num_processors`` cells (one local section per
      supplied processor, §3.2.1.4), and
    * every grid dimension divides the corresponding array dimension.
    """
    if len(dims) != len(distrib):
        raise DecompositionError(
            f"array has {len(dims)} dimensions but distribution spec has "
            f"{len(distrib)} entries"
        )
    if any(d < 1 for d in dims):
        raise DecompositionError(f"array dimensions must be >= 1: {list(dims)}")
    if num_processors < 1:
        raise DecompositionError("need at least one processor")

    specs = [normalize_distrib(s) for s in distrib]
    grid: list[int] = []
    free_positions: list[int] = []
    specified_product = 1
    for i, spec in enumerate(specs):
        if spec == STAR:
            grid.append(1)
            specified_product *= 1
        elif isinstance(spec, Block):
            grid.append(spec.n)
            specified_product *= spec.n
        else:  # BLOCK default
            grid.append(0)  # placeholder
            free_positions.append(i)

    if free_positions:
        if num_processors % specified_product != 0:
            raise DecompositionError(
                f"specified grid dimensions (product {specified_product}) do "
                f"not divide processor count {num_processors}"
            )
        per_dim = _integer_root(
            num_processors // specified_product, len(free_positions)
        )
        for i in free_positions:
            grid[i] = per_dim
    else:
        if specified_product != num_processors:
            raise DecompositionError(
                f"grid {tuple(grid)} uses {specified_product} cells but "
                f"{num_processors} processors were supplied"
            )

    for dim, g in zip(dims, grid):
        if dim % g != 0:
            raise DecompositionError(
                f"grid dimension {g} does not divide array dimension {dim} "
                f"(the thesis assumes even division, §3.2.1.1)"
            )
    return tuple(grid)


def local_dims_for(
    dims: Sequence[int], grid: Sequence[int]
) -> tuple[int, ...]:
    """Local-section dimensions: array dims divided by grid dims."""
    return tuple(d // g for d, g in zip(dims, grid))


def _prime_factors(n: int) -> list[int]:
    factors = []
    d = 2
    while d * d <= n:
        while n % d == 0:
            factors.append(d)
            n //= d
        d += 1
    if n > 1:
        factors.append(n)
    return factors


def balanced_grid(dims: Sequence[int], num_processors: int) -> tuple[int, ...]:
    """A near-square valid grid when the thesis' exact default has no
    solution (extension, used only by the pythonic layer's defaulting).

    Greedily assigns the prime factors of P (largest first) to whichever
    dimension currently has the largest local extent, subject to the
    divisibility constraint.  Raises :class:`DecompositionError` when no
    assignment exists.
    """
    if num_processors < 1:
        raise DecompositionError("need at least one processor")
    grid = [1] * len(dims)
    for factor in sorted(_prime_factors(num_processors), reverse=True):
        candidates = sorted(
            range(len(dims)),
            key=lambda i: dims[i] / grid[i],
            reverse=True,
        )
        for i in candidates:
            new_g = grid[i] * factor
            if dims[i] % new_g == 0:
                grid[i] = new_g
                break
        else:
            raise DecompositionError(
                f"cannot place factor {factor} of P={num_processors} on any "
                f"dimension of {tuple(dims)} (current grid {tuple(grid)})"
            )
    return tuple(grid)
