"""Border specifications, including the ``foreign_borders`` option (§5.1.7).

``Border_info`` (§4.2.1) takes one of four forms:

* ``[]`` / ``None`` — no borders;
* a sequence of ``2*rank`` integers — explicit border sizes, where entries
  ``2i`` and ``2i+1`` are the borders before/after dimension ``i``;
* ``("foreign_borders", program, parm_num)`` — the *called data-parallel
  program* supplies border sizes at runtime, so each parameter of each DP
  program can demand different borders.  In the thesis, ``program`` names a
  foreign routine ``Program_`` invoked through a generated PCN wrapper
  (§5.1.7); here ``program`` is the DP callable itself and the protocol is
  an attribute ``border_query(parm_num, rank) -> Sequence[int]``;
* ``("borders", provider, parm_num)`` — the internal form the thesis'
  transformation rewrites ``foreign_borders`` into; ``provider`` is called
  as ``provider(parm_num, 2*rank)`` and must return the border sizes.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence, Union

BorderInfo = Union[None, Sequence[int], tuple]


class BorderSpecError(ValueError):
    """Malformed Border_info parameter (STATUS_INVALID at the library layer)."""


def resolve_borders(border_info: BorderInfo, rank: int) -> tuple[int, ...]:
    """Evaluate a ``Border_info`` specification to concrete border sizes.

    This is the runtime half of the thesis' source-to-source transformation:
    ``foreign_borders`` resolves by *calling into the data-parallel program*
    for the sizes, exactly when the array is created or verified.
    """
    if border_info is None:
        return (0,) * (2 * rank)

    if isinstance(border_info, tuple) and border_info and isinstance(
        border_info[0], str
    ):
        kind = border_info[0]
        if kind == "foreign_borders":
            if len(border_info) != 3:
                raise BorderSpecError(
                    "foreign_borders takes (tag, program, parm_num), got "
                    f"{border_info!r}"
                )
            _tag, program, parm_num = border_info
            query = getattr(program, "border_query", None)
            if query is None and callable(program):
                query = program
            if query is None:
                raise BorderSpecError(
                    f"{program!r} provides no border_query and is not callable"
                )
            borders = query(parm_num, rank)
            return _validate(borders, rank)
        if kind == "borders":
            if len(border_info) != 3:
                raise BorderSpecError(
                    "borders takes (tag, provider, parm_num), got "
                    f"{border_info!r}"
                )
            _tag, provider, parm_num = border_info
            borders = provider(parm_num, 2 * rank)
            return _validate(borders, rank)
        raise BorderSpecError(f"unknown Border_info tag {kind!r}")

    # Plain sequence of integers (covers the empty sequence = no borders).
    try:
        values = list(border_info)  # type: ignore[arg-type]
    except TypeError:
        raise BorderSpecError(f"bad Border_info {border_info!r}") from None
    if not values:
        return (0,) * (2 * rank)
    return _validate(values, rank)


def _validate(values: Sequence[int], rank: int) -> tuple[int, ...]:
    values = list(values)
    if len(values) != 2 * rank:
        raise BorderSpecError(
            f"border list must have 2*rank = {2 * rank} entries, got "
            f"{len(values)}"
        )
    out = []
    for v in values:
        iv = int(v)
        if iv < 0:
            raise BorderSpecError(f"negative border size {v}")
        out.append(iv)
    return tuple(out)


def make_border_provider(
    sizes_by_parm: dict[int, Sequence[int]],
    default: Optional[Sequence[int]] = None,
) -> Callable[[int, int], Sequence[int]]:
    """Build a ``border_query``-style provider from a per-parameter table.

    Mirrors the foreign routine of §4.2.1 (``subroutine fpgm_(iarg,
    isizes)``) that switches on the parameter number.
    """

    def query(parm_num: int, rank: int) -> Sequence[int]:
        if parm_num in sizes_by_parm:
            return sizes_by_parm[parm_num]
        if default is not None:
            return default
        return (0,) * (2 * rank)

    return query


def borders_for_program(program, parm_num: int) -> tuple:
    """Convenience constructor for the paper's ``foreign_borders`` tuple."""
    return ("foreign_borders", program, parm_num)
