"""Internal representation of distributed arrays (§5.1.3-§5.1.4).

Each array-manager process keeps, for every array it knows about, a record
carrying the fields enumerated in §5.1.3: the globally-unique ID (creating
processor number + per-processor counter), element type, global dimensions,
processor numbers, grid dimensions, local dimensions with and without
borders, border sizes, both indexing types, and a reference to local-section
storage.  As in the thesis, derived quantities are computed once at creation
and stored.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.arrays.layout import ArrayLayout
from repro.arrays.local_section import LocalSection


@dataclass(frozen=True, order=True)
class ArrayID:
    """Globally-unique array identifier: a 2-tuple of integers (§4.1.3)."""

    creating_processor: int
    serial: int

    def __post_init__(self) -> None:
        # IDs key every record/pending-write/cache dict on the element
        # hot path; precompute the hash instead of re-deriving it per
        # lookup (frozen fields make this safe).
        object.__setattr__(
            self, "_hash", hash((self.creating_processor, self.serial))
        )

    def __hash__(self) -> int:
        return self._hash

    def as_tuple(self) -> tuple[int, int]:
        return (self.creating_processor, self.serial)

    def __repr__(self) -> str:
        return f"ArrayID({self.creating_processor}, {self.serial})"


class _Serial:
    """Per-processor serial numbers distinguishing arrays (§4.1.3)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._next: dict[int, int] = {}

    def next_for(self, processor: int) -> int:
        with self._lock:
            value = self._next.get(processor, 0)
            self._next[processor] = value + 1
            return value


SERIALS = _Serial()


@dataclass
class ArrayRecord:
    """One array-manager entry (the tuple of §5.1.3).

    A record exists on every processor holding a local section *and* on the
    creating processor (§5.1.4).  ``section`` is None on a creating
    processor that holds no local section.  ``valid`` implements the
    invalidate-on-free behaviour of §5.1.3.
    """

    array_id: ArrayID
    type_name: str
    layout: ArrayLayout
    processors: tuple[int, ...]
    section: Optional[LocalSection] = None
    valid: bool = True
    # Border specification retained so verify_array can compare (§4.2.7).
    border_spec: tuple = field(default_factory=tuple)
    # Durability fields: replication factor and backup-chain map fixed at
    # creation, epoch stamped on replica updates and advanced by
    # checkpoint/restore/recovery.  ``lock`` serialises local writes
    # against the checkpoint consistency cut; it is reentrant because a
    # recovery triggered mid-write (a kill on the write's own replica
    # send) must be able to rewrite membership from the same thread.
    replication: int = 0
    replica_map: Optional[Any] = None
    epoch: int = 0
    lock: threading.RLock = field(
        default_factory=threading.RLock, repr=False, compare=False
    )
    # Memoised processor-number -> section-number lookups.  The per-write
    # replica path used to recompute ``processors.index(...)`` on every
    # element write; batch flushes resolve the backup chain once and this
    # cache makes the repeated lookups O(1).  Invalidated whenever
    # recovery rewrites the membership.
    _section_index: dict = field(
        default_factory=dict, repr=False, compare=False
    )

    def section_number_for(self, processor: int) -> int:
        """This processor's section number, memoised against membership."""
        cached = self._section_index.get(processor)
        if (
            cached is not None
            and cached < len(self.processors)
            and self.processors[cached] == processor
        ):
            return cached
        index = self.processors.index(processor)
        self._section_index[processor] = index
        return index

    def invalidate_section_index(self) -> None:
        self._section_index.clear()

    @property
    def dims(self) -> tuple[int, ...]:
        return self.layout.dims

    @property
    def grid_dims(self) -> tuple[int, ...]:
        return self.layout.grid

    @property
    def local_dims(self) -> tuple[int, ...]:
        return self.layout.local_dims

    @property
    def borders(self) -> tuple[int, ...]:
        return self.layout.borders

    @property
    def local_dims_plus(self) -> tuple[int, ...]:
        return self.layout.local_dims_plus

    @property
    def indexing_type(self) -> str:
        return self.layout.indexing

    @property
    def grid_indexing_type(self) -> str:
        return self.layout.grid_indexing

    def owner_of(self, indices) -> tuple[int, tuple[int, ...]]:
        """Global indices -> (owning processor number, local indices)."""
        section, local = self.layout.locate(indices)
        return self.processors[section], local

    def info(self, which: str):
        """The find_info dispatch table (§4.2.6)."""
        table = {
            "type": lambda: self.type_name,
            "dimensions": lambda: list(self.dims),
            "processors": lambda: list(self.processors),
            "grid_dimensions": lambda: list(self.grid_dims),
            "local_dimensions": lambda: list(self.local_dims),
            "borders": lambda: list(self.borders),
            "local_dimensions_plus": lambda: list(self.local_dims_plus),
            "indexing_type": lambda: self.indexing_type,
            "grid_indexing_type": lambda: self.grid_indexing_type,
            "replication": lambda: self.replication,
            "epoch": lambda: self.epoch,
        }
        try:
            return table[which]()
        except KeyError:
            raise ValueError(f"unknown find_info selector {which!r}") from None
