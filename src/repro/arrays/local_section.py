"""Local sections: flat contiguous storage with borders (§3.2.1.3, §5.1.5).

A local section is "a flat piece of contiguous storage" sized as the product
of the bordered local dimensions.  The thesis implements sections as
*pseudo-definitional arrays*: explicitly malloc'd/free'd storage outside the
PCN heap, usable as a mutable (§5.1.5-§5.1.6).  The analogue here is a flat
NumPy buffer with explicit allocate/free bookkeeping — the allocation
counters let tests assert the no-leak invariant that the thesis' explicit
``free`` primitive exists to provide.

Only the data-parallel program may touch border locations; task-parallel
element access goes through the interior view (§3.2.1.3 last paragraph).
"""

from __future__ import annotations

import threading
from typing import Sequence

import numpy as np

_DTYPES = {"int": np.int64, "double": np.float64, "complex": np.complex128}


def dtype_for(type_name: str) -> np.dtype:
    """Map the paper's element types to NumPy dtypes.

    The paper supports "int" and "double" (§4.2.1); "complex" is our
    extension used by the FFT example, where the paper packs complex values
    as pairs of doubles (§6.2) — both representations are provided.
    """
    try:
        return np.dtype(_DTYPES[type_name])
    except KeyError:
        raise ValueError(
            f"element type must be one of {sorted(_DTYPES)}, got {type_name!r}"
        ) from None


class AllocationTracker:
    """Counts explicit allocations/frees (the build/free primitives, §5.1.6)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.allocated = 0
        self.freed = 0
        self.live_bytes = 0

    def on_alloc(self, nbytes: int) -> None:
        with self._lock:
            self.allocated += 1
            self.live_bytes += nbytes

    def on_free(self, nbytes: int) -> None:
        with self._lock:
            self.freed += 1
            self.live_bytes -= nbytes

    @property
    def live(self) -> int:
        with self._lock:
            return self.allocated - self.freed


TRACKER = AllocationTracker()


class LocalSection:
    """One processor's section of a distributed array."""

    def __init__(
        self,
        type_name: str,
        local_dims: Sequence[int],
        borders: Sequence[int],
        indexing_order: str,
    ) -> None:
        if len(borders) != 2 * len(local_dims):
            raise ValueError("borders must have 2*rank entries")
        self.type_name = type_name
        self.local_dims = tuple(local_dims)
        self.borders = tuple(borders)
        # 'C' for row-major, 'F' for column-major storage interpretation.
        self.order = "C" if indexing_order == "row" else "F"
        self.local_dims_plus = tuple(
            ld + borders[2 * i] + borders[2 * i + 1]
            for i, ld in enumerate(local_dims)
        )
        size = 1
        for d in self.local_dims_plus:
            size *= d
        # The flat contiguous buffer — the pseudo-definitional array.
        self.storage = np.zeros(size, dtype=dtype_for(type_name))
        self._freed = False
        TRACKER.on_alloc(self.storage.nbytes)

    # -- lifetime --------------------------------------------------------------

    def free(self) -> None:
        """Explicit deallocation (the ``free`` primitive, §5.1.6)."""
        if not self._freed:
            self._freed = True
            TRACKER.on_free(self.storage.nbytes)
            self.storage = np.zeros(0, dtype=self.storage.dtype)

    @property
    def is_freed(self) -> bool:
        return self._freed

    def _check_live(self) -> None:
        if self._freed:
            raise ValueError("use of freed local section")

    # -- views -------------------------------------------------------------------

    def full(self) -> np.ndarray:
        """Bordered view, shape ``local_dims_plus`` (DP programs only)."""
        self._check_live()
        return self.storage.reshape(self.local_dims_plus, order=self.order)

    def interior(self) -> np.ndarray:
        """Border-free view, shape ``local_dims`` (what the TP layer sees)."""
        full = self.full()
        slices = tuple(
            slice(self.borders[2 * i], self.borders[2 * i] + ld)
            for i, ld in enumerate(self.local_dims)
        )
        return full[slices]

    def flat(self) -> np.ndarray:
        """The raw flat buffer, as passed to a called DP program (§4.2.5)."""
        self._check_live()
        return self.storage

    # -- element access (used by the array manager, §5.1.1) ----------------------

    def read(self, local_indices: Sequence[int]):
        return self.interior()[tuple(local_indices)]

    def write(self, local_indices: Sequence[int], value) -> None:
        self.interior()[tuple(local_indices)] = value

    # -- border migration (verify_array / copy_local, §5.1.1) ---------------------

    def reallocate_with_borders(
        self, new_borders: Sequence[int]
    ) -> "LocalSection":
        """New section with different borders, interior data copied
        (the expensive reallocate-and-copy of §3.2.1.3)."""
        self._check_live()
        replacement = LocalSection(
            self.type_name,
            self.local_dims,
            new_borders,
            "row" if self.order == "C" else "column",
        )
        replacement.interior()[...] = self.interior()
        return replacement

    def nbytes(self) -> int:
        return int(self.storage.nbytes)

    def __repr__(self) -> str:
        return (
            f"<LocalSection {self.type_name} interior={self.local_dims} "
            f"borders={self.borders} order={self.order!r}"
            f"{' FREED' if self._freed else ''}>"
        )
