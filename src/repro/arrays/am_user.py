"""Paper-faithful library procedures for distributed arrays (§4.2).

Each procedure issues the corresponding array-manager server request and
waits for it to be serviced before returning — the library-procedure
discipline of §5.1.2, which lets callers sequence distributed-array
manipulations without explicitly testing Status variables.

Signatures mirror §4.2 with the out-parameters returned as Python values:
``create_array`` returns ``(array_id, status)``, ``read_element`` returns
``(element, status)``, and so on.  Callers may also pass their own
definitional variables for the out-parameters (``array_id_out=``,
``status_out=``) to use PCN-style dataflow synchronisation.

The ``processor`` argument is the ``@Processor`` annotation: the node the
request is made *on*.  Per §3.2.1.5, array creation may run on any
processor; all other global operations may run on the creating processor or
any processor holding a local section, with identical results — the tests
verify that observational equivalence.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

from repro.arrays.manager import get_array_manager
from repro.arrays.record import ArrayID
from repro.pcn.defvar import DefVar
from repro.status import Status
from repro.vp.machine import Machine


def _out(var: Optional[DefVar], name: str) -> DefVar:
    return var if var is not None else DefVar(name)


def create_array(
    machine: Machine,
    type_name: str,
    dimensions: Sequence[int],
    processors: Sequence[int],
    distrib_info: Sequence,
    border_info: Any = None,
    indexing_type: str = "row",
    processor: int = 0,
    replication: int = 0,
    array_id_out: Optional[DefVar] = None,
    status_out: Optional[DefVar] = None,
) -> tuple[Optional[ArrayID], Status]:
    """am_user:create_array (§4.2.1).

    ``replication=k`` makes the array durable: each section gets ``k``
    deterministic backup mirrors, maintained by ``replica_update``
    messages on every write (see ``docs/fault_model.md``, Durable arrays).
    """
    get_array_manager(machine)
    array_id = _out(array_id_out, "Array_ID")
    status = _out(status_out, "Status")
    machine.server.request(
        "create_array",
        array_id,
        type_name,
        dimensions,
        processors,
        distrib_info,
        border_info,
        indexing_type,
        status,
        replication,
        processor=processor,
    )
    return array_id.read(), Status(status.read())


def free_array(
    machine: Machine,
    array_id: ArrayID,
    processor: int = 0,
    status_out: Optional[DefVar] = None,
) -> Status:
    """am_user:free_array (§4.2.2)."""
    status = _out(status_out, "Status")
    machine.server.request("free_array", array_id, status, processor=processor)
    return Status(status.read())


def read_element(
    machine: Machine,
    array_id: ArrayID,
    indices: Sequence[int],
    processor: int = 0,
    element_out: Optional[DefVar] = None,
    status_out: Optional[DefVar] = None,
) -> tuple[Any, Status]:
    """am_user:read_element (§4.2.3)."""
    element = _out(element_out, "Element")
    status = _out(status_out, "Status")
    machine.server.request(
        "read_element", array_id, tuple(indices), element, status,
        processor=processor,
    )
    return element.read(), Status(status.read())


def write_element(
    machine: Machine,
    array_id: ArrayID,
    indices: Sequence[int],
    element: Any,
    processor: int = 0,
    status_out: Optional[DefVar] = None,
) -> Status:
    """am_user:write_element (§4.2.4)."""
    status = _out(status_out, "Status")
    machine.server.request(
        "write_element", array_id, tuple(indices), element, status,
        processor=processor,
    )
    return Status(status.read())


def read_region(
    machine: Machine,
    array_id: ArrayID,
    region: Sequence[Sequence[int]],
    processor: int = 0,
    data_out: Optional[DefVar] = None,
    status_out: Optional[DefVar] = None,
) -> tuple[Any, Status]:
    """am_user:read_region — region-granular read (extension).

    ``region`` gives one half-open ``(start, stop)`` pair per dimension;
    the result is a dense NumPy array of the region's shape.  Costs one
    message per owning processor instead of one per element.
    """
    data = _out(data_out, "Region")
    status = _out(status_out, "Status")
    machine.server.request(
        "read_region",
        array_id,
        tuple(tuple(b) for b in region),
        data,
        status,
        processor=processor,
    )
    return data.read(), Status(status.read())


def write_region(
    machine: Machine,
    array_id: ArrayID,
    region: Sequence[Sequence[int]],
    data: Any,
    processor: int = 0,
    status_out: Optional[DefVar] = None,
) -> Status:
    """am_user:write_region — region-granular write (extension)."""
    status = _out(status_out, "Status")
    machine.server.request(
        "write_region",
        array_id,
        tuple(tuple(b) for b in region),
        data,
        status,
        processor=processor,
    )
    return Status(status.read())


def get_local_block(
    machine: Machine,
    array_id: ArrayID,
    processor: int,
    block_out: Optional[DefVar] = None,
    status_out: Optional[DefVar] = None,
) -> tuple[Any, Status]:
    """am_user:get_local_block — ``(global origin, interior copy)`` of the
    section held by ``processor`` (extension; local view like find_local)."""
    block = _out(block_out, "Block")
    status = _out(status_out, "Status")
    machine.server.request(
        "get_local_block", array_id, block, status, processor=processor
    )
    return block.read(), Status(status.read())


def find_local(
    machine: Machine,
    array_id: ArrayID,
    processor: int,
    section_out: Optional[DefVar] = None,
    status_out: Optional[DefVar] = None,
) -> tuple[Any, Status]:
    """am_user:find_local (§4.2.5).

    Requires a local view: ``processor`` must hold a section of the array.
    Users rarely call this directly; the distributed-call wrapper invokes it
    automatically (§5.2.2).
    """
    section = _out(section_out, "Local_section")
    status = _out(status_out, "Status")
    machine.server.request(
        "find_local", array_id, section, status, processor=processor
    )
    return section.read(), Status(status.read())


def find_info(
    machine: Machine,
    array_id: ArrayID,
    which: str,
    processor: int = 0,
    out: Optional[DefVar] = None,
    status_out: Optional[DefVar] = None,
) -> tuple[Any, Status]:
    """am_user:find_info (§4.2.6)."""
    out_var = _out(out, "Out")
    status = _out(status_out, "Status")
    machine.server.request(
        "find_info", array_id, which, out_var, status, processor=processor
    )
    return out_var.read(), Status(status.read())


def verify_array(
    machine: Machine,
    array_id: ArrayID,
    n_dims: int,
    border_info: Any,
    indexing_type: str,
    processor: int = 0,
    status_out: Optional[DefVar] = None,
) -> Status:
    """am_user:verify_array (§4.2.7)."""
    status = _out(status_out, "Status")
    machine.server.request(
        "verify_array",
        array_id,
        n_dims,
        border_info,
        indexing_type,
        status,
        processor=processor,
    )
    return Status(status.read())


def checkpoint_array(
    machine: Machine,
    array_id: ArrayID,
    processor: int = 0,
    snapshot_out: Optional[DefVar] = None,
    status_out: Optional[DefVar] = None,
) -> tuple[Any, Status]:
    """am_user:checkpoint_array — epoch-consistent snapshot (extension).

    Quiesces writers at an epoch barrier and returns an
    :class:`~repro.arrays.durability.ArraySnapshot`, which also becomes
    the array's latest checkpoint for replication-free recovery.
    """
    snapshot = _out(snapshot_out, "Snapshot")
    status = _out(status_out, "Status")
    machine.server.request(
        "checkpoint_array", array_id, snapshot, status, processor=processor
    )
    return snapshot.read(), Status(status.read())


def restore_array(
    machine: Machine,
    array_id: ArrayID,
    snapshot: Any,
    processor: int = 0,
    status_out: Optional[DefVar] = None,
) -> Status:
    """am_user:restore_array — write a snapshot back under a fresh epoch
    (extension)."""
    status = _out(status_out, "Status")
    machine.server.request(
        "restore_array", array_id, snapshot, status, processor=processor
    )
    return Status(status.read())


def migrate_sections(
    machine: Machine,
    array_id: ArrayID,
    assignments: Any,
    processor: int = 0,
    moved_out: Optional[DefVar] = None,
    status_out: Optional[DefVar] = None,
) -> tuple[Any, Status]:
    """am_user:migrate_sections — planned section migration (extension).

    ``assignments`` maps section number -> destination processor (or is a
    prebuilt :class:`~repro.arrays.placement.PlacementPlan`).  Returns
    ``(moved_sections, status)``; the move is transactional — on failure
    it is rolled back under a fresh epoch and status is ERROR.
    """
    moved = _out(moved_out, "Moved")
    status = _out(status_out, "Status")
    machine.server.request(
        "migrate_sections",
        array_id,
        assignments,
        moved,
        status,
        processor=processor,
    )
    return moved.read(), Status(status.read())


def rebalance_array(
    machine: Machine,
    array_id: ArrayID,
    targets: Optional[Sequence[int]] = None,
    processor: int = 0,
    moved_out: Optional[DefVar] = None,
    status_out: Optional[DefVar] = None,
) -> tuple[Any, Status]:
    """am_user:rebalance_array — repair/respread placement (extension).

    Moves sections off dead owners (and, when ``targets`` is given, off
    processors outside the target set) onto spare processors — including
    ones added at runtime with ``Machine.add_processor()``.
    """
    moved = _out(moved_out, "Moved")
    status = _out(status_out, "Status")
    machine.server.request(
        "rebalance_array",
        array_id,
        None if targets is None else tuple(int(t) for t in targets),
        moved,
        status,
        processor=processor,
    )
    return moved.read(), Status(status.read())


def distributed_call(*args, **kwargs):
    """am_user:distributed_call (§4.3.1) — re-exported from
    :mod:`repro.calls.api` to mirror the paper's single ``am_user`` module."""
    from repro.calls.api import distributed_call as _impl

    return _impl(*args, **kwargs)


# -- perf layer (repro.perf, extension) ---------------------------------------


def flush_writes(machine: Machine, array_id: Optional[ArrayID] = None) -> int:
    """Force pending write-behind writes out (an explicit flush point).

    Reads, collectives, checkpoints, and distributed-call boundaries
    flush implicitly (docs/performance.md); this is the manual barrier
    for callers inspecting storage through side channels.  Returns the
    number of writes flushed.
    """
    perf = getattr(machine, "_perf", None)
    if perf is None:
        return 0
    return perf.flush(array_id)


def set_coalescing(machine: Machine, enabled: bool) -> bool:
    """Toggle write coalescing; returns the previous setting.

    Disabling flushes pending writes first, so the per-write and batched
    regimes never interleave on one array.
    """
    perf = getattr(machine, "_perf", None)
    if perf is None:
        return False
    previous = perf.coalescer.enabled
    if not enabled:
        perf.coalescer.flush()
    perf.coalescer.enabled = bool(enabled)
    return previous


def halo_plan(
    machine: Machine, array_id: ArrayID, op: str = "stencil5"
) -> Optional[Any]:
    """Compile (or fetch the cached) halo-exchange :class:`CommPlan` for
    one array (:mod:`repro.perf.commplan`).

    Returns None when planning cannot engage: no perf layer, planning
    disabled, unknown array, rank > 2, or missing/non-uniform borders.
    The registry revalidates the cached plan against the durability
    ``(epoch, processors)`` on every call, so recovery and migration
    invalidate transparently.
    """
    perf = getattr(machine, "_perf", None)
    plans = getattr(perf, "plans", None)
    if plans is None:
        return None
    return plans.halo_plan(op, array_id)


def write_region_targeted(
    machine: Machine,
    array_id: ArrayID,
    region: Sequence[Sequence[int]],
    data: Any,
) -> Status:
    """Region write fused per owner: one ``write_region_local`` request
    issued *at* each owning processor, carrying exactly the cells of
    ``region`` that owner holds (``ArrayLayout.region_sections``).

    From task-parallel level the per-owner requests execute locally at
    their targets — zero intermediary hops — where the single-hop
    ``write_region`` ships the whole region through one manager and back
    out per owner.  Epoch fencing still happens at each owner
    (``write_region_local`` refuses stale records with ``STALE_EPOCH``).
    """
    import numpy as np

    manager = get_array_manager(machine)
    flush_writes(machine, array_id)
    state = manager.durability_state(array_id)
    layout = None
    if state is not None:
        for proc in state.processors:
            record = manager._lookup(machine.processor(proc), array_id)
            if record is not None:
                layout = record.layout
                break
    if layout is None:
        # Unknown here (foreign or freed array): the single-hop path
        # produces the authoritative NOT_FOUND.
        return write_region(machine, array_id, region, data)
    dense = np.asarray(data)
    pending = []
    for section, local_slices, region_slices in layout.region_sections(
        region
    ):
        owner = state.processors[section]
        status = DefVar("Status")
        machine.server.request(
            "write_region_local",
            array_id,
            local_slices,
            dense[region_slices].copy(),
            status,
            processor=owner,
        )
        pending.append(status)
    bad = any(Status(st.read()) is not Status.OK for st in pending)
    return Status.ERROR if bad else Status.OK


def set_read_cache(machine: Machine, enabled: bool) -> bool:
    """Toggle the epoch-validated section read cache (default off);
    returns the previous setting."""
    perf = getattr(machine, "_perf", None)
    if perf is None:
        return False
    previous = perf.cache.enabled
    perf.cache.enabled = bool(enabled)
    if not enabled:
        perf.cache.clear()
    return previous
