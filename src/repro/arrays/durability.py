"""Durable distributed arrays: replication, checkpoints, and recovery.

PR 1 made distributed *calls* survive VP death; this module makes
distributed *array state* survive it.  Three cooperating mechanisms, all
riding the PR 2 message fabric so tracing, metering, and fault injection
see every byte they move:

* **Section replication** — ``create_array(..., replication=k)`` assigns
  each local section a deterministic backup chain (a :class:`ReplicaMap`
  computed by :meth:`~repro.arrays.layout.ArrayLayout.replica_chains`).
  Every manager-mediated write ships one routed ``kind="replica_update"``
  message per backup, stamped with the array's current **epoch**; backups
  keep a mirror of the section interior in their own address space.

* **Checkpoint/restore** — ``ArrayManager.checkpoint`` quiesces writers
  at an epoch barrier (one :class:`~repro.spmd.comm.GroupComm` barrier
  with every owner's write lock held) and serializes each section into an
  :class:`ArraySnapshot`; ``restore`` writes a snapshot back under a
  fresh epoch.

* **Recovery** — a :class:`RecoveryCoordinator` subscribed to the
  machine's failure notifications rebuilds the dead processor's sections
  onto a spare VP from the surviving replicas (or the latest checkpoint
  when ``replication=0``), rewrites the replica map, and bumps the array
  epoch so stale in-flight replica updates from the dead attempt are
  rejected rather than resurrected.

Epoch rules (the consistency contract):

1. epochs are per-array, start at 0, and never decrease;
2. every replica update carries the writing owner's current epoch; a
   backup rejects updates older than its mirror's epoch;
3. checkpoint, restore, and recovery each bump the epoch, so data from
   before the cut / the dead attempt is identifiable and refusable.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.arrays.layout import ArrayLayout
from repro.arrays.local_section import dtype_for
from repro.arrays.placement import (
    PlacementPlan,
    SectionMover,
    SectionSourceError,
    StalePlanError,
)
from repro.arrays.record import ArrayID
from repro.obs.spans import span as obs_span

REPLICA_UPDATE_KIND = "replica_update"
RECOVERY_KIND = "recovery"


# -- replica placement --------------------------------------------------------


@dataclass(frozen=True)
class ReplicaMap:
    """Deterministic backup chain per section.

    ``chains[section]`` lists the processors mirroring that section, in
    chain order — the next ``replication`` distinct owners after the
    section's own processor in the array's processor ring, so the same
    ``(processors, replication)`` pair always yields the same placement.
    """

    chains: Tuple[Tuple[int, ...], ...]

    @classmethod
    def assign(
        cls,
        layout: ArrayLayout,
        processors: Tuple[int, ...],
        replication: int,
    ) -> "ReplicaMap":
        return cls(tuple(layout.replica_chains(processors, replication)))

    def backups_for(self, section: int) -> Tuple[int, ...]:
        return self.chains[section]

    def hosts(self) -> set:
        """Every processor that mirrors at least one section."""
        return {proc for chain in self.chains for proc in chain}


@dataclass(frozen=True)
class ReplicaUpdate:
    """One epoch-stamped mutation shipped to a section's backups.

    ``op`` is ``"element"``/``"region"``/``"section"``/``"batch"``;
    ``target`` holds the local indices (element) or interior slices
    (region), ``data`` the written value(s).  A ``"batch"`` update is the
    fused form produced by the write coalescer (:mod:`repro.perf`):
    ``data`` is an ordered tuple of ``(op, target, value)`` sub-writes,
    applied in one mirror-lock acquisition — one replica message per
    backup per flush instead of one per write.  ``shape``/``type_name``
    let a backup materialise the mirror lazily on first contact.
    """

    array_id: ArrayID
    section: int
    epoch: int
    op: str
    shape: Tuple[int, ...]
    type_name: str
    data: Any
    target: Optional[tuple] = None

    @property
    def nbytes(self) -> int:
        if self.op == "batch":
            return sum(
                int(getattr(value, "nbytes", 8)) for _o, _t, value in self.data
            )
        data = self.data
        if hasattr(data, "nbytes"):
            return int(data.nbytes)
        return 8


class _ReplicaEntry:
    __slots__ = ("epoch", "data")

    def __init__(self, epoch: int, data: np.ndarray) -> None:
        self.epoch = epoch
        self.data = data


class ReplicaStore:
    """Per-processor storage for section mirrors (lives in the node heap,
    so replicas occupy the backup's address space like any other data)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._entries: Dict[Tuple[ArrayID, int], _ReplicaEntry] = {}

    def apply(self, update: ReplicaUpdate) -> bool:
        """Apply one update; returns False when it is stale (older epoch
        than the mirror — e.g. an in-flight write from a dead attempt
        arriving after recovery bumped the array epoch)."""
        key = (update.array_id, update.section)
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                entry = _ReplicaEntry(
                    update.epoch,
                    np.zeros(update.shape, dtype=dtype_for(update.type_name)),
                )
                self._entries[key] = entry
            if update.epoch < entry.epoch:
                return False
            entry.epoch = update.epoch
            if update.op == "section":
                entry.data[...] = update.data
            elif update.op == "batch":
                # Fused coalescer flush: replay the sub-writes in order
                # under this one lock acquisition.
                for op, target, value in update.data:
                    if op == "section":
                        entry.data[...] = value
                    else:
                        entry.data[tuple(target)] = value
            else:  # "element" and "region" both assign through target
                entry.data[tuple(update.target)] = update.data
            return True

    def fetch(
        self, array_id: ArrayID, section: int
    ) -> Optional[Tuple[int, np.ndarray]]:
        with self._lock:
            entry = self._entries.get((array_id, section))
            if entry is None:
                return None
            return entry.epoch, entry.data.copy()

    def sections_for(self, array_id: ArrayID) -> List[int]:
        with self._lock:
            return sorted(
                s for (aid, s) in self._entries if aid == array_id
            )

    def drop_array(self, array_id: ArrayID) -> None:
        with self._lock:
            for key in [k for k in self._entries if k[0] == array_id]:
                del self._entries[key]


_REPLICA_STORE_KEY = "am.replicas"


def replica_store_for(node) -> ReplicaStore:
    store = node.load_default(_REPLICA_STORE_KEY)
    if store is None:
        store = ReplicaStore()
        node.store(_REPLICA_STORE_KEY, store)
    return store


# -- snapshots ----------------------------------------------------------------


@dataclass(frozen=True)
class ArraySnapshot:
    """A consistent cut of one distributed array at ``epoch``.

    ``sections[s]`` is a dense copy of section ``s``'s interior; the
    snapshot carries enough geometry to restore after the processor set
    changed (recovery remaps owners, sections are stable).
    """

    array_id: ArrayID
    epoch: int
    type_name: str
    layout: ArrayLayout
    processors: Tuple[int, ...]
    replication: int
    sections: Dict[int, np.ndarray]

    def nbytes(self) -> int:
        return sum(int(d.nbytes) for d in self.sections.values())

    def assemble(self) -> np.ndarray:
        """The global array this snapshot captured (test/diagnostic aid)."""
        out = np.zeros(self.layout.dims, dtype=dtype_for(self.type_name))
        for section, data in self.sections.items():
            coords = self.layout.section_coords(section)
            slices = tuple(
                slice(c * ld, (c + 1) * ld)
                for c, ld in zip(coords, self.layout.local_dims)
            )
            out[slices] = data
        return out


# -- machine-wide durability bookkeeping --------------------------------------


@dataclass
class DurabilityState:
    """The array manager's machine-wide durability record for one array:
    authoritative epoch counter, current membership, replica placement,
    latest checkpoint, and recovery statistics."""

    array_id: ArrayID
    replication: int
    processors: Tuple[int, ...]
    replica_map: Optional[ReplicaMap]
    creator: int
    type_name: str
    layout: ArrayLayout
    border_spec: tuple
    epoch: int = 0
    last_checkpoint_epoch: Optional[int] = None
    last_checkpoint: Optional[ArraySnapshot] = None
    sections_rebuilt: int = 0
    sections_migrated: int = 0
    stale_rejected: int = 0
    fenced_writes: int = 0
    recovered_procs: set = field(default_factory=set)
    unrecovered: list = field(default_factory=list)
    lock: threading.RLock = field(
        default_factory=threading.RLock, repr=False, compare=False
    )

    def note_stale(self) -> None:
        with self.lock:
            self.stale_rejected += 1

    def note_fenced(self) -> None:
        """One write/adopt/batch refused by the epoch fencing token (a
        stale owner — e.g. the minority side of a healed partition —
        attempted to commit)."""
        with self.lock:
            self.fenced_writes += 1

    def placement(self) -> dict:
        """``{section: {"owner", "backups"}}`` under the state lock."""
        with self.lock:
            return {
                section: {
                    "owner": int(owner),
                    "backups": (
                        list(self.replica_map.backups_for(section))
                        if self.replica_map is not None
                        else []
                    ),
                }
                for section, owner in enumerate(self.processors)
            }

    def diagnostics(self) -> dict:
        with self.lock:
            return {
                "replication": self.replication,
                "processors": list(self.processors),
                "epoch": self.epoch,
                "last_checkpoint_epoch": self.last_checkpoint_epoch,
                "sections_rebuilt": self.sections_rebuilt,
                "sections_migrated": self.sections_migrated,
                "stale_replica_updates_rejected": self.stale_rejected,
                "fenced_writes": self.fenced_writes,
                "unrecovered": list(self.unrecovered),
                "placement": {
                    section: {
                        "owner": int(owner),
                        "backups": (
                            list(self.replica_map.backups_for(section))
                            if self.replica_map is not None
                            else []
                        ),
                    }
                    for section, owner in enumerate(self.processors)
                },
            }


# -- recovery -----------------------------------------------------------------


class RecoveryCoordinator:
    """Rebuilds lost sections when a virtual processor dies.

    Subscribes to the machine's failure notifications
    (:meth:`~repro.vp.machine.Machine.add_failure_listener`); on a death
    it walks every durable array, copies each lost section out of the
    first surviving backup in its chain (or the latest checkpoint when
    the array has no replicas), adopts it onto a spare VP, rewrites the
    replica map deterministically for the new membership, reseeds the
    mirrors, and bumps the array epoch.

    Registration is idempotent at three layers: the machine deduplicates
    listeners by identity, :func:`install_recovery` returns the
    machine's existing coordinator, and the per-array ``recovered_procs``
    set guards against double rebuilds even when two distinct
    coordinator instances are installed (e.g. in nested supervised
    calls).
    """

    def __init__(self, machine) -> None:
        self.machine = machine
        self._installed = False
        self.recoveries: List[dict] = []
        self._lock = threading.Lock()

    # -- lifecycle -----------------------------------------------------------

    def install(self) -> "RecoveryCoordinator":
        if not self._installed:
            health = getattr(self.machine, "_health", None)
            if health is not None and getattr(health, "installed", False):
                # A failure detector is the machine's health authority:
                # death notifications arrive as detector verdicts (which
                # include oracle kills — the detector subscribes to those
                # itself), so recovery has exactly one source of truth.
                health.add_listener(self._on_health_event)
            else:
                self.machine.add_failure_listener(self._on_failure)
            self._installed = True
        return self

    def uninstall(self) -> None:
        if self._installed:
            self.machine.remove_failure_listener(self._on_failure)
            health = getattr(self.machine, "_health", None)
            if health is not None:
                health.remove_listener(self._on_health_event)
            self._installed = False

    def __enter__(self) -> "RecoveryCoordinator":
        return self.install()

    def __exit__(self, *exc_info: Any) -> None:
        self.uninstall()

    # -- failure handling ----------------------------------------------------

    def _on_health_event(self, event) -> None:
        """Detector verdict: only a hardened ``"dead"`` triggers
        rebuilds.  Suspicion (and flapping back to alive) deliberately
        does nothing — recovery is destructive to the suspect's
        ownership, so it waits for confirmation.  A VP *returning* to
        the fabric retries recoveries that failed while it was away."""
        if event.transition == "dead":
            self._on_failure(event.vp)
        elif event.transition in ("alive", "rejoin"):
            self._retry_unrecovered()

    def _retry_unrecovered(self) -> None:
        """Re-run recoveries stranded by unreachability.

        A rebuild can fail transiently when the only surviving backup of
        a dead owner's section sits on the minority side of a partition:
        the replica fetch times out and the episode lands in
        ``state.unrecovered``.  When any VP returns (heals or rejoins),
        walk those entries — a dead member still unavailable gets its
        ``recovered_procs`` guard cleared and recovery re-fired (the
        returned VP may hold the backup it needs); an entry whose VP is
        reachable again or no longer a member is moot and dropped."""
        machine = self.machine
        manager = getattr(machine, "_array_manager", None)
        if manager is None:
            return
        for array_id, state in manager.durability_states():
            with state.lock:
                pending = []
                for dead, _reason in state.unrecovered:
                    if (
                        dead in state.processors
                        and machine.is_unavailable(dead)
                        and dead not in pending
                    ):
                        pending.append(dead)
                        state.recovered_procs.discard(dead)
                state.unrecovered = [
                    entry
                    for entry in state.unrecovered
                    if entry[0] in state.processors
                    and machine.is_unavailable(entry[0])
                    and entry[0] not in pending
                ]
            for dead in pending:
                try:
                    self._recover_array(array_id, state, dead)
                except Exception as exc:  # noqa: BLE001 - same contract
                    # as _on_failure: a failed retry re-queues itself.
                    with state.lock:
                        state.unrecovered.append((dead, repr(exc)))
                    with self._lock:
                        self.recoveries.append(
                            {
                                "array": array_id.as_tuple(),
                                "dead": dead,
                                "ok": False,
                                "error": repr(exc),
                            }
                        )

    def _on_failure(self, dead: int) -> None:
        manager = getattr(self.machine, "_array_manager", None)
        if manager is None:
            return
        for array_id, state in manager.durability_states():
            try:
                self._recover_array(array_id, state, dead)
            except Exception as exc:  # noqa: BLE001 - never break transport
                with state.lock:
                    state.unrecovered.append((dead, repr(exc)))
                with self._lock:
                    self.recoveries.append(
                        {
                            "array": array_id.as_tuple(),
                            "dead": dead,
                            "ok": False,
                            "error": repr(exc),
                        }
                    )

    def _recover_array(
        self, array_id: ArrayID, state: DurabilityState, dead: int
    ) -> None:
        machine = self.machine
        with state.lock:
            if dead not in state.processors or dead in state.recovered_procs:
                return
            with obs_span(
                machine, "recovery",
                array=str(array_id.as_tuple()), dead=dead,
            ):
                return self._rebuild_locked(array_id, state, dead)

    def _mover(self) -> SectionMover:
        """The machine's section mover (shared with planned migration)."""
        manager = getattr(self.machine, "_array_manager", None)
        if manager is not None:
            return manager.mover
        return SectionMover(self.machine, None)

    def _rebuild_locked(
        self, array_id: ArrayID, state: DurabilityState, dead: int
    ) -> None:
        """Rebuild ``dead``'s sections; ``state.lock`` is held throughout.

        All bookkeeping (the recovery event log, ``unrecovered`` entries,
        ``recovered_procs``) stays here; the actual section movement —
        sourcing from replicas/checkpoints, adoption, membership rewrite,
        epoch bump — is one :class:`~repro.arrays.placement.PlacementPlan`
        executed by the shared :class:`~repro.arrays.placement.SectionMover`.
        """
        machine = self.machine
        state.recovered_procs.add(dead)
        event: dict = {
            "array": array_id.as_tuple(),
            "dead": dead,
            "sections": [],
            "ok": False,
        }
        mover = self._mover()
        # The plan is recomputed per attempt: a kill firing during this
        # rebuild's own traffic runs recovery *reentrantly* (state.lock
        # is an RLock), and the nested rebuild rewrites membership under
        # us — execute_locked detects that and raises StalePlanError
        # rather than committing a plan whose base no longer exists.
        for _attempt in range(3):
            if dead not in state.processors:
                # A nested rebuild already superseded this owner.
                return
            alive = [
                p
                for p in range(machine.num_nodes)
                if not machine.is_unavailable(p)
            ]
            spare = mover.select_spare(state, alive)
            if spare is None:
                state.unrecovered.append((dead, "no spare processor"))
                event["error"] = "no spare processor"
                with self._lock:
                    self.recoveries.append(event)
                return
            event["spare"] = spare
            plan = PlacementPlan.for_failure(state, dead, spare)
            try:
                # rollback=False: partial recovery progress is recorded
                # as unrecovered by our caller, never undone;
                # flush=False: the kill may have fired inside a
                # coalescer flush on this very thread, and the per-key
                # flush locks are not reentrant.
                outcome = mover.execute_locked(
                    state,
                    plan,
                    kind=RECOVERY_KIND,
                    origin=alive[0],
                    rollback=False,
                    flush=False,
                )
            except StalePlanError:
                continue
            except SectionSourceError as exc:
                state.unrecovered.append((dead, str(exc)))
                event["error"] = f"section {exc.section} unrecoverable"
                with self._lock:
                    self.recoveries.append(event)
                return
            event["sections"] = outcome["sections"]
            event["ok"] = True
            event["epoch"] = outcome["epoch"]
            with self._lock:
                self.recoveries.append(event)
            return
        state.unrecovered.append((dead, "membership kept changing"))
        event["error"] = "stale plan after retries"
        with self._lock:
            self.recoveries.append(event)


def install_recovery(machine) -> RecoveryCoordinator:
    """Install (or return) the machine's recovery coordinator.

    Idempotent like :func:`~repro.arrays.manager.install_array_manager`:
    a machine has at most one coordinator, and repeated installation —
    e.g. from nested ``supervised_call``\\ s — never double-subscribes.
    """
    existing = getattr(machine, "_recovery_coordinator", None)
    if existing is not None:
        return existing.install()
    coordinator = RecoveryCoordinator(machine)
    machine._recovery_coordinator = coordinator  # type: ignore[attr-defined]
    return coordinator.install()
