"""Index arithmetic for distributed arrays (§3.2.1.1, §3.2.1.3-§3.2.1.4).

Every element of a distributed array has

* an N-tuple of **global indices** into the whole array,
* a pair ``(processor-grid-coordinates, local-indices)`` identifying which
  local section holds it and where, and
* a flat offset into the local section's contiguous storage (local sections
  are "flat pieces of contiguous storage", §3.2.1.3), which must account for
  border elements.

The mapping between multi-dimensional and flat indices is row-major
(C-style) or column-major (Fortran-style), chosen per array; the choice
applies to *both* the array and the processor grid (§3.2.1.4, Fig 3.8).

All functions here are pure — they are the property-testing surface for the
bijectivity invariants of the decomposition.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from functools import cached_property
from typing import Iterator, Sequence

ROW_MAJOR = "row"
COLUMN_MAJOR = "column"

_INDEXING_ALIASES = {
    "row": ROW_MAJOR,
    "C": ROW_MAJOR,
    "c": ROW_MAJOR,
    "column": COLUMN_MAJOR,
    "Fortran": COLUMN_MAJOR,
    "fortran": COLUMN_MAJOR,
}


def normalize_indexing(indexing: str) -> str:
    """Map the paper's accepted spellings ("row"/"C", "column"/"Fortran")."""
    try:
        return _INDEXING_ALIASES[indexing]
    except KeyError:
        raise ValueError(
            f"indexing type must be one of {sorted(set(_INDEXING_ALIASES))}, "
            f"got {indexing!r}"
        ) from None


def flatten_index(
    indices: Sequence[int], dims: Sequence[int], indexing: str
) -> int:
    """Multi-dimensional -> flat index under the given ordering."""
    if len(indices) != len(dims):
        raise ValueError(f"rank mismatch: {indices} vs dims {dims}")
    order = range(len(dims)) if indexing == ROW_MAJOR else range(len(dims) - 1, -1, -1)
    flat = 0
    for axis in order:
        flat = flat * dims[axis] + indices[axis]
    return flat


def unflatten_index(
    flat: int, dims: Sequence[int], indexing: str
) -> tuple[int, ...]:
    """Flat -> multi-dimensional index under the given ordering."""
    indices = [0] * len(dims)
    order = (
        range(len(dims) - 1, -1, -1)
        if indexing == ROW_MAJOR
        else range(len(dims))
    )
    for axis in order:
        indices[axis] = flat % dims[axis]
        flat //= dims[axis]
    return tuple(indices)


@dataclass(frozen=True)
class ArrayLayout:
    """The complete index geometry of one distributed array.

    ``borders`` has length ``2*rank``: elements ``2i`` and ``2i+1`` are the
    border sizes before and after dimension ``i`` (§4.2.1).
    """

    dims: tuple[int, ...]
    grid: tuple[int, ...]
    borders: tuple[int, ...]
    indexing: str  # array + local-section ordering
    grid_indexing: str  # processor-grid ordering (same value per §3.2.1.4)

    def __post_init__(self) -> None:
        if len(self.grid) != len(self.dims):
            raise ValueError("grid rank must equal array rank")
        if len(self.borders) != 2 * len(self.dims):
            raise ValueError("borders must have 2*rank entries")
        for d, g in zip(self.dims, self.grid):
            if d % g != 0:
                raise ValueError(f"grid dim {g} does not divide array dim {d}")

    # -- derived geometry ----------------------------------------------------

    # Derived tuples are cached: the fields are frozen, so the geometry
    # never changes, and ``locate`` sits on the per-element hot path.

    @cached_property
    def rank(self) -> int:
        return len(self.dims)

    @cached_property
    def local_dims(self) -> tuple[int, ...]:
        """Interior (border-free) local-section dimensions."""
        return tuple(d // g for d, g in zip(self.dims, self.grid))

    @property
    def local_dims_plus(self) -> tuple[int, ...]:
        """Local-section dimensions including borders."""
        return tuple(
            ld + self.borders[2 * i] + self.borders[2 * i + 1]
            for i, ld in enumerate(self.local_dims)
        )

    @property
    def num_sections(self) -> int:
        n = 1
        for g in self.grid:
            n *= g
        return n

    @property
    def global_size(self) -> int:
        n = 1
        for d in self.dims:
            n *= d
        return n

    def local_size(self) -> int:
        n = 1
        for d in self.local_dims:
            n *= d
        return n

    def local_size_plus(self) -> int:
        n = 1
        for d in self.local_dims_plus:
            n *= d
        return n

    # -- global <-> (section, local) -------------------------------------------

    def validate_global(self, indices: Sequence[int]) -> None:
        if len(indices) != self.rank:
            raise ValueError(
                f"index rank {len(indices)} != array rank {self.rank}"
            )
        for i, (idx, dim) in enumerate(zip(indices, self.dims)):
            if not 0 <= idx < dim:
                raise IndexError(
                    f"index {idx} out of range [0, {dim}) in dimension {i}"
                )

    def owner_coords(self, indices: Sequence[int]) -> tuple[int, ...]:
        """Processor-grid coordinates of the section holding ``indices``."""
        local = self.local_dims
        return tuple(idx // ld for idx, ld in zip(indices, local))

    def local_indices(self, indices: Sequence[int]) -> tuple[int, ...]:
        """Indices within the owning local section (border-free)."""
        local = self.local_dims
        return tuple(idx % ld for idx, ld in zip(indices, local))

    def section_index(self, coords: Sequence[int]) -> int:
        """Grid coordinates -> position in the 1-D processors array.

        The mapping uses the array's grid-indexing order (Fig 3.8: the same
        element lands on different processors under row- vs column-major).
        """
        return flatten_index(coords, self.grid, self.grid_indexing)

    def section_coords(self, section: int) -> tuple[int, ...]:
        return unflatten_index(section, self.grid, self.grid_indexing)

    def locate(self, indices: Sequence[int]) -> tuple[int, tuple[int, ...]]:
        """Global indices -> (section number, local indices).

        Single fused pass over the dimensions (validate + owner + local):
        this runs once per element operation, so it avoids the three
        intermediate tuples of the compositional form.
        """
        dims = self.dims
        if len(indices) != len(dims):
            raise ValueError(
                f"index rank {len(indices)} != array rank {len(dims)}"
            )
        local_dims = self.local_dims
        coords = [0] * len(dims)
        local = [0] * len(dims)
        for i, idx in enumerate(indices):
            if not 0 <= idx < dims[i]:
                raise IndexError(
                    f"index {idx} out of range [0, {dims[i]}) in dimension {i}"
                )
            ld = local_dims[i]
            coords[i] = idx // ld
            local[i] = idx % ld
        return (
            flatten_index(coords, self.grid, self.grid_indexing),
            tuple(local),
        )

    def global_indices(
        self, section: int, local: Sequence[int]
    ) -> tuple[int, ...]:
        """(section number, local indices) -> global indices (inverse of
        :meth:`locate`)."""
        coords = self.section_coords(section)
        return tuple(
            c * ld + li for c, ld, li in zip(coords, self.local_dims, local)
        )

    # -- regions ---------------------------------------------------------------

    def validate_region(self, region: Sequence[Sequence[int]]) -> None:
        """Check a rectangular region: one half-open ``(start, stop)`` pair
        per dimension, non-empty and within the array bounds."""
        if len(region) != self.rank:
            raise ValueError(
                f"region rank {len(region)} != array rank {self.rank}"
            )
        for i, ((start, stop), dim) in enumerate(zip(region, self.dims)):
            if not 0 <= start < stop <= dim:
                raise IndexError(
                    f"region ({start}, {stop}) invalid for dimension {i} "
                    f"of size {dim}"
                )

    def region_shape(
        self, region: Sequence[Sequence[int]]
    ) -> tuple[int, ...]:
        return tuple(stop - start for start, stop in region)

    def region_sections(
        self, region: Sequence[Sequence[int]]
    ) -> Iterator[tuple[int, tuple[slice, ...], tuple[slice, ...]]]:
        """Decompose a rectangular region over the owning local sections.

        Yields one ``(section, local_slices, region_slices)`` triple per
        local section the region intersects: ``local_slices`` select the
        intersection inside that section's interior, ``region_slices``
        select where it lands in a dense array of :meth:`region_shape`.
        This is the geometry behind region-granular RPC — one message per
        yielded section instead of one per element.
        """
        self.validate_region(region)
        per_dim = []
        for (start, stop), ld in zip(region, self.local_dims):
            entries = []
            for c in range(start // ld, (stop - 1) // ld + 1):
                lo, hi = max(start, c * ld), min(stop, (c + 1) * ld)
                entries.append(
                    (c, slice(lo - c * ld, hi - c * ld), slice(lo - start, hi - start))
                )
            per_dim.append(entries)
        for combo in itertools.product(*per_dim):
            coords = tuple(entry[0] for entry in combo)
            yield (
                self.section_index(coords),
                tuple(entry[1] for entry in combo),
                tuple(entry[2] for entry in combo),
            )

    # -- neighbour geometry ------------------------------------------------------

    def grid_neighbors(
        self, section: int
    ) -> dict[tuple[int, str], int]:
        """The sections adjacent to ``section`` on the processor grid.

        Maps ``(axis, direction)`` — ``direction`` is ``"low"`` (toward
        index 0) or ``"high"`` — to the neighbouring section number.
        Physical array edges simply have no entry.  This is the adjacency
        the halo-plan compiler (:mod:`repro.perf.commplan`) walks to
        derive per-neighbour exchange schedules from the layout alone.
        """
        coords = self.section_coords(section)
        out: dict[tuple[int, str], int] = {}
        for axis in range(self.rank):
            for direction, delta in (("low", -1), ("high", 1)):
                c = coords[axis] + delta
                if 0 <= c < self.grid[axis]:
                    ncoords = list(coords)
                    ncoords[axis] = c
                    out[(axis, direction)] = self.section_index(ncoords)
        return out

    # -- replica placement -------------------------------------------------------

    def replica_chains(
        self, processors: Sequence[int], replication: int
    ) -> list[tuple[int, ...]]:
        """Deterministic backup chain for every section.

        Section ``s`` (owned by ``processors[s]``) is mirrored on the next
        ``replication`` processors after it in the array's own processor
        ring — a pure function of ``(processors, replication)``, so any
        node can recompute the placement without communication.  Requires
        ``0 <= replication < len(processors)`` (a section cannot back up
        onto its own owner).
        """
        procs = tuple(int(p) for p in processors)
        if len(procs) != self.num_sections:
            raise ValueError(
                f"{len(procs)} processors for {self.num_sections} sections"
            )
        if not 0 <= replication < len(procs):
            raise ValueError(
                f"replication {replication} outside [0, {len(procs) - 1}] "
                f"for {len(procs)} processors"
            )
        n = len(procs)
        return [
            tuple(procs[(s + j) % n] for j in range(1, replication + 1))
            for s in range(self.num_sections)
        ]

    # -- local indices -> storage offset ----------------------------------------

    def storage_offset(self, local: Sequence[int]) -> int:
        """Border-free local indices -> flat offset into the stored section.

        Storage includes borders: the interior element ``local`` lives at
        ``local[i] + leading_border[i]`` in each dimension.
        """
        shifted = tuple(
            li + self.borders[2 * i] for i, li in enumerate(local)
        )
        return flatten_index(shifted, self.local_dims_plus, self.indexing)

    def storage_offset_global(self, indices: Sequence[int]) -> tuple[int, int]:
        """Global indices -> (section number, flat storage offset)."""
        section, local = self.locate(indices)
        return section, self.storage_offset(local)

    def replace_borders(self, borders: Sequence[int]) -> "ArrayLayout":
        """A copy of this layout with different border sizes (verify_array)."""
        return ArrayLayout(
            dims=self.dims,
            grid=self.grid,
            borders=tuple(borders),
            indexing=self.indexing,
            grid_indexing=self.grid_indexing,
        )
